// Rendering of measured-vs-paper tables, figure series, and shape checks.
#ifndef MCIRBM_EVAL_REPORT_H_
#define MCIRBM_EVAL_REPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "eval/paper_reference.h"

namespace mcirbm::eval {

/// Prints the full table: one row per dataset, 9 measured columns with the
/// paper's value in parentheses, plus the Average row.
void PrintTableComparison(std::ostream& out, PaperTable table,
                          const std::vector<DatasetExperimentResult>& results);

/// Prints the same measured grid for an arbitrary dataset list (one row
/// per result, no paper columns, no row-count pinning) — the renderer for
/// bench runs over user-supplied `--data` sources, where the paper's
/// fixed 9-dataset comparison does not apply.
void PrintMeasuredTable(std::ostream& out, const std::string& metric,
                        bool grbm_family,
                        const std::vector<DatasetExperimentResult>& results);

/// Prints the corresponding per-dataset figure series (Figs. 2-4 / 6-8):
/// three panels (DP, K-means, AP), each with series raw / +model / +sls
/// over the dataset number axis.
void PrintFigureSeries(std::ostream& out, PaperTable table,
                       const std::vector<DatasetExperimentResult>& results);

/// Prints the averages bar-figure content (Figs. 5 / 9) for the metrics of
/// the family: acc/purity/FMI (datasets I) or acc/Rand/FMI (datasets II).
void PrintAveragesFigure(std::ostream& out, bool grbm_family,
                         const std::vector<DatasetExperimentResult>& results);

/// Outcome of one qualitative reproduction check.
struct ShapeCheck {
  std::string description;
  bool paper_claims = true;  ///< what the paper reports
  bool measured = false;     ///< what this build measured
  bool Passes() const { return measured == paper_claims; }
};

/// Evaluates the family's headline shape claims on `metric`:
///  1. avg(X+sls) > avg(X raw) for each clusterer X;
///  2. avg(X+sls) > avg(X+plain) for each clusterer X.
std::vector<ShapeCheck> EvaluateShapeChecks(
    const std::vector<DatasetExperimentResult>& results,
    const std::string& metric, bool grbm_family);

/// Prints the checks and returns the number of failures.
int PrintShapeChecks(std::ostream& out,
                     const std::vector<ShapeCheck>& checks);

}  // namespace mcirbm::eval

#endif  // MCIRBM_EVAL_REPORT_H_
