#include "eval/paper_reference.h"

#include <array>

#include "util/check.h"

namespace mcirbm::eval {
namespace {

// Column order within each row matches the paper's tables:
//   DP, K-means, AP | DP+(G)RBM, K-means+(G)RBM, AP+(G)RBM |
//   DP+sls*, K-means+sls*, AP+sls*
// i.e. [variant][clusterer] flattened as variant-major.
using Row = std::array<double, 9>;

// Table IV — accuracies, datasets I (means; variance column omitted).
const std::array<Row, 9> kTable4 = {{
    {0.4275, 0.4007, 0.4230, 0.4219, 0.3527, 0.4275, 0.4743, 0.4275, 0.4319},
    {0.4544, 0.4176, 0.3905, 0.4360, 0.4273, 0.4024, 0.4837, 0.4826, 0.4826},
    {0.4147, 0.4058, 0.4048, 0.5162, 0.4047, 0.4158, 0.5326, 0.5017, 0.4872},
    {0.4453, 0.4979, 0.4753, 0.4742, 0.4796, 0.4882, 0.5472, 0.5461, 0.5054},
    {0.5011, 0.4041, 0.4243, 0.4874, 0.4266, 0.4232, 0.5057, 0.5034, 0.4977},
    {0.5667, 0.3935, 0.3968, 0.5548, 0.4968, 0.3581, 0.5699, 0.5570, 0.5570},
    {0.5232, 0.4731, 0.4318, 0.4493, 0.4581, 0.4631, 0.5782, 0.5294, 0.5457},
    {0.5016, 0.4266, 0.4342, 0.4723, 0.4211, 0.4690, 0.5365, 0.5626, 0.5647},
    {0.4664, 0.3788, 0.4027, 0.4676, 0.3697, 0.4232, 0.5165, 0.6189, 0.6223},
}};

// Table V — purity, datasets I.
const std::array<Row, 9> kTable5 = {{
    {0.8778, 0.8559, 0.8731, 0.8707, 0.8785, 0.8731, 0.9014, 0.8875, 0.8945},
    {0.8376, 0.8175, 0.8230, 0.8427, 0.8167, 0.8282, 0.8645, 0.8660, 0.8660},
    {0.8089, 0.8068, 0.8028, 0.8069, 0.8056, 0.8037, 0.8297, 0.8240, 0.8298},
    {0.8218, 0.7325, 0.7694, 0.8344, 0.7413, 0.7667, 0.8560, 0.8086, 0.8191},
    {0.8339, 0.8290, 0.8327, 0.8333, 0.8317, 0.8319, 0.8591, 0.8576, 0.8589},
    {0.7625, 0.7571, 0.7525, 0.7626, 0.7425, 0.7635, 0.7908, 0.7815, 0.7815},
    {0.8490, 0.8489, 0.8493, 0.8486, 0.8482, 0.8492, 0.8780, 0.8772, 0.8778},
    {0.7811, 0.7709, 0.7829, 0.7811, 0.7731, 0.7687, 0.8131, 0.8181, 0.8155},
    {0.9179, 0.9194, 0.9201, 0.9171, 0.9196, 0.9173, 0.9495, 0.9506, 0.9510},
}};

// Table VI — Fowlkes-Mallows, datasets I.
const std::array<Row, 9> kTable6 = {{
    {0.4471, 0.3838, 0.3999, 0.4170, 0.3767, 0.4078, 0.5110, 0.4212, 0.3992},
    {0.4731, 0.3907, 0.4001, 0.4660, 0.3932, 0.4011, 0.4907, 0.4781, 0.4781},
    {0.4093, 0.4058, 0.4104, 0.4841, 0.4053, 0.4086, 0.5281, 0.4765, 0.4676},
    {0.4803, 0.4632, 0.4288, 0.5140, 0.4537, 0.4342, 0.5215, 0.5199, 0.4783},
    {0.5044, 0.4042, 0.4149, 0.4613, 0.4052, 0.4147, 0.5117, 0.4968, 0.5046},
    {0.5887, 0.4341, 0.4271, 0.5719, 0.4771, 0.4074, 0.5508, 0.5151, 0.5151},
    {0.4963, 0.4418, 0.4357, 0.5097, 0.4422, 0.4394, 0.5600, 0.5363, 0.5552},
    {0.5718, 0.4148, 0.4154, 0.5027, 0.4078, 0.4362, 0.5336, 0.6782, 0.6743},
    {0.4644, 0.4054, 0.4212, 0.4751, 0.4041, 0.4523, 0.4964, 0.6535, 0.6557},
}};

// Table VII — accuracies, datasets II. (The paper prints "05686" for
// K-means+RBM on HS; transcribed as the evident 0.5686.)
const std::array<Row, 6> kTable7 = {{
    {0.5719, 0.5163, 0.5169, 0.5229, 0.5686, 0.5588, 0.6174, 0.6144, 0.5980},
    {0.5592, 0.5886, 0.5640, 0.6142, 0.5782, 0.5678, 0.6218, 0.6028, 0.6104},
    {0.6180, 0.5356, 0.5543, 0.5506, 0.5318, 0.5243, 0.7715, 0.5730, 0.5730},
    {0.6259, 0.5315, 0.5315, 0.8056, 0.5556, 0.5481, 0.8111, 0.5741, 0.5963},
    {0.7909, 0.8541, 0.8541, 0.6362, 0.6309, 0.6309, 0.8524, 0.8682, 0.8664},
    {0.9067, 0.8933, 0.8867, 0.8333, 0.8333, 0.8200, 0.9800, 0.9667, 0.9467},
}};

// Table VIII — Rand index, datasets II.
const std::array<Row, 6> kTable8 = {{
    {0.5087, 0.4989, 0.4991, 0.4994, 0.5078, 0.5053, 0.5261, 0.5246, 0.5176},
    {0.5066, 0.5152, 0.5077, 0.5256, 0.5118, 0.5087, 0.5292, 0.5207, 0.5239},
    {0.5261, 0.5007, 0.5040, 0.5033, 0.5002, 0.4993, 0.6461, 0.5088, 0.5088},
    {0.5308, 0.5011, 0.5011, 0.6861, 0.5053, 0.5037, 0.6930, 0.5101, 0.5177},
    {0.6686, 0.7504, 0.7504, 0.5363, 0.5335, 0.5335, 0.7479, 0.7707, 0.7681},
    {0.8923, 0.8797, 0.8737, 0.8322, 0.8301, 0.8213, 0.9740, 0.9575, 0.9341},
}};

// Table IX — Fowlkes-Mallows, datasets II.
const std::array<Row, 6> kTable9 = {{
    {0.5940, 0.5519, 0.5507, 0.5534, 0.5769, 0.5726, 0.6622, 0.6598, 0.6455},
    {0.5586, 0.5906, 0.5625, 0.5505, 0.5511, 0.5569, 0.5743, 0.5713, 0.5751},
    {0.6449, 0.5933, 0.6183, 0.5842, 0.5892, 0.5824, 0.7977, 0.6117, 0.6109},
    {0.6784, 0.6503, 0.6504, 0.8014, 0.6536, 0.6534, 0.8315, 0.6775, 0.6844},
    {0.7455, 0.7915, 0.7915, 0.7049, 0.6976, 0.6976, 0.8080, 0.8038, 0.8012},
    {0.8407, 0.8208, 0.8093, 0.7637, 0.7421, 0.7398, 0.9805, 0.9554, 0.9201},
}};

const std::vector<std::string>& MsraNames() {
  static const std::vector<std::string> names = {
      "BO", "WA", "WR", "BC", "VE", "AM", "VI", "WP", "VT"};
  return names;
}

const std::vector<std::string>& UciNames() {
  static const std::vector<std::string> names = {"HS", "QB",  "SH",
                                                 "SC", "BCW", "IR"};
  return names;
}

double TableCell(PaperTable table, int row, int col) {
  switch (table) {
    case PaperTable::kTable4AccuracyMsra:
      return kTable4[row][col];
    case PaperTable::kTable5PurityMsra:
      return kTable5[row][col];
    case PaperTable::kTable6FmiMsra:
      return kTable6[row][col];
    case PaperTable::kTable7AccuracyUci:
      return kTable7[row][col];
    case PaperTable::kTable8RandUci:
      return kTable8[row][col];
    case PaperTable::kTable9FmiUci:
      return kTable9[row][col];
  }
  MCIRBM_CHECK(false) << "unreachable";
  return 0;
}

}  // namespace

std::string PaperTableMetric(PaperTable table) {
  switch (table) {
    case PaperTable::kTable4AccuracyMsra:
    case PaperTable::kTable7AccuracyUci:
      return "accuracy";
    case PaperTable::kTable5PurityMsra:
      return "purity";
    case PaperTable::kTable8RandUci:
      return "rand";
    case PaperTable::kTable6FmiMsra:
    case PaperTable::kTable9FmiUci:
      return "fmi";
  }
  return "accuracy";
}

std::string PaperTableTitle(PaperTable table) {
  switch (table) {
    case PaperTable::kTable4AccuracyMsra:
      return "Table IV / Fig. 2 — accuracy (datasets I, MSRA-MM-like)";
    case PaperTable::kTable5PurityMsra:
      return "Table V / Fig. 3 — purity (datasets I, MSRA-MM-like)";
    case PaperTable::kTable6FmiMsra:
      return "Table VI / Fig. 4 — Fowlkes-Mallows (datasets I)";
    case PaperTable::kTable7AccuracyUci:
      return "Table VII / Fig. 6 — accuracy (datasets II, UCI-like)";
    case PaperTable::kTable8RandUci:
      return "Table VIII / Fig. 7 — Rand index (datasets II, UCI-like)";
    case PaperTable::kTable9FmiUci:
      return "Table IX / Fig. 8 — Fowlkes-Mallows (datasets II)";
  }
  return "?";
}

bool PaperTableIsGrbmFamily(PaperTable table) {
  switch (table) {
    case PaperTable::kTable4AccuracyMsra:
    case PaperTable::kTable5PurityMsra:
    case PaperTable::kTable6FmiMsra:
      return true;
    default:
      return false;
  }
}

int PaperTableRows(PaperTable table) {
  return PaperTableIsGrbmFamily(table) ? 9 : 6;
}

double PaperValue(PaperTable table, int row, Variant variant,
                  ClustererKind clusterer) {
  MCIRBM_CHECK(row >= 0 && row < PaperTableRows(table));
  const int col = static_cast<int>(variant) * kNumClusterers +
                  static_cast<int>(clusterer);
  return TableCell(table, row, col);
}

double PaperAverage(PaperTable table, Variant variant,
                    ClustererKind clusterer) {
  const int rows = PaperTableRows(table);
  double sum = 0;
  for (int r = 0; r < rows; ++r) {
    sum += PaperValue(table, r, variant, clusterer);
  }
  return sum / rows;
}

const std::vector<std::string>& PaperTableDatasetNames(PaperTable table) {
  return PaperTableIsGrbmFamily(table) ? MsraNames() : UciNames();
}

}  // namespace mcirbm::eval
