// Experiment harness reproducing the paper's evaluation protocol
// (Section V): for each dataset, run {DP, K-means, AP} on three feature
// variants — raw features, plain (G)RBM hidden features, sls(G)RBM hidden
// features — over several repeats, and aggregate external metrics.
#ifndef MCIRBM_EVAL_EXPERIMENT_H_
#define MCIRBM_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "data/dataset.h"
#include "eval/algorithms.h"
#include "metrics/external.h"

namespace mcirbm::eval {

/// Feature representation fed to the clusterers, in the paper's order.
enum class Variant { kRaw = 0, kPlain = 1, kSls = 2 };
inline constexpr int kNumVariants = 3;

/// Display name for a (variant, clusterer) cell in the family's notation,
/// e.g. "DP+slsGRBM" for (kSls, kDensityPeaks) in the GRBM family.
std::string CellName(Variant variant, ClustererKind clusterer,
                     bool grbm_family);

/// Mean and population variance of one metric across repeats.
struct CellStats {
  double mean = 0;
  double variance = 0;
};

/// Aggregated metrics for one (variant, clusterer) cell.
struct AggregatedMetrics {
  CellStats accuracy;
  CellStats purity;
  CellStats rand_index;
  CellStats fmi;
  CellStats ari;
  CellStats nmi;
};

/// Everything measured on one dataset.
struct DatasetExperimentResult {
  std::string dataset;
  int dataset_number = 0;  ///< 1-based figure-axis index
  /// cells[variant][clusterer]
  AggregatedMetrics cells[kNumVariants][kNumClusterers];
  double supervision_coverage = 0;  ///< mean over repeats (sls variant)
  int supervision_clusters = 0;     ///< mean over repeats, rounded
  /// Wall-clock time of this dataset's experiment. When datasets run
  /// concurrently (RunFamilyExperiments fans them out over the pool),
  /// spans include time slices spent on other datasets' work, so the
  /// per-dataset values overlap and their sum exceeds the family total.
  double wall_seconds = 0;
};

/// Harness configuration.
struct ExperimentConfig {
  /// true = datasets I protocol (GRBM family, standardized features);
  /// false = datasets II protocol (RBM family, min-max scaled features).
  bool grbm_family = true;

  rbm::RbmConfig rbm;             ///< num_visible inferred per dataset
  core::SlsConfig sls;            ///< paper defaults set by MakePaperConfig
  core::SupervisionConfig supervision;  ///< K set per dataset
  core::ParallelConfig parallel;  ///< execution-engine settings

  /// The base clusterers produce partitions with
  /// round(num_classes * supervision_cluster_factor) clusters: 1.0 votes at
  /// class granularity, >1 votes at finer "local cluster" granularity
  /// (purer credible clusters, the paper's local-supervision notion).
  double supervision_cluster_factor = 1.0;

  int repeats = 3;
  std::uint64_t seed = 7;

  /// Datasets to run instead of the generated family: loader specs
  /// (data/loaders.h — paths or scheme:rest forms, e.g. a converted
  /// binary artifact). Empty = the family's paper-equivalent synthetic
  /// datasets. Specs that fail to load abort with the loader's message.
  std::vector<std::string> data_specs;

  /// If > 0, stratified-subsample datasets to this many instances before
  /// running (fast bench mode). 0 = full size.
  std::size_t max_instances = 0;
};

/// Returns the paper's hyper-parameters for the given family:
/// slsGRBM — η=0.4, lr=1e-4; slsRBM — η=0.5, lr=1e-5 (Section V.B).
ExperimentConfig MakePaperConfig(bool grbm_family);

/// Runs the full 3x3 protocol on one dataset.
DatasetExperimentResult RunDatasetExperiment(const data::Dataset& dataset,
                                             int dataset_number,
                                             const ExperimentConfig& config);

/// Runs the protocol on every dataset of the family: all 9 MSRA-like sets
/// (grbm_family) or all 6 UCI-like sets — or, when config.data_specs is
/// non-empty, on each loaded spec instead (real-dataset runs).
std::vector<DatasetExperimentResult> RunFamilyExperiments(
    const ExperimentConfig& config);

/// Selects one metric value from an AggregatedMetrics by name:
/// "accuracy" | "purity" | "rand" | "fmi" | "ari" | "nmi".
const CellStats& MetricByName(const AggregatedMetrics& metrics,
                              const std::string& name);

/// Column-average of `metric` over all datasets for one cell.
double FamilyAverage(const std::vector<DatasetExperimentResult>& results,
                     Variant variant, ClustererKind clusterer,
                     const std::string& metric);

}  // namespace mcirbm::eval

#endif  // MCIRBM_EVAL_EXPERIMENT_H_
