// The paper's reported numbers (Tables IV-IX), embedded so every bench
// binary can print measured values side by side with the reference and
// EXPERIMENTS.md can be regenerated mechanically.
#ifndef MCIRBM_EVAL_PAPER_REFERENCE_H_
#define MCIRBM_EVAL_PAPER_REFERENCE_H_

#include <string>
#include <vector>

#include "eval/experiment.h"

namespace mcirbm::eval {

/// Identifies one of the paper's result tables.
enum class PaperTable {
  kTable4AccuracyMsra,   ///< accuracy, datasets I  (also Fig. 2)
  kTable5PurityMsra,     ///< purity,   datasets I  (also Fig. 3)
  kTable6FmiMsra,        ///< FMI,      datasets I  (also Fig. 4)
  kTable7AccuracyUci,    ///< accuracy, datasets II (also Fig. 6)
  kTable8RandUci,        ///< Rand,     datasets II (also Fig. 7)
  kTable9FmiUci,         ///< FMI,      datasets II (also Fig. 8)
};

/// "accuracy" / "purity" / "rand" / "fmi" for the given table.
std::string PaperTableMetric(PaperTable table);

/// Human title, e.g. "Table IV — accuracy (datasets I)".
std::string PaperTableTitle(PaperTable table);

/// Whether the table belongs to datasets I (GRBM family).
bool PaperTableIsGrbmFamily(PaperTable table);

/// Number of dataset rows (9 for datasets I, 6 for datasets II).
int PaperTableRows(PaperTable table);

/// The paper's value for (dataset row, variant, clusterer).
/// `row` is 0-based dataset index in table order.
double PaperValue(PaperTable table, int row, Variant variant,
                  ClustererKind clusterer);

/// The paper's column average (bottom "Average" row).
double PaperAverage(PaperTable table, Variant variant,
                    ClustererKind clusterer);

/// Dataset short names in table order ("BO", ..., "VT" / "HS", ..., "IR").
const std::vector<std::string>& PaperTableDatasetNames(PaperTable table);

}  // namespace mcirbm::eval

#endif  // MCIRBM_EVAL_PAPER_REFERENCE_H_
