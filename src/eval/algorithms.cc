#include "eval/algorithms.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "clustering/registry.h"
#include "util/check.h"
#include "util/param_map.h"

namespace mcirbm::eval {

const char* ClustererKindName(ClustererKind kind) {
  switch (kind) {
    case ClustererKind::kDensityPeaks:
      return "DP";
    case ClustererKind::kKMeans:
      return "K-means";
    case ClustererKind::kAffinityProp:
      return "AP";
  }
  return "?";
}

clustering::ClusteringResult RunClusterer(ClustererKind kind,
                                          const linalg::Matrix& x, int k,
                                          std::uint64_t seed) {
  ParamMap params;
  params.Set("k", std::to_string(k));
  const char* name = nullptr;
  switch (kind) {
    case ClustererKind::kDensityPeaks:
      name = "dp";
      break;
    case ClustererKind::kKMeans:
      // Best-of-3 restarts by SSE (single-run matches MATLAB-era
      // defaults).
      name = "kmeans";
      ApplyKMeansRestartOverride(&params);
      break;
    case ClustererKind::kAffinityProp:
      name = "ap";
      break;
  }
  MCIRBM_CHECK(name != nullptr) << "unreachable";
  auto clusterer =
      clustering::ClustererRegistry::Global().Create(name, params);
  MCIRBM_CHECK(clusterer.ok()) << clusterer.status().ToString();
  return clusterer.value()->Cluster(x, seed);
}

void ApplyKMeansRestartOverride(mcirbm::ParamMap* params) {
  const char* env = std::getenv("MCIRBM_KMEANS_RESTARTS");
  if (env != nullptr) {
    params->Set("restarts", std::to_string(std::max(1, std::atoi(env))));
  }
}

}  // namespace mcirbm::eval
