#include "eval/algorithms.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "clustering/registry.h"
#include "util/check.h"
#include "util/param_map.h"

namespace mcirbm::eval {

const char* ClustererKindName(ClustererKind kind) {
  switch (kind) {
    case ClustererKind::kDensityPeaks:
      return "DP";
    case ClustererKind::kKMeans:
      return "K-means";
    case ClustererKind::kAffinityProp:
      return "AP";
  }
  return "?";
}

clustering::ClusteringResult RunClusterer(ClustererKind kind,
                                          const linalg::Matrix& x, int k,
                                          std::uint64_t seed) {
  ParamMap params;
  params.Set("k", std::to_string(k));
  const char* name = nullptr;
  switch (kind) {
    case ClustererKind::kDensityPeaks:
      name = "dp";
      break;
    case ClustererKind::kKMeans:
      // Best-of-3 restarts by SSE; the registry factory's default honors
      // MCIRBM_KMEANS_RESTARTS for the restart-sensitivity ablation.
      name = "kmeans";
      break;
    case ClustererKind::kAffinityProp:
      name = "ap";
      break;
  }
  MCIRBM_CHECK(name != nullptr) << "unreachable";
  auto clusterer =
      clustering::ClustererRegistry::Global().Create(name, params);
  MCIRBM_CHECK(clusterer.ok()) << clusterer.status().ToString();
  return clusterer.value()->Cluster(x, seed);
}

}  // namespace mcirbm::eval
