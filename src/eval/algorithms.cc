#include "eval/algorithms.h"

#include <cstdlib>

#include "clustering/affinity_propagation.h"
#include "clustering/density_peaks.h"
#include "clustering/kmeans.h"
#include "util/check.h"

namespace mcirbm::eval {

const char* ClustererKindName(ClustererKind kind) {
  switch (kind) {
    case ClustererKind::kDensityPeaks:
      return "DP";
    case ClustererKind::kKMeans:
      return "K-means";
    case ClustererKind::kAffinityProp:
      return "AP";
  }
  return "?";
}

clustering::ClusteringResult RunClusterer(ClustererKind kind,
                                          const linalg::Matrix& x, int k,
                                          std::uint64_t seed) {
  switch (kind) {
    case ClustererKind::kDensityPeaks: {
      clustering::DensityPeaksConfig cfg;
      cfg.k = k;
      return clustering::DensityPeaks(cfg).Cluster(x, seed);
    }
    case ClustererKind::kKMeans: {
      clustering::KMeansConfig cfg;
      cfg.k = k;
      // Best-of-3 restarts by SSE; overridable for the restart-
      // sensitivity ablation (single-run matches MATLAB-era defaults).
      const char* env = std::getenv("MCIRBM_KMEANS_RESTARTS");
      cfg.restarts = env != nullptr ? std::max(1, std::atoi(env)) : 3;
      return clustering::KMeans(cfg).Cluster(x, seed);
    }
    case ClustererKind::kAffinityProp: {
      clustering::AffinityPropagationConfig cfg;
      cfg.target_clusters = k;
      return clustering::AffinityPropagation(cfg).Cluster(x, seed);
    }
  }
  MCIRBM_CHECK(false) << "unreachable";
  return {};
}

}  // namespace mcirbm::eval
