#include "eval/report.h"

#include <ostream>

#include "util/check.h"
#include "util/string_util.h"

namespace mcirbm::eval {
namespace {

constexpr int kColWidth = 17;

double MeasuredCell(const DatasetExperimentResult& r, const std::string& m,
                    Variant v, ClustererKind c) {
  return MetricByName(
             r.cells[static_cast<int>(v)][static_cast<int>(c)], m)
      .mean;
}

}  // namespace

void PrintTableComparison(
    std::ostream& out, PaperTable table,
    const std::vector<DatasetExperimentResult>& results) {
  const std::string metric = PaperTableMetric(table);
  const bool grbm = PaperTableIsGrbmFamily(table);
  MCIRBM_CHECK_EQ(results.size(),
                  static_cast<std::size_t>(PaperTableRows(table)));

  out << "\n=== " << PaperTableTitle(table) << " ===\n";
  out << "measured (paper) — substrate is synthetic, compare shapes not "
         "absolutes\n\n";
  out << PadRight("Dataset", 9);
  for (int v = 0; v < kNumVariants; ++v) {
    for (int c = 0; c < kNumClusterers; ++c) {
      out << PadLeft(CellName(static_cast<Variant>(v),
                              static_cast<ClustererKind>(c), grbm),
                     kColWidth);
    }
  }
  out << "\n";
  const auto& names = PaperTableDatasetNames(table);
  for (int row = 0; row < PaperTableRows(table); ++row) {
    out << PadRight(names[row], 9);
    for (int v = 0; v < kNumVariants; ++v) {
      for (int c = 0; c < kNumClusterers; ++c) {
        const double measured =
            MeasuredCell(results[row], metric, static_cast<Variant>(v),
                         static_cast<ClustererKind>(c));
        const double paper = PaperValue(table, row, static_cast<Variant>(v),
                                        static_cast<ClustererKind>(c));
        out << PadLeft(FormatDouble(measured, 4) + " (" +
                           FormatDouble(paper, 4) + ")",
                       kColWidth);
      }
    }
    out << "\n";
  }
  out << PadRight("Average", 9);
  for (int v = 0; v < kNumVariants; ++v) {
    for (int c = 0; c < kNumClusterers; ++c) {
      const double measured = FamilyAverage(
          results, static_cast<Variant>(v), static_cast<ClustererKind>(c),
          metric);
      const double paper = PaperAverage(table, static_cast<Variant>(v),
                                        static_cast<ClustererKind>(c));
      out << PadLeft(FormatDouble(measured, 4) + " (" +
                         FormatDouble(paper, 4) + ")",
                     kColWidth);
    }
  }
  out << "\n";
}

void PrintMeasuredTable(
    std::ostream& out, const std::string& metric, bool grbm_family,
    const std::vector<DatasetExperimentResult>& results) {
  out << "\n=== measured " << metric << " ("
      << (grbm_family ? "GRBM" : "RBM") << " family, user datasets) ===\n\n";
  out << PadRight("Dataset", 9);
  for (int v = 0; v < kNumVariants; ++v) {
    for (int c = 0; c < kNumClusterers; ++c) {
      out << PadLeft(CellName(static_cast<Variant>(v),
                              static_cast<ClustererKind>(c), grbm_family),
                     kColWidth);
    }
  }
  out << "\n";
  for (const auto& r : results) {
    out << PadRight(r.dataset.substr(0, 8), 9);
    for (int v = 0; v < kNumVariants; ++v) {
      for (int c = 0; c < kNumClusterers; ++c) {
        out << PadLeft(
            FormatDouble(MeasuredCell(r, metric, static_cast<Variant>(v),
                                      static_cast<ClustererKind>(c)),
                         4),
            kColWidth);
      }
    }
    out << "\n";
  }
  out << PadRight("Average", 9);
  for (int v = 0; v < kNumVariants; ++v) {
    for (int c = 0; c < kNumClusterers; ++c) {
      out << PadLeft(
          FormatDouble(FamilyAverage(results, static_cast<Variant>(v),
                                     static_cast<ClustererKind>(c), metric),
                       4),
          kColWidth);
    }
  }
  out << "\n";
}

void PrintFigureSeries(std::ostream& out, PaperTable table,
                       const std::vector<DatasetExperimentResult>& results) {
  const std::string metric = PaperTableMetric(table);
  const bool grbm = PaperTableIsGrbmFamily(table);
  out << "\n--- figure series (" << metric
      << " vs dataset number; one panel per clusterer) ---\n";
  for (int c = 0; c < kNumClusterers; ++c) {
    out << "panel " << ClustererKindName(static_cast<ClustererKind>(c))
        << ":\n";
    for (int v = 0; v < kNumVariants; ++v) {
      out << "  " << PadRight(CellName(static_cast<Variant>(v),
                                       static_cast<ClustererKind>(c), grbm),
                              16)
          << ":";
      for (const auto& r : results) {
        out << " " << FormatDouble(
            MeasuredCell(r, metric, static_cast<Variant>(v),
                         static_cast<ClustererKind>(c)),
            4);
      }
      out << "\n";
    }
  }
}

void PrintAveragesFigure(
    std::ostream& out, bool grbm_family,
    const std::vector<DatasetExperimentResult>& results) {
  const std::vector<std::string> metrics =
      grbm_family ? std::vector<std::string>{"accuracy", "purity", "fmi"}
                  : std::vector<std::string>{"accuracy", "rand", "fmi"};
  out << "\n--- average " << (grbm_family ? "(datasets I, Fig. 5)"
                                          : "(datasets II, Fig. 9)")
      << " ---\n";
  for (const auto& metric : metrics) {
    out << "metric " << metric << ":\n";
    for (int v = 0; v < kNumVariants; ++v) {
      for (int c = 0; c < kNumClusterers; ++c) {
        out << "  "
            << PadRight(CellName(static_cast<Variant>(v),
                                 static_cast<ClustererKind>(c), grbm_family),
                        16)
            << " "
            << FormatDouble(
                   FamilyAverage(results, static_cast<Variant>(v),
                                 static_cast<ClustererKind>(c), metric),
                   4)
            << "\n";
      }
    }
  }
}

std::vector<ShapeCheck> EvaluateShapeChecks(
    const std::vector<DatasetExperimentResult>& results,
    const std::string& metric, bool grbm_family) {
  std::vector<ShapeCheck> checks;
  for (int c = 0; c < kNumClusterers; ++c) {
    const auto kind = static_cast<ClustererKind>(c);
    const double raw = FamilyAverage(results, Variant::kRaw, kind, metric);
    const double plain =
        FamilyAverage(results, Variant::kPlain, kind, metric);
    const double sls = FamilyAverage(results, Variant::kSls, kind, metric);
    const std::string sls_name = CellName(Variant::kSls, kind, grbm_family);
    checks.push_back({"avg " + metric + ": " + sls_name + " > raw " +
                          ClustererKindName(kind),
                      /*paper_claims=*/true, sls > raw});
    checks.push_back({"avg " + metric + ": " + sls_name + " > " +
                          CellName(Variant::kPlain, kind, grbm_family),
                      /*paper_claims=*/true, sls > plain});
  }
  return checks;
}

int PrintShapeChecks(std::ostream& out,
                     const std::vector<ShapeCheck>& checks) {
  int failures = 0;
  out << "\n--- shape checks (paper claim reproduced?) ---\n";
  for (const auto& check : checks) {
    const bool pass = check.Passes();
    out << (pass ? "  [ OK ] " : "  [FAIL] ") << check.description << "\n";
    if (!pass) ++failures;
  }
  return failures;
}

}  // namespace mcirbm::eval
