#include "eval/experiment.h"

#include <cmath>

#include "data/loaders.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "linalg/stats.h"
#include "parallel/thread_pool.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/timer.h"

namespace mcirbm::eval {
namespace {

// Accumulates per-repeat bundles into mean/variance cells.
AggregatedMetrics Aggregate(const std::vector<metrics::MetricBundle>& runs) {
  auto stats_of = [&](auto field) {
    std::vector<double> xs;
    xs.reserve(runs.size());
    for (const auto& r : runs) xs.push_back(r.*field);
    CellStats s;
    s.mean = linalg::Mean(xs);
    s.variance = linalg::Variance(xs);
    return s;
  };
  AggregatedMetrics out;
  out.accuracy = stats_of(&metrics::MetricBundle::accuracy);
  out.purity = stats_of(&metrics::MetricBundle::purity);
  out.rand_index = stats_of(&metrics::MetricBundle::rand_index);
  out.fmi = stats_of(&metrics::MetricBundle::fmi);
  out.ari = stats_of(&metrics::MetricBundle::ari);
  out.nmi = stats_of(&metrics::MetricBundle::nmi);
  return out;
}

}  // namespace

std::string CellName(Variant variant, ClustererKind clusterer,
                     bool grbm_family) {
  std::string name = ClustererKindName(clusterer);
  switch (variant) {
    case Variant::kRaw:
      return name;
    case Variant::kPlain:
      return name + (grbm_family ? "+GRBM" : "+RBM");
    case Variant::kSls:
      return name + (grbm_family ? "+slsGRBM" : "+slsRBM");
  }
  return name;
}

ExperimentConfig MakePaperConfig(bool grbm_family) {
  ExperimentConfig config;
  config.grbm_family = grbm_family;
  // Learning rate and eta are the paper's (Section V.B); hidden width,
  // epochs and the supervision step scale are unreported there and were
  // calibrated on the synthetic substrate (see EXPERIMENTS.md).
  if (grbm_family) {
    config.rbm.learning_rate = 1e-4;  // Section V.B
    config.sls.eta = 0.4;
    config.rbm.num_hidden = 96;
    config.rbm.epochs = 60;
    config.sls.supervision_scale = 2500.0;
    config.sls.disperse_weight = 2.0;
  } else {
    config.rbm.learning_rate = 1e-5;  // Section V.B
    config.sls.eta = 0.5;
    config.rbm.num_hidden = 32;
    config.rbm.epochs = 60;
    // The paper's ε-free supervision step needs a large scale at lr 1e-5;
    // the trust-region cap keeps that scale stable on the high-coverage
    // consensus datasets (see bench/tune_uci.cc sweeps).
    config.sls.supervision_scale = 300000.0;
    config.sls.disperse_weight = 2.0;
    config.sls.max_grad_norm = 5000.0;
  }
  // The paper's DP/K-means/AP integration, expressed through the
  // deprecated-flag shim so the bench/tuning programs can keep mutating
  // individual toggles; ResolveVoterSpecs translates it into registry
  // voter specs either way. Three independently seeded K-means members
  // make the unanimous vote stricter, which is what lifts consensus
  // precision on the noisy image-descriptor substrate (see
  // bench/tune_msra.cc sweeps).
  config.supervision.kmeans_voters = 3;
  config.rbm.batch_size = 0;  // full batch on these small datasets
  config.rbm.cd_k = 1;
  return config;
}

DatasetExperimentResult RunDatasetExperiment(const data::Dataset& dataset,
                                             int dataset_number,
                                             const ExperimentConfig& config) {
  MCIRBM_CHECK_GT(config.repeats, 0);
  core::ApplyParallelConfig(config.parallel);
  WallTimer timer;
  data::Dataset working = dataset;
  if (config.max_instances > 0) {
    working = data::StratifiedSubsample(dataset, config.max_instances,
                                        config.seed ^ 0x73756273ULL);
  }

  // Representations. The paper's raw baselines (DP, K-means, AP) cluster
  // the *original* features; the encoders consume the preprocessed form —
  // standardized for Gaussian visible units (datasets I), rescaled to
  // [0,1] Bernoulli probabilities for binary visible units (datasets II).
  const linalg::Matrix& x_raw = working.x;
  linalg::Matrix x = working.x;
  if (config.grbm_family) {
    data::StandardizeInPlace(&x);
  } else {
    data::MinMaxScaleInPlace(&x);
  }
  const int k = working.num_classes;

  DatasetExperimentResult result;
  result.dataset = working.name;
  result.dataset_number = dataset_number;

  // Each repeat is an independent trial keyed by its own rep_seed; fan the
  // trials out over the pool (parallel kernels inside the pipeline degrade
  // to serial on the workers) and fold the outcomes back together in
  // repeat order so the aggregates match the serial harness exactly.
  struct RepeatOutcome {
    metrics::MetricBundle bundles[kNumVariants][kNumClusterers];
    double coverage = 0;
    int supervision_clusters = 0;
  };
  std::vector<RepeatOutcome> outcomes(config.repeats);

  const auto run_repeat = [&](std::size_t rep) {
    const std::uint64_t rep_seed =
        config.seed * 1000003ULL + static_cast<std::uint64_t>(rep);

    // Plain (G)RBM features.
    core::PipelineConfig plain_cfg;
    plain_cfg.model =
        config.grbm_family ? core::ModelKind::kGrbm : core::ModelKind::kRbm;
    plain_cfg.rbm = config.rbm;
    plain_cfg.parallel = config.parallel;
    core::PipelineResult plain =
        core::RunEncoderPipeline(x, plain_cfg, rep_seed);

    // sls(G)RBM features.
    core::PipelineConfig sls_cfg;
    sls_cfg.model = config.grbm_family ? core::ModelKind::kSlsGrbm
                                       : core::ModelKind::kSlsRbm;
    sls_cfg.rbm = config.rbm;
    sls_cfg.sls = config.sls;
    sls_cfg.supervision = config.supervision;
    sls_cfg.parallel = config.parallel;
    sls_cfg.supervision.num_clusters = std::max(
        2, static_cast<int>(
               std::lround(k * config.supervision_cluster_factor)));
    core::PipelineResult sls = core::RunEncoderPipeline(x, sls_cfg, rep_seed);
    outcomes[rep].coverage = sls.supervision.Coverage();
    outcomes[rep].supervision_clusters = sls.supervision.num_clusters;

    const linalg::Matrix* features[kNumVariants] = {
        &x_raw, &plain.hidden_features, &sls.hidden_features};

    for (int v = 0; v < kNumVariants; ++v) {
      for (int c = 0; c < kNumClusterers; ++c) {
        const auto clustering_result = RunClusterer(
            static_cast<ClustererKind>(c), *features[v], k, rep_seed);
        outcomes[rep].bundles[v][c] = metrics::ComputeAll(
            working.labels, clustering_result.assignment);
      }
    }
  };
  parallel::ParallelFor(static_cast<std::size_t>(config.repeats), 1,
                        [&](std::size_t begin, std::size_t end) {
                          for (std::size_t rep = begin; rep < end; ++rep) {
                            run_repeat(rep);
                          }
                        });

  // Aggregate consistently: both supervision summaries average over the
  // same repeats (clusters rounded to the nearest count) instead of
  // mixing a mean coverage with a last-repeat cluster count.
  MCIRBM_CHECK(!outcomes.empty()) << "no repeat outcomes to aggregate";
  double coverage_sum = 0;
  double cluster_sum = 0;
  for (const RepeatOutcome& outcome : outcomes) {
    coverage_sum += outcome.coverage;
    cluster_sum += outcome.supervision_clusters;
  }
  result.supervision_clusters = static_cast<int>(
      std::lround(cluster_sum / static_cast<double>(outcomes.size())));
  for (int v = 0; v < kNumVariants; ++v) {
    for (int c = 0; c < kNumClusterers; ++c) {
      std::vector<metrics::MetricBundle> runs;
      runs.reserve(outcomes.size());
      for (const RepeatOutcome& outcome : outcomes) {
        runs.push_back(outcome.bundles[v][c]);
      }
      result.cells[v][c] = Aggregate(runs);
    }
  }
  result.supervision_coverage =
      coverage_sum / static_cast<double>(config.repeats);
  result.wall_seconds = timer.Seconds();
  MCIRBM_LOG(kInfo) << "dataset " << result.dataset << " done in "
                    << result.wall_seconds << "s";
  return result;
}

std::vector<DatasetExperimentResult> RunFamilyExperiments(
    const ExperimentConfig& config) {
  core::ApplyParallelConfig(config.parallel);
  // Load/generate up front (synthesis parallelizes internally), then fan
  // the independent per-dataset experiments out over the pool. Results
  // land at their dataset index, so the family table is identical to the
  // serial harness; nested parallel kernels degrade to serial on the
  // workers.
  std::vector<data::Dataset> datasets;
  if (!config.data_specs.empty()) {
    datasets.reserve(config.data_specs.size());
    for (const std::string& spec : config.data_specs) {
      data::DataSourceConfig source_config;
      source_config.synth_seed = config.seed;
      auto loaded = data::LoadDataset(spec, source_config);
      MCIRBM_CHECK(loaded.ok())
          << "data spec '" << spec << "': " << loaded.status().ToString();
      datasets.push_back(std::move(loaded).value());
    }
  } else {
    const int family_size = config.grbm_family ? data::NumMsraDatasets()
                                               : data::NumUciDatasets();
    datasets.reserve(family_size);
    for (int i = 0; i < family_size; ++i) {
      datasets.push_back(config.grbm_family
                             ? data::GenerateMsraLike(i, config.seed)
                             : data::GenerateUciLike(i, config.seed));
    }
  }
  const int n = static_cast<int>(datasets.size());
  std::vector<DatasetExperimentResult> results(n);
  parallel::ParallelFor(
      static_cast<std::size_t>(n), 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          results[i] = RunDatasetExperiment(datasets[i],
                                            static_cast<int>(i) + 1, config);
        }
      });
  return results;
}

const CellStats& MetricByName(const AggregatedMetrics& metrics,
                              const std::string& name) {
  if (name == "accuracy") return metrics.accuracy;
  if (name == "purity") return metrics.purity;
  if (name == "rand") return metrics.rand_index;
  if (name == "fmi") return metrics.fmi;
  if (name == "ari") return metrics.ari;
  if (name == "nmi") return metrics.nmi;
  MCIRBM_CHECK(false) << "unknown metric '" << name << "'";
  return metrics.accuracy;
}

double FamilyAverage(const std::vector<DatasetExperimentResult>& results,
                     Variant variant, ClustererKind clusterer,
                     const std::string& metric) {
  MCIRBM_CHECK(!results.empty());
  double sum = 0;
  for (const auto& r : results) {
    sum += MetricByName(
               r.cells[static_cast<int>(variant)][static_cast<int>(clusterer)],
               metric)
               .mean;
  }
  return sum / static_cast<double>(results.size());
}

}  // namespace mcirbm::eval
