// Enumeration and uniform invocation of the three clustering algorithms
// used throughout the paper's evaluation.
#ifndef MCIRBM_EVAL_ALGORITHMS_H_
#define MCIRBM_EVAL_ALGORITHMS_H_

#include <cstdint>
#include <string>

#include "clustering/clusterer.h"
#include "util/param_map.h"

namespace mcirbm::eval {

/// The paper's three base clusterers, in its column order.
enum class ClustererKind { kDensityPeaks = 0, kKMeans = 1, kAffinityProp = 2 };

inline constexpr int kNumClusterers = 3;

/// Paper-style display name: "DP", "K-means", "AP".
const char* ClustererKindName(ClustererKind kind);

/// Runs clusterer `kind` on `x` asking for `k` clusters (AP searches its
/// preference to hit `k`).
clustering::ClusteringResult RunClusterer(ClustererKind kind,
                                          const linalg::Matrix& x, int k,
                                          std::uint64_t seed);

/// Applies the MCIRBM_KMEANS_RESTARTS env override (the eval-side
/// restart-sensitivity ablation) to kmeans `params` when set. Evaluation
/// only — supervision voters always use the registry default so the
/// ablation never perturbs training.
void ApplyKMeansRestartOverride(mcirbm::ParamMap* params);

}  // namespace mcirbm::eval

#endif  // MCIRBM_EVAL_ALGORITHMS_H_
