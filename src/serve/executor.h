// serve::RequestExecutor — executes parsed serve requests against a
// Router and formats the single-line (or, for stats, multi-line)
// responses of the protocol documented in serve/request.h.
//
// This is the piece between a request transport and the serving core:
// `mcirbm_cli serve` drives it from a file/stdin line loop, and
// net::LineServer drives it from per-connection TCP readers. Execute()
// is safe from any number of threads — the Router is concurrent by
// contract and the executor's dataset cache takes its own lock — which
// is what makes pipelined (out-of-order) execution of id-tagged network
// requests possible.
//
// Responsibilities:
//   - a bounded (path, transform) -> Dataset cache, so per-row request
//     streams do not re-read and re-preprocess the CSV each time;
//   - op=transform: chunked submission through Router::Submit with
//     client-side retry-after-drain on kUnavailable admission
//     rejections, in-order reassembly, optional out= CSV write;
//   - op=evaluate: one whole-set SubmitEvaluate with the same retry
//     policy;
//   - op=stats: the Router's merged metrics snapshot, folded together
//     with any extra registries (the net layer's) registered via
//     AddStatsRegistry;
//   - op=trace: the most recent completed request traces from the
//     configured obs::TraceStore, one line per span;
//   - op=reload: a hot-swap through Router::Reload;
//   - response formatting, echoing the request's opaque id= tag as the
//     first key of every ok/error line.
//
// Tracing: when ExecutorConfig::trace_store is set, transports call
// StartTrace() after parsing a request and FinishTrace() after writing
// its response; the executor contributes parse and format spans and
// threads the context down through Router -> MicroBatcher/ModelStore for
// the queue/exec/load spans. With sampling off (the default) StartTrace
// returns null and every stage's check is a single branch.
//
// Execution failures come back as "error ..." response lines, never
// exceptions or aborts; the bool out-param distinguishes them so a
// driver can keep its own served/failed tally.
#ifndef MCIRBM_SERVE_EXECUTOR_H_
#define MCIRBM_SERVE_EXECUTOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "serve/request.h"
#include "serve/router.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace mcirbm::serve {

/// Request-execution knobs.
struct ExecutorConfig {
  /// Distinct (path, transform) datasets kept in memory (FIFO eviction).
  std::size_t dataset_cache_capacity = 8;
  /// Per-request trace sampling (obs/trace.h). Null disables tracing
  /// and makes op=trace fail; a store with sample_every_n == 0 behaves
  /// the same but still serves its (empty) counters.
  std::shared_ptr<obs::TraceStore> trace_store;
};

/// Executes parsed requests against a Router; shared by the CLI serve
/// loop and the net::LineServer transport.
class RequestExecutor {
 public:
  /// `router` must outlive the executor.
  explicit RequestExecutor(Router* router, const ExecutorConfig& config = {});

  RequestExecutor(const RequestExecutor&) = delete;
  RequestExecutor& operator=(const RequestExecutor&) = delete;

  /// Folds `registry`'s snapshot into every op=stats response (and
  /// RenderStatsText) in addition to the Router's own merge — how the
  /// net layer's net_* metrics join the stats surface. The registry must
  /// outlive the executor. Not thread-safe against concurrent Execute;
  /// register during setup.
  void AddStatsRegistry(const obs::Registry* registry);

  /// Executes one parsed request to completion (blocking on the
  /// Router's futures) and returns the full '\n'-terminated response
  /// payload: one "ok ..."/"error ..." line, plus the rendered metric
  /// lines for op=stats. `context` is extra diagnostic tokens spliced
  /// into an error line after the id echo (the file loop's "line=N");
  /// pass "" over the network. `ok_out` (optional) reports whether the
  /// response is an ok line. `trace` (optional, from StartTrace) collects
  /// this request's spans; the caller finishes it AFTER the response is
  /// written so the transport's flush span makes it in. Thread-safe.
  std::string Execute(const Request& request, const std::string& context,
                      bool* ok_out = nullptr,
                      const std::shared_ptr<obs::TraceContext>& trace = {});

  /// Sampling decision for one request: a live context every Nth call
  /// when a trace store with sampling is configured, null otherwise.
  /// `start_micros` anchors the trace's end-to-end window — transports
  /// pass the same timestamp their request histogram uses.
  std::shared_ptr<obs::TraceContext> StartTrace(const Request& request,
                                                std::int64_t start_micros);

  /// Seals `trace` (null-safe) at MonotonicMicros() and commits it to
  /// the store's ring + JSONL sink. Call after the response is flushed.
  void FinishTrace(const std::shared_ptr<obs::TraceContext>& trace);

  const std::shared_ptr<obs::TraceStore>& trace_store() const {
    return trace_store_;
  }

  /// The error response line (newline-terminated) for a request that
  /// failed before execution — parse errors (`id` empty when the line
  /// was unparseable) and the transport's duplicate-id rejections.
  static std::string FormatError(const Status& status, const std::string& id,
                                 const std::string& context);

  /// The Router's merged snapshot plus every AddStatsRegistry extra (and
  /// the trace store's lifecycle counters) — the op=stats payload.
  std::string RenderStatsText() const;

  /// RenderStatsText plus a '#'-prefixed recent-trace section when
  /// tracing is on — the --stats-port endpoint body ('#' keeps the
  /// exposition format parseable for metric scrapers).
  std::string RenderStatsAndTracesText() const;

 private:
  /// Bounded (path, transform) -> preprocessed dataset cache. Entries
  /// are shared_ptr so a hit stays valid while later requests churn the
  /// cache. FIFO eviction over insertion order.
  class DatasetCache {
   public:
    explicit DatasetCache(std::size_t capacity) : capacity_(capacity) {}
    StatusOr<std::shared_ptr<const data::Dataset>> Get(
        const std::string& path, const std::string& transform);

   private:
    const std::size_t capacity_;
    Mutex mu_;
    std::map<std::string, std::shared_ptr<const data::Dataset>> cache_
        MCIRBM_GUARDED_BY(mu_);
    std::deque<std::string> order_ MCIRBM_GUARDED_BY(mu_);
  };

  StatusOr<std::string> ExecuteTransform(
      const Request& request, const data::Dataset& ds,
      const std::shared_ptr<obs::TraceContext>& trace);
  StatusOr<std::string> ExecuteEvaluate(
      const Request& request, const data::Dataset& ds,
      const std::shared_ptr<obs::TraceContext>& trace);
  std::string ExecuteStats(const Request& request);
  std::string ExecuteTrace(const Request& request, const std::string& context,
                           bool* ok_out);
  StatusOr<std::string> ExecuteReload(const Request& request,
                                      obs::TraceContext* trace);

  Router* const router_;
  DatasetCache datasets_;
  std::vector<const obs::Registry*> extra_registries_;
  const std::shared_ptr<obs::TraceStore> trace_store_;
};

}  // namespace mcirbm::serve

#endif  // MCIRBM_SERVE_EXECUTOR_H_
