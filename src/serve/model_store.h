// ModelStore — shared-ownership cache of api::Model artifacts for the
// serving layer.
//
// The store maps a key (normally the artifact path on disk) to an
// immutable, shared api::Model instance:
//
//   serve::ModelStore store(/*capacity=*/8);
//   auto model = store.Get("encoder.mcirbm");     // loads + caches
//   auto again = store.Get("encoder.mcirbm");     // cache hit, same instance
//   store.Reload("encoder.mcirbm");               // hot-swap from disk
//
// Concurrency: every method is safe to call from any thread. Readers
// receive `shared_ptr<const api::Model>`, so eviction and hot-reload never
// invalidate a model that a batch in flight is still using — the old
// instance is destroyed when its last reference drops. Disk loads happen
// outside the store lock, so a slow load never blocks cache hits on other
// keys; two threads racing to load the same key both succeed and converge
// on a single cached instance.
//
// Eviction is LRU over `capacity` entries. A failed Reload keeps the
// previously cached instance (serving continues on the stale model and
// the error is reported to the caller).
#ifndef MCIRBM_SERVE_MODEL_STORE_H_
#define MCIRBM_SERVE_MODEL_STORE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "api/model.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace mcirbm::serve {

/// LRU cache of shared, immutable api::Model instances keyed by path.
class ModelStore {
 public:
  /// `capacity` bounds the number of cached models (clamped to >= 1).
  explicit ModelStore(std::size_t capacity = 8);

  ModelStore(const ModelStore&) = delete;
  ModelStore& operator=(const ModelStore&) = delete;

  /// Returns the cached model for `key`, loading it from disk (key ==
  /// path) on a miss. Load failures are returned and not cached.
  /// A non-null `trace` receives a "load" span when the call misses and
  /// goes to disk (cache hits add nothing — there is nothing to time).
  StatusOr<std::shared_ptr<const api::Model>> Get(
      const std::string& key, obs::TraceContext* trace = nullptr);

  /// Inserts an in-memory model under `key` (replacing any cached entry)
  /// and returns the shared instance. Used by benchmarks/tests and any
  /// embedder that trains in-process; such keys have no backing file, so
  /// Reload on them fails until one exists.
  std::shared_ptr<const api::Model> Put(const std::string& key,
                                        api::Model model);

  /// Re-reads `key` from disk and atomically swaps the cached entry.
  /// In-flight readers keep the old instance. On failure the previous
  /// entry (if any) stays cached and serving continues. A non-null
  /// `trace` receives a "reload" span covering the disk read.
  Status Reload(const std::string& key, obs::TraceContext* trace = nullptr);

  /// Drops `key` from the cache (in-flight readers are unaffected).
  /// Returns true if an entry was removed.
  bool Evict(const std::string& key);

  /// Number of cached models.
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// Monotonic counters since construction.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;      ///< Get calls that went to disk
    std::uint64_t evictions = 0;   ///< LRU evictions (not explicit Evict)
    std::uint64_t reloads = 0;     ///< successful Reload swaps
  };
  Stats stats() const;

  /// Metrics mirror of the counters above plus per-model-key
  /// store_load_micros / store_reload_micros disk-latency histograms
  /// (successful loads only — a failed probe has no artifact to label
  /// honestly). Merged into the serve-layer snapshot by serve::Router.
  obs::MetricsSnapshot metrics_snapshot() const {
    return registry_->snapshot();
  }
  const std::shared_ptr<obs::Registry>& registry() const {
    return registry_;
  }

 private:
  struct Entry {
    std::shared_ptr<const api::Model> model;
    std::list<std::string>::iterator lru_it;  // position in lru_
  };

  /// Moves `key` to the most-recently-used position.
  void Touch(const std::string& key, Entry* entry) MCIRBM_REQUIRES(mu_);
  /// Inserts/replaces `key` and evicts past capacity.
  void InsertLocked(const std::string& key,
                    std::shared_ptr<const api::Model> model)
      MCIRBM_REQUIRES(mu_);

  const std::size_t capacity_;
  const std::shared_ptr<obs::Registry> registry_ =
      std::make_shared<obs::Registry>();
  mutable Mutex mu_;
  std::list<std::string> lru_ MCIRBM_GUARDED_BY(mu_);  // front = MRU
  std::map<std::string, Entry> entries_ MCIRBM_GUARDED_BY(mu_);
  Stats stats_ MCIRBM_GUARDED_BY(mu_);
};

}  // namespace mcirbm::serve

#endif  // MCIRBM_SERVE_MODEL_STORE_H_
