#include "serve/micro_batcher.h"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <limits>
#include <utility>

#include "util/timer.h"

namespace mcirbm::serve {

namespace {

/// Ready future carrying an error, for submissions rejected up front.
template <typename T>
std::future<StatusOr<T>> FailedFuture(Status status) {
  std::promise<StatusOr<T>> promise;
  promise.set_value(std::move(status));
  return promise.get_future();
}

std::shared_ptr<obs::Registry> RegistryOrPrivate(
    const std::shared_ptr<obs::Registry>& configured) {
  return configured != nullptr ? configured
                               : std::make_shared<obs::Registry>();
}

}  // namespace

MicroBatcher::MicroBatcher(const BatcherConfig& config)
    : config_(config),
      registry_(RegistryOrPrivate(config.registry)),
      flusher_([this] { FlusherLoop(); }) {}

MicroBatcher::~MicroBatcher() { Shutdown(); }

void MicroBatcher::UpdateGauges(const std::string& key) {
  const auto queue_it = queues_.find(key);
  const double depth =
      queue_it == queues_.end()
          ? 0.0
          : static_cast<double>(queue_it->second.pending.size());
  const auto load_it = key_loads_.find(key);
  const double rows = load_it == key_loads_.end()
                          ? 0.0
                          : static_cast<double>(load_it->second);
  registry_->gauge("serve_queue_depth", key).Set(depth);
  registry_->gauge("serve_pending_rows", key).Set(rows);
}

Status MicroBatcher::Enqueue(
    std::shared_ptr<const api::Model> model, const std::string& key,
    linalg::Matrix rows,
    std::function<void(StatusOr<linalg::Matrix>)> complete,
    std::shared_ptr<obs::TraceContext> trace) {
  if (model == nullptr || !model->valid()) {
    return Status::InvalidArgument("submit requires a loaded model");
  }
  if (rows.rows() == 0) {
    return Status::InvalidArgument("submit requires at least one row");
  }
  if (rows.cols() != model->num_visible()) {
    return Status::InvalidArgument(
        "request has " + std::to_string(rows.cols()) +
        " features but model '" + key + "' expects " +
        std::to_string(model->num_visible()));
  }
  const std::int64_t now = MonotonicMicros();
  {
    MutexLock lock(mu_);
    if (stopping_) {
      return Status::Unavailable("micro-batcher is shut down");
    }
    // Backpressure, checked before any mutation — find(), not
    // operator[], so a rejected submission on a never-seen key does not
    // leave an empty Queue behind for the flusher to scan forever. The
    // find() miss is also what admits the first request into an empty
    // queue unconditionally (mirroring max_batch_rows, so one oversized
    // request can still be served): a key present in the map always
    // holds at least one pending row.
    auto queue_it = queues_.find(key);
    if (config_.max_pending_rows > 0 && queue_it != queues_.end()) {
      // Swap-sealed batches the flusher has not claimed yet still hold
      // this key's memory, so they count against the bound too — a
      // Reload-heavy client cannot launder rows past backpressure by
      // sealing them.
      const std::size_t held =
          queue_it->second.pending_rows + queue_it->second.sealed_rows;
      if (held + rows.rows() > config_.max_pending_rows) {
        ++stats_.rejected_requests;
        registry_->counter("serve_rejected_total", key).Increment();
        return Status::Unavailable(
            "queue for model '" + key + "' is full (" +
            std::to_string(held) + " of " +
            std::to_string(config_.max_pending_rows) + " pending rows)");
      }
    }
    if (config_.admission != nullptr && !config_.admission->TryAcquire()) {
      ++stats_.rejected_requests;
      registry_->counter("serve_rejected_total", key).Increment();
      return Status::Unavailable(
          "server is at its inflight-request limit (" +
          std::to_string(config_.admission->max_inflight()) + ")");
    }
    Queue& queue =
        queue_it != queues_.end() ? queue_it->second : queues_[key];
    if (config_.admission != nullptr) {
      // Release the slot exactly when the request's future resolves.
      complete = [admission = config_.admission,
                  inner = std::move(complete)](
                     StatusOr<linalg::Matrix> features) {
        inner(std::move(features));
        admission->Release();
      };
    }
    if (!queue.pending.empty() &&
        queue.model.get() != model.get()) {
      // The key was hot-reloaded while requests were queued: seal the
      // current queue as ready batches so earlier requests finish on the
      // instance they were submitted against, and start a fresh queue on
      // the new model. Never mix two instances in one batch, and respect
      // max_batch_rows — a long queue seals as a sequence of capped
      // batches (whole requests each; a single oversized request still
      // forms one oversized batch, exactly like the regular flush path).
      std::vector<Request> pending = std::move(queue.pending);
      std::shared_ptr<const api::Model> swapped = std::move(queue.model);
      queue.sealed_rows += queue.pending_rows;
      std::size_t taken = 0;
      while (taken < pending.size()) {
        Batch sealed;
        sealed.model = swapped;
        sealed.key = key;
        sealed.trigger = FlushTrigger::kSwap;
        while (taken < pending.size()) {
          const std::size_t request_rows = pending[taken].rows.rows();
          if (!sealed.requests.empty() &&
              sealed.rows + request_rows > config_.max_batch_rows) {
            break;
          }
          sealed.rows += request_rows;
          sealed.requests.push_back(std::move(pending[taken]));
          ++taken;
        }
        ready_.push_back(std::move(sealed));
      }
      queue.pending.clear();
      queue.pending_rows = 0;
    }
    if (queue.pending.empty()) {
      queue.model = std::move(model);
      queue.oldest_micros = now;
    }
    queue.pending_rows += rows.rows();
    const std::size_t accepted_rows = rows.rows();
    queue.pending.push_back(
        Request{std::move(rows), now, std::move(complete), std::move(trace)});
    ++stats_.requests;
    stats_.rows += accepted_rows;
    key_loads_[key] += accepted_rows;
    load_.fetch_add(accepted_rows, std::memory_order_relaxed);
    registry_->counter("serve_requests_total", key).Increment();
    registry_->counter("serve_rows_total", key).Increment(accepted_rows);
    UpdateGauges(key);
  }
  cv_.NotifyOne();
  return Status::Ok();
}

std::future<StatusOr<linalg::Matrix>> MicroBatcher::SubmitTransform(
    std::shared_ptr<const api::Model> model, const std::string& key,
    linalg::Matrix rows, std::shared_ptr<obs::TraceContext> trace) {
  auto promise =
      std::make_shared<std::promise<StatusOr<linalg::Matrix>>>();
  auto future = promise->get_future();
  const Status queued = Enqueue(
      std::move(model), key, std::move(rows),
      [promise](StatusOr<linalg::Matrix> features) {
        promise->set_value(std::move(features));
      },
      std::move(trace));
  if (!queued.ok()) return FailedFuture<linalg::Matrix>(queued);
  return future;
}

std::future<StatusOr<api::EvalResult>> MicroBatcher::SubmitEvaluate(
    std::shared_ptr<const api::Model> model, const std::string& key,
    linalg::Matrix rows, std::vector<int> labels,
    api::EvalOptions options, std::shared_ptr<obs::TraceContext> trace) {
  if (labels.size() != rows.rows()) {
    return FailedFuture<api::EvalResult>(Status::InvalidArgument(
        "labels length " + std::to_string(labels.size()) +
        " does not match " + std::to_string(rows.rows()) + " rows"));
  }
  auto promise =
      std::make_shared<std::promise<StatusOr<api::EvalResult>>>();
  auto future = promise->get_future();
  const Status queued = Enqueue(
      std::move(model), key, std::move(rows),
      [promise, labels = std::move(labels),
       options](StatusOr<linalg::Matrix> features) {
        if (!features.ok()) {
          promise->set_value(features.status());
          return;
        }
        promise->set_value(
            api::EvaluateFeatures(features.value(), labels, options));
      },
      std::move(trace));
  if (!queued.ok()) return FailedFuture<api::EvalResult>(queued);
  return future;
}

void MicroBatcher::Shutdown() {
  std::thread to_join;
  {
    MutexLock lock(mu_);
    stopping_ = true;
    // Claim the thread handle under the lock so concurrent Shutdown
    // calls (user + destructor) cannot both join it.
    if (flusher_.joinable()) to_join = std::move(flusher_);
  }
  cv_.NotifyAll();
  if (to_join.joinable()) to_join.join();
}

void MicroBatcher::FlusherLoop() {
  const std::int64_t queue_wait =
      std::max<std::int64_t>(0, config_.max_queue_micros);
  MutexLock lock(mu_);
  for (;;) {
    bool any_pending = !ready_.empty();
    std::int64_t next_deadline_micros =
        std::numeric_limits<std::int64_t>::max();
    for (const auto& [key, queue] : queues_) {
      if (queue.pending.empty()) continue;
      any_pending = true;
      next_deadline_micros =
          std::min(next_deadline_micros, queue.oldest_micros + queue_wait);
    }
    if (!any_pending) {
      if (stopping_) return;
      cv_.Wait(mu_);
      continue;
    }

    const std::int64_t now = MonotonicMicros();
    // Batches sealed by Enqueue (model hot-swap) flush ahead of the
    // regular queues; claiming them releases their rows from the keys'
    // backpressure accounting.
    std::vector<Batch> due = std::move(ready_);
    ready_.clear();
    for (const Batch& sealed : due) {
      auto it = queues_.find(sealed.key);
      if (it != queues_.end()) it->second.sealed_rows -= sealed.rows;
    }
    for (auto it = queues_.begin(); it != queues_.end();) {
      Queue& queue = it->second;
      const bool full = queue.pending_rows >= config_.max_batch_rows;
      if (queue.pending.empty() ||
          (!full && !stopping_ &&
           now < queue.oldest_micros + queue_wait)) {
        ++it;
        continue;
      }
      // Carve off whole requests up to max_batch_rows per batch. The
      // first request always goes in, so one oversized request forms one
      // oversized batch. Anything left over stays queued; the loop
      // re-evaluates immediately, so a backlog drains as a sequence of
      // capped batches rather than one unbounded pass.
      Batch batch;
      batch.model = queue.model;
      batch.key = it->first;
      batch.trigger = full ? FlushTrigger::kFull : FlushTrigger::kDeadline;
      std::size_t take = 0;
      while (take < queue.pending.size()) {
        const std::size_t request_rows = queue.pending[take].rows.rows();
        if (take > 0 && batch.rows + request_rows > config_.max_batch_rows) {
          break;
        }
        batch.rows += request_rows;
        ++take;
      }
      batch.requests.assign(
          std::make_move_iterator(queue.pending.begin()),
          std::make_move_iterator(queue.pending.begin() + take));
      queue.pending.erase(queue.pending.begin(),
                          queue.pending.begin() + take);
      queue.pending_rows -= batch.rows;
      due.push_back(std::move(batch));
      if (queue.pending.empty()) {
        // Drop the drained entry: a long-lived server sees many distinct
        // keys, and a lingering Queue would both pin its model shared_ptr
        // (defeating the ModelStore LRU bound) and grow the per-wakeup
        // scan without bound.
        it = queues_.erase(it);
      } else {
        queue.oldest_micros = queue.pending.front().enqueued_micros;
        ++it;
      }
    }
    if (due.empty()) {
      cv_.WaitForMicros(mu_, next_deadline_micros - now);
      continue;
    }

    // Record queue waits and flush accounting while still locked, then
    // run the (possibly slow) batched passes without holding the lock so
    // submitters keep queuing into the next batch.
    for (const Batch& batch : due) {
      switch (batch.trigger) {
        case FlushTrigger::kFull:
          ++stats_.full_flushes;
          break;
        case FlushTrigger::kDeadline:
          ++stats_.deadline_flushes;
          break;
        case FlushTrigger::kSwap:
          ++stats_.swap_flushes;
          break;
      }
      ++stats_.batches;
      stats_.batched_rows += batch.rows;
      registry_->counter("serve_batches_total", batch.key).Increment();
      obs::Histogram& queue_wait_histogram =
          registry_->histogram("serve_queue_wait_micros", batch.key);
      for (const Request& request : batch.requests) {
        const double waited =
            static_cast<double>(now - request.enqueued_micros);
        stats_.total_queue_micros += waited;
        stats_.max_queue_micros = std::max(stats_.max_queue_micros, waited);
        queue_wait_histogram.Record(waited);
        if (config_.record_latencies) latencies_micros_.push_back(waited);
        if (request.trace != nullptr) {
          request.trace->AddSpan("queue", request.enqueued_micros,
                                 now - request.enqueued_micros, batch.key,
                                 request.rows.rows());
        }
      }
      UpdateGauges(batch.key);
    }
    lock.Unlock();
    for (Batch& batch : due) ExecuteBatch(&batch);
    lock.Lock();
  }
}

void MicroBatcher::SettleLoad(const std::string& key, std::size_t rows) {
  MutexLock lock(mu_);
  auto load_it = key_loads_.find(key);
  if (load_it != key_loads_.end()) {
    load_it->second -= std::min(load_it->second, rows);
    if (load_it->second == 0) key_loads_.erase(load_it);
  }
  load_.fetch_sub(std::min(load_.load(std::memory_order_relaxed), rows),
                  std::memory_order_relaxed);
  UpdateGauges(key);
}

void MicroBatcher::ExecuteBatch(Batch* batch) {
  obs::Histogram& exec_histogram =
      registry_->histogram("serve_batch_exec_micros", batch->key);
  const std::int64_t started = MonotonicMicros();
  // A lone request needs no assembly or slicing: its rows *are* the
  // batch, and the result matrix is handed over whole.
  if (batch->requests.size() == 1) {
    Request& request = batch->requests.front();
    auto features = batch->model->Transform(request.rows);
    const std::int64_t finished = MonotonicMicros();
    exec_histogram.Record(static_cast<double>(finished - started));
    if (request.trace != nullptr) {
      request.trace->AddSpan("exec", started, finished - started, batch->key,
                             batch->rows);
    }
    // Settle before completing: once a future resolves, its rows must no
    // longer count toward this batcher's load (routers re-route on the
    // gauge a client reads after .get()).
    SettleLoad(batch->key, batch->rows);
    request.complete(std::move(features));
    return;
  }

  const std::size_t cols = batch->requests.front().rows.cols();
  linalg::Matrix assembled(batch->rows, cols);
  std::size_t offset = 0;
  for (const Request& request : batch->requests) {
    std::memcpy(assembled.data() + offset * cols, request.rows.data(),
                request.rows.size() * sizeof(double));
    offset += request.rows.rows();
  }

  auto features = batch->model->Transform(assembled);
  const std::int64_t finished = MonotonicMicros();
  exec_histogram.Record(static_cast<double>(finished - started));
  // The batch's exec span lands on every traced request in the flush,
  // attributed with the batch's total rows — a request's timeline shows
  // the pass it actually rode, not a per-slice fiction.
  for (const Request& request : batch->requests) {
    if (request.trace != nullptr) {
      request.trace->AddSpan("exec", started, finished - started, batch->key,
                             batch->rows);
    }
  }
  SettleLoad(batch->key, batch->rows);
  if (!features.ok()) {
    for (Request& request : batch->requests) {
      request.complete(features.status());
    }
    return;
  }

  // Hand each request its row slice. Rows are independent through every
  // inference kernel, so the slice is bit-identical to a one-at-a-time
  // Transform of the same rows.
  const linalg::Matrix& all = features.value();
  offset = 0;
  for (Request& request : batch->requests) {
    linalg::Matrix slice(request.rows.rows(), all.cols());
    std::memcpy(slice.data(), all.data() + offset * all.cols(),
                slice.size() * sizeof(double));
    offset += request.rows.rows();
    request.complete(std::move(slice));
  }
}

MicroBatcher::Stats MicroBatcher::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::vector<double> MicroBatcher::latencies_micros() const {
  MutexLock lock(mu_);
  return latencies_micros_;
}

std::size_t MicroBatcher::pending_queues() const {
  MutexLock lock(mu_);
  return queues_.size() + ready_.size();
}

std::size_t MicroBatcher::key_load(const std::string& key) const {
  MutexLock lock(mu_);
  const auto it = key_loads_.find(key);
  return it == key_loads_.end() ? 0 : it->second;
}

}  // namespace mcirbm::serve
