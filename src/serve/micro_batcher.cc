#include "serve/micro_batcher.h"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <utility>

namespace mcirbm::serve {

namespace {

/// Ready future carrying an error, for submissions rejected up front.
template <typename T>
std::future<StatusOr<T>> FailedFuture(Status status) {
  std::promise<StatusOr<T>> promise;
  promise.set_value(std::move(status));
  return promise.get_future();
}

}  // namespace

MicroBatcher::MicroBatcher(const BatcherConfig& config)
    : config_(config), flusher_([this] { FlusherLoop(); }) {}

MicroBatcher::~MicroBatcher() { Shutdown(); }

Status MicroBatcher::Enqueue(
    std::shared_ptr<const api::Model> model, const std::string& key,
    linalg::Matrix rows,
    std::function<void(StatusOr<linalg::Matrix>)> complete) {
  if (model == nullptr || !model->valid()) {
    return Status::InvalidArgument("submit requires a loaded model");
  }
  if (rows.rows() == 0) {
    return Status::InvalidArgument("submit requires at least one row");
  }
  if (rows.cols() != model->num_visible()) {
    return Status::InvalidArgument(
        "request has " + std::to_string(rows.cols()) +
        " features but model '" + key + "' expects " +
        std::to_string(model->num_visible()));
  }
  const auto now = Clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return Status::Unavailable("micro-batcher is shut down");
    }
    Queue& queue = queues_[key];
    if (!queue.pending.empty() &&
        queue.model.get() != model.get()) {
      // The key was hot-reloaded while requests were queued: seal the
      // current queue as a ready batch so earlier requests finish on the
      // instance they were submitted against, and start a fresh queue on
      // the new model. Never mix two instances in one batch.
      Batch sealed;
      sealed.model = std::move(queue.model);
      sealed.requests = std::move(queue.pending);
      sealed.rows = queue.pending_rows;
      ready_.push_back(std::move(sealed));
      queue.pending.clear();
      queue.pending_rows = 0;
    }
    if (queue.pending.empty()) {
      queue.model = std::move(model);
      queue.oldest = now;
    }
    queue.pending_rows += rows.rows();
    queue.pending.push_back(
        Request{std::move(rows), now, std::move(complete)});
    ++stats_.requests;
    stats_.rows += queue.pending.back().rows.rows();
  }
  cv_.notify_one();
  return Status::Ok();
}

std::future<StatusOr<linalg::Matrix>> MicroBatcher::SubmitTransform(
    std::shared_ptr<const api::Model> model, const std::string& key,
    linalg::Matrix rows) {
  auto promise =
      std::make_shared<std::promise<StatusOr<linalg::Matrix>>>();
  auto future = promise->get_future();
  const Status queued = Enqueue(
      std::move(model), key, std::move(rows),
      [promise](StatusOr<linalg::Matrix> features) {
        promise->set_value(std::move(features));
      });
  if (!queued.ok()) return FailedFuture<linalg::Matrix>(queued);
  return future;
}

std::future<StatusOr<api::EvalResult>> MicroBatcher::SubmitEvaluate(
    std::shared_ptr<const api::Model> model, const std::string& key,
    linalg::Matrix rows, std::vector<int> labels,
    api::EvalOptions options) {
  if (labels.size() != rows.rows()) {
    return FailedFuture<api::EvalResult>(Status::InvalidArgument(
        "labels length " + std::to_string(labels.size()) +
        " does not match " + std::to_string(rows.rows()) + " rows"));
  }
  auto promise =
      std::make_shared<std::promise<StatusOr<api::EvalResult>>>();
  auto future = promise->get_future();
  const Status queued = Enqueue(
      std::move(model), key, std::move(rows),
      [promise, labels = std::move(labels),
       options](StatusOr<linalg::Matrix> features) {
        if (!features.ok()) {
          promise->set_value(features.status());
          return;
        }
        promise->set_value(
            api::EvaluateFeatures(features.value(), labels, options));
      });
  if (!queued.ok()) return FailedFuture<api::EvalResult>(queued);
  return future;
}

void MicroBatcher::Shutdown() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Claim the thread handle under the lock so concurrent Shutdown
    // calls (user + destructor) cannot both join it.
    if (flusher_.joinable()) to_join = std::move(flusher_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

void MicroBatcher::FlusherLoop() {
  const auto queue_wait = std::chrono::microseconds(
      std::max<std::int64_t>(0, config_.max_queue_micros));
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    bool any_pending = !ready_.empty();
    auto next_deadline = Clock::time_point::max();
    for (const auto& [key, queue] : queues_) {
      if (queue.pending.empty()) continue;
      any_pending = true;
      next_deadline = std::min(next_deadline, queue.oldest + queue_wait);
    }
    if (!any_pending) {
      if (stopping_) return;
      cv_.wait(lock);
      continue;
    }

    const auto now = Clock::now();
    // Batches sealed by Enqueue (model hot-swap) flush ahead of the
    // regular queues.
    std::vector<Batch> due = std::move(ready_);
    ready_.clear();
    for (auto it = queues_.begin(); it != queues_.end();) {
      Queue& queue = it->second;
      const bool full = queue.pending_rows >= config_.max_batch_rows;
      if (queue.pending.empty() ||
          (!full && !stopping_ && now < queue.oldest + queue_wait)) {
        ++it;
        continue;
      }
      // Carve off whole requests up to max_batch_rows per batch. The
      // first request always goes in, so one oversized request forms one
      // oversized batch. Anything left over stays queued; the loop
      // re-evaluates immediately, so a backlog drains as a sequence of
      // capped batches rather than one unbounded pass.
      Batch batch;
      batch.model = queue.model;
      batch.full = full;
      std::size_t take = 0;
      while (take < queue.pending.size()) {
        const std::size_t request_rows = queue.pending[take].rows.rows();
        if (take > 0 && batch.rows + request_rows > config_.max_batch_rows) {
          break;
        }
        batch.rows += request_rows;
        ++take;
      }
      batch.requests.assign(
          std::make_move_iterator(queue.pending.begin()),
          std::make_move_iterator(queue.pending.begin() + take));
      queue.pending.erase(queue.pending.begin(),
                          queue.pending.begin() + take);
      queue.pending_rows -= batch.rows;
      due.push_back(std::move(batch));
      if (queue.pending.empty()) {
        // Drop the drained entry: a long-lived server sees many distinct
        // keys, and a lingering Queue would both pin its model shared_ptr
        // (defeating the ModelStore LRU bound) and grow the per-wakeup
        // scan without bound.
        it = queues_.erase(it);
      } else {
        queue.oldest = queue.pending.front().enqueued;
        ++it;
      }
    }
    if (due.empty()) {
      cv_.wait_until(lock, next_deadline);
      continue;
    }

    // Record queue waits and flush accounting while still locked, then
    // run the (possibly slow) batched passes without holding the lock so
    // submitters keep queuing into the next batch.
    for (const Batch& batch : due) {
      batch.full ? ++stats_.full_flushes : ++stats_.deadline_flushes;
      ++stats_.batches;
      stats_.batched_rows += batch.rows;
      for (const Request& request : batch.requests) {
        const double waited =
            std::chrono::duration<double, std::micro>(now -
                                                      request.enqueued)
                .count();
        stats_.total_queue_micros += waited;
        stats_.max_queue_micros = std::max(stats_.max_queue_micros, waited);
        if (config_.record_latencies) latencies_micros_.push_back(waited);
      }
    }
    lock.unlock();
    for (Batch& batch : due) ExecuteBatch(&batch);
    lock.lock();
  }
}

void MicroBatcher::ExecuteBatch(Batch* batch) {
  // A lone request needs no assembly or slicing: its rows *are* the
  // batch, and the result matrix is handed over whole.
  if (batch->requests.size() == 1) {
    Request& request = batch->requests.front();
    request.complete(batch->model->Transform(request.rows));
    return;
  }

  const std::size_t cols = batch->requests.front().rows.cols();
  linalg::Matrix assembled(batch->rows, cols);
  std::size_t offset = 0;
  for (const Request& request : batch->requests) {
    std::memcpy(assembled.data() + offset * cols, request.rows.data(),
                request.rows.size() * sizeof(double));
    offset += request.rows.rows();
  }

  auto features = batch->model->Transform(assembled);
  if (!features.ok()) {
    for (Request& request : batch->requests) {
      request.complete(features.status());
    }
    return;
  }

  // Hand each request its row slice. Rows are independent through every
  // inference kernel, so the slice is bit-identical to a one-at-a-time
  // Transform of the same rows.
  const linalg::Matrix& all = features.value();
  offset = 0;
  for (Request& request : batch->requests) {
    linalg::Matrix slice(request.rows.rows(), all.cols());
    std::memcpy(slice.data(), all.data() + offset * all.cols(),
                slice.size() * sizeof(double));
    offset += request.rows.rows();
    request.complete(std::move(slice));
  }
}

MicroBatcher::Stats MicroBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<double> MicroBatcher::latencies_micros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latencies_micros_;
}

std::size_t MicroBatcher::pending_queues() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queues_.size() + ready_.size();
}

}  // namespace mcirbm::serve
