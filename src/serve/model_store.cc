#include "serve/model_store.h"

#include <algorithm>
#include <utility>

#include "util/timer.h"

namespace mcirbm::serve {

ModelStore::ModelStore(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

void ModelStore::Touch(const std::string& key, Entry* entry) {
  lru_.erase(entry->lru_it);
  lru_.push_front(key);
  entry->lru_it = lru_.begin();
}

void ModelStore::InsertLocked(const std::string& key,
                              std::shared_ptr<const api::Model> model) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.model = std::move(model);
    Touch(key, &it->second);
    return;
  }
  lru_.push_front(key);
  entries_[key] = Entry{std::move(model), lru_.begin()};
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
    registry_->counter("store_evictions_total").Increment();
  }
}

StatusOr<std::shared_ptr<const api::Model>> ModelStore::Get(
    const std::string& key, obs::TraceContext* trace) {
  {
    MutexLock lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      registry_->counter("store_hits_total").Increment();
      Touch(key, &it->second);
      return it->second.model;
    }
    ++stats_.misses;
    registry_->counter("store_misses_total").Increment();
  }
  // Load outside the lock: a slow disk read must not block cache hits.
  // Two threads may race here for the same key; both loads succeed and
  // the re-check below converges everyone on one cached instance.
  const std::int64_t started = MonotonicMicros();
  auto loaded = api::Model::LoadShared(key);
  if (!loaded.ok()) return loaded.status();
  const std::int64_t finished = MonotonicMicros();
  registry_->histogram("store_load_micros", key)
      .Record(static_cast<double>(finished - started));
  if (trace != nullptr) {
    trace->AddSpan("load", started, finished - started, key);
  }
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    Touch(key, &it->second);
    return it->second.model;
  }
  InsertLocked(key, loaded.value());
  return std::move(loaded).value();
}

std::shared_ptr<const api::Model> ModelStore::Put(const std::string& key,
                                                  api::Model model) {
  auto shared = std::make_shared<const api::Model>(std::move(model));
  MutexLock lock(mu_);
  InsertLocked(key, shared);
  return shared;
}

Status ModelStore::Reload(const std::string& key, obs::TraceContext* trace) {
  const std::int64_t started = MonotonicMicros();
  auto loaded = api::Model::LoadShared(key);
  if (!loaded.ok()) return loaded.status();
  const std::int64_t finished = MonotonicMicros();
  registry_->histogram("store_reload_micros", key)
      .Record(static_cast<double>(finished - started));
  if (trace != nullptr) {
    trace->AddSpan("reload", started, finished - started, key);
  }
  MutexLock lock(mu_);
  InsertLocked(key, std::move(loaded).value());
  ++stats_.reloads;
  registry_->counter("store_reloads_total").Increment();
  return Status::Ok();
}

bool ModelStore::Evict(const std::string& key) {
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  return true;
}

std::size_t ModelStore::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

ModelStore::Stats ModelStore::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace mcirbm::serve
