#include "serve/server.h"

#include <utility>

namespace mcirbm::serve {

namespace {

template <typename T>
std::future<StatusOr<T>> FailedFuture(Status status) {
  std::promise<StatusOr<T>> promise;
  promise.set_value(std::move(status));
  return promise.get_future();
}

}  // namespace

Server::Server(const ServerConfig& config)
    : store_(std::make_shared<ModelStore>(config.store_capacity)),
      batcher_(config.batcher) {}

Server::Server(const BatcherConfig& batcher,
               std::shared_ptr<ModelStore> store)
    : store_(std::move(store)), batcher_(batcher) {}

Server::~Server() { Shutdown(); }

std::future<StatusOr<linalg::Matrix>> Server::Submit(
    const std::string& model_key, linalg::Matrix rows,
    std::shared_ptr<obs::TraceContext> trace) {
  auto model = store_->Get(model_key, trace.get());
  if (!model.ok()) return FailedFuture<linalg::Matrix>(model.status());
  return batcher_.SubmitTransform(std::move(model).value(), model_key,
                                  std::move(rows), std::move(trace));
}

std::future<StatusOr<api::EvalResult>> Server::SubmitEvaluate(
    const std::string& model_key, linalg::Matrix rows,
    std::vector<int> labels, api::EvalOptions options,
    std::shared_ptr<obs::TraceContext> trace) {
  auto model = store_->Get(model_key, trace.get());
  if (!model.ok()) return FailedFuture<api::EvalResult>(model.status());
  return batcher_.SubmitEvaluate(std::move(model).value(), model_key,
                                 std::move(rows), std::move(labels),
                                 options, std::move(trace));
}

Status Server::Reload(const std::string& model_key,
                      obs::TraceContext* trace) {
  return store_->Reload(model_key, trace);
}

void Server::Shutdown() { batcher_.Shutdown(); }

Server::Stats Server::stats() const {
  return Stats{batcher_.stats(), store_->stats()};
}

}  // namespace mcirbm::serve
