// Umbrella header for the mcirbm serving layer.
//
// src/serve turns the one-shot api facade into a long-lived inference
// service:
//
//   - serve::ModelStore — LRU cache of shared, immutable api::Model
//     artifacts with hot-reload (serve/model_store.h);
//   - serve::MicroBatcher — per-model request coalescing into batched
//     matrix passes on the global parallel::ThreadPool, bit-identical to
//     one-at-a-time calls (serve/micro_batcher.h);
//   - serve::Server — the client-facing facade: Submit/SubmitEvaluate
//     futures, hot reload, serving stats (serve/server.h);
//   - serve::Router — N Server replicas behind key-hash or load-aware
//     routing with one shared ModelStore and fail-fast admission
//     control (serve/router.h);
//   - serve::ParseRequestLine — the serve request-line format, including
//     the op=stats / op=trace observability probes, op=reload hot-swaps,
//     and the pipelining id= tag (serve/request.h);
//   - serve::RequestExecutor — executes parsed requests against a Router
//     and formats responses; the piece shared by the CLI's file/stdin
//     loop and the src/net TCP transport (serve/executor.h).
//
// Every component records into the src/obs metrics layer (latency
// histograms, queue gauges, counters); Router::RenderStatsText() is the
// merged Prometheus-style view. With trace sampling on (obs/trace.h,
// `--trace-sample N`) every stage also contributes per-request spans —
// parse/load/queue/exec/format (+ the transport's flush) — surfaced via
// op=trace, the --stats-port endpoint, and a JSONL stream.
//
// Everything fallible reports through Status/StatusOr; a shut-down or
// overloaded service rejects work with StatusCode::kUnavailable.
#ifndef MCIRBM_SERVE_SERVE_H_
#define MCIRBM_SERVE_SERVE_H_

#include "serve/executor.h"
#include "serve/micro_batcher.h"
#include "serve/model_store.h"
#include "serve/request.h"
#include "serve/router.h"
#include "serve/server.h"

#endif  // MCIRBM_SERVE_SERVE_H_
