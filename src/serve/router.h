// serve::Router — replica sharding with admission control for the
// serving layer.
//
// A Router owns N serve::Server replicas (each with its own MicroBatcher
// and flusher thread — the unit worth replicating on a multi-socket box)
// behind a deterministic key-hash: every model key maps to exactly one
// replica, so one model's requests always coalesce in one batcher and
// the routed output is bit-identical to a single Server handling the
// same stream (pinned by tests/serve/router_test.cc at 1/2/4 replicas).
// All replicas resolve keys through ONE shared ModelStore — an artifact
// loaded (or Put) once serves every replica, and Reload swaps it for all
// of them atomically.
//
//   serve::RouterConfig config;
//   config.replicas = 4;
//   config.batcher.max_pending_rows = 256;   // per-queue bound
//   config.max_inflight_requests = 4096;     // global bound
//   serve::Router router(config);
//   auto features = router.Submit("encoder.mcirbm", row);   // future
//
// Admission control is fail-fast at both granularities: a submission
// that would push a model's queue past max_pending_rows, or the whole
// router past max_inflight_requests, resolves its future immediately
// with StatusCode::kUnavailable (counted in stats as rejected_requests).
// Overflow never blocks the caller and never drops a request silently.
#ifndef MCIRBM_SERVE_ROUTER_H_
#define MCIRBM_SERVE_ROUTER_H_

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "api/model.h"
#include "linalg/matrix.h"
#include "serve/micro_batcher.h"
#include "serve/model_store.h"
#include "serve/server.h"
#include "util/status.h"

namespace mcirbm::serve {

/// Replica-sharded serving knobs.
struct RouterConfig {
  /// Server replicas behind the key-hash (clamped to >= 1).
  std::size_t replicas = 1;
  /// Global admission bound: submissions beyond this many unresolved
  /// futures (across all replicas) are rejected with kUnavailable.
  /// 0 = unbounded.
  std::uint64_t max_inflight_requests = 0;
  /// Per-replica batching policy. max_pending_rows bounds each model
  /// queue; the admission field is overwritten by the router's shared
  /// controller.
  BatcherConfig batcher;
  /// Capacity of the single ModelStore shared by every replica.
  std::size_t store_capacity = 8;
};

/// N Servers behind a deterministic key-hash with one shared ModelStore.
class Router {
 public:
  explicit Router(const RouterConfig& config = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Routes `rows` to `model_key`'s replica for a batched Transform.
  /// Identical semantics (and bit-identical results) to Server::Submit;
  /// overflow, unknown models, shape mismatches, and post-Shutdown
  /// submissions resolve the future immediately with a non-OK Status.
  std::future<StatusOr<linalg::Matrix>> Submit(const std::string& model_key,
                                               linalg::Matrix rows);

  /// Routes `rows` to `model_key`'s replica for a batched Transform,
  /// then clusters and scores against `labels` like Model::Evaluate.
  std::future<StatusOr<api::EvalResult>> SubmitEvaluate(
      const std::string& model_key, linalg::Matrix rows,
      std::vector<int> labels, api::EvalOptions options = {});

  /// Hot-swaps `model_key` from disk in the shared store: one swap is
  /// seen by every replica. In-flight batches finish on the old instance.
  Status Reload(const std::string& model_key);

  /// The model cache shared by all replicas (pre-loading, in-memory Put).
  ModelStore& store() { return *store_; }

  /// Deterministic replica index for `key` (exposed for tests and
  /// capacity planning): FNV-1a over the key, mod replicas().
  std::size_t ReplicaFor(const std::string& key) const;

  std::size_t replicas() const { return servers_.size(); }

  /// Unresolved futures currently admitted (0 when unbounded — the
  /// gauge is only maintained when max_inflight_requests is set).
  std::uint64_t inflight_requests() const;

  /// Flushes every replica's pending requests and stops serving;
  /// idempotent. Later submissions fail with kUnavailable.
  void Shutdown();

  /// Aggregated serving counters: the field-wise sum of every replica's
  /// batcher stats (max for max_queue_micros) plus the shared store's
  /// counters. `batcher.rejected_requests` counts all backpressure
  /// rejections, both per-queue and global.
  struct Stats {
    MicroBatcher::Stats batcher;
    ModelStore::Stats store;
    std::vector<MicroBatcher::Stats> per_replica;
  };
  Stats stats() const;

  /// Concatenated per-request queue latencies from every replica, when
  /// BatcherConfig::record_latencies is set (bench support).
  std::vector<double> latencies_micros() const;

 private:
  std::shared_ptr<ModelStore> store_;
  std::shared_ptr<AdmissionController> admission_;
  std::vector<std::unique_ptr<Server>> servers_;
};

}  // namespace mcirbm::serve

#endif  // MCIRBM_SERVE_ROUTER_H_
