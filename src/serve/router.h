// serve::Router — replica sharding with admission control for the
// serving layer.
//
// A Router owns N serve::Server replicas (each with its own MicroBatcher
// and flusher thread — the unit worth replicating on a multi-socket box)
// behind a deterministic key-hash: every model key maps to exactly one
// replica, so one model's requests always coalesce in one batcher and
// the routed output is bit-identical to a single Server handling the
// same stream (pinned by tests/serve/router_test.cc at 1/2/4 replicas).
// All replicas resolve keys through ONE shared ModelStore — an artifact
// loaded (or Put) once serves every replica, and Reload swaps it for all
// of them atomically.
//
//   serve::RouterConfig config;
//   config.replicas = 4;
//   config.batcher.max_pending_rows = 256;   // per-queue bound
//   config.max_inflight_requests = 4096;     // global bound
//   serve::Router router(config);
//   auto features = router.Submit("encoder.mcirbm", row);   // future
//
// Admission control is fail-fast at both granularities: a submission
// that would push a model's queue past max_pending_rows, or the whole
// router past max_inflight_requests, resolves its future immediately
// with StatusCode::kUnavailable (counted in stats as rejected_requests).
// Overflow never blocks the caller and never drops a request silently.
//
// Routing is pluggable (RouterConfig::routing): kKeyHash binds each key
// to its hash replica forever; kLeastLoaded sends an idle key to the
// replica with the smallest pending-rows load, while keys with requests
// still coalescing or executing stay pinned to their replica so one
// model's traffic keeps batching together. Either way, per-key results
// are bit-identical (pinned by tests/serve/router_test.cc).
//
// Observability: metrics_snapshot() merges every replica's
// obs::Registry with the shared store's into one view; RenderStatsText()
// is the text form served by `op=stats` and `--stats-every`.
#ifndef MCIRBM_SERVE_ROUTER_H_
#define MCIRBM_SERVE_ROUTER_H_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/model.h"
#include "linalg/matrix.h"
#include "obs/registry.h"
#include "serve/micro_batcher.h"
#include "serve/model_store.h"
#include "serve/server.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace mcirbm::serve {

/// How the Router picks a replica for a model key.
enum class RoutingMode {
  /// Deterministic FNV-1a hash of the key, mod replica count. A key is
  /// permanently bound to one replica regardless of load.
  kKeyHash,
  /// The replica with the smallest pending-rows load at submit time —
  /// except for keys with requests still coalescing or executing on a
  /// replica, which stay pinned there so one model's requests keep
  /// batching together. Per-key results are bit-identical to kKeyHash
  /// (every inference is row-independent and all replicas share one
  /// store); only the queueing changes.
  kLeastLoaded,
};

/// Replica-sharded serving knobs.
struct RouterConfig {
  /// Server replicas behind the key-hash (clamped to >= 1).
  std::size_t replicas = 1;
  /// Replica selection policy; see RoutingMode.
  RoutingMode routing = RoutingMode::kKeyHash;
  /// Global admission bound: submissions beyond this many unresolved
  /// futures (across all replicas) are rejected with kUnavailable.
  /// 0 = unbounded.
  std::uint64_t max_inflight_requests = 0;
  /// Per-replica batching policy. max_pending_rows bounds each model
  /// queue; the admission field is overwritten by the router's shared
  /// controller.
  BatcherConfig batcher;
  /// Capacity of the single ModelStore shared by every replica.
  std::size_t store_capacity = 8;
};

/// N Servers behind a deterministic key-hash with one shared ModelStore.
class Router {
 public:
  explicit Router(const RouterConfig& config = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Routes `rows` to `model_key`'s replica for a batched Transform.
  /// Identical semantics (and bit-identical results) to Server::Submit;
  /// overflow, unknown models, shape mismatches, and post-Shutdown
  /// submissions resolve the future immediately with a non-OK Status.
  /// A non-null `trace` collects load/queue/exec spans (obs/trace.h).
  std::future<StatusOr<linalg::Matrix>> Submit(
      const std::string& model_key, linalg::Matrix rows,
      std::shared_ptr<obs::TraceContext> trace = {});

  /// Routes `rows` to `model_key`'s replica for a batched Transform,
  /// then clusters and scores against `labels` like Model::Evaluate.
  std::future<StatusOr<api::EvalResult>> SubmitEvaluate(
      const std::string& model_key, linalg::Matrix rows,
      std::vector<int> labels, api::EvalOptions options = {},
      std::shared_ptr<obs::TraceContext> trace = {});

  /// Hot-swaps `model_key` from disk in the shared store: one swap is
  /// seen by every replica. In-flight batches finish on the old instance.
  /// A non-null `trace` receives a "reload" span for the disk read.
  Status Reload(const std::string& model_key,
                obs::TraceContext* trace = nullptr);

  /// The model cache shared by all replicas (pre-loading, in-memory Put).
  ModelStore& store() { return *store_; }

  /// Deterministic replica index for `key` (exposed for tests and
  /// capacity planning): FNV-1a over the key, mod replicas(). This is
  /// the kKeyHash policy; under kLeastLoaded it is only the tiebreak.
  std::size_t ReplicaFor(const std::string& key) const;

  /// The replica the next submission for `key` would land on under the
  /// configured routing mode (for kLeastLoaded this consults live load
  /// and updates the pin table exactly like Submit).
  std::size_t RouteFor(const std::string& key);

  std::size_t replicas() const { return servers_.size(); }

  /// Unresolved futures currently admitted (0 when unbounded — the
  /// gauge is only maintained when max_inflight_requests is set).
  std::uint64_t inflight_requests() const;

  /// Flushes every replica's pending requests and stops serving;
  /// idempotent. Later submissions fail with kUnavailable.
  void Shutdown();

  /// Aggregated serving counters: the field-wise sum of every replica's
  /// batcher stats plus the shared store's counters.
  /// `batcher.rejected_requests` counts all backpressure rejections,
  /// both per-queue and global.
  ///
  /// Merge semantics (pinned by tests/serve/router_test.cc): counters
  /// and summed totals (total_queue_micros included) ADD across
  /// replicas; max_queue_micros takes the MAX, because the max over the
  /// union of all requests is the max of the per-replica maxes. The
  /// aggregate MeanQueueMicros() therefore comes out of summed totals —
  /// averaging per-replica means would be wrong whenever replicas serve
  /// unequal traffic.
  struct Stats {
    MicroBatcher::Stats batcher;
    ModelStore::Stats store;
    std::vector<MicroBatcher::Stats> per_replica;
  };
  Stats stats() const;

  /// Merged observability snapshot: every replica's registry (queue-wait
  /// / batch-exec histograms merge bucket-wise, counters and gauges sum)
  /// plus the shared store's registry folded in exactly once, plus the
  /// router-level serve_replicas / serve_inflight_requests gauges.
  obs::MetricsSnapshot metrics_snapshot() const;

  /// metrics_snapshot() rendered as Prometheus-style text — the payload
  /// of the `op=stats` serve request and `--stats-every` emission.
  std::string RenderStatsText() const {
    return metrics_snapshot().RenderText();
  }

  /// Concatenated per-request queue latencies from every replica, when
  /// BatcherConfig::record_latencies is set (bench support).
  std::vector<double> latencies_micros() const;

 private:
  /// Applies the routing policy; under kLeastLoaded takes routing_mu_
  /// and maintains the key-pin table.
  std::size_t PickReplica(const std::string& key);

  RoutingMode routing_ = RoutingMode::kKeyHash;
  std::shared_ptr<ModelStore> store_;
  std::shared_ptr<AdmissionController> admission_;
  std::vector<std::unique_ptr<Server>> servers_;
  // kLeastLoaded state: the replica each recently routed key went to.
  // An entry is authoritative while the key still has load on that
  // replica (pinned); stale entries are re-resolved on next use and
  // swept once the table outgrows kMaxIdleAssignments.
  Mutex routing_mu_;
  std::map<std::string, std::size_t> assignments_
      MCIRBM_GUARDED_BY(routing_mu_);
};

}  // namespace mcirbm::serve

#endif  // MCIRBM_SERVE_ROUTER_H_
