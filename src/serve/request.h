// The serve request line format, shared by `mcirbm_cli serve` file/stdin
// streams and the net::LineServer TCP transport.
//
// Protocol grammar (one request per line; '#' lines and blank lines are
// skipped by every driver):
//
//   request   = pair *( WSP pair ) LF
//   pair      = key "=" value
//   key       = 1*( ALPHA | DIGIT | "_" | "-" )       ; no '=' or WSP
//   value     = bare / quoted
//   bare      = *( any octet except WSP )
//   quoted    = DQUOTE *( any octet except DQUOTE ) DQUOTE
//   response  = ( "ok" [ " id=" id ] " op=" op *( " " pair ) /
//                 "error" [ " id=" id ] [ " " context ] " " status ) LF
//
// A quoted value carries spaces (`data="my file.csv"`); the quotes are
// stripped verbatim — no escape sequences. An unterminated quote fails
// the line. `seed` accepts the full unsigned 64-bit range.
//
// Examples:
//
//   op=transform model=enc.mcirbm data=ds.csv chunk=1 out=features.csv
//   op=evaluate  model=enc.mcirbm data=ds.csv clusterer=kmeans k=3 seed=7
//   op=stats id=probe-7
//   op=trace last=8
//   op=reload model=enc.mcirbm
//
// `op=stats` takes no keys other than `id` (any are rejected): it asks
// the serve loop for the live observability snapshot — the Router's
// merged obs::Registry rendered as Prometheus-style `name{model="k"}
// value` lines, inline in the response stream. Its ok line carries
// `metrics=<n>`, the number of snapshot lines that follow it, so a
// pipelined client knows how much of the stream belongs to the response.
//
// `op=trace` takes only `id` and `last=N` (default 16): it returns the
// most recent min(N, buffered) completed request traces when the server
// runs with trace sampling on (`--trace-sample`). Its ok line carries
// `traces=<t> lines=<n>`; the `n` payload lines that follow are one
// header line per trace plus one line per span (obs/trace.h). Without
// sampling configured the request fails (there is nothing to report).
//
// `op=reload` takes only `id` and `model=<key>`: it hot-swaps the model
// artifact from disk through the shared ModelStore (requests already
// queued finish on the instance they were submitted against). The ok
// line echoes `model=` back.
//
// Pipelining (`id=`): every op accepts an opaque non-empty `id` value,
// echoed verbatim as the first key of the matching ok/error response
// line. Over a TCP connection, id-tagged requests may be executed
// concurrently and their responses interleave in completion order;
// requests WITHOUT an id are answered in strict per-connection FIFO
// order. Two id-tagged requests with the same id may not be in flight on
// one connection at the same time (the second is rejected); once a
// response is written its id may be reused. The file/stdin serve loop is
// sequential, so ids there only echo.
//
// Keys:
//   op         transform | evaluate | stats | trace | reload  (required)
//   id         opaque non-empty response-matching tag (optional; any op)
//   model      model artifact path — the ModelStore key    (required
//              unless op=stats|trace)
//   data       dataset CSV (trailing integer label column) (required
//              unless op=stats|trace|reload)
//   last       trace count for op=trace (default 16, must be >= 1)
//   transform  none | standardize | minmax | binarize (default none)
//   chunk      rows per submitted micro-request for op=transform
//              (default 1: each row is its own request, the micro-batcher
//              re-coalesces them)
//   clusterer  ClustererRegistry name for op=evaluate (default kmeans)
//   k          cluster count for op=evaluate (default 0: label count)
//   seed       clusterer seed for op=evaluate (default 7)
//   out        write the transformed features (+labels) CSV here
//
// Unknown keys, malformed values, and missing required keys are rejected
// with a non-OK Status naming the problem, never an abort.
#ifndef MCIRBM_SERVE_REQUEST_H_
#define MCIRBM_SERVE_REQUEST_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace mcirbm::serve {

/// One parsed `mcirbm_cli serve` request line.
struct Request {
  std::string op;         ///< transform|evaluate|stats|trace|reload
  std::string id;         ///< opaque response-matching tag ("" = none)
  std::string model;      ///< model artifact path (ModelStore key)
  std::string data;       ///< dataset CSV path
  std::string transform = "none";  ///< preprocessing applied to the CSV
  std::size_t chunk = 1;  ///< rows per submitted request (transform op)
  std::string clusterer = "kmeans";
  int k = 0;
  std::uint64_t seed = 7;
  std::string out;        ///< optional output CSV (transform op)
  std::size_t last = 16;  ///< recent-trace count (trace op)
};

/// Parses one request line. The line must contain at least one key=value
/// token; comments/blank lines are the caller's concern.
StatusOr<Request> ParseRequestLine(const std::string& line);

}  // namespace mcirbm::serve

#endif  // MCIRBM_SERVE_REQUEST_H_
