// The `mcirbm_cli serve` request line format.
//
// One request per line, whitespace-separated key=value pairs (the same
// key=value vocabulary idiom as api::ParseConfig; '#' lines and blank
// lines are skipped by the driver):
//
//   op=transform model=enc.mcirbm data=ds.csv chunk=1 out=features.csv
//   op=evaluate  model=enc.mcirbm data=ds.csv clusterer=kmeans k=3 seed=7
//   op=stats
//
// A value may be double-quoted to carry spaces (`data="my file.csv"`);
// the quotes are stripped verbatim — no escape sequences. An
// unterminated quote fails the line. `seed` accepts the full unsigned
// 64-bit range.
//
// `op=stats` takes no other keys (any are rejected): it asks the serve
// loop for the live observability snapshot — the Router's merged
// obs::Registry rendered as Prometheus-style `name{model="k"} value`
// lines, inline in the response stream.
//
// Keys:
//   op         transform | evaluate | stats                (required)
//   model      model artifact path — the ModelStore key    (required
//              unless op=stats)
//   data       dataset CSV (trailing integer label column) (required
//              unless op=stats)
//   transform  none | standardize | minmax | binarize (default none)
//   chunk      rows per submitted micro-request for op=transform
//              (default 1: each row is its own request, the micro-batcher
//              re-coalesces them)
//   clusterer  ClustererRegistry name for op=evaluate (default kmeans)
//   k          cluster count for op=evaluate (default 0: label count)
//   seed       clusterer seed for op=evaluate (default 7)
//   out        write the transformed features (+labels) CSV here
//
// Unknown keys, malformed values, and missing required keys are rejected
// with a non-OK Status naming the problem, never an abort.
#ifndef MCIRBM_SERVE_REQUEST_H_
#define MCIRBM_SERVE_REQUEST_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace mcirbm::serve {

/// One parsed `mcirbm_cli serve` request line.
struct Request {
  std::string op;         ///< "transform", "evaluate", or "stats"
  std::string model;      ///< model artifact path (ModelStore key)
  std::string data;       ///< dataset CSV path
  std::string transform = "none";  ///< preprocessing applied to the CSV
  std::size_t chunk = 1;  ///< rows per submitted request (transform op)
  std::string clusterer = "kmeans";
  int k = 0;
  std::uint64_t seed = 7;
  std::string out;        ///< optional output CSV (transform op)
};

/// Parses one request line. The line must contain at least one key=value
/// token; comments/blank lines are the caller's concern.
StatusOr<Request> ParseRequestLine(const std::string& line);

}  // namespace mcirbm::serve

#endif  // MCIRBM_SERVE_REQUEST_H_
