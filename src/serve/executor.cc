#include "serve/executor.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <sstream>
#include <thread>
#include <utility>

#include "data/io.h"
#include "data/loaders.h"
#include "data/transforms.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace mcirbm::serve {

namespace {

// Client-side backpressure policy: a submission rejected with
// kUnavailable (queue or inflight overflow) is retried after the oldest
// outstanding future drains — the natural response to admission control;
// the pressure clears as resolved futures release their slots. The retry
// cap turns a logic error (e.g. a bound no single request can ever fit
// under) into a failed request instead of a hung driver.
constexpr int kMaxOverflowRetries = 100000;
constexpr std::chrono::microseconds kOverflowBackoff(100);

// "ok id=X op=..." / "error id=X ..." — the id echo is always the first
// key after the status word so a pipelined client can match responses
// with one token scan.
void AppendIdEcho(std::ostringstream* out, const std::string& id) {
  if (!id.empty()) *out << " id=" << id;
}

}  // namespace

RequestExecutor::RequestExecutor(Router* router, const ExecutorConfig& config)
    : router_(router),
      datasets_(std::max<std::size_t>(1, config.dataset_cache_capacity)),
      trace_store_(config.trace_store) {}

std::shared_ptr<obs::TraceContext> RequestExecutor::StartTrace(
    const Request& request, std::int64_t start_micros) {
  if (trace_store_ == nullptr) return nullptr;
  return trace_store_->MaybeStartTrace(request.op, request.id, start_micros);
}

void RequestExecutor::FinishTrace(
    const std::shared_ptr<obs::TraceContext>& trace) {
  if (trace_store_ == nullptr || trace == nullptr) return;
  trace_store_->Finish(trace, MonotonicMicros());
}

void RequestExecutor::AddStatsRegistry(const obs::Registry* registry) {
  extra_registries_.push_back(registry);
}

StatusOr<std::shared_ptr<const data::Dataset>>
RequestExecutor::DatasetCache::Get(const std::string& path,
                                   const std::string& transform) {
  const std::string key = transform + "|" + path;
  {
    MutexLock lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  // Load and preprocess outside the lock so a slow disk read does not
  // serialize every concurrent handler; two racing misses both load and
  // the second insert wins (both copies are identical and immutable).
  // `path` is a loader spec, so serving accepts every registered dataset
  // format (csv, binary, libsvm, synth) through one cache.
  auto loaded = data::LoadDataset(path);
  if (!loaded.ok()) return loaded.status();
  data::Dataset ds = std::move(loaded).value();
  if (transform == "standardize") {
    data::StandardizeInPlace(&ds.x);
  } else if (transform == "minmax") {
    data::MinMaxScaleInPlace(&ds.x);
  } else if (transform == "binarize") {
    data::MinMaxScaleInPlace(&ds.x);
    data::BinarizeAtColumnMeanInPlace(&ds.x);
  }
  auto shared = std::make_shared<const data::Dataset>(std::move(ds));
  MutexLock lock(mu_);
  while (cache_.size() >= capacity_) {
    cache_.erase(order_.front());
    order_.pop_front();
  }
  order_.push_back(key);
  cache_[key] = shared;
  return shared;
}

StatusOr<std::string> RequestExecutor::ExecuteTransform(
    const Request& request, const data::Dataset& ds,
    const std::shared_ptr<obs::TraceContext>& trace) {
  const std::size_t rows = ds.x.rows();
  const std::size_t cols = ds.x.cols();
  const std::size_t num_chunks = (rows + request.chunk - 1) / request.chunk;
  std::vector<linalg::Matrix> parts(num_chunks);
  // Chunks accepted but not yet resolved, oldest first.
  std::deque<std::pair<std::size_t, std::future<StatusOr<linalg::Matrix>>>>
      outstanding;
  auto resolve_oldest = [&]() -> Status {
    auto [index, future] = std::move(outstanding.front());
    outstanding.pop_front();
    auto part = future.get();
    if (!part.ok()) return part.status();
    parts[index] = std::move(part).value();
    return Status::Ok();
  };

  int retries = 0;
  std::size_t chunk_index = 0;
  for (std::size_t begin = 0; begin < rows;
       begin += request.chunk, ++chunk_index) {
    const std::size_t end = std::min(begin + request.chunk, rows);
    for (;;) {
      linalg::Matrix slice(end - begin, cols);
      std::copy_n(ds.x.data() + begin * cols, slice.size(), slice.data());
      // Only the first chunk carries the trace: later chunks queue and
      // execute concurrently with it, and overlapping spans would break
      // the sum-of-spans <= end-to-end accounting the timeline promises.
      auto future = router_->Submit(request.model, std::move(slice),
                                    chunk_index == 0 ? trace : nullptr);
      if (future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        outstanding.emplace_back(chunk_index, std::move(future));
        break;
      }
      // Already resolved: either a fast completion, a rejection to retry,
      // or a real error.
      auto result = future.get();
      if (result.ok()) {
        parts[chunk_index] = std::move(result).value();
        break;
      }
      if (result.status().code() != StatusCode::kUnavailable ||
          ++retries > kMaxOverflowRetries) {
        return result.status();
      }
      if (outstanding.empty()) {
        std::this_thread::sleep_for(kOverflowBackoff);
      } else {
        const Status drained = resolve_oldest();
        if (!drained.ok()) return drained;
      }
    }
  }
  while (!outstanding.empty()) {
    const Status drained = resolve_oldest();
    if (!drained.ok()) return drained;
  }

  const std::int64_t format_start = MonotonicMicros();
  linalg::Matrix features;
  std::size_t offset = 0;
  for (linalg::Matrix& part : parts) {
    if (features.empty()) features.Resize(rows, part.cols());
    std::copy_n(part.data(), part.size(),
                features.data() + offset * features.cols());
    offset += part.rows();
  }
  const std::size_t feature_rows = features.rows();
  std::ostringstream response;
  response << "ok";
  AppendIdEcho(&response, request.id);
  response << " op=transform model=" << request.model
           << " data=" << request.data << " rows=" << features.rows()
           << " cols=" << features.cols() << " requests=" << num_chunks
           << " retries=" << retries
           << " sum=" << FormatDouble(features.Sum(), 6) << "\n";
  if (!request.out.empty()) {
    data::Dataset out_ds = ds;
    out_ds.x = std::move(features);
    out_ds.name = ds.name + ":hidden";
    const Status saved = data::SaveDatasetCsv(out_ds, request.out);
    if (!saved.ok()) return saved;
  }
  if (trace != nullptr) {
    trace->AddSpan("format", format_start, MonotonicMicros() - format_start,
                   request.model, feature_rows);
  }
  return response.str();
}

StatusOr<std::string> RequestExecutor::ExecuteEvaluate(
    const Request& request, const data::Dataset& ds,
    const std::shared_ptr<obs::TraceContext>& trace) {
  api::EvalOptions options;
  options.clusterer = request.clusterer;
  options.k = request.k;
  options.seed = request.seed;
  StatusOr<api::EvalResult> result = Status::Unavailable("not submitted");
  for (int retries = 0;; ++retries) {
    // A rejected submission never enqueues, so re-passing the trace on a
    // retry cannot double-record queue spans.
    result = router_->SubmitEvaluate(request.model, ds.x, ds.labels, options,
                                     trace)
                 .get();
    if (result.ok() ||
        result.status().code() != StatusCode::kUnavailable ||
        retries >= kMaxOverflowRetries) {
      break;
    }
    std::this_thread::sleep_for(kOverflowBackoff);
  }
  if (!result.ok()) return result.status();
  const std::int64_t format_start = MonotonicMicros();
  const metrics::MetricBundle& m = result.value().metrics;
  std::ostringstream response;
  response << "ok";
  AppendIdEcho(&response, request.id);
  response << " op=evaluate model=" << request.model
           << " data=" << request.data
           << " clusterer=" << request.clusterer
           << " clusters=" << result.value().clusters_found
           << " accuracy=" << FormatDouble(m.accuracy, 4)
           << " purity=" << FormatDouble(m.purity, 4)
           << " rand=" << FormatDouble(m.rand_index, 4)
           << " fmi=" << FormatDouble(m.fmi, 4)
           << " ari=" << FormatDouble(m.ari, 4)
           << " nmi=" << FormatDouble(m.nmi, 4) << "\n";
  if (trace != nullptr) {
    trace->AddSpan("format", format_start, MonotonicMicros() - format_start,
                   request.model, ds.x.rows());
  }
  return response.str();
}

std::string RequestExecutor::ExecuteStats(const Request& request) {
  // The ok line carries the metric-line count so a client knows how much
  // of the stream belongs to this response.
  const std::string rendered = RenderStatsText();
  const long metric_lines =
      std::count(rendered.begin(), rendered.end(), '\n');
  std::ostringstream response;
  response << "ok";
  AppendIdEcho(&response, request.id);
  response << " op=stats metrics=" << metric_lines << "\n" << rendered;
  return response.str();
}

std::string RequestExecutor::ExecuteTrace(const Request& request,
                                          const std::string& context,
                                          bool* ok_out) {
  if (trace_store_ == nullptr || !trace_store_->enabled()) {
    if (ok_out != nullptr) *ok_out = false;
    return FormatError(
        Status::Unavailable(
            "tracing is not enabled (start serve with --trace-sample N)"),
        request.id, context);
  }
  const std::vector<obs::Trace> recent = trace_store_->Recent(request.last);
  const std::string rendered = obs::TraceStore::RenderTracesText(recent);
  const long payload_lines =
      std::count(rendered.begin(), rendered.end(), '\n');
  std::ostringstream response;
  response << "ok";
  AppendIdEcho(&response, request.id);
  response << " op=trace traces=" << recent.size()
           << " lines=" << payload_lines << "\n" << rendered;
  return response.str();
}

StatusOr<std::string> RequestExecutor::ExecuteReload(
    const Request& request, obs::TraceContext* trace) {
  const Status reloaded = router_->Reload(request.model, trace);
  if (!reloaded.ok()) return reloaded;
  std::ostringstream response;
  response << "ok";
  AppendIdEcho(&response, request.id);
  response << " op=reload model=" << request.model << "\n";
  return response.str();
}

std::string RequestExecutor::Execute(
    const Request& request, const std::string& context, bool* ok_out,
    const std::shared_ptr<obs::TraceContext>& trace) {
  if (ok_out != nullptr) *ok_out = true;
  if (request.op == "stats") return ExecuteStats(request);
  if (request.op == "trace") return ExecuteTrace(request, context, ok_out);

  Status status = Status::Ok();
  StatusOr<std::string> response = Status::Internal("not executed");
  if (request.op == "reload") {
    response = ExecuteReload(request, trace.get());
    status = response.status();
  } else {
    const std::int64_t parse_start = MonotonicMicros();
    auto dataset = datasets_.Get(request.data, request.transform);
    if (dataset.ok() && trace != nullptr) {
      trace->AddSpan("parse", parse_start, MonotonicMicros() - parse_start,
                     request.data, dataset.value()->x.rows());
    }
    // Resolve the model once up front: a bad path fails the request with
    // one disk probe instead of one per submitted chunk. A store miss
    // contributes the trace's "load" span.
    auto model = router_->store().Get(request.model, trace.get());
    if (!dataset.ok()) {
      status = dataset.status();
    } else if (!model.ok()) {
      status = model.status();
    } else {
      response = request.op == "transform"
                     ? ExecuteTransform(request, *dataset.value(), trace)
                     : ExecuteEvaluate(request, *dataset.value(), trace);
      status = response.status();
    }
  }
  if (status.ok()) return std::move(response).value();
  if (ok_out != nullptr) *ok_out = false;
  return FormatError(status, request.id, context);
}

std::string RequestExecutor::FormatError(const Status& status,
                                         const std::string& id,
                                         const std::string& context) {
  std::ostringstream line;
  line << "error";
  AppendIdEcho(&line, id);
  if (!context.empty()) line << ' ' << context;
  line << ' ' << status.ToString() << "\n";
  return line.str();
}

std::string RequestExecutor::RenderStatsText() const {
  obs::MetricsSnapshot snapshot = router_->metrics_snapshot();
  for (const obs::Registry* registry : extra_registries_) {
    snapshot.Merge(registry->snapshot());
  }
  if (trace_store_ != nullptr) {
    snapshot.Merge(trace_store_->registry().snapshot());
  }
  return snapshot.RenderText();
}

std::string RequestExecutor::RenderStatsAndTracesText() const {
  std::string text = RenderStatsText();
  if (trace_store_ == nullptr || !trace_store_->enabled()) return text;
  const obs::TraceStore::Snapshot traces = trace_store_->snapshot();
  std::ostringstream section;
  section << "# traces recent=" << traces.traces.size()
          << " sampled=" << traces.sampled
          << " completed=" << traces.completed
          << " dropped=" << traces.dropped << "\n";
  text += section.str();
  text += obs::TraceStore::RenderTracesText(traces.traces, "# ");
  return text;
}

}  // namespace mcirbm::serve
