#include "serve/router.h"

#include <algorithm>
#include <utility>

namespace mcirbm::serve {

namespace {

/// FNV-1a, chosen over std::hash for a routing function that is
/// deterministic across standard libraries and process runs (std::hash
/// makes no such promise, and replica assignment should be stable for
/// capacity planning).
std::uint64_t Fnv1a(const std::string& key) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Pin-table size that triggers a sweep of idle entries. Generous: the
/// table holds one entry per distinct key seen since the last sweep.
constexpr std::size_t kMaxIdleAssignments = 1024;

}  // namespace

Router::Router(const RouterConfig& config) : routing_(config.routing) {
  store_ = std::make_shared<ModelStore>(config.store_capacity);
  if (config.max_inflight_requests > 0) {
    admission_ =
        std::make_shared<AdmissionController>(config.max_inflight_requests);
  }
  BatcherConfig batcher = config.batcher;
  batcher.admission = admission_;
  const std::size_t replicas = std::max<std::size_t>(1, config.replicas);
  servers_.reserve(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    servers_.push_back(std::make_unique<Server>(batcher, store_));
  }
}

Router::~Router() { Shutdown(); }

std::size_t Router::ReplicaFor(const std::string& key) const {
  return static_cast<std::size_t>(Fnv1a(key) % servers_.size());
}

std::size_t Router::PickReplica(const std::string& key) {
  if (routing_ == RoutingMode::kKeyHash || servers_.size() == 1) {
    return ReplicaFor(key);
  }
  MutexLock lock(routing_mu_);
  // A key with live load (requests queued, sealed, or executing) on its
  // assigned replica is pinned: moving it would split one model's
  // traffic across batchers and defeat coalescing.
  const auto it = assignments_.find(key);
  if (it != assignments_.end() &&
      servers_[it->second]->key_load(key) > 0) {
    return it->second;
  }
  // Idle key: route to the least-loaded replica right now. Ties break
  // toward the key-hash replica (determinism when nothing is loaded),
  // then the lowest index.
  std::size_t best = ReplicaFor(key);
  std::size_t best_load = servers_[best]->load();
  for (std::size_t r = 0; r < servers_.size(); ++r) {
    const std::size_t load = servers_[r]->load();
    if (load < best_load) {
      best = r;
      best_load = load;
    }
  }
  if (assignments_.size() >= kMaxIdleAssignments) {
    // Drop idle pins so the table tracks live keys, not key history.
    for (auto sweep = assignments_.begin(); sweep != assignments_.end();) {
      if (servers_[sweep->second]->key_load(sweep->first) == 0) {
        sweep = assignments_.erase(sweep);
      } else {
        ++sweep;
      }
    }
  }
  assignments_[key] = best;
  return best;
}

std::size_t Router::RouteFor(const std::string& key) {
  return PickReplica(key);
}

std::future<StatusOr<linalg::Matrix>> Router::Submit(
    const std::string& model_key, linalg::Matrix rows,
    std::shared_ptr<obs::TraceContext> trace) {
  return servers_[PickReplica(model_key)]->Submit(model_key, std::move(rows),
                                                  std::move(trace));
}

std::future<StatusOr<api::EvalResult>> Router::SubmitEvaluate(
    const std::string& model_key, linalg::Matrix rows,
    std::vector<int> labels, api::EvalOptions options,
    std::shared_ptr<obs::TraceContext> trace) {
  return servers_[PickReplica(model_key)]->SubmitEvaluate(
      model_key, std::move(rows), std::move(labels), options,
      std::move(trace));
}

Status Router::Reload(const std::string& model_key,
                      obs::TraceContext* trace) {
  return store_->Reload(model_key, trace);
}

std::uint64_t Router::inflight_requests() const {
  return admission_ == nullptr ? 0 : admission_->inflight();
}

void Router::Shutdown() {
  for (const auto& server : servers_) server->Shutdown();
}

Router::Stats Router::stats() const {
  Stats stats;
  stats.store = store_->stats();
  stats.per_replica.reserve(servers_.size());
  for (const auto& server : servers_) {
    const MicroBatcher::Stats replica = server->stats().batcher;
    stats.per_replica.push_back(replica);
    stats.batcher.Add(replica);
  }
  return stats;
}

obs::MetricsSnapshot Router::metrics_snapshot() const {
  obs::MetricsSnapshot merged;
  for (const auto& server : servers_) {
    merged.Merge(server->metrics_snapshot());
  }
  // The store is shared: fold its registry in once, not per replica.
  merged.Merge(store_->metrics_snapshot());
  merged.gauges[{"serve_replicas", ""}] =
      static_cast<double>(servers_.size());
  merged.gauges[{"serve_inflight_requests", ""}] =
      static_cast<double>(inflight_requests());
  return merged;
}

std::vector<double> Router::latencies_micros() const {
  std::vector<double> all;
  for (const auto& server : servers_) {
    const std::vector<double> replica = server->latencies_micros();
    all.insert(all.end(), replica.begin(), replica.end());
  }
  return all;
}

}  // namespace mcirbm::serve
