#include "serve/router.h"

#include <algorithm>
#include <utility>

namespace mcirbm::serve {

namespace {

/// FNV-1a, chosen over std::hash for a routing function that is
/// deterministic across standard libraries and process runs (std::hash
/// makes no such promise, and replica assignment should be stable for
/// capacity planning).
std::uint64_t Fnv1a(const std::string& key) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

Router::Router(const RouterConfig& config)
    : store_(std::make_shared<ModelStore>(config.store_capacity)) {
  if (config.max_inflight_requests > 0) {
    admission_ =
        std::make_shared<AdmissionController>(config.max_inflight_requests);
  }
  BatcherConfig batcher = config.batcher;
  batcher.admission = admission_;
  const std::size_t replicas = std::max<std::size_t>(1, config.replicas);
  servers_.reserve(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    servers_.push_back(std::make_unique<Server>(batcher, store_));
  }
}

Router::~Router() { Shutdown(); }

std::size_t Router::ReplicaFor(const std::string& key) const {
  return static_cast<std::size_t>(Fnv1a(key) % servers_.size());
}

std::future<StatusOr<linalg::Matrix>> Router::Submit(
    const std::string& model_key, linalg::Matrix rows) {
  return servers_[ReplicaFor(model_key)]->Submit(model_key,
                                                 std::move(rows));
}

std::future<StatusOr<api::EvalResult>> Router::SubmitEvaluate(
    const std::string& model_key, linalg::Matrix rows,
    std::vector<int> labels, api::EvalOptions options) {
  return servers_[ReplicaFor(model_key)]->SubmitEvaluate(
      model_key, std::move(rows), std::move(labels), options);
}

Status Router::Reload(const std::string& model_key) {
  return store_->Reload(model_key);
}

std::uint64_t Router::inflight_requests() const {
  return admission_ == nullptr ? 0 : admission_->inflight();
}

void Router::Shutdown() {
  for (const auto& server : servers_) server->Shutdown();
}

Router::Stats Router::stats() const {
  Stats stats;
  stats.store = store_->stats();
  stats.per_replica.reserve(servers_.size());
  for (const auto& server : servers_) {
    const MicroBatcher::Stats replica = server->stats().batcher;
    stats.per_replica.push_back(replica);
    stats.batcher.Add(replica);
  }
  return stats;
}

std::vector<double> Router::latencies_micros() const {
  std::vector<double> all;
  for (const auto& server : servers_) {
    const std::vector<double> replica = server->latencies_micros();
    all.insert(all.end(), replica.begin(), replica.end());
  }
  return all;
}

}  // namespace mcirbm::serve
