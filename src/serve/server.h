// serve::Server — the embeddable inference service.
//
// Ties the serving layer together: a ModelStore resolves model keys to
// shared artifacts, a MicroBatcher coalesces requests into batched passes
// on the global parallel::ThreadPool, and this facade exposes the
// client-facing surface:
//
//   serve::Server server;
//   auto features = server.Submit("encoder.mcirbm", row);       // future
//   auto scored = server.SubmitEvaluate("encoder.mcirbm", rows, labels);
//   ...
//   server.Shutdown();  // flushes pending work; later submits fail
//
// Submissions are safe from any number of client threads. Results are
// bit-identical to calling api::Model::Transform / Evaluate directly —
// micro-batching changes throughput, never outputs. `mcirbm_cli serve`
// drives this class over newline-delimited key=value request files.
#ifndef MCIRBM_SERVE_SERVER_H_
#define MCIRBM_SERVE_SERVER_H_

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "api/model.h"
#include "linalg/matrix.h"
#include "obs/registry.h"
#include "serve/micro_batcher.h"
#include "serve/model_store.h"
#include "util/status.h"

namespace mcirbm::serve {

/// Serving knobs: batching policy plus model-cache capacity.
struct ServerConfig {
  BatcherConfig batcher;
  std::size_t store_capacity = 8;
};

/// Long-lived serving facade over ModelStore + MicroBatcher.
class Server {
 public:
  explicit Server(const ServerConfig& config = {});
  /// Replica form (serve::Router): this server batches independently but
  /// resolves model keys through `store`, shared with its sibling
  /// replicas so an artifact loaded once serves all of them. `store`
  /// must not be null and must outlive the server.
  Server(const BatcherConfig& batcher, std::shared_ptr<ModelStore> store);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Queues `rows` for a batched Transform through the model cached under
  /// `model_key` (loaded from that path on first use). Unknown models,
  /// shape mismatches, and post-Shutdown submissions resolve the future
  /// immediately with a non-OK Status. A non-null `trace` collects
  /// load/queue/exec spans along the way (obs/trace.h).
  std::future<StatusOr<linalg::Matrix>> Submit(
      const std::string& model_key, linalg::Matrix rows,
      std::shared_ptr<obs::TraceContext> trace = {});

  /// Queues `rows` for the batched Transform pass, then clusters and
  /// scores this request's features against `labels`, exactly like
  /// api::Model::Evaluate.
  std::future<StatusOr<api::EvalResult>> SubmitEvaluate(
      const std::string& model_key, linalg::Matrix rows,
      std::vector<int> labels, api::EvalOptions options = {},
      std::shared_ptr<obs::TraceContext> trace = {});

  /// Hot-swaps `model_key` from disk. Requests already queued (and
  /// batches in flight) finish on the instance they were submitted
  /// against; later submissions see the new one.
  Status Reload(const std::string& model_key,
                obs::TraceContext* trace = nullptr);

  /// The model cache, exposed for pre-loading and in-memory Put. Shared
  /// with the other replicas when the server sits behind a Router.
  ModelStore& store() { return *store_; }

  /// Flushes pending requests and stops serving; idempotent.
  void Shutdown();

  /// Serving counters: request/batch totals, mean batch size, and queue
  /// latency, plus the model-cache hit/miss counters.
  struct Stats {
    MicroBatcher::Stats batcher;
    ModelStore::Stats store;
  };
  Stats stats() const;

  /// Per-request queue latencies when ServerConfig::batcher
  /// .record_latencies is set (bench support).
  std::vector<double> latencies_micros() const {
    return batcher_.latencies_micros();
  }

  /// Live load: rows accepted but not yet through their batched pass
  /// (lock-free read — the Router's least-loaded routing signal).
  std::size_t load() const { return batcher_.load(); }

  /// `load()` restricted to one model key; nonzero means the key is
  /// pinned to this replica (requests still coalescing or executing).
  std::size_t key_load(const std::string& key) const {
    return batcher_.key_load(key);
  }

  /// This server's metrics — the batcher's registry snapshot (queue-wait
  /// / batch-exec histograms, queue gauges, request counters). The store
  /// snapshot is NOT folded in here: when replicas share one store, the
  /// aggregator (serve::Router) must add it exactly once.
  obs::MetricsSnapshot metrics_snapshot() const {
    return batcher_.metrics_snapshot();
  }

 private:
  std::shared_ptr<ModelStore> store_;  // possibly shared across replicas
  MicroBatcher batcher_;
};

}  // namespace mcirbm::serve

#endif  // MCIRBM_SERVE_SERVER_H_
