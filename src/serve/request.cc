#include "serve/request.h"

#include <sstream>

#include "util/param_map.h"
#include "util/string_util.h"

namespace mcirbm::serve {

StatusOr<Request> ParseRequestLine(const std::string& line) {
  ParamMap values;
  std::istringstream tokens(line);
  std::string token;
  while (tokens >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::ParseError("expected key=value, got '" + token + "'");
    }
    values.Set(Trim(token.substr(0, eq)), Trim(token.substr(eq + 1)));
  }
  if (values.empty()) {
    return Status::ParseError("empty request line");
  }
  const Status known = values.ExpectOnly({"op", "model", "data", "transform",
                                          "chunk", "clusterer", "k", "seed",
                                          "out"});
  if (!known.ok()) return known;

  Request request;
  MCIRBM_ASSIGN_OR_RETURN(request.op, values.GetString("op", ""));
  if (request.op != "transform" && request.op != "evaluate") {
    return Status::InvalidArgument("op must be transform|evaluate, got '" +
                                   request.op + "'");
  }
  MCIRBM_ASSIGN_OR_RETURN(request.model, values.GetString("model", ""));
  MCIRBM_ASSIGN_OR_RETURN(request.data, values.GetString("data", ""));
  if (request.model.empty() || request.data.empty()) {
    return Status::InvalidArgument(
        "request needs model=<artifact> and data=<csv>");
  }
  MCIRBM_ASSIGN_OR_RETURN(request.transform,
                          values.GetString("transform", "none"));
  if (request.transform != "none" && request.transform != "standardize" &&
      request.transform != "minmax" && request.transform != "binarize") {
    return Status::InvalidArgument(
        "transform must be none|standardize|minmax|binarize, got '" +
        request.transform + "'");
  }
  int chunk = 1;
  MCIRBM_ASSIGN_OR_RETURN(chunk, values.GetInt("chunk", 1));
  if (chunk < 1) {
    return Status::InvalidArgument("chunk must be >= 1");
  }
  request.chunk = static_cast<std::size_t>(chunk);
  MCIRBM_ASSIGN_OR_RETURN(request.clusterer,
                          values.GetString("clusterer", "kmeans"));
  MCIRBM_ASSIGN_OR_RETURN(request.k, values.GetInt("k", 0));
  int seed = 7;
  MCIRBM_ASSIGN_OR_RETURN(seed, values.GetInt("seed", 7));
  if (seed < 0) return Status::InvalidArgument("seed must be >= 0");
  request.seed = static_cast<std::uint64_t>(seed);
  MCIRBM_ASSIGN_OR_RETURN(request.out, values.GetString("out", ""));
  return request;
}

}  // namespace mcirbm::serve
