#include "serve/request.h"

#include <cctype>

#include "util/param_map.h"
#include "util/string_util.h"

namespace mcirbm::serve {

namespace {

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)); }

/// Splits `line` into key=value pairs. A value may be double-quoted
/// (`data="my file.csv"`) to carry spaces; the quotes are stripped and no
/// escape sequences are interpreted. An unterminated quote is an error.
Status Tokenize(const std::string& line, ParamMap* values) {
  std::size_t i = 0;
  while (i < line.size()) {
    if (IsSpace(line[i])) {
      ++i;
      continue;
    }
    // Key: everything up to '=' (quotes have no meaning inside keys).
    std::size_t eq = i;
    while (eq < line.size() && line[eq] != '=' && !IsSpace(line[eq])) ++eq;
    if (eq == line.size() || line[eq] != '=' || eq == i) {
      return Status::ParseError("expected key=value, got '" +
                                line.substr(i, eq - i) + "'");
    }
    const std::string key = line.substr(i, eq - i);
    std::string value;
    i = eq + 1;
    if (i < line.size() && line[i] == '"') {
      const std::size_t close = line.find('"', i + 1);
      if (close == std::string::npos) {
        return Status::ParseError("unterminated quote in value of '" + key +
                                  "'");
      }
      value = line.substr(i + 1, close - i - 1);
      i = close + 1;
      if (i < line.size() && !IsSpace(line[i])) {
        return Status::ParseError("trailing characters after closing quote "
                                  "in value of '" +
                                  key + "'");
      }
    } else {
      std::size_t end = i;
      while (end < line.size() && !IsSpace(line[end])) ++end;
      value = line.substr(i, end - i);
      i = end;
    }
    values->Set(key, value);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<Request> ParseRequestLine(const std::string& line) {
  ParamMap values;
  const Status tokenized = Tokenize(line, &values);
  if (!tokenized.ok()) return tokenized;
  if (values.empty()) {
    return Status::ParseError("empty request line");
  }
  const Status known = values.ExpectOnly({"op", "id", "model", "data",
                                          "transform", "chunk", "clusterer",
                                          "k", "seed", "out", "last"});
  if (!known.ok()) return known;

  Request request;
  MCIRBM_ASSIGN_OR_RETURN(request.op, values.GetString("op", ""));
  if (request.op != "transform" && request.op != "evaluate" &&
      request.op != "stats" && request.op != "trace" &&
      request.op != "reload") {
    return Status::InvalidArgument(
        "op must be transform|evaluate|stats|trace|reload, got '" +
        request.op + "'");
  }
  // `id` is opaque to the server (echoed verbatim on the response) but
  // may not be empty: an empty echo would be indistinguishable from an
  // untagged response, so a client could never match it.
  if (values.Has("id")) {
    MCIRBM_ASSIGN_OR_RETURN(request.id, values.GetString("id", ""));
    if (request.id.empty()) {
      return Status::InvalidArgument("id must be non-empty when given");
    }
  }
  if (request.op == "stats") {
    // A stats probe names no model or dataset; extra keys beyond the
    // response-matching id are almost certainly a mangled transform
    // line, so reject loudly.
    if (values.size() != (values.Has("id") ? 2u : 1u)) {
      return Status::InvalidArgument(
          "op=stats takes no keys other than id");
    }
    return request;
  }
  if (request.op == "trace") {
    // Same strictness as op=stats: only id and last make sense here.
    std::size_t allowed = values.Has("id") ? 2u : 1u;
    if (values.Has("last")) ++allowed;
    if (values.size() != allowed) {
      return Status::InvalidArgument(
          "op=trace takes no keys other than id and last");
    }
    int last = 16;
    MCIRBM_ASSIGN_OR_RETURN(last, values.GetInt("last", 16));
    if (last < 1) {
      return Status::InvalidArgument("last must be >= 1");
    }
    request.last = static_cast<std::size_t>(last);
    return request;
  }
  if (request.op == "reload") {
    std::size_t allowed = values.Has("id") ? 2u : 1u;
    if (values.Has("model")) ++allowed;
    if (values.size() != allowed) {
      return Status::InvalidArgument(
          "op=reload takes no keys other than id and model");
    }
    MCIRBM_ASSIGN_OR_RETURN(request.model, values.GetString("model", ""));
    if (request.model.empty()) {
      return Status::InvalidArgument("op=reload needs model=<artifact>");
    }
    return request;
  }
  MCIRBM_ASSIGN_OR_RETURN(request.model, values.GetString("model", ""));
  MCIRBM_ASSIGN_OR_RETURN(request.data, values.GetString("data", ""));
  if (request.model.empty() || request.data.empty()) {
    return Status::InvalidArgument(
        "request needs model=<artifact> and data=<csv>");
  }
  MCIRBM_ASSIGN_OR_RETURN(request.transform,
                          values.GetString("transform", "none"));
  if (request.transform != "none" && request.transform != "standardize" &&
      request.transform != "minmax" && request.transform != "binarize") {
    return Status::InvalidArgument(
        "transform must be none|standardize|minmax|binarize, got '" +
        request.transform + "'");
  }
  int chunk = 1;
  MCIRBM_ASSIGN_OR_RETURN(chunk, values.GetInt("chunk", 1));
  if (chunk < 1) {
    return Status::InvalidArgument("chunk must be >= 1");
  }
  request.chunk = static_cast<std::size_t>(chunk);
  MCIRBM_ASSIGN_OR_RETURN(request.clusterer,
                          values.GetString("clusterer", "kmeans"));
  MCIRBM_ASSIGN_OR_RETURN(request.k, values.GetInt("k", 0));
  // Seeds span the full unsigned 64-bit range; GetUint64 rejects signs,
  // non-digits, and anything above 2^64 - 1 (GetInt would truncate any
  // seed >= 2^31).
  MCIRBM_ASSIGN_OR_RETURN(request.seed, values.GetUint64("seed", 7));
  MCIRBM_ASSIGN_OR_RETURN(request.out, values.GetString("out", ""));
  return request;
}

}  // namespace mcirbm::serve
