// MicroBatcher — request coalescing for the serving layer.
//
// Single-row (or small) Transform/Evaluate requests are queued per model
// and flushed as one batched matrix pass when either trigger fires:
//
//   - the model's queue reaches `max_batch_rows` pending rows, or
//   - the oldest pending request has waited `max_queue_micros`.
//
// One background flusher thread assembles each due batch, runs a single
// api::Model::Transform over the concatenated rows (which fans out across
// the global parallel::ThreadPool exactly like any other kernel), and
// completes each request's future with its row slice. Because every
// inference kernel is row-independent and shard boundaries depend only on
// the problem shape, a request's slice is bit-identical to what a
// one-at-a-time Transform call would have produced — batching changes
// throughput, never results (pinned by tests/serve/micro_batcher_test.cc).
//
// Evaluate requests ride the same per-model queue: their rows join the
// batched Transform pass, then the clusterer + metrics run on the
// request's own feature slice via api::EvaluateFeatures — the identical
// post-transform code path Model::Evaluate uses.
//
// Queues for different models never mix; each flush serves exactly one
// model. Shutdown flushes everything still pending (no request is ever
// abandoned) and subsequent submissions fail with kUnavailable.
//
// Backpressure is fail-fast: when a queue is over max_pending_rows, or
// the shared AdmissionController is out of inflight slots, the
// submission's future resolves immediately with kUnavailable (counted in
// Stats::rejected_requests) — overflow never blocks the caller and never
// drops a request silently.
//
// Observability: every batcher records into an obs::Registry (its own,
// or one injected via BatcherConfig::registry) — per-model-key
// serve_queue_wait_micros / serve_batch_exec_micros histograms, live
// serve_queue_depth / serve_pending_rows gauges, and
// serve_{requests,rows,batches,rejected}_total counters. All timing
// reads util::MonotonicMicros(), the same clock as the bench drivers.
//
// Tracing: a submission may carry an obs::TraceContext (null for the
// common untraced case — one branch per stage). A traced request gets a
// "queue" span (enqueue -> flush claim) and an "exec" span covering its
// batch's Transform pass; the exec span is shared by every request in
// the flush and attributed with the batch's total row count, which is
// exactly what makes coalescing visible in a timeline.
#ifndef MCIRBM_SERVE_MICRO_BATCHER_H_
#define MCIRBM_SERVE_MICRO_BATCHER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/model.h"
#include "linalg/matrix.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace mcirbm::serve {

/// Global admission bound shared by every batcher behind one router: a
/// submission acquires a slot before queueing and releases it when its
/// future resolves. Overflow never blocks — TryAcquire just fails and the
/// caller rejects the request with kUnavailable.
class AdmissionController {
 public:
  /// `max_inflight` of 0 means unbounded (TryAcquire always succeeds).
  explicit AdmissionController(std::uint64_t max_inflight)
      : max_inflight_(max_inflight) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  bool TryAcquire() {
    if (max_inflight_ == 0) return true;
    std::uint64_t current = inflight_.load(std::memory_order_relaxed);
    while (current < max_inflight_) {
      if (inflight_.compare_exchange_weak(current, current + 1,
                                          std::memory_order_acq_rel)) {
        return true;
      }
    }
    return false;
  }
  void Release() {
    if (max_inflight_ == 0) return;
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  }
  std::uint64_t inflight() const {
    return inflight_.load(std::memory_order_acquire);
  }
  std::uint64_t max_inflight() const { return max_inflight_; }

 private:
  const std::uint64_t max_inflight_;
  std::atomic<std::uint64_t> inflight_{0};
};

/// Batching policy knobs.
struct BatcherConfig {
  /// Flush a model's queue once this many rows are pending. A single
  /// request larger than this still forms one (oversized) batch.
  std::size_t max_batch_rows = 64;
  /// Flush a non-empty queue once its oldest request has waited this long.
  std::int64_t max_queue_micros = 200;
  /// Backpressure: reject a submission with kUnavailable when its model's
  /// queue already holds this many pending rows (0 = unbounded). The
  /// first request into an empty queue is always admitted, so a single
  /// oversized request can still be served.
  std::size_t max_pending_rows = 0;
  /// Optional admission bound shared across batchers (replica sharding):
  /// a submission that cannot acquire an inflight slot is rejected with
  /// kUnavailable. Null means no global bound.
  std::shared_ptr<AdmissionController> admission;
  /// Keep every request's queue latency for percentile analysis
  /// (bench/serve_throughput.cc). Off by default: a long-lived server
  /// should not grow memory per request.
  bool record_latencies = false;
  /// Metrics sink. The batcher records per-model-key queue-wait and
  /// batch-execution histograms, live queue-depth / pending-rows gauges,
  /// and request/row/batch/rejection counters into it (fixed-size state,
  /// always on). Null means the batcher creates a private registry;
  /// share one only if the sharer outlives the batcher.
  std::shared_ptr<obs::Registry> registry;
};

/// Coalesces per-model inference requests into batched passes.
class MicroBatcher {
 public:
  explicit MicroBatcher(const BatcherConfig& config = {});
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Queues `rows` (n x num_visible) for a batched Transform through
  /// `model`. The future resolves to this request's feature rows,
  /// bit-identical to `model->Transform(rows)`. Shape errors and
  /// submissions after Shutdown resolve immediately with a non-OK Status.
  /// `key` groups requests into batches. If the instance behind a key
  /// changes while requests are queued (hot reload), the old queue is
  /// sealed and flushed on the instance those requests were submitted
  /// against; one batch never mixes two instances.
  /// `trace` (optional) collects "queue" and "exec" spans for this
  /// request; null (the default) records nothing.
  std::future<StatusOr<linalg::Matrix>> SubmitTransform(
      std::shared_ptr<const api::Model> model, const std::string& key,
      linalg::Matrix rows, std::shared_ptr<obs::TraceContext> trace = {});

  /// Queues `rows` for the batched Transform pass, then clusters this
  /// request's feature slice and scores it against `labels` — equivalent
  /// to `model->Evaluate(rows, labels, options)` bit for bit.
  std::future<StatusOr<api::EvalResult>> SubmitEvaluate(
      std::shared_ptr<const api::Model> model, const std::string& key,
      linalg::Matrix rows, std::vector<int> labels,
      api::EvalOptions options = {},
      std::shared_ptr<obs::TraceContext> trace = {});

  /// Flushes all pending requests, stops the flusher thread, and fails
  /// subsequent submissions with kUnavailable. Idempotent; also run by
  /// the destructor.
  void Shutdown();

  /// Monotonic counters since construction.
  struct Stats {
    std::uint64_t requests = 0;          ///< accepted submissions
    std::uint64_t rows = 0;              ///< total rows accepted
    std::uint64_t batches = 0;           ///< batched passes executed
    std::uint64_t batched_rows = 0;      ///< rows across those passes
    std::uint64_t full_flushes = 0;      ///< flushed by max_batch_rows
    std::uint64_t deadline_flushes = 0;  ///< flushed by timer or Shutdown
    std::uint64_t swap_flushes = 0;      ///< sealed by a model hot-swap
    /// Submissions rejected by backpressure (max_pending_rows or the
    /// shared AdmissionController) — not shutdown rejections.
    std::uint64_t rejected_requests = 0;
    double total_queue_micros = 0;       ///< summed per-request queue wait
    double max_queue_micros = 0;

    /// Folds another batcher's counters into this one (replica
    /// aggregation — serve::Router). Lives next to the field list so a
    /// new counter cannot be forgotten here silently.
    ///
    /// Merge semantics, pinned by tests/serve/router_test.cc: every
    /// counter and every summed total (total_queue_micros included)
    /// ADDS; max_queue_micros takes the MAX (the max of a union is the
    /// max of the per-part maxes). Derived means must be recomputed
    /// from the merged totals — MeanQueueMicros() of the sum — never by
    /// averaging per-replica means, which would weight an idle replica
    /// the same as a saturated one.
    void Add(const Stats& other) {
      requests += other.requests;
      rows += other.rows;
      batches += other.batches;
      batched_rows += other.batched_rows;
      full_flushes += other.full_flushes;
      deadline_flushes += other.deadline_flushes;
      swap_flushes += other.swap_flushes;
      rejected_requests += other.rejected_requests;
      total_queue_micros += other.total_queue_micros;
      if (other.max_queue_micros > max_queue_micros) {
        max_queue_micros = other.max_queue_micros;
      }
    }

    double MeanBatchRows() const {
      return batches == 0 ? 0.0
                          : static_cast<double>(batched_rows) /
                                static_cast<double>(batches);
    }
    double MeanQueueMicros() const {
      return requests == 0 ? 0.0
                           : total_queue_micros /
                                 static_cast<double>(requests);
    }
  };
  Stats stats() const;

  /// Per-request queue latencies (enqueue -> flush start), recorded only
  /// when BatcherConfig::record_latencies is set.
  std::vector<double> latencies_micros() const;

  /// Number of model keys with requests currently queued (drained keys
  /// are dropped, so an idle batcher reports 0 regardless of how many
  /// distinct keys it has ever served).
  std::size_t pending_queues() const;

  /// Live load: rows accepted but not yet through their batched pass
  /// (queued + sealed + executing). Lock-free read — this is the signal
  /// serve::Router's least-loaded routing polls per submission.
  std::size_t load() const {
    return load_.load(std::memory_order_relaxed);
  }

  /// `load()` restricted to one model key. A key with nonzero load is
  /// "pinned": its requests are still coalescing or executing here, so a
  /// load-aware router must keep routing it to this batcher.
  std::size_t key_load(const std::string& key) const;

  /// The metrics sink (the config's registry, or the private one).
  const std::shared_ptr<obs::Registry>& registry() const {
    return registry_;
  }
  obs::MetricsSnapshot metrics_snapshot() const {
    return registry_->snapshot();
  }

 private:
  // One queued request: its rows plus a completion invoked with the
  // request's feature slice (or the batch's error).
  struct Request {
    linalg::Matrix rows;
    std::int64_t enqueued_micros = 0;  // util::MonotonicMicros timebase
    std::function<void(StatusOr<linalg::Matrix>)> complete;
    // Shared (not raw): if the submitter abandons the request's future
    // early, the flusher still holds a live context when it records the
    // queue/exec spans. Null for untraced requests — a null shared_ptr
    // copy is free, so the untraced path stays one branch per stage.
    std::shared_ptr<obs::TraceContext> trace;
  };

  // Per-model pending queue.
  struct Queue {
    std::shared_ptr<const api::Model> model;
    std::vector<Request> pending;
    std::size_t pending_rows = 0;
    // Rows this key sealed into ready_ that the flusher has not yet
    // claimed. Counted against max_pending_rows so a Reload-heavy
    // client cannot grow sealed batches past the backpressure bound.
    std::size_t sealed_rows = 0;
    std::int64_t oldest_micros = 0;  // enqueue time of pending.front()
  };

  // What fired a batch — attributed to the matching stats counter.
  enum class FlushTrigger {
    kFull,      // the queue reached max_batch_rows
    kDeadline,  // the oldest request timed out (or Shutdown drained it)
    kSwap,      // sealed by Enqueue on a model hot-swap
  };

  // A due queue detached from the map for execution outside the lock.
  struct Batch {
    std::shared_ptr<const api::Model> model;
    std::string key;  // set on sealed batches to settle sealed_rows
    std::vector<Request> requests;
    std::size_t rows = 0;
    FlushTrigger trigger = FlushTrigger::kDeadline;
  };

  /// Validates and enqueues; returns non-OK without queuing on bad input.
  Status Enqueue(std::shared_ptr<const api::Model> model,
                 const std::string& key, linalg::Matrix rows,
                 std::function<void(StatusOr<linalg::Matrix>)> complete,
                 std::shared_ptr<obs::TraceContext> trace);
  void FlusherLoop() MCIRBM_EXCLUDES(mu_);
  /// Runs one batched pass and completes its requests. Calls SettleLoad,
  /// so the lock must NOT be held.
  void ExecuteBatch(Batch* batch) MCIRBM_EXCLUDES(mu_);
  /// Refreshes this key's queue-depth / pending-rows gauges.
  void UpdateGauges(const std::string& key) MCIRBM_REQUIRES(mu_);
  /// Removes `rows` from this key's live-load accounting. Called by
  /// ExecuteBatch BEFORE any request future is completed, so a resolved
  /// future implies its rows no longer count toward load(). Takes mu_
  /// itself — call with the lock NOT held.
  void SettleLoad(const std::string& key, std::size_t rows)
      MCIRBM_EXCLUDES(mu_);

  const BatcherConfig config_;
  const std::shared_ptr<obs::Registry> registry_;  // never null
  mutable Mutex mu_;
  CondVar cv_;
  std::map<std::string, Queue> queues_ MCIRBM_GUARDED_BY(mu_);
  /// Sealed by Enqueue on model hot-swap.
  std::vector<Batch> ready_ MCIRBM_GUARDED_BY(mu_);
  // Rows accepted but not yet executed, per key and in total (queued +
  // sealed + executing). key_loads_ is guarded by mu_; load_ mirrors its
  // sum atomically so routers can read it without the lock.
  std::map<std::string, std::size_t> key_loads_ MCIRBM_GUARDED_BY(mu_);
  std::atomic<std::size_t> load_{0};
  bool stopping_ MCIRBM_GUARDED_BY(mu_) = false;
  Stats stats_ MCIRBM_GUARDED_BY(mu_);
  std::vector<double> latencies_micros_ MCIRBM_GUARDED_BY(mu_);
  // Claimed (moved out) under mu_ by Shutdown so user + destructor
  // cannot both join it. Last member: started after everything above.
  std::thread flusher_ MCIRBM_GUARDED_BY(mu_);
};

}  // namespace mcirbm::serve

#endif  // MCIRBM_SERVE_MICRO_BATCHER_H_
