#include "net/line_server.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"
#include "util/timer.h"

namespace mcirbm::net {

namespace {

/// Accept-poll period: the latency bound on noticing Drain().
constexpr int kAcceptTimeoutMs = 100;

}  // namespace

LineServer::LineServer(const LineServerConfig& config,
                       serve::RequestExecutor* executor)
    : config_(config),
      executor_(executor),
      accepted_total_(&registry_.counter("net_accepted_total")),
      requests_total_(&registry_.counter("net_requests_total")),
      responses_total_(&registry_.counter("net_responses_total")),
      protocol_errors_total_(
          &registry_.counter("net_protocol_errors_total")),
      connections_open_(&registry_.gauge("net_connections_open")),
      request_micros_(&registry_.histogram("net_request_micros")) {}

LineServer::~LineServer() { Drain(); }

Status LineServer::Start() {
  auto listener = Listener::Bind(config_.host, config_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  port_ = listener_.port();
  const int handlers = std::max(1, config_.handler_threads);
  handler_threads_.reserve(static_cast<std::size_t>(handlers));
  for (int i = 0; i < handlers; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_.store(true, std::memory_order_release);
  return Status::Ok();
}

void LineServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    auto accepted = listener_.Accept(kAcceptTimeoutMs);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kUnavailable) continue;
      break;  // listener broken; Drain still joins us cleanly
    }
    accepted_total_->Increment();
    connections_open_->Add(1);
    auto conn = std::make_shared<Conn>();
    conn->connection = Connection(std::move(accepted).value());
    conn->connection.max_line_bytes = config_.max_line_bytes;
    MutexLock lock(conns_mu_);
    conns_.push_back(conn);
    reader_threads_.emplace_back([this, conn] { ReaderLoop(conn); });
  }
}

void LineServer::ReaderLoop(std::shared_ptr<Conn> conn) {
  std::string line;
  while (!stopping_.load(std::memory_order_acquire)) {
    const Status read = conn->connection.ReadLine(&line);
    if (!read.ok()) {
      if (read.code() == StatusCode::kInvalidArgument) {
        // Oversized line: a protocol violation, not a dead peer — answer
        // it and keep the connection.
        requests_total_->Increment();
        protocol_errors_total_->Increment();
        WriteResponse(conn,
                      serve::RequestExecutor::FormatError(read, "", ""),
                      /*ok=*/false, MonotonicMicros());
        continue;
      }
      break;  // clean EOF / half-close (kUnavailable) or socket error
    }
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const std::int64_t start = MonotonicMicros();
    requests_total_->Increment();
    auto parsed = serve::ParseRequestLine(trimmed);
    if (!parsed.ok()) {
      // A malformed line cannot carry a trustworthy id; answer untagged.
      protocol_errors_total_->Increment();
      WriteResponse(
          conn,
          serve::RequestExecutor::FormatError(parsed.status(), "", ""),
          /*ok=*/false, start);
      continue;
    }
    const serve::Request& request = parsed.value();
    // Sampling decision at the same timestamp net_request_micros starts
    // from: the trace window is exactly that measurement, decomposed.
    auto trace = executor_->StartTrace(request, start);
    if (request.id.empty()) {
      // Untagged: execute inline — strict per-connection FIFO responses.
      ExecuteAndRespond(conn, request, start, trace);
      continue;
    }
    bool duplicate = false;
    {
      MutexLock state(conn->state_mu);
      if (conn->inflight_ids.insert(request.id).second) {
        ++conn->inflight;
      } else {
        duplicate = true;
      }
    }
    if (duplicate) {
      protocol_errors_total_->Increment();
      WriteResponse(conn,
                    serve::RequestExecutor::FormatError(
                        Status::InvalidArgument("duplicate id '" +
                                                request.id +
                                                "' already in flight"),
                        request.id, ""),
                    /*ok=*/false, start);
      continue;
    }
    {
      MutexLock lock(queue_mu_);
      queue_.push_back(Task{conn, request, start, std::move(trace)});
    }
    queue_cv_.NotifyOne();
  }
  // Connection drain: everything this reader admitted to the handler
  // pool must finish and flush before the socket closes.
  {
    MutexLock state(conn->state_mu);
    while (conn->inflight != 0) conn->idle_cv.Wait(conn->state_mu);
  }
  CloseConn(conn);
}

void LineServer::HandlerLoop() {
  for (;;) {
    Task task;
    {
      MutexLock lock(queue_mu_);
      while (!handlers_stop_ && queue_.empty()) queue_cv_.Wait(queue_mu_);
      if (queue_.empty()) return;  // only when handlers_stop_
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    bool ok = false;
    const std::string payload =
        executor_->Execute(task.request, "", &ok, task.trace);
    {
      // The response write and the id release are atomic with respect to
      // the reader's duplicate check: a client that reads its response
      // and immediately reuses the id must never be rejected, and a
      // duplicate sent before the response is written must always be.
      MutexLock state(task.conn->state_mu);
      WriteResponse(task.conn, payload, ok, task.start_micros, task.trace);
      task.conn->inflight_ids.erase(task.request.id);
      --task.conn->inflight;
    }
    task.conn->idle_cv.NotifyAll();
  }
}

void LineServer::ExecuteAndRespond(
    const std::shared_ptr<Conn>& conn, const serve::Request& request,
    std::int64_t start_micros,
    const std::shared_ptr<obs::TraceContext>& trace) {
  bool ok = false;
  const std::string payload = executor_->Execute(request, "", &ok, trace);
  WriteResponse(conn, payload, ok, start_micros, trace);
}

void LineServer::WriteResponse(
    const std::shared_ptr<Conn>& conn, const std::string& payload, bool ok,
    std::int64_t start_micros,
    const std::shared_ptr<obs::TraceContext>& trace) {
  const std::int64_t flush_start = MonotonicMicros();
  {
    MutexLock lock(conn->write_mu);
    if (!conn->write_failed) {
      const Status written = conn->connection.WriteAll(payload);
      // A dead peer stops further writes on this connection but must not
      // kill the request stream already executing against it.
      if (!written.ok()) conn->write_failed = true;
    }
  }
  if (trace != nullptr) {
    trace->AddSpan("flush", flush_start, MonotonicMicros() - flush_start);
    executor_->FinishTrace(trace);
  }
  request_micros_->Record(
      static_cast<double>(MonotonicMicros() - start_micros));
  responses_total_->Increment();
  if (ok) {
    ok_responses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    error_responses_.fetch_add(1, std::memory_order_relaxed);
  }
  const std::uint64_t total =
      responses_count_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (response_hook_) response_hook_(total);
}

void LineServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  MutexLock lock(conn->io_mu);
  if (conn->closed) return;
  conn->closed = true;
  conn->connection.Close();
  connections_open_->Add(-1);
}

void LineServer::Drain() {
  MutexLock drain_lock(drain_mu_);
  if (drained_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  if (started_.load(std::memory_order_acquire)) {
    // 1. Stop accepting (the poll loop notices within kAcceptTimeoutMs).
    accept_thread_.join();
    // 2. Unblock every reader; each finishes its in-flight requests,
    //    flushes their responses, and closes its connection.
    {
      MutexLock lock(conns_mu_);
      for (const auto& conn : conns_) {
        MutexLock io(conn->io_mu);
        if (!conn->closed) conn->connection.ShutdownRead();
      }
    }
    // Holding conns_mu_ across the joins is safe: the accept thread (the
    // only other writer) is already joined, and readers never take
    // conns_mu_.
    MutexLock lock(conns_mu_);
    for (std::thread& reader : reader_threads_) reader.join();
  }
  // 3. Handlers exit once the queue is empty; readers are joined, so no
  //    new work can arrive.
  {
    MutexLock lock(queue_mu_);
    handlers_stop_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& handler : handler_threads_) handler.join();
  listener_.Close();
  drained_.store(true, std::memory_order_release);
}

}  // namespace mcirbm::net
