#include "net/socket.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mcirbm::net {

namespace {

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1, std::memory_order_acq_rel),
              std::memory_order_release);
  }
  return *this;
}

void Socket::ShutdownRead() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RD);
}

void Socket::ShutdownWrite() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_WR);
}

void Socket::Close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

Status Connection::ReadLine(std::string* line) {
  line->clear();
  for (;;) {
    // Serve a complete line out of the buffer first.
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      if (newline > max_line_bytes) {
        // The whole oversized line arrived: drop exactly it, so the next
        // ReadLine resyncs on the following line.
        buffer_.erase(0, newline + 1);
        return Status::InvalidArgument("request line exceeds " +
                                       std::to_string(max_line_bytes) +
                                       " bytes");
      }
      std::size_t len = newline;
      if (len > 0 && buffer_[len - 1] == '\r') --len;
      line->assign(buffer_, 0, len);
      buffer_.erase(0, newline + 1);
      return Status::Ok();
    }
    if (buffer_.size() > max_line_bytes) {
      // Oversized with no terminator yet: drop the prefix so a later
      // resync is at least possible, and report the violation.
      buffer_.clear();
      return Status::InvalidArgument("request line exceeds " +
                                     std::to_string(max_line_bytes) +
                                     " bytes");
    }
    if (eof_) {
      // A trailing unterminated fragment is dropped: the peer closed
      // mid-line, so the "request" was never complete.
      return Status::Unavailable("connection closed");
    }
    char chunk[4096];
    const ssize_t n = ::recv(socket_.fd(), chunk, sizeof chunk, 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      eof_ = true;
      continue;  // flush any last complete line already buffered
    }
    if (errno == EINTR) continue;
    if (errno == EBADF || errno == ECONNRESET || errno == ENOTCONN) {
      // A drain shutdown or peer reset while blocked: treat like EOF.
      eof_ = true;
      continue;
    }
    return Status::IoError(ErrnoMessage("recv"));
  }
}

Status Connection::WriteAll(const std::string& bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::send(socket_.fd(), bytes.data() + written, bytes.size() - written,
               MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("send"));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

StatusOr<Listener> Listener::Bind(const std::string& host, int port,
                                  int backlog) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port must be in [0, 65535], got " +
                                   std::to_string(port));
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* resolved = nullptr;
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               std::to_string(port).c_str(), &hints,
                               &resolved);
  if (rc != 0) {
    return Status::IoError("cannot resolve bind address '" + host +
                           "': " + gai_strerror(rc));
  }
  Socket socket(::socket(resolved->ai_family, resolved->ai_socktype,
                         resolved->ai_protocol));
  if (!socket.valid()) {
    ::freeaddrinfo(resolved);
    return Status::IoError(ErrnoMessage("socket"));
  }
  const int enable = 1;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof enable);
  const bool bound =
      ::bind(socket.fd(), resolved->ai_addr, resolved->ai_addrlen) == 0;
  ::freeaddrinfo(resolved);
  if (!bound) {
    return Status::IoError(
        ErrnoMessage("bind " + host + ":" + std::to_string(port)));
  }
  if (::listen(socket.fd(), backlog) != 0) {
    return Status::IoError(ErrnoMessage("listen"));
  }
  // Read back the actually-bound port (resolves a port-0 request).
  sockaddr_in bound_addr{};
  socklen_t addr_len = sizeof bound_addr;
  if (::getsockname(socket.fd(),
                    reinterpret_cast<sockaddr*>(&bound_addr),
                    &addr_len) != 0) {
    return Status::IoError(ErrnoMessage("getsockname"));
  }
  Listener listener;
  listener.socket_ = std::move(socket);
  listener.port_ = ntohs(bound_addr.sin_port);
  return listener;
}

StatusOr<Socket> Listener::Accept(int timeout_ms) {
  pollfd pfd{};
  pfd.fd = socket_.fd();
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready == 0) return Status::Unavailable("accept timeout");
  if (ready < 0) {
    if (errno == EINTR) return Status::Unavailable("accept interrupted");
    return Status::IoError(ErrnoMessage("poll"));
  }
  if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
    return Status::IoError("listener closed");
  }
  Socket accepted(::accept(socket_.fd(), nullptr, nullptr));
  if (!accepted.valid()) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EWOULDBLOCK) {
      return Status::Unavailable("accept raced away");
    }
    return Status::IoError(ErrnoMessage("accept"));
  }
  // Request lines are small and latency-sensitive; don't Nagle them.
  const int enable = 1;
  ::setsockopt(accepted.fd(), IPPROTO_TCP, TCP_NODELAY, &enable,
               sizeof enable);
  return accepted;
}

}  // namespace mcirbm::net
