// net::Client — a line-protocol client for the serve stack's TCP
// transport (tests, the bench load generator, ad-hoc tooling).
//
//   auto client = net::Client::Connect("127.0.0.1", port);
//   client.value().SendLine("op=transform id=r1 model=enc data=d.csv");
//   client.value().SendLine("op=stats id=s1");        // pipelined
//   std::string response;
//   client.value().ReadLine(&response);  // completion order, match ids
//
// SendLine appends the '\n' terminator; ReadLine strips it. Responses to
// id-tagged requests arrive in completion order — match them by the
// `id=` echo. A multi-line response (op=stats) is read as its ok line
// (carrying metrics=<n>) followed by n more ReadLine calls.
// ShutdownWrite() half-closes after the last request: the server
// finishes everything already sent, flushes the responses, and closes,
// so "read until kUnavailable" drains cleanly.
#ifndef MCIRBM_NET_CLIENT_H_
#define MCIRBM_NET_CLIENT_H_

#include <string>

#include "net/socket.h"
#include "util/status.h"

namespace mcirbm::net {

/// One TCP connection speaking the serve line protocol.
class Client {
 public:
  Client() = default;

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Connects to `host:port` (IPv4 dotted quad or hostname).
  static StatusOr<Client> Connect(const std::string& host, int port);

  bool valid() const { return connection_.valid(); }

  /// Sends `line` + '\n'. The line must not itself contain '\n' — one
  /// call is one request.
  Status SendLine(const std::string& line);

  /// Blocks for the next response line (terminator stripped).
  /// kUnavailable once the server has closed.
  Status ReadLine(std::string* line);

  /// Half-close: signals end-of-requests; responses keep flowing until
  /// the server closes its side.
  void ShutdownWrite() { connection_.ShutdownWrite(); }

  void Close() { connection_.Close(); }

 private:
  explicit Client(Connection connection)
      : connection_(std::move(connection)) {}

  Connection connection_;
};

}  // namespace mcirbm::net

#endif  // MCIRBM_NET_CLIENT_H_
