// net::LineServer — the TCP front door of the serve stack: a
// multi-client, pipelined line-protocol server over
// serve::RequestExecutor.
//
// Threading model (all plain blocking I/O; the compute layers stay on
// the parallel::ThreadPool):
//
//   - one accept thread polls the Listener with a short timeout so
//     Drain() can stop it promptly;
//   - one reader thread per connection parses request lines
//     (serve::ParseRequestLine) and answers them;
//   - a shared pool of `handler_threads` executes id-tagged requests, so
//     one connection can have many requests in flight and responses
//     interleave in completion order (the pipelining contract of
//     serve/request.h). Requests WITHOUT an id run inline on the
//     connection's reader thread — strict per-connection FIFO responses,
//     exactly like the file-mode serve loop.
//
// Dedicated reader threads instead of the parallel::ThreadPool on
// purpose: readers block on socket I/O for their whole lifetime, and
// parking them in the pool would starve the batched-inference regions
// that pool exists for.
//
// Per-connection rules:
//   - a request whose id is already in flight on that connection is
//     rejected with an error response (ids are reusable once answered);
//   - a malformed line gets an error response and the connection stays
//     usable (counted in net_protocol_errors_total);
//   - when the client half-closes (EOF), every request already read is
//     finished and its response flushed, then the server closes its side
//     — so `send everything; shutdown(WR); read until EOF` is a
//     complete, lossless client session.
//
// Graceful drain — Drain(), also run by the destructor — follows the
// same shape server-wide: stop accepting, stop reading new requests,
// finish every request already admitted (their futures resolve through
// the executor), flush the responses, close every connection, join every
// thread. Idempotent. The Router behind the executor is NOT shut down;
// that belongs to the owner, after Drain returns.
//
// Observability (registry(), merged into op=stats by the owner via
// RequestExecutor::AddStatsRegistry): net_connections_open gauge,
// net_{accepted,requests,responses,protocol_errors}_total counters, and
// a net_request_micros histogram measuring read-to-flushed wall time per
// request. When the executor has a trace store, each sampled request's
// trace starts at the same post-read timestamp net_request_micros uses,
// gains a "flush" span around the response write, and is finished right
// after it — so a trace's end-to-end window is the histogram's
// measurement, decomposed.
#ifndef MCIRBM_NET_LINE_SERVER_H_
#define MCIRBM_NET_LINE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "obs/registry.h"
#include "serve/executor.h"
#include "serve/request.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace mcirbm::net {

/// TCP transport knobs.
struct LineServerConfig {
  /// Bind address. Loopback by default (tests, local benches); a
  /// deployment that should accept remote clients binds "0.0.0.0".
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral one (read it back from
  /// port() after Start).
  int port = 0;
  /// Threads executing id-tagged (pipelined) requests across all
  /// connections. Clamped to >= 1. Untagged requests always run on
  /// their connection's reader thread.
  int handler_threads = 4;
  /// Protocol guard: longest accepted request line.
  std::size_t max_line_bytes = 1 << 20;
};

/// Multi-client pipelined line-protocol server over a RequestExecutor.
class LineServer {
 public:
  /// `executor` must outlive the server.
  LineServer(const LineServerConfig& config,
             serve::RequestExecutor* executor);
  ~LineServer();

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// Binds, listens, and starts the accept + handler threads.
  Status Start();

  /// The bound port once Start succeeded (resolves port-0 requests).
  int port() const { return port_; }

  /// Graceful drain; see the file comment. Idempotent, safe to call
  /// concurrently with serving (that is its job).
  void Drain();

  /// Called after every response is flushed, with the total number of
  /// responses written so far — the CLI's --stats-every hook. Set before
  /// Start; runs on reader/handler threads, so it must be thread-safe.
  void set_response_hook(std::function<void(std::uint64_t)> hook) {
    response_hook_ = std::move(hook);
  }

  /// This transport's net_* metrics. Fold into the stats surface with
  /// RequestExecutor::AddStatsRegistry(&server.registry()).
  const obs::Registry& registry() const { return registry_; }
  obs::MetricsSnapshot metrics_snapshot() const {
    return registry_.snapshot();
  }

  /// Responses whose executor marked them ok / not ok (the listen-mode
  /// served=/failed= summary). Only grows; read after Drain for finals.
  std::uint64_t ok_responses() const {
    return ok_responses_.load(std::memory_order_relaxed);
  }
  std::uint64_t error_responses() const {
    return error_responses_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-connection state shared by its reader, the handler pool, and
  /// Drain.
  struct Conn {
    Connection connection;
    /// Serializes response writes so pipelined responses never
    /// interleave mid-payload.
    Mutex write_mu;
    /// Peer gone, stop writing.
    bool write_failed MCIRBM_GUARDED_BY(write_mu) = false;
    /// Lifecycle: in-flight pipelined requests + id dedup set. Lock
    /// order: state_mu may be taken before write_mu (handlers couple the
    /// response write with the id release), never the reverse — the
    /// ACQUIRED_BEFORE declaration has the thread-safety beta pass
    /// check that order at compile time.
    Mutex state_mu MCIRBM_ACQUIRED_BEFORE(write_mu);
    CondVar idle_cv;
    std::set<std::string> inflight_ids MCIRBM_GUARDED_BY(state_mu);
    std::size_t inflight MCIRBM_GUARDED_BY(state_mu) = 0;
    /// Serializes Shutdown*/Close against each other (socket.h contract).
    Mutex io_mu;
    bool closed MCIRBM_GUARDED_BY(io_mu) = false;
  };

  /// One id-tagged request dispatched to the handler pool.
  struct Task {
    std::shared_ptr<Conn> conn;
    serve::Request request;
    std::int64_t start_micros = 0;
    std::shared_ptr<obs::TraceContext> trace;  // null when unsampled
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Conn> conn);
  void HandlerLoop();
  /// Executes `request` and writes the response (used inline by readers
  /// for untagged requests and by handlers for id-tagged ones).
  void ExecuteAndRespond(const std::shared_ptr<Conn>& conn,
                         const serve::Request& request,
                         std::int64_t start_micros,
                         const std::shared_ptr<obs::TraceContext>& trace);
  /// Writes one already-formatted response payload and records the
  /// request's wall time + counters. A non-null `trace` gets its "flush"
  /// span here and is finished (committed to the store) right after.
  void WriteResponse(const std::shared_ptr<Conn>& conn,
                     const std::string& payload, bool ok,
                     std::int64_t start_micros,
                     const std::shared_ptr<obs::TraceContext>& trace = {});
  void CloseConn(const std::shared_ptr<Conn>& conn);

  const LineServerConfig config_;
  serve::RequestExecutor* const executor_;
  std::function<void(std::uint64_t)> response_hook_;

  Listener listener_;
  int port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> drained_{false};
  Mutex drain_mu_;  // serializes concurrent Drain calls

  std::thread accept_thread_;
  Mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_ MCIRBM_GUARDED_BY(conns_mu_);
  std::vector<std::thread> reader_threads_ MCIRBM_GUARDED_BY(conns_mu_);

  Mutex queue_mu_;
  CondVar queue_cv_;
  std::deque<Task> queue_ MCIRBM_GUARDED_BY(queue_mu_);
  bool handlers_stop_ MCIRBM_GUARDED_BY(queue_mu_) = false;
  std::vector<std::thread> handler_threads_;

  obs::Registry registry_;
  // Handles resolved once in the constructor (creating the series, so
  // they render as 0 before any traffic); recording is lock-free.
  obs::Counter* accepted_total_;
  obs::Counter* requests_total_;
  obs::Counter* responses_total_;
  obs::Counter* protocol_errors_total_;
  obs::Gauge* connections_open_;
  obs::Histogram* request_micros_;
  std::atomic<std::uint64_t> responses_count_{0};
  std::atomic<std::uint64_t> ok_responses_{0};
  std::atomic<std::uint64_t> error_responses_{0};
};

}  // namespace mcirbm::net

#endif  // MCIRBM_NET_LINE_SERVER_H_
