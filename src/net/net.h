// Umbrella header for the net module — the TCP transport of the serve
// stack.
//
//   - net::Socket / net::Connection / net::Listener (socket.h): thin
//     RAII POSIX socket layer with buffered line reads.
//   - net::LineServer (line_server.h): multi-client pipelined
//     line-protocol server over serve::RequestExecutor, with graceful
//     drain and net_* metrics.
//   - net::Client (client.h): blocking line-protocol client for tests
//     and the load-generator bench.
//   - net::TextEndpoint (text_endpoint.h): one-shot read-only text
//     server (the --stats-port surface).
//
// The wire protocol itself is specified in serve/request.h.
#ifndef MCIRBM_NET_NET_H_
#define MCIRBM_NET_NET_H_

#include "net/client.h"
#include "net/line_server.h"
#include "net/socket.h"
#include "net/text_endpoint.h"

#endif  // MCIRBM_NET_NET_H_
