#include "net/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mcirbm::net {

StatusOr<Client> Client::Connect(const std::string& host, int port) {
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("port must be in [1, 65535], got " +
                                   std::to_string(port));
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &resolved);
  if (rc != 0) {
    return Status::IoError("cannot resolve '" + host +
                           "': " + gai_strerror(rc));
  }
  Status last = Status::IoError("no addresses for '" + host + "'");
  for (addrinfo* addr = resolved; addr != nullptr; addr = addr->ai_next) {
    Socket socket(
        ::socket(addr->ai_family, addr->ai_socktype, addr->ai_protocol));
    if (!socket.valid()) {
      last = Status::IoError(std::string("socket: ") + std::strerror(errno));
      continue;
    }
    if (::connect(socket.fd(), addr->ai_addr, addr->ai_addrlen) != 0) {
      last = Status::IoError("connect " + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(errno));
      continue;
    }
    const int enable = 1;
    ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &enable,
                 sizeof enable);
    ::freeaddrinfo(resolved);
    return Client(Connection(std::move(socket)));
  }
  ::freeaddrinfo(resolved);
  return last;
}

Status Client::SendLine(const std::string& line) {
  if (line.find('\n') != std::string::npos) {
    return Status::InvalidArgument("request line contains '\\n'");
  }
  return connection_.WriteAll(line + "\n");
}

Status Client::ReadLine(std::string* line) {
  return connection_.ReadLine(line);
}

}  // namespace mcirbm::net
