// net::TextEndpoint — a one-shot read-only text server: every client
// that connects receives the rendered payload and is closed immediately.
//
// This is the `mcirbm_cli serve --stats-port <p>` surface: point
// anything that can open a TCP connection (curl, nc, a dashboard
// scraper) at the port and it gets the live metrics snapshot as
// Prometheus-style text, no request line required. The renderer runs on
// the endpoint's accept thread per connection, so it must be thread-safe
// against the serving threads (Router::metrics_snapshot and
// RequestExecutor::RenderStatsText are).
#ifndef MCIRBM_NET_TEXT_ENDPOINT_H_
#define MCIRBM_NET_TEXT_ENDPOINT_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "net/socket.h"
#include "util/status.h"

namespace mcirbm::net {

/// Serves `renderer()` to each connecting client, then closes it.
class TextEndpoint {
 public:
  using Renderer = std::function<std::string()>;

  /// `renderer` is invoked once per connection; port 0 = ephemeral.
  TextEndpoint(std::string host, int port, Renderer renderer);
  ~TextEndpoint();

  TextEndpoint(const TextEndpoint&) = delete;
  TextEndpoint& operator=(const TextEndpoint&) = delete;

  /// Binds and starts the accept thread.
  Status Start();

  /// The bound port once Start succeeded.
  int port() const { return port_; }

  /// Stops accepting and joins; idempotent (also run by the destructor).
  void Stop();

 private:
  void AcceptLoop();

  const std::string host_;
  const int requested_port_;
  const Renderer renderer_;
  Listener listener_;
  int port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
};

}  // namespace mcirbm::net

#endif  // MCIRBM_NET_TEXT_ENDPOINT_H_
