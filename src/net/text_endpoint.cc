#include "net/text_endpoint.h"

#include <utility>

namespace mcirbm::net {

namespace {

constexpr int kAcceptTimeoutMs = 100;

}  // namespace

TextEndpoint::TextEndpoint(std::string host, int port, Renderer renderer)
    : host_(std::move(host)),
      requested_port_(port),
      renderer_(std::move(renderer)) {}

TextEndpoint::~TextEndpoint() { Stop(); }

Status TextEndpoint::Start() {
  auto listener = Listener::Bind(host_, requested_port_);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  port_ = listener_.port();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_.store(true, std::memory_order_release);
  return Status::Ok();
}

void TextEndpoint::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    auto accepted = listener_.Accept(kAcceptTimeoutMs);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kUnavailable) continue;
      break;
    }
    Connection connection(std::move(accepted).value());
    // Best effort: a client that hangs up mid-payload is its own
    // problem; the next connection gets a fresh render.
    static_cast<void>(connection.WriteAll(renderer_()));
    connection.ShutdownWrite();
    connection.Close();
  }
}

void TextEndpoint::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    return;  // another Stop (or the destructor after Stop) already ran
  }
  accept_thread_.join();
  listener_.Close();
}

}  // namespace mcirbm::net
