// net::Socket / net::Connection / net::Listener — the dependency-free
// POSIX socket layer under the serve stack's TCP transport.
//
// Three small RAII types, fallible through Status like everything else:
//
//   - Socket: move-only owner of one file descriptor. Close() is
//     idempotent; ShutdownRead/Write may be called from a thread other
//     than the one blocked in I/O (that is how a graceful drain unblocks
//     connection readers), but callers must serialize Shutdown* against
//     Close — a shutdown racing a close could hit a recycled descriptor.
//     net::LineServer holds a per-connection lifecycle mutex for exactly
//     this.
//   - Connection: a connected stream with buffered line reads.
//     ReadLine() blocks until one '\n'-terminated line arrives (the
//     terminator, and a preceding '\r', are stripped); a clean peer
//     close surfaces as kUnavailable, socket errors as kIoError, and a
//     line longer than max_line_bytes as kInvalidArgument (a protocol
//     guard — a peer streaming an unbounded "line" must not grow server
//     memory without limit). WriteAll() loops until every byte is
//     queued and never raises SIGPIPE.
//   - Listener: a bound+listening socket. Accept(timeout_ms) waits at
//     most that long and returns kUnavailable on timeout, so an accept
//     loop can interleave stop-flag checks without epoll machinery.
//
// Blocking I/O on purpose: every consumer (net::LineServer's reader
// threads, net::Client) owns a dedicated thread for its socket, which
// keeps the state machine trivial. The compute layers never touch these
// threads — batched inference stays on the parallel::ThreadPool.
#ifndef MCIRBM_NET_SOCKET_H_
#define MCIRBM_NET_SOCKET_H_

#include <atomic>
#include <cstddef>
#include <string>

#include "util/status.h"

namespace mcirbm::net {

/// Move-only owner of a POSIX socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept { *this = std::move(other); }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_.load(std::memory_order_acquire) >= 0; }
  int fd() const { return fd_.load(std::memory_order_acquire); }

  /// Disables further receives; a blocked read returns EOF. Safe to call
  /// from a thread other than the reader (this is how a graceful drain
  /// unblocks connection readers). No-op once closed.
  void ShutdownRead();
  /// Disables further sends (half-close: the peer sees EOF after
  /// consuming what was already written). No-op once closed.
  void ShutdownWrite();

  /// Closes the descriptor; idempotent.
  void Close();

 private:
  std::atomic<int> fd_{-1};
};

/// A connected byte stream with buffered, bounded line reads.
class Connection {
 public:
  Connection() = default;
  explicit Connection(Socket socket) : socket_(std::move(socket)) {}

  Connection(Connection&&) = default;
  Connection& operator=(Connection&&) = default;

  bool valid() const { return socket_.valid(); }

  /// Blocks until one full line arrives; strips the trailing '\n' (and a
  /// preceding '\r'). kUnavailable on clean EOF, kIoError on a socket
  /// error, kInvalidArgument when a line exceeds max_line_bytes.
  /// Single-reader: call from one thread at a time.
  Status ReadLine(std::string* line);

  /// Writes every byte of `bytes` (looping over partial sends); never
  /// raises SIGPIPE — a dead peer surfaces as kIoError instead.
  /// Single-writer: callers serialize (LineServer holds a per-connection
  /// write mutex so pipelined responses never interleave mid-line).
  Status WriteAll(const std::string& bytes);

  /// See Socket. ShutdownRead is the drain signal; ShutdownWrite is the
  /// client's half-close after its last request.
  void ShutdownRead() { socket_.ShutdownRead(); }
  void ShutdownWrite() { socket_.ShutdownWrite(); }
  void Close() { socket_.Close(); }

  /// Protocol guard for ReadLine (default 1 MiB).
  std::size_t max_line_bytes = 1 << 20;

 private:
  Socket socket_;
  std::string buffer_;  // bytes received but not yet returned
  bool eof_ = false;
};

/// A bound, listening TCP socket.
class Listener {
 public:
  Listener() = default;

  Listener(Listener&&) = default;
  Listener& operator=(Listener&&) = default;

  /// Binds `host:port` (IPv4 dotted quad or hostname; port 0 asks the
  /// kernel for an ephemeral port — read it back from port()) and
  /// listens. SO_REUSEADDR is set so a restarted server rebinds without
  /// waiting out TIME_WAIT.
  static StatusOr<Listener> Bind(const std::string& host, int port,
                                 int backlog = 64);

  bool valid() const { return socket_.valid(); }
  /// The actually-bound port (resolves port 0 requests).
  int port() const { return port_; }

  /// Waits up to `timeout_ms` for a connection. kUnavailable on timeout
  /// (poll again after checking your stop flag), kIoError when the
  /// listener is broken/closed.
  StatusOr<Socket> Accept(int timeout_ms);

  void Close() { socket_.Close(); }

 private:
  Socket socket_;
  int port_ = 0;
};

}  // namespace mcirbm::net

#endif  // MCIRBM_NET_SOCKET_H_
