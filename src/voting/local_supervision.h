// Self-learning local supervision: the product of multi-clustering
// integration (Section IV + V.A.2 of the paper).
//
// After several unsupervised clusterers partition the visible data, their
// partitions are aligned and reduced by a voting strategy; instances on
// which the ensemble agrees form K "locally credible clusters" that guide
// the constrict/disperse terms of the sls objective. Instances without
// consensus carry no supervision (cluster id -1).
#ifndef MCIRBM_VOTING_LOCAL_SUPERVISION_H_
#define MCIRBM_VOTING_LOCAL_SUPERVISION_H_

#include <cstddef>
#include <vector>

namespace mcirbm::voting {

/// Locally credible clusters over the visible data.
struct LocalSupervision {
  /// cluster id in [0, num_clusters) for credible instances, -1 otherwise.
  std::vector<int> cluster_of;
  int num_clusters = 0;

  /// Fraction of instances that received a credible cluster.
  double Coverage() const;

  /// Indices of credible instances, per cluster.
  std::vector<std::vector<std::size_t>> Members() const;

  /// Total number of credible instances.
  std::size_t NumCredible() const;

  /// Validates invariants (id range, non-empty when num_clusters > 0).
  void CheckValid() const;
};

}  // namespace mcirbm::voting

#endif  // MCIRBM_VOTING_LOCAL_SUPERVISION_H_
