#include "voting/local_supervision.h"

#include "clustering/partition.h"
#include "util/check.h"

namespace mcirbm::voting {

double LocalSupervision::Coverage() const {
  if (cluster_of.empty()) return 0.0;
  return static_cast<double>(clustering::NumAssigned(cluster_of)) /
         static_cast<double>(cluster_of.size());
}

std::vector<std::vector<std::size_t>> LocalSupervision::Members() const {
  return clustering::ClusterMembers(cluster_of, num_clusters);
}

std::size_t LocalSupervision::NumCredible() const {
  return clustering::NumAssigned(cluster_of);
}

void LocalSupervision::CheckValid() const {
  for (int c : cluster_of) {
    MCIRBM_CHECK(c >= -1 && c < num_clusters)
        << "local supervision id out of range";
  }
}

}  // namespace mcirbm::voting
