#include "voting/alignment.h"

#include "clustering/partition.h"
#include "metrics/hungarian.h"
#include "util/check.h"

namespace mcirbm::voting {

std::vector<int> AlignToReference(const std::vector<int>& reference,
                                  int k_reference,
                                  const std::vector<int>& other,
                                  int k_other) {
  MCIRBM_CHECK_EQ(reference.size(), other.size());
  // Overlap table: rows = other's clusters, cols = reference clusters.
  const auto table = clustering::ContingencyTable(other, k_other, reference,
                                                  k_reference);
  const std::vector<int> match = metrics::MaxWeightAssignment(table);
  // Build the id remap; unmatched `other` clusters get fresh ids.
  std::vector<int> remap(k_other, -1);
  int next_fresh = k_reference;
  for (int c = 0; c < k_other; ++c) {
    remap[c] = match[c] >= 0 ? match[c] : next_fresh++;
  }
  std::vector<int> out(other.size(), -1);
  for (std::size_t i = 0; i < other.size(); ++i) {
    if (other[i] >= 0) out[i] = remap[other[i]];
  }
  return out;
}

}  // namespace mcirbm::voting
