// Voting strategies that integrate multiple cluster divisions into a
// self-learning local supervision.
//
// The paper uses the *unanimous* strategy (Section V.A.2): an instance is
// credible only when every aligned partition assigns it the same cluster.
// Majority voting is provided as the ablation comparator (cf. the brain-
// segmentation fusion work the paper cites as closest related work).
#ifndef MCIRBM_VOTING_VOTE_H_
#define MCIRBM_VOTING_VOTE_H_

#include <vector>

#include "voting/local_supervision.h"

namespace mcirbm::voting {

/// How votes are reduced across aligned partitions.
enum class VoteStrategy {
  kUnanimous,  ///< all partitions must agree (paper's choice)
  kMajority,   ///< strict majority (> half) must agree
};

/// Integrates `partitions` (each a full assignment over the same n
/// instances, compact ids, -1 allowed) into a LocalSupervision.
///
/// Pipeline: partitions[0] is the reference; every other partition is
/// aligned onto it (max-overlap Hungarian); then per-instance votes are
/// reduced with `strategy`. Clusters ids in the result are re-compacted;
/// clusters smaller than `min_cluster_size` are dropped (their instances
/// become non-credible) since singleton "clusters" give the constrict term
/// nothing to work with.
LocalSupervision IntegratePartitions(
    const std::vector<std::vector<int>>& partitions, VoteStrategy strategy,
    int min_cluster_size = 2);

}  // namespace mcirbm::voting

#endif  // MCIRBM_VOTING_VOTE_H_
