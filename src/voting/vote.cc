#include "voting/vote.h"

#include <algorithm>
#include <unordered_map>

#include "clustering/partition.h"
#include "util/check.h"
#include "voting/alignment.h"

namespace mcirbm::voting {

LocalSupervision IntegratePartitions(
    const std::vector<std::vector<int>>& partitions, VoteStrategy strategy,
    int min_cluster_size) {
  MCIRBM_CHECK(!partitions.empty());
  const std::size_t n = partitions[0].size();
  for (const auto& p : partitions) MCIRBM_CHECK_EQ(p.size(), n);

  // Compact every partition, then align all onto partitions[0].
  std::vector<std::vector<int>> aligned;
  aligned.reserve(partitions.size());
  std::vector<int> reference = partitions[0];
  const int k_ref = clustering::CompactRelabel(&reference);
  aligned.push_back(reference);
  for (std::size_t m = 1; m < partitions.size(); ++m) {
    std::vector<int> other = partitions[m];
    const int k_other = clustering::CompactRelabel(&other);
    aligned.push_back(AlignToReference(reference, k_ref, other, k_other));
  }

  LocalSupervision sup;
  sup.cluster_of.assign(n, -1);
  const std::size_t votes_needed =
      strategy == VoteStrategy::kUnanimous
          ? aligned.size()
          : aligned.size() / 2 + 1;  // strict majority

  for (std::size_t i = 0; i < n; ++i) {
    // Count votes per candidate id at this instance.
    std::unordered_map<int, std::size_t> votes;
    for (const auto& p : aligned) {
      if (p[i] >= 0) ++votes[p[i]];
    }
    int winner = -1;
    std::size_t winner_votes = 0;
    for (const auto& [id, count] : votes) {
      if (count > winner_votes) {
        winner_votes = count;
        winner = id;
      }
    }
    if (winner >= 0 && winner_votes >= votes_needed) {
      sup.cluster_of[i] = winner;
    }
  }

  // Drop too-small credible clusters, then compact ids.
  sup.num_clusters = clustering::CompactRelabel(&sup.cluster_of);
  if (sup.num_clusters > 0) {
    const std::vector<int> sizes =
        clustering::ClusterSizes(sup.cluster_of, sup.num_clusters);
    for (int& c : sup.cluster_of) {
      if (c >= 0 && sizes[c] < min_cluster_size) c = -1;
    }
    sup.num_clusters = clustering::CompactRelabel(&sup.cluster_of);
  }
  sup.CheckValid();
  return sup;
}

}  // namespace mcirbm::voting
