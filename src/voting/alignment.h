// Partition alignment: maps cluster ids of one partition onto another's
// id space so that votes can be compared instance-wise.
//
// Different clusterers emit arbitrary (and possibly different numbers of)
// cluster ids; alignment finds the max-overlap one-to-one correspondence
// via the Hungarian algorithm on the contingency table.
#ifndef MCIRBM_VOTING_ALIGNMENT_H_
#define MCIRBM_VOTING_ALIGNMENT_H_

#include <vector>

namespace mcirbm::voting {

/// Relabels `other` so its ids maximally overlap `reference`.
///
/// Both inputs must be compact (ids 0..K-1; -1 allowed and preserved).
/// Clusters of `other` that receive no reference partner (when `other`
/// has more clusters) keep fresh ids past the reference's range.
/// Returns the relabeled copy of `other`.
std::vector<int> AlignToReference(const std::vector<int>& reference,
                                  int k_reference,
                                  const std::vector<int>& other,
                                  int k_other);

}  // namespace mcirbm::voting

#endif  // MCIRBM_VOTING_ALIGNMENT_H_
