// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (RBM init, Gibbs sampling,
// k-means++ seeding, dataset synthesis) takes an explicit Rng so that all
// experiments are reproducible from a single seed. The engine is
// xoshiro256++ seeded via SplitMix64, which also powers Split() for
// creating statistically independent child streams.
#ifndef MCIRBM_RNG_RNG_H_
#define MCIRBM_RNG_RNG_H_

#include <cstdint>
#include <vector>

namespace mcirbm::rng {

/// xoshiro256++ engine with convenience distributions.
class Rng {
 public:
  /// Seeds deterministically from a 64-bit seed (SplitMix64 expansion).
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n); requires n > 0.
  std::size_t UniformIndex(std::size_t n);

  /// Standard normal via Box–Muller (cached spare value).
  double Gaussian();

  /// Normal with the given mean and stddev.
  double Gaussian(double mean, double stddev);

  /// Bernoulli draw: true with probability p.
  bool Bernoulli(double p);

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      const std::size_t j = UniformIndex(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Random permutation of {0, ..., n-1}.
  std::vector<std::size_t> Permutation(std::size_t n);

  /// Draws an index from an unnormalized non-negative weight vector.
  /// Falls back to uniform if all weights are zero.
  std::size_t Categorical(const std::vector<double>& weights);

  /// Derives an independent child generator (for per-dataset / per-repeat
  /// streams that must not interact).
  Rng Split();

 private:
  std::uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace mcirbm::rng

#endif  // MCIRBM_RNG_RNG_H_
