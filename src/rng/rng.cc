#include "rng/rng.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace mcirbm::rng {
namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

std::size_t Rng::UniformIndex(std::size_t n) {
  MCIRBM_CHECK_GT(n, 0u);
  // Rejection-free for our purposes; modulo bias is negligible for n << 2^64.
  return static_cast<std::size_t>(NextUint64() % n);
}

double Rng::Gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<std::size_t> Rng::Permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  Shuffle(&perm);
  return perm;
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  MCIRBM_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    MCIRBM_DCHECK(w >= 0.0);
    total += w;
  }
  if (total <= 0) return UniformIndex(weights.size());
  double target = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0) return i;
  }
  return weights.size() - 1;  // floating-point leftover
}

Rng Rng::Split() { return Rng(NextUint64()); }

}  // namespace mcirbm::rng
