// Affinity Propagation (Frey & Dueck, Science 2007; the paper's "AP"
// baseline, ref [59]).
//
// Message passing between responsibilities r(i,k) and availabilities
// a(i,k) on a negative-squared-distance similarity matrix. The shared
// preference (self-similarity) controls the number of exemplars; the
// default is the median similarity. An optional bisection mode searches a
// preference that yields a requested cluster count, since the paper's
// evaluation compares against K-class ground truth.
#ifndef MCIRBM_CLUSTERING_AFFINITY_PROPAGATION_H_
#define MCIRBM_CLUSTERING_AFFINITY_PROPAGATION_H_

#include "clustering/clusterer.h"

namespace mcirbm::clustering {

/// Affinity Propagation configuration.
struct AffinityPropagationConfig {
  int max_iterations = 200;     ///< message-passing cap
  int convergence_window = 15;  ///< stop after this many stable iterations
  double damping = 0.7;         ///< message damping in [0.5, 1)

  /// If > 0, bisection-search the preference so the exemplar count equals
  /// this value (capped at `preference_search_steps` probes); otherwise use
  /// the median-similarity preference and accept whatever count emerges.
  int target_clusters = 0;
  int preference_search_steps = 12;
};

/// Deterministic Affinity Propagation clusterer (seed used only to break
/// exact message ties via tiny similarity jitter).
class AffinityPropagation : public Clusterer {
 public:
  explicit AffinityPropagation(const AffinityPropagationConfig& config);

  std::string name() const override { return "AP"; }
  ClusteringResult Cluster(const linalg::Matrix& x,
                           std::uint64_t seed) const override;

 private:
  AffinityPropagationConfig config_;
};

}  // namespace mcirbm::clustering

#endif  // MCIRBM_CLUSTERING_AFFINITY_PROPAGATION_H_
