#include "clustering/agglomerative.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "linalg/ops.h"
#include "parallel/thread_pool.h"
#include "util/check.h"

namespace mcirbm::clustering {

const char* LinkageName(Linkage linkage) {
  switch (linkage) {
    case Linkage::kSingle:
      return "single";
    case Linkage::kComplete:
      return "complete";
    case Linkage::kAverage:
      return "average";
    case Linkage::kWard:
      return "ward";
  }
  return "unknown";
}

std::string Agglomerative::name() const {
  return std::string("Agglomerative-") + LinkageName(linkage_);
}

namespace {

// Lance–Williams update: distance from the merged cluster (a ∪ b) to any
// other cluster c as a function of d(a,c), d(b,c), d(a,b) and sizes.
double MergedDistance(Linkage linkage, double dac, double dbc, double dab,
                      double na, double nb, double nc) {
  switch (linkage) {
    case Linkage::kSingle:
      return std::min(dac, dbc);
    case Linkage::kComplete:
      return std::max(dac, dbc);
    case Linkage::kAverage:
      return (na * dac + nb * dbc) / (na + nb);
    case Linkage::kWard: {
      // Ward over squared distances: α_a·d(a,c) + α_b·d(b,c) − β·d(a,b).
      const double total = na + nb + nc;
      return ((na + nc) * dac + (nb + nc) * dbc - nc * dab) / total;
    }
  }
  return 0;
}

// Fixed shard width for the nearest-pair scans and merge updates.
constexpr std::size_t kRowGrain = 64;

// Closest active pair in one row range; ties resolve to the first pair in
// row-major scan order (strict <), matching the serial scan exactly.
struct BestPair {
  double dist = std::numeric_limits<double>::infinity();
  std::size_t i = 0;
  std::size_t j = 0;
};

}  // namespace

ClusteringResult Agglomerative::Cluster(const linalg::Matrix& x,
                                        std::uint64_t /*seed*/) const {
  const std::size_t n = x.rows();
  MCIRBM_CHECK_GT(n, 0u) << "empty input";
  MCIRBM_CHECK_GE(num_clusters_, 1);
  const std::size_t k =
      std::min(static_cast<std::size_t>(num_clusters_), n);

  // Pairwise distances. Ward works on squared Euclidean distances; the
  // other linkages use plain Euclidean.
  linalg::Matrix dist = linalg::PairwiseSquaredDistances(x);
  if (linkage_ != Linkage::kWard) {
    linalg::Apply(&dist, [](double v) { return std::sqrt(std::max(v, 0.0)); });
  }

  std::vector<bool> active(n, true);
  std::vector<double> cluster_size(n, 1.0);
  // Union-find-ish parent chain resolved at the end.
  std::vector<int> merged_into(n, -1);

  std::size_t num_active = n;
  int merges = 0;
  while (num_active > k) {
    // Find the closest active pair. O(n²) scan per merge (total O(n³)),
    // sharded over rows; partials combine in shard order with strict <,
    // which reproduces the serial scan's first-minimum tie-breaking at
    // any thread count.
    const BestPair found = parallel::ShardedReduce(
        n, kRowGrain, BestPair{},
        [&](std::size_t begin, std::size_t end) {
          BestPair local;
          for (std::size_t i = begin; i < end; ++i) {
            if (!active[i]) continue;
            for (std::size_t j = i + 1; j < n; ++j) {
              if (!active[j]) continue;
              if (dist(i, j) < local.dist) {
                local.dist = dist(i, j);
                local.i = i;
                local.j = j;
              }
            }
          }
          return local;
        },
        [](BestPair acc, const BestPair& shard) {
          return shard.dist < acc.dist ? shard : acc;
        });
    const std::size_t bi = found.i, bj = found.j;

    // Merge bj into bi; update distances from bi to every other cluster
    // (disjoint (bi,c)/(c,bi) writes per c).
    const double dab = dist(bi, bj);
    parallel::ParallelFor(
        n, kRowGrain, [&](std::size_t begin, std::size_t end) {
          for (std::size_t c = begin; c < end; ++c) {
            if (!active[c] || c == bi || c == bj) continue;
            const double updated = MergedDistance(
                linkage_, dist(bi, c), dist(bj, c), dab, cluster_size[bi],
                cluster_size[bj], cluster_size[c]);
            dist(bi, c) = updated;
            dist(c, bi) = updated;
          }
        });
    cluster_size[bi] += cluster_size[bj];
    active[bj] = false;
    merged_into[bj] = static_cast<int>(bi);
    --num_active;
    ++merges;
  }

  // Resolve every instance to its surviving root, then compact ids.
  ClusteringResult result;
  result.assignment.assign(n, -1);
  std::vector<int> root_id(n, -1);
  int next_id = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = i;
    while (merged_into[r] >= 0) r = static_cast<std::size_t>(merged_into[r]);
    if (root_id[r] < 0) root_id[r] = next_id++;
    result.assignment[i] = root_id[r];
  }
  result.num_clusters = next_id;
  result.iterations = merges;
  result.converged = true;
  return result;
}

}  // namespace mcirbm::clustering
