#include "clustering/affinity_propagation.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "clustering/partition.h"
#include "linalg/ops.h"
#include "linalg/stats.h"
#include "parallel/thread_pool.h"
#include "rng/rng.h"
#include "util/check.h"

namespace mcirbm::clustering {
namespace {

// Runs message passing with a fixed preference; returns the exemplar-based
// assignment (not yet compact).
struct ApRun {
  std::vector<int> exemplar_of;  // exemplar index per instance
  int num_exemplars = 0;
  int iterations = 0;
  bool converged = false;
  double net_similarity = 0.0;
};

ApRun RunMessagePassing(const linalg::Matrix& s,
                        const AffinityPropagationConfig& cfg) {
  const std::size_t n = s.rows();
  linalg::Matrix r(n, n);  // responsibilities
  linalg::Matrix a(n, n);  // availabilities
  std::vector<int> prev_exemplars(n, -1);
  int stable = 0;
  ApRun run;

  for (int iter = 0; iter < cfg.max_iterations; ++iter) {
    run.iterations = iter + 1;
    // --- responsibilities ---
    // Row i's update reads a/s and writes only r's row i: a parallel map.
    parallel::ParallelFor(n, 32, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        // Find top-2 of a(i,k)+s(i,k) over k.
        double best = -std::numeric_limits<double>::max();
        double second = best;
        std::size_t best_k = 0;
        const double* arow = a.data() + i * n;
        const double* srow = s.data() + i * n;
        for (std::size_t k = 0; k < n; ++k) {
          const double v = arow[k] + srow[k];
          if (v > best) {
            second = best;
            best = v;
            best_k = k;
          } else if (v > second) {
            second = v;
          }
        }
        double* rrow = r.data() + i * n;
        for (std::size_t k = 0; k < n; ++k) {
          const double cap = (k == best_k) ? second : best;
          const double newr = srow[k] - cap;
          rrow[k] = cfg.damping * rrow[k] + (1 - cfg.damping) * newr;
        }
      }
    });
    // --- availabilities ---
    // Column sums of max(0, r(i,k)) for i != k, plus r(k,k). Partitioned
    // by column; each colsum[k] accumulates rows in serial order.
    std::vector<double> colsum(n, 0.0);
    parallel::ParallelFor(n, 32, [&](std::size_t k0, std::size_t k1) {
      for (std::size_t i = 0; i < n; ++i) {
        const double* rrow = r.data() + i * n;
        for (std::size_t k = k0; k < k1; ++k) {
          if (i == k) continue;
          colsum[k] += std::max(0.0, rrow[k]);
        }
      }
    });
    parallel::ParallelFor(n, 32, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        double* arow = a.data() + i * n;
        const double* rrow = r.data() + i * n;
        for (std::size_t k = 0; k < n; ++k) {
          double newa;
          if (i == k) {
            newa = colsum[k];
          } else {
            const double without_i = colsum[k] - std::max(0.0, rrow[k]);
            newa = std::min(0.0, r(k, k) + without_i);
          }
          arow[k] = cfg.damping * arow[k] + (1 - cfg.damping) * newa;
        }
      }
    });
    // --- exemplar extraction & convergence check ---
    std::vector<int> exemplars(n);
    parallel::ParallelFor(n, 32, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        double best = -std::numeric_limits<double>::max();
        std::size_t best_k = i;
        const double* arow = a.data() + i * n;
        const double* rrow = r.data() + i * n;
        for (std::size_t k = 0; k < n; ++k) {
          const double v = arow[k] + rrow[k];
          if (v > best) {
            best = v;
            best_k = k;
          }
        }
        exemplars[i] = static_cast<int>(best_k);
      }
    });
    if (exemplars == prev_exemplars) {
      if (++stable >= cfg.convergence_window) {
        run.converged = true;
        run.exemplar_of = std::move(exemplars);
        break;
      }
    } else {
      stable = 0;
    }
    prev_exemplars = exemplars;
    run.exemplar_of = std::move(exemplars);
  }

  // A point is an exemplar iff it elects itself; re-route every point to
  // its most similar actual exemplar for a consistent final assignment.
  std::vector<std::size_t> exemplar_set;
  for (std::size_t i = 0; i < n; ++i) {
    if (run.exemplar_of[i] == static_cast<int>(i)) exemplar_set.push_back(i);
  }
  if (exemplar_set.empty()) {
    // Degenerate (all availabilities collapsed): pick the point with the
    // highest self-responsibility as the single exemplar.
    std::size_t best_i = 0;
    double best = -std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < n; ++i) {
      if (r(i, i) > best) {
        best = r(i, i);
        best_i = i;
      }
    }
    exemplar_set.push_back(best_i);
  }
  for (std::size_t i = 0; i < n; ++i) {
    double best = -std::numeric_limits<double>::max();
    std::size_t best_e = exemplar_set[0];
    for (std::size_t e : exemplar_set) {
      if (s(i, e) > best) {
        best = s(i, e);
        best_e = e;
      }
    }
    run.exemplar_of[i] = static_cast<int>(i == best_e ? best_e : best_e);
    run.net_similarity += s(i, best_e);
  }
  run.num_exemplars = static_cast<int>(exemplar_set.size());
  return run;
}

}  // namespace

AffinityPropagation::AffinityPropagation(
    const AffinityPropagationConfig& config)
    : config_(config) {
  MCIRBM_CHECK(config.damping >= 0.5 && config.damping < 1.0);
  MCIRBM_CHECK_GT(config.max_iterations, 0);
}

ClusteringResult AffinityPropagation::Cluster(const linalg::Matrix& x,
                                              std::uint64_t seed) const {
  const std::size_t n = x.rows();
  MCIRBM_CHECK_GT(n, 0u);
  if (n == 1) {
    // Message passing is undefined for one point; the answer is trivial.
    ClusteringResult trivial;
    trivial.assignment = {0};
    trivial.num_clusters = 1;
    trivial.converged = true;
    return trivial;
  }

  // Similarity: negative squared Euclidean distance, plus tiny jitter to
  // break message-passing oscillation ties (Frey & Dueck's trick).
  linalg::Matrix s = linalg::PairwiseSquaredDistances(x);
  std::vector<double> off_diag;
  off_diag.reserve(n * (n - 1));
  rng::Rng rng(seed ^ 0x6170726f70ULL);  // "aprop" stream tag
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      s(i, j) = -s(i, j);
      if (i != j) off_diag.push_back(s(i, j));
      s(i, j) += 1e-12 * rng.Gaussian();
    }
  }
  const double median_sim = linalg::Percentile(off_diag, 50.0);
  double lo_sim = median_sim, hi_sim = median_sim;
  for (double v : off_diag) {
    lo_sim = std::min(lo_sim, v);
    hi_sim = std::max(hi_sim, v);
  }

  auto run_with_pref = [&](double pref) {
    linalg::Matrix sp = s;
    for (std::size_t i = 0; i < n; ++i) sp(i, i) = pref;
    return RunMessagePassing(sp, config_);
  };

  ApRun best_run;
  if (config_.target_clusters <= 0) {
    best_run = run_with_pref(median_sim);
  } else {
    // Bisection on preference: more negative -> fewer exemplars.
    double lo = lo_sim * 4.0;              // very few clusters
    double hi = std::min(hi_sim, -1e-9);   // many clusters
    ApRun lo_run = run_with_pref(lo);
    best_run = lo_run;
    int best_gap = std::abs(lo_run.num_exemplars - config_.target_clusters);
    for (int step = 0; step < config_.preference_search_steps && best_gap > 0;
         ++step) {
      const double mid = 0.5 * (lo + hi);
      ApRun mid_run = run_with_pref(mid);
      const int gap =
          std::abs(mid_run.num_exemplars - config_.target_clusters);
      if (gap < best_gap ||
          (gap == best_gap && mid_run.converged && !best_run.converged)) {
        best_gap = gap;
        best_run = mid_run;
      }
      if (mid_run.num_exemplars > config_.target_clusters) {
        hi = mid;  // too many clusters: make preference more negative
      } else if (mid_run.num_exemplars < config_.target_clusters) {
        lo = mid;
      } else {
        break;
      }
    }
  }

  ClusteringResult result;
  result.assignment = best_run.exemplar_of;
  result.num_clusters = CompactRelabel(&result.assignment);
  result.iterations = best_run.iterations;
  result.converged = best_run.converged;
  result.objective = best_run.net_similarity;
  return result;
}

}  // namespace mcirbm::clustering
