// Agglomerative hierarchical clustering (Lance–Williams recurrence).
//
// An additional integration member for the multi-clustering voting
// ensemble: hierarchical merges give a structurally different bias from
// the paper's three base clusterers (centroid-based K-means, density-based
// DP, exemplar-based AP), which is exactly what unanimous voting wants —
// diverse voters whose agreement is informative.
#ifndef MCIRBM_CLUSTERING_AGGLOMERATIVE_H_
#define MCIRBM_CLUSTERING_AGGLOMERATIVE_H_

#include <string>

#include "clustering/clusterer.h"

namespace mcirbm::clustering {

/// Cluster-distance update rule used when two clusters merge.
enum class Linkage {
  kSingle,    ///< min pairwise distance (chains easily)
  kComplete,  ///< max pairwise distance (compact, diameter-bound)
  kAverage,   ///< unweighted mean pairwise distance (UPGMA)
  kWard,      ///< minimum within-cluster variance increase
};

/// Returns a short name ("single", "ward", ...).
const char* LinkageName(Linkage linkage);

/// Bottom-up merging until `num_clusters` remain. O(n³) time / O(n²)
/// memory over the full distance matrix — fine at the paper's dataset
/// sizes (≤ ~1k instances).
class Agglomerative : public Clusterer {
 public:
  Agglomerative(int num_clusters, Linkage linkage)
      : num_clusters_(num_clusters), linkage_(linkage) {}

  std::string name() const override;

  /// Deterministic; `seed` is ignored.
  ClusteringResult Cluster(const linalg::Matrix& x,
                           std::uint64_t seed) const override;

  Linkage linkage() const { return linkage_; }

 private:
  int num_clusters_;
  Linkage linkage_;
};

}  // namespace mcirbm::clustering

#endif  // MCIRBM_CLUSTERING_AGGLOMERATIVE_H_
