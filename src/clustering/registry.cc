#include "clustering/registry.h"

#include <utility>

#include "clustering/affinity_propagation.h"
#include "clustering/agglomerative.h"
#include "clustering/dbscan.h"
#include "clustering/density_peaks.h"
#include "clustering/gmm.h"
#include "clustering/kmeans.h"
#include "clustering/spectral.h"

namespace mcirbm::clustering {
namespace {

// dp: k, dc_percentile, gaussian_kernel
StatusOr<std::unique_ptr<Clusterer>> MakeDensityPeaks(const ParamMap& p) {
  Status s = p.ExpectOnly({"k", "dc_percentile", "gaussian_kernel"});
  if (!s.ok()) return s;
  DensityPeaksConfig cfg;
  MCIRBM_ASSIGN_OR_RETURN(cfg.k, p.GetInt("k", cfg.k));
  MCIRBM_ASSIGN_OR_RETURN(cfg.dc_percentile,
                      p.GetDouble("dc_percentile", cfg.dc_percentile));
  MCIRBM_ASSIGN_OR_RETURN(cfg.gaussian_kernel,
                      p.GetBool("gaussian_kernel", cfg.gaussian_kernel));
  if (cfg.k <= 0) return Status::InvalidArgument("dp: k must be positive");
  return std::unique_ptr<Clusterer>(new DensityPeaks(cfg));
}

// kmeans: k, max_iterations, restarts, tol
StatusOr<std::unique_ptr<Clusterer>> MakeKMeans(const ParamMap& p) {
  Status s = p.ExpectOnly({"k", "max_iterations", "restarts", "tol"});
  if (!s.ok()) return s;
  KMeansConfig cfg;
  MCIRBM_ASSIGN_OR_RETURN(cfg.k, p.GetInt("k", cfg.k));
  MCIRBM_ASSIGN_OR_RETURN(cfg.max_iterations,
                      p.GetInt("max_iterations", cfg.max_iterations));
  MCIRBM_ASSIGN_OR_RETURN(cfg.restarts, p.GetInt("restarts", cfg.restarts));
  MCIRBM_ASSIGN_OR_RETURN(cfg.tol, p.GetDouble("tol", cfg.tol));
  if (cfg.k <= 0) {
    return Status::InvalidArgument("kmeans: k must be positive");
  }
  if (cfg.restarts <= 0) {
    return Status::InvalidArgument("kmeans: restarts must be positive");
  }
  return std::unique_ptr<Clusterer>(new KMeans(cfg));
}

// ap: k (target cluster count; 0 = median preference), damping,
// max_iterations, convergence_window, preference_search_steps
StatusOr<std::unique_ptr<Clusterer>> MakeAffinityPropagation(
    const ParamMap& p) {
  Status s = p.ExpectOnly({"k", "damping", "max_iterations",
                           "convergence_window", "preference_search_steps"});
  if (!s.ok()) return s;
  AffinityPropagationConfig cfg;
  MCIRBM_ASSIGN_OR_RETURN(cfg.target_clusters,
                      p.GetInt("k", cfg.target_clusters));
  MCIRBM_ASSIGN_OR_RETURN(cfg.damping, p.GetDouble("damping", cfg.damping));
  MCIRBM_ASSIGN_OR_RETURN(cfg.max_iterations,
                      p.GetInt("max_iterations", cfg.max_iterations));
  MCIRBM_ASSIGN_OR_RETURN(cfg.convergence_window,
                      p.GetInt("convergence_window", cfg.convergence_window));
  MCIRBM_ASSIGN_OR_RETURN(
      cfg.preference_search_steps,
      p.GetInt("preference_search_steps", cfg.preference_search_steps));
  if (cfg.damping < 0.5 || cfg.damping >= 1.0) {
    return Status::InvalidArgument("ap: damping must be in [0.5, 1)");
  }
  return std::unique_ptr<Clusterer>(new AffinityPropagation(cfg));
}

// agglomerative: k, linkage=single|complete|average|ward
StatusOr<std::unique_ptr<Clusterer>> MakeAgglomerative(const ParamMap& p) {
  Status s = p.ExpectOnly({"k", "linkage"});
  if (!s.ok()) return s;
  int k = 2;
  std::string linkage_name;
  MCIRBM_ASSIGN_OR_RETURN(k, p.GetInt("k", k));
  MCIRBM_ASSIGN_OR_RETURN(linkage_name, p.GetString("linkage", "ward"));
  if (k <= 0) {
    return Status::InvalidArgument("agglomerative: k must be positive");
  }
  Linkage linkage;
  if (linkage_name == "single") {
    linkage = Linkage::kSingle;
  } else if (linkage_name == "complete") {
    linkage = Linkage::kComplete;
  } else if (linkage_name == "average") {
    linkage = Linkage::kAverage;
  } else if (linkage_name == "ward") {
    linkage = Linkage::kWard;
  } else {
    return Status::InvalidArgument(
        "agglomerative: unknown linkage '" + linkage_name +
        "' (single|complete|average|ward)");
  }
  return std::unique_ptr<Clusterer>(new Agglomerative(k, linkage));
}

// dbscan: eps, min_points, eps_quantile ("k" accepted and ignored — the
// algorithm discovers its own cluster count)
StatusOr<std::unique_ptr<Clusterer>> MakeDbscan(const ParamMap& p) {
  Status s = p.ExpectOnly({"k", "eps", "min_points", "eps_quantile"});
  if (!s.ok()) return s;
  Dbscan::Options opt;
  MCIRBM_ASSIGN_OR_RETURN(opt.eps, p.GetDouble("eps", opt.eps));
  MCIRBM_ASSIGN_OR_RETURN(opt.min_points, p.GetInt("min_points", opt.min_points));
  MCIRBM_ASSIGN_OR_RETURN(opt.eps_quantile,
                      p.GetDouble("eps_quantile", opt.eps_quantile));
  if (opt.min_points <= 0) {
    return Status::InvalidArgument("dbscan: min_points must be positive");
  }
  return std::unique_ptr<Clusterer>(new Dbscan(opt));
}

// gmm: k, max_iterations, tolerance, variance_floor
StatusOr<std::unique_ptr<Clusterer>> MakeGaussianMixture(const ParamMap& p) {
  Status s =
      p.ExpectOnly({"k", "max_iterations", "tolerance", "variance_floor"});
  if (!s.ok()) return s;
  GaussianMixture::Options opt;
  MCIRBM_ASSIGN_OR_RETURN(opt.num_components, p.GetInt("k", opt.num_components));
  MCIRBM_ASSIGN_OR_RETURN(opt.max_iterations,
                      p.GetInt("max_iterations", opt.max_iterations));
  MCIRBM_ASSIGN_OR_RETURN(opt.tolerance,
                      p.GetDouble("tolerance", opt.tolerance));
  MCIRBM_ASSIGN_OR_RETURN(opt.variance_floor,
                      p.GetDouble("variance_floor", opt.variance_floor));
  if (opt.num_components <= 0) {
    return Status::InvalidArgument("gmm: k must be positive");
  }
  return std::unique_ptr<Clusterer>(new GaussianMixture(opt));
}

// spectral: k, sigma, knn, kmeans_restarts
StatusOr<std::unique_ptr<Clusterer>> MakeSpectral(const ParamMap& p) {
  Status s = p.ExpectOnly({"k", "sigma", "knn", "kmeans_restarts"});
  if (!s.ok()) return s;
  Spectral::Options opt;
  MCIRBM_ASSIGN_OR_RETURN(opt.num_clusters, p.GetInt("k", opt.num_clusters));
  MCIRBM_ASSIGN_OR_RETURN(opt.sigma, p.GetDouble("sigma", opt.sigma));
  MCIRBM_ASSIGN_OR_RETURN(opt.knn, p.GetInt("knn", opt.knn));
  MCIRBM_ASSIGN_OR_RETURN(opt.kmeans_restarts,
                      p.GetInt("kmeans_restarts", opt.kmeans_restarts));
  if (opt.num_clusters <= 0) {
    return Status::InvalidArgument("spectral: k must be positive");
  }
  return std::unique_ptr<Clusterer>(new Spectral(opt));
}

}  // namespace

ClustererRegistry::ClustererRegistry() : NamedRegistry("clusterer") {
  AddBuiltin("dp", MakeDensityPeaks);
  AddBuiltin("kmeans", MakeKMeans);
  AddBuiltin("ap", MakeAffinityPropagation);
  AddBuiltin("agglomerative", MakeAgglomerative);
  AddBuiltin("dbscan", MakeDbscan);
  AddBuiltin("gmm", MakeGaussianMixture);
  AddBuiltin("spectral", MakeSpectral);
}

ClustererRegistry& ClustererRegistry::Global() {
  static ClustererRegistry* registry = new ClustererRegistry();
  return *registry;
}

}  // namespace mcirbm::clustering
