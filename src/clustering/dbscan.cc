#include "clustering/dbscan.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "linalg/ops.h"
#include "linalg/stats.h"
#include "parallel/thread_pool.h"
#include "util/check.h"

namespace mcirbm::clustering {

double Dbscan::SelfTuneEps(const linalg::Matrix& x, int min_points,
                           double quantile) {
  const std::size_t n = x.rows();
  MCIRBM_CHECK_GT(n, 0u);
  const linalg::Matrix d2 = linalg::PairwiseSquaredDistances(x);
  const std::size_t kth =
      std::min(static_cast<std::size_t>(std::max(min_points - 1, 1)), n - 1);
  std::vector<double> kdist(n);
  parallel::ParallelFor(n, 64, [&](std::size_t begin, std::size_t end) {
    std::vector<double> row(n);
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t j = 0; j < n; ++j) row[j] = d2(i, j);
      std::nth_element(row.begin(), row.begin() + kth, row.end());
      kdist[i] = std::sqrt(std::max(row[kth], 0.0));
    }
  });
  const double eps = linalg::Percentile(kdist, quantile);
  // Degenerate data (all duplicates) would give eps = 0; any tiny positive
  // radius then behaves identically.
  return eps > 0 ? eps : 1e-12;
}

ClusteringResult Dbscan::Cluster(const linalg::Matrix& x,
                                 std::uint64_t /*seed*/) const {
  const std::size_t n = x.rows();
  MCIRBM_CHECK_GT(n, 0u) << "empty input";
  MCIRBM_CHECK_GE(options_.min_points, 1);

  const double eps =
      options_.eps > 0
          ? options_.eps
          : SelfTuneEps(x, options_.min_points, options_.eps_quantile);
  const double eps2 = eps * eps;

  const linalg::Matrix d2 = linalg::PairwiseSquaredDistances(x);
  std::vector<std::vector<std::size_t>> neighbours(n);
  // Each instance owns its neighbour list, so the O(n²) range scan is an
  // embarrassingly parallel map.
  parallel::ParallelFor(n, 64, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (d2(i, j) <= eps2) neighbours[i].push_back(j);  // includes self
      }
    }
  });

  constexpr int kUnvisited = -2;
  constexpr int kNoise = -1;
  std::vector<int> label(n, kUnvisited);
  int next_cluster = 0;
  int bfs_rounds = 0;

  for (std::size_t i = 0; i < n; ++i) {
    if (label[i] != kUnvisited) continue;
    if (neighbours[i].size() <
        static_cast<std::size_t>(options_.min_points)) {
      label[i] = kNoise;
      continue;
    }
    // New cluster seeded at core point i; expand over density-reachable
    // points breadth-first.
    const int cluster = next_cluster++;
    label[i] = cluster;
    std::deque<std::size_t> frontier(neighbours[i].begin(),
                                     neighbours[i].end());
    while (!frontier.empty()) {
      ++bfs_rounds;
      const std::size_t q = frontier.front();
      frontier.pop_front();
      if (label[q] == kNoise) label[q] = cluster;  // border point
      if (label[q] != kUnvisited) continue;
      label[q] = cluster;
      if (neighbours[q].size() >=
          static_cast<std::size_t>(options_.min_points)) {
        frontier.insert(frontier.end(), neighbours[q].begin(),
                        neighbours[q].end());
      }
    }
  }

  ClusteringResult result;
  result.assignment = std::move(label);
  result.num_clusters = next_cluster;
  result.iterations = bfs_rounds;
  result.converged = true;
  return result;
}

}  // namespace mcirbm::clustering
