#include "clustering/partition.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace mcirbm::clustering {

int NumClusters(const std::vector<int>& assignment) {
  int max_id = -1;
  for (int a : assignment) max_id = std::max(max_id, a);
  return max_id + 1;
}

int CompactRelabel(std::vector<int>* assignment) {
  std::unordered_map<int, int> remap;
  for (int& a : *assignment) {
    if (a < 0) {
      a = -1;
      continue;
    }
    auto [it, inserted] =
        remap.try_emplace(a, static_cast<int>(remap.size()));
    a = it->second;
  }
  return static_cast<int>(remap.size());
}

std::vector<int> ClusterSizes(const std::vector<int>& assignment,
                              int num_clusters) {
  std::vector<int> sizes(num_clusters, 0);
  for (int a : assignment) {
    if (a < 0) continue;
    MCIRBM_CHECK_LT(a, num_clusters);
    ++sizes[a];
  }
  return sizes;
}

std::vector<std::vector<std::size_t>> ClusterMembers(
    const std::vector<int>& assignment, int num_clusters) {
  std::vector<std::vector<std::size_t>> members(num_clusters);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    const int a = assignment[i];
    if (a < 0) continue;
    MCIRBM_CHECK_LT(a, num_clusters);
    members[a].push_back(i);
  }
  return members;
}

std::vector<std::vector<int>> ContingencyTable(const std::vector<int>& pa,
                                               int ka,
                                               const std::vector<int>& pb,
                                               int kb) {
  MCIRBM_CHECK_EQ(pa.size(), pb.size());
  std::vector<std::vector<int>> table(ka, std::vector<int>(kb, 0));
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i] < 0 || pb[i] < 0) continue;
    MCIRBM_CHECK_LT(pa[i], ka);
    MCIRBM_CHECK_LT(pb[i], kb);
    ++table[pa[i]][pb[i]];
  }
  return table;
}

std::size_t NumAssigned(const std::vector<int>& assignment) {
  std::size_t n = 0;
  for (int a : assignment) {
    if (a >= 0) ++n;
  }
  return n;
}

}  // namespace mcirbm::clustering
