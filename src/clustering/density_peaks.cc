#include "clustering/density_peaks.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "linalg/ops.h"
#include "linalg/stats.h"
#include "parallel/thread_pool.h"
#include "util/check.h"

namespace mcirbm::clustering {

DensityPeaks::DensityPeaks(const DensityPeaksConfig& config)
    : config_(config) {
  MCIRBM_CHECK_GT(config.k, 0);
  MCIRBM_CHECK(config.dc_percentile > 0 && config.dc_percentile <= 100);
}

ClusteringResult DensityPeaks::Cluster(const linalg::Matrix& x,
                                       std::uint64_t /*seed*/) const {
  const std::size_t n = x.rows();
  MCIRBM_CHECK_GE(n, static_cast<std::size_t>(config_.k));

  // Pairwise distances (n x n).
  linalg::Matrix d2 = linalg::PairwiseSquaredDistances(x);
  linalg::Matrix dist(n, n);
  {
    // Full-row sqrt map: each element is written once by its row's shard;
    // sqrt of the symmetric d2 gives a symmetric dist.
    parallel::ParallelFor(n, 64, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        double* drow = dist.data() + i * n;
        const double* d2row = d2.data() + i * n;
        for (std::size_t j = 0; j < n; ++j) drow[j] = std::sqrt(d2row[j]);
      }
    });
    std::vector<double> upper;
    upper.reserve(n * (n - 1) / 2);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) upper.push_back(dist(i, j));
    }
    // Cutoff distance d_c: percentile of all pairwise distances.
    const double dc = n > 1 ? std::max(linalg::Percentile(
                                           std::move(upper),
                                           config_.dc_percentile),
                                       1e-12)
                            : 1.0;

    // Local density rho. The pairwise form accumulates rho[i] over
    // increasing j (pairs (j,i) for j<i, then (i,j) for j>i); the per-row
    // scan below visits the same symmetric contributions in the same
    // order, so it reproduces the serial result exactly while making each
    // rho[i] the property of a single shard. (This evaluates each
    // symmetric kernel twice — the price of bit-compatibility with the
    // triangular serial pass; revisit if DP ever dominates a profile.)
    std::vector<double> rho(n, 0.0);
    parallel::ParallelFor(n, 64, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const double* drow = dist.data() + i * n;
        double acc = 0;
        for (std::size_t j = 0; j < n; ++j) {
          if (j == i) continue;
          if (config_.gaussian_kernel) {
            const double r = drow[j] / dc;
            acc += std::exp(-r * r);
          } else {
            acc += drow[j] < dc ? 1.0 : 0.0;
          }
        }
        rho[i] = acc;
      }
    });

    // delta: distance to nearest higher-density point; the densest point
    // gets the global max distance. nn_higher records that neighbor.
    std::vector<double> delta(n, 0.0);
    std::vector<int> nn_higher(n, -1);
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return rho[a] > rho[b];
    });
    // Max over a fixed sharding; max is exact, so the result is the
    // serial one regardless of the combine order.
    const double max_dist = parallel::ShardedReduce(
        n, 64, 0.0,
        [&](std::size_t begin, std::size_t end) {
          double local = 0;
          for (std::size_t i = begin; i < end; ++i) {
            const double* drow = dist.data() + i * n;
            for (std::size_t j = i + 1; j < n; ++j) {
              local = std::max(local, drow[j]);
            }
          }
          return local;
        },
        [](double a, double b) { return std::max(a, b); });
    // Each rank's nearest-higher-density scan reads only `order` and
    // `dist` and writes its own delta/nn_higher slot — a parallel map.
    // The inner scan keeps the serial r2 order, so distance ties resolve
    // to the same neighbour.
    parallel::ParallelFor(n, 16, [&](std::size_t begin, std::size_t end) {
      for (std::size_t rank = begin; rank < end; ++rank) {
        const std::size_t i = order[rank];
        if (rank == 0) {
          delta[i] = max_dist;
          continue;
        }
        double best = std::numeric_limits<double>::max();
        int best_j = -1;
        for (std::size_t r2 = 0; r2 < rank; ++r2) {
          const std::size_t j = order[r2];
          if (dist(i, j) < best) {
            best = dist(i, j);
            best_j = static_cast<int>(j);
          }
        }
        delta[i] = best;
        nn_higher[i] = best_j;
      }
    });

    // Pick the top-k gamma = rho * delta points as centers.
    std::vector<std::size_t> by_gamma(n);
    std::iota(by_gamma.begin(), by_gamma.end(), 0);
    std::sort(by_gamma.begin(), by_gamma.end(),
              [&](std::size_t a, std::size_t b) {
                return rho[a] * delta[a] > rho[b] * delta[b];
              });

    ClusteringResult result;
    result.assignment.assign(n, -1);
    result.num_clusters = config_.k;
    result.converged = true;
    result.iterations = 1;
    for (int c = 0; c < config_.k; ++c) {
      result.assignment[by_gamma[c]] = c;
    }
    // Assign remaining points in decreasing density order to the cluster of
    // their nearest higher-density neighbor (single pass suffices because
    // the neighbor is always denser, hence already assigned).
    for (std::size_t rank = 0; rank < n; ++rank) {
      const std::size_t i = order[rank];
      if (result.assignment[i] >= 0) continue;
      MCIRBM_CHECK_GE(nn_higher[i], 0);
      result.assignment[i] = result.assignment[nn_higher[i]];
      MCIRBM_CHECK_GE(result.assignment[i], 0);
    }
    // Objective: mean within-assignment distance to center proxy (sum of
    // rho as a stand-in is not meaningful; report negative total gamma of
    // centers so larger = better centers).
    double gamma_total = 0;
    for (int c = 0; c < config_.k; ++c) {
      const std::size_t i = by_gamma[c];
      gamma_total += rho[i] * delta[i];
    }
    result.objective = gamma_total;
    return result;
  }
}

}  // namespace mcirbm::clustering
