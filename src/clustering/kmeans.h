// Lloyd's K-means with k-means++ initialization (Lloyd 1982; the paper's
// "K-means" baseline, ref [58]).
#ifndef MCIRBM_CLUSTERING_KMEANS_H_
#define MCIRBM_CLUSTERING_KMEANS_H_

#include "clustering/clusterer.h"

namespace mcirbm::clustering {

/// K-means configuration.
struct KMeansConfig {
  int k = 2;                 ///< number of clusters
  int max_iterations = 100;  ///< Lloyd iterations cap
  int restarts = 3;          ///< best-of-N restarts by SSE
  double tol = 1e-6;         ///< relative SSE improvement stop threshold
};

/// Lloyd's algorithm with k-means++ seeding and best-of-N restarts.
class KMeans : public Clusterer {
 public:
  explicit KMeans(const KMeansConfig& config);

  std::string name() const override { return "K-means"; }
  ClusteringResult Cluster(const linalg::Matrix& x,
                           std::uint64_t seed) const override;

  /// Final centroids of the last Cluster() call are not retained (the class
  /// is stateless); use ComputeCentroids on the result when needed.
  static linalg::Matrix ComputeCentroids(const linalg::Matrix& x,
                                         const std::vector<int>& assignment,
                                         int k);

 private:
  KMeansConfig config_;
};

}  // namespace mcirbm::clustering

#endif  // MCIRBM_CLUSTERING_KMEANS_H_
