// Gaussian mixture model clustering via EM with diagonal covariances.
//
// A model-based integration member: soft-assignment EM has a different
// failure mode from K-means (it can stretch clusters along axes), adding
// voter diversity to the multi-clustering integration. Initialized from
// k-means++ like sklearn's default.
#ifndef MCIRBM_CLUSTERING_GMM_H_
#define MCIRBM_CLUSTERING_GMM_H_

#include <string>
#include <vector>

#include "clustering/clusterer.h"

namespace mcirbm::clustering {

/// Diagonal-covariance GMM fit with EM; hard labels by max responsibility.
class GaussianMixture : public Clusterer {
 public:
  struct Options {
    int num_components = 2;
    int max_iterations = 100;
    /// Stop when the mean log-likelihood improves by less than this.
    double tolerance = 1e-5;
    /// Variance floor added to every diagonal entry (stability on
    /// collapsed components / constant features).
    double variance_floor = 1e-6;
  };

  explicit GaussianMixture(const Options& options) : options_(options) {}

  std::string name() const override { return "GMM"; }

  /// `seed` drives the k-means++ initialization.
  ClusteringResult Cluster(const linalg::Matrix& x,
                           std::uint64_t seed) const override;

  /// Per-instance responsibilities from the last fitted model are not
  /// retained (stateless API); FitSoft exposes them for callers that
  /// need soft assignments.
  struct SoftResult {
    ClusteringResult hard;
    linalg::Matrix responsibilities;  ///< n x k, rows sum to 1
    std::vector<double> log_likelihood_trace;  ///< per EM iteration
    std::vector<double> weights;  ///< final mixing weights, sum to 1
  };
  SoftResult FitSoft(const linalg::Matrix& x, std::uint64_t seed) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace mcirbm::clustering

#endif  // MCIRBM_CLUSTERING_GMM_H_
