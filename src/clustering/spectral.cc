#include "clustering/spectral.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "clustering/kmeans.h"
#include "linalg/eigen.h"
#include "linalg/ops.h"
#include "linalg/stats.h"
#include "parallel/thread_pool.h"
#include "util/check.h"

namespace mcirbm::clustering {
namespace {

// Fixed shard width for the per-row sweeps (affinity, kNN, Laplacian);
// boundaries depend only on n, so results are thread-count independent.
constexpr std::size_t kRowGrain = 32;

// Median pairwise (non-self) distance, the standard RBF width heuristic.
// Each row's strictly-upper-triangle distances land at a precomputed
// offset, so the fill parallelizes with disjoint writes.
double MedianPairwiseDistance(const linalg::Matrix& d2) {
  const std::size_t n = d2.rows();
  if (n < 2) return 1.0;
  std::vector<double> dists(n * (n - 1) / 2);
  parallel::ParallelFor(
      n, kRowGrain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          // Rows above i contribute Σ_{r<i} (n-1-r) elements.
          const std::size_t offset = i * (n - 1) - i * (i - 1) / 2;
          for (std::size_t j = i + 1; j < n; ++j) {
            dists[offset + j - i - 1] =
                std::sqrt(std::max(d2(i, j), 0.0));
          }
        }
      });
  const double median = linalg::Percentile(std::move(dists), 50.0);
  return median > 0 ? median : 1.0;
}

// Keeps w(i,j) only when j is among i's k nearest or i among j's
// (symmetric kNN graph); diagonal is zeroed either way.
void SparsifyToKnn(linalg::Matrix* w, const linalg::Matrix& d2, int knn) {
  const std::size_t n = w->rows();
  const std::size_t k = std::min<std::size_t>(knn, n - 1);
  std::vector<std::vector<bool>> keep(n, std::vector<bool>(n, false));
  // Phase 1: each row ranks its own neighbors (disjoint keep[i] writes).
  parallel::ParallelFor(
      n, kRowGrain, [&](std::size_t begin, std::size_t end) {
        std::vector<std::size_t> order(n);
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t j = 0; j < n; ++j) order[j] = j;
          std::partial_sort(order.begin(), order.begin() + k + 1,
                            order.end(),
                            [&](std::size_t a, std::size_t b) {
                              return d2(i, a) < d2(i, b);
                            });
          std::size_t kept = 0;
          for (std::size_t idx = 0; idx < n && kept < k; ++idx) {
            const std::size_t j = order[idx];
            if (j == i) continue;
            keep[i][j] = true;
            ++kept;
          }
        }
      });
  // Phase 2: symmetric prune; keep[] is now read-only.
  parallel::ParallelFor(
      n, kRowGrain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            if (i == j || (!keep[i][j] && !keep[j][i])) (*w)(i, j) = 0.0;
          }
        }
      });
}

}  // namespace

linalg::Matrix Spectral::Embed(const linalg::Matrix& x) const {
  const std::size_t n = x.rows();
  MCIRBM_CHECK_GT(n, 0u) << "empty input";
  const std::size_t k =
      std::min(static_cast<std::size_t>(options_.num_clusters), n);

  const linalg::Matrix d2 = linalg::PairwiseSquaredDistances(x);
  const double sigma =
      options_.sigma > 0 ? options_.sigma : MedianPairwiseDistance(d2);
  const double inv = 1.0 / (2 * sigma * sigma);

  // RBF affinity with zero diagonal.
  linalg::Matrix w(n, n);
  parallel::ParallelFor(
      n, kRowGrain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            w(i, j) = i == j ? 0.0 : std::exp(-d2(i, j) * inv);
          }
        }
      });
  if (options_.knn > 0) SparsifyToKnn(&w, d2, options_.knn);

  // Symmetric normalized Laplacian L = I − D^{-1/2} W D^{-1/2}.
  std::vector<double> inv_sqrt_degree(n);
  parallel::ParallelFor(
      n, kRowGrain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          double deg = 0;
          for (std::size_t j = 0; j < n; ++j) deg += w(i, j);
          inv_sqrt_degree[i] = deg > 0 ? 1.0 / std::sqrt(deg) : 0.0;
        }
      });
  linalg::Matrix laplacian(n, n);
  parallel::ParallelFor(
      n, kRowGrain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            const double norm =
                inv_sqrt_degree[i] * w(i, j) * inv_sqrt_degree[j];
            laplacian(i, j) = (i == j ? 1.0 : 0.0) - norm;
          }
        }
      });

  const linalg::EigenDecomposition eig =
      linalg::JacobiEigenSymmetric(laplacian);
  MCIRBM_CHECK(eig.converged) << "Laplacian eigendecomposition diverged";
  linalg::Matrix embedding = linalg::BottomEigenvectors(eig, k);

  // Row-normalize (Ng-Jordan-Weiss step); zero rows stay zero.
  parallel::ParallelFor(
      n, kRowGrain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          auto row = embedding.Row(i);
          double norm = 0;
          for (double v : row) norm += v * v;
          norm = std::sqrt(norm);
          if (norm > 0) {
            for (double& v : row) v /= norm;
          }
        }
      });
  return embedding;
}

ClusteringResult Spectral::Cluster(const linalg::Matrix& x,
                                   std::uint64_t seed) const {
  const linalg::Matrix embedding = Embed(x);
  KMeansConfig config;
  config.k = std::min<int>(options_.num_clusters,
                           static_cast<int>(x.rows()));
  config.restarts = options_.kmeans_restarts;
  const KMeans kmeans(config);
  ClusteringResult result = kmeans.Cluster(embedding, seed);
  return result;
}

}  // namespace mcirbm::clustering
