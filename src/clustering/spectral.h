// Spectral clustering on the normalized graph Laplacian
// (Ng, Jordan & Weiss 2002).
//
// The graph-based integration member: clusters by connectivity rather
// than by compactness, so it votes differently from K-means/GMM on
// manifold-shaped data — the same motivation behind the GraphRBM line of
// related work the paper cites.
#ifndef MCIRBM_CLUSTERING_SPECTRAL_H_
#define MCIRBM_CLUSTERING_SPECTRAL_H_

#include <string>

#include "clustering/clusterer.h"

namespace mcirbm::clustering {

/// Normalized-cut spectral clustering: RBF (or kNN-connectivity) affinity,
/// symmetric normalized Laplacian, bottom-k eigenvectors (via the Jacobi
/// solver), row normalization, then k-means in the embedding.
class Spectral : public Clusterer {
 public:
  struct Options {
    int num_clusters = 2;
    /// RBF width; <= 0 self-tunes to the median pairwise distance.
    double sigma = 0.0;
    /// If > 0, sparsify the affinity to the symmetric kNN graph before
    /// building the Laplacian (keeps local structure, drops far links).
    int knn = 0;
    /// K-means restarts inside the embedding.
    int kmeans_restarts = 3;
  };

  explicit Spectral(const Options& options) : options_(options) {}

  std::string name() const override { return "Spectral"; }

  /// `seed` drives the embedded k-means.
  ClusteringResult Cluster(const linalg::Matrix& x,
                           std::uint64_t seed) const override;

  /// The spectral embedding (n x k row-normalized eigenvector matrix) —
  /// exposed for tests and diagnostics.
  linalg::Matrix Embed(const linalg::Matrix& x) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace mcirbm::clustering

#endif  // MCIRBM_CLUSTERING_SPECTRAL_H_
