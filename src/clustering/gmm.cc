#include "clustering/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "clustering/kmeans.h"
#include "linalg/ops.h"
#include "util/check.h"

namespace mcirbm::clustering {
namespace {

// log Σ exp(v) computed stably (shift by max).
double LogSumExp(std::span<const double> v) {
  double mx = -std::numeric_limits<double>::infinity();
  for (double x : v) mx = std::max(mx, x);
  if (!std::isfinite(mx)) return mx;
  double sum = 0;
  for (double x : v) sum += std::exp(x - mx);
  return mx + std::log(sum);
}

}  // namespace

GaussianMixture::SoftResult GaussianMixture::FitSoft(
    const linalg::Matrix& x, std::uint64_t seed) const {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const int k = options_.num_components;
  MCIRBM_CHECK_GT(n, 0u) << "empty input";
  MCIRBM_CHECK_GE(k, 1);
  MCIRBM_CHECK_GE(options_.variance_floor, 0.0);

  // Init from a short k-means run: means = centroids, shared variance.
  KMeansConfig km_config;
  km_config.k = k;
  km_config.max_iterations = 20;
  km_config.restarts = 1;
  const KMeans kmeans(km_config);
  const ClusteringResult init = kmeans.Cluster(x, seed);
  linalg::Matrix means = KMeans::ComputeCentroids(x, init.assignment, k);

  // Per-component diagonal variances and mixing weights.
  linalg::Matrix vars(k, d, 1.0);
  std::vector<double> weights(k, 1.0 / k);
  {
    // Start variances at the per-feature global variance (floored).
    std::vector<double> mean = linalg::ColMeans(x);
    std::vector<double> var(d, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = x.Row(i);
      for (std::size_t j = 0; j < d; ++j) {
        const double c = row[j] - mean[j];
        var[j] += c * c;
      }
    }
    for (std::size_t j = 0; j < d; ++j) {
      var[j] = std::max(var[j] / n, options_.variance_floor);
    }
    for (int c = 0; c < k; ++c) {
      for (std::size_t j = 0; j < d; ++j) vars(c, j) = var[j];
    }
  }

  SoftResult out;
  out.responsibilities.Resize(n, k);
  linalg::Matrix& resp = out.responsibilities;
  std::vector<double> log_prob(k);

  double previous_ll = -std::numeric_limits<double>::infinity();
  int iteration = 0;
  bool converged = false;
  for (; iteration < options_.max_iterations; ++iteration) {
    // E step: responsibilities and data log-likelihood.
    double ll = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = x.Row(i);
      for (int c = 0; c < k; ++c) {
        double lp = std::log(std::max(weights[c], 1e-300));
        for (std::size_t j = 0; j < d; ++j) {
          const double v = vars(c, j);
          const double diff = row[j] - means(c, j);
          lp += -0.5 * (std::log(2 * M_PI * v) + diff * diff / v);
        }
        log_prob[c] = lp;
      }
      const double lse = LogSumExp(log_prob);
      ll += lse;
      for (int c = 0; c < k; ++c) resp(i, c) = std::exp(log_prob[c] - lse);
    }
    ll /= static_cast<double>(n);
    out.log_likelihood_trace.push_back(ll);
    if (ll - previous_ll < options_.tolerance && iteration > 0) {
      converged = true;
      break;
    }
    previous_ll = ll;

    // M step: weights, means, variances from responsibilities.
    for (int c = 0; c < k; ++c) {
      double nk = 0;
      for (std::size_t i = 0; i < n; ++i) nk += resp(i, c);
      // A fully starved component keeps its parameters (it can recover
      // only by data shifting; re-seeding would break determinism).
      if (nk < 1e-10) continue;
      weights[c] = nk / static_cast<double>(n);
      for (std::size_t j = 0; j < d; ++j) {
        double m = 0;
        for (std::size_t i = 0; i < n; ++i) m += resp(i, c) * x(i, j);
        means(c, j) = m / nk;
      }
      for (std::size_t j = 0; j < d; ++j) {
        double v = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const double diff = x(i, j) - means(c, j);
          v += resp(i, c) * diff * diff;
        }
        vars(c, j) = std::max(v / nk, options_.variance_floor);
      }
    }
  }

  // Hard labels by max responsibility; compact away empty components.
  out.hard.assignment.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    int best = 0;
    for (int c = 1; c < k; ++c) {
      if (resp(i, c) > resp(i, best)) best = c;
    }
    out.hard.assignment[i] = best;
  }
  std::vector<int> remap(k, -1);
  int next = 0;
  for (auto& id : out.hard.assignment) {
    if (remap[id] < 0) remap[id] = next++;
    id = remap[id];
  }
  out.hard.num_clusters = next;
  out.hard.iterations = iteration;
  out.hard.converged = converged;
  out.hard.objective =
      out.log_likelihood_trace.empty() ? 0 : out.log_likelihood_trace.back();
  return out;
}

ClusteringResult GaussianMixture::Cluster(const linalg::Matrix& x,
                                          std::uint64_t seed) const {
  return FitSoft(x, seed).hard;
}

}  // namespace mcirbm::clustering
