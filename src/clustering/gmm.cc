#include "clustering/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "clustering/kmeans.h"
#include "linalg/ops.h"
#include "parallel/thread_pool.h"
#include "util/check.h"

namespace mcirbm::clustering {
namespace {

// Fixed shard width for the per-instance E/M sweeps: boundaries depend
// only on n, so the reduction trees (and results) are identical at any
// thread count.
constexpr std::size_t kRowGrain = 128;

// log Σ exp(v) computed stably (shift by max).
double LogSumExp(std::span<const double> v) {
  double mx = -std::numeric_limits<double>::infinity();
  for (double x : v) mx = std::max(mx, x);
  if (!std::isfinite(mx)) return mx;
  double sum = 0;
  for (double x : v) sum += std::exp(x - mx);
  return mx + std::log(sum);
}

// Per-shard partial of an M-step accumulation pass: per-component
// responsibility mass and a k x d weighted sum.
struct MStepPartial {
  std::vector<double> nk;
  linalg::Matrix sums;

  MStepPartial() = default;
  MStepPartial(int k, std::size_t d) : nk(k, 0.0), sums(k, d) {}

  MStepPartial& operator+=(const MStepPartial& other) {
    for (std::size_t c = 0; c < nk.size(); ++c) nk[c] += other.nk[c];
    for (std::size_t i = 0; i < sums.size(); ++i) {
      sums.data()[i] += other.sums.data()[i];
    }
    return *this;
  }
};

}  // namespace

GaussianMixture::SoftResult GaussianMixture::FitSoft(
    const linalg::Matrix& x, std::uint64_t seed) const {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const int k = options_.num_components;
  MCIRBM_CHECK_GT(n, 0u) << "empty input";
  MCIRBM_CHECK_GE(k, 1);
  MCIRBM_CHECK_GE(options_.variance_floor, 0.0);

  // Init from a short k-means run: means = centroids, shared variance.
  KMeansConfig km_config;
  km_config.k = k;
  km_config.max_iterations = 20;
  km_config.restarts = 1;
  const KMeans kmeans(km_config);
  const ClusteringResult init = kmeans.Cluster(x, seed);
  linalg::Matrix means = KMeans::ComputeCentroids(x, init.assignment, k);

  // Per-component diagonal variances and mixing weights.
  linalg::Matrix vars(k, d, 1.0);
  std::vector<double> weights(k, 1.0 / k);
  {
    // Start variances at the per-feature global variance (floored).
    std::vector<double> mean = linalg::ColMeans(x);
    std::vector<double> var = parallel::ShardedReduce(
        n, kRowGrain, std::vector<double>(d, 0.0),
        [&](std::size_t begin, std::size_t end) {
          std::vector<double> partial(d, 0.0);
          for (std::size_t i = begin; i < end; ++i) {
            const auto row = x.Row(i);
            for (std::size_t j = 0; j < d; ++j) {
              const double c = row[j] - mean[j];
              partial[j] += c * c;
            }
          }
          return partial;
        },
        [](std::vector<double> a, std::vector<double> b) {
          for (std::size_t j = 0; j < a.size(); ++j) a[j] += b[j];
          return a;
        });
    for (std::size_t j = 0; j < d; ++j) {
      var[j] = std::max(var[j] / n, options_.variance_floor);
    }
    for (int c = 0; c < k; ++c) {
      for (std::size_t j = 0; j < d; ++j) vars(c, j) = var[j];
    }
  }

  SoftResult out;
  out.responsibilities.Resize(n, k);
  linalg::Matrix& resp = out.responsibilities;

  double previous_ll = -std::numeric_limits<double>::infinity();
  int iteration = 0;
  bool converged = false;
  for (; iteration < options_.max_iterations; ++iteration) {
    // E step: responsibilities and data log-likelihood. Rows are
    // independent; the LL total reduces over fixed shards.
    double ll = parallel::ShardedSum(
        n, kRowGrain, [&](std::size_t begin, std::size_t end) {
          std::vector<double> log_prob(k);
          double shard_ll = 0;
          for (std::size_t i = begin; i < end; ++i) {
            const auto row = x.Row(i);
            for (int c = 0; c < k; ++c) {
              double lp = std::log(std::max(weights[c], 1e-300));
              for (std::size_t j = 0; j < d; ++j) {
                const double v = vars(c, j);
                const double diff = row[j] - means(c, j);
                lp += -0.5 * (std::log(2 * M_PI * v) + diff * diff / v);
              }
              log_prob[c] = lp;
            }
            const double lse = LogSumExp(log_prob);
            shard_ll += lse;
            for (int c = 0; c < k; ++c) {
              resp(i, c) = std::exp(log_prob[c] - lse);
            }
          }
          return shard_ll;
        });
    ll /= static_cast<double>(n);
    out.log_likelihood_trace.push_back(ll);
    // Converge only on a small *non-negative* improvement. A drop (possible
    // when the variance floor binds or a component starves) is not
    // convergence — it stays visible in the trace and EM keeps iterating.
    const double improvement = ll - previous_ll;
    if (iteration > 0 && improvement >= 0 &&
        improvement < options_.tolerance) {
      converged = true;
      break;
    }
    previous_ll = ll;

    // M step: weights, means, variances from responsibilities. Both
    // passes accumulate over instance shards and combine partials in
    // shard order (thread-count independent).
    MStepPartial mean_acc = parallel::ShardedReduce(
        n, kRowGrain, MStepPartial(k, d),
        [&](std::size_t begin, std::size_t end) {
          MStepPartial partial(k, d);
          for (std::size_t i = begin; i < end; ++i) {
            const double* xrow = x.data() + i * d;
            for (int c = 0; c < k; ++c) {
              const double r = resp(i, c);
              partial.nk[c] += r;
              double* srow = partial.sums.data() + c * d;
              for (std::size_t j = 0; j < d; ++j) srow[j] += r * xrow[j];
            }
          }
          return partial;
        },
        [](MStepPartial a, const MStepPartial& b) {
          a += b;
          return a;
        });

    // A fully starved component keeps its mean/variance (it can recover
    // only by data shifting; re-seeding would break determinism).
    std::vector<bool> starved(k, false);
    for (int c = 0; c < k; ++c) {
      if (mean_acc.nk[c] < 1e-10) {
        starved[c] = true;
        continue;
      }
      weights[c] = mean_acc.nk[c] / static_cast<double>(n);
      for (std::size_t j = 0; j < d; ++j) {
        means(c, j) = mean_acc.sums(c, j) / mean_acc.nk[c];
      }
    }
    // Renormalize the mixing weights: a starved component's stale weight
    // would otherwise leave Σ weights ≠ 1 after the others update.
    double weight_sum = 0;
    for (int c = 0; c < k; ++c) weight_sum += weights[c];
    for (int c = 0; c < k; ++c) weights[c] /= weight_sum;

    MStepPartial var_acc = parallel::ShardedReduce(
        n, kRowGrain, MStepPartial(k, d),
        [&](std::size_t begin, std::size_t end) {
          MStepPartial partial(k, d);
          for (std::size_t i = begin; i < end; ++i) {
            const double* xrow = x.data() + i * d;
            for (int c = 0; c < k; ++c) {
              if (starved[c]) continue;
              const double r = resp(i, c);
              double* srow = partial.sums.data() + c * d;
              for (std::size_t j = 0; j < d; ++j) {
                const double diff = xrow[j] - means(c, j);
                srow[j] += r * diff * diff;
              }
            }
          }
          return partial;
        },
        [](MStepPartial a, const MStepPartial& b) {
          a += b;
          return a;
        });
    for (int c = 0; c < k; ++c) {
      if (starved[c]) continue;
      for (std::size_t j = 0; j < d; ++j) {
        vars(c, j) =
            std::max(var_acc.sums(c, j) / mean_acc.nk[c],
                     options_.variance_floor);
      }
    }
  }
  out.weights = weights;

  // Hard labels by max responsibility (parallel, disjoint writes); the
  // first-occurrence id compaction stays serial to preserve label order.
  out.hard.assignment.assign(n, 0);
  parallel::ParallelFor(
      n, kRowGrain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          int best = 0;
          for (int c = 1; c < k; ++c) {
            if (resp(i, c) > resp(i, best)) best = c;
          }
          out.hard.assignment[i] = best;
        }
      });
  std::vector<int> remap(k, -1);
  int next = 0;
  for (auto& id : out.hard.assignment) {
    if (remap[id] < 0) remap[id] = next++;
    id = remap[id];
  }
  out.hard.num_clusters = next;
  out.hard.iterations = iteration;
  out.hard.converged = converged;
  out.hard.objective =
      out.log_likelihood_trace.empty() ? 0 : out.log_likelihood_trace.back();
  return out;
}

ClusteringResult GaussianMixture::Cluster(const linalg::Matrix& x,
                                          std::uint64_t seed) const {
  return FitSoft(x, seed).hard;
}

}  // namespace mcirbm::clustering
