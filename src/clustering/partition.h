// Partition utilities shared by clusterers, metrics and voting.
//
// A partition is a vector<int> of cluster assignments; entries may be -1
// to mark "unassigned" (used by local supervisions after voting).
#ifndef MCIRBM_CLUSTERING_PARTITION_H_
#define MCIRBM_CLUSTERING_PARTITION_H_

#include <cstddef>
#include <vector>

namespace mcirbm::clustering {

/// Number of distinct non-negative cluster ids (assumes compact labeling
/// 0..K-1; use CompactRelabel first if unsure).
int NumClusters(const std::vector<int>& assignment);

/// Remaps arbitrary non-negative ids to a compact 0..K-1 range (first-seen
/// order); -1 entries are preserved. Returns the number of clusters K.
int CompactRelabel(std::vector<int>* assignment);

/// Sizes of clusters 0..K-1 (ignores -1 entries).
std::vector<int> ClusterSizes(const std::vector<int>& assignment,
                              int num_clusters);

/// Member indices of each cluster 0..K-1 (ignores -1 entries).
std::vector<std::vector<std::size_t>> ClusterMembers(
    const std::vector<int>& assignment, int num_clusters);

/// Contingency table C[a][b] = #instances with id `a` in `pa` and id `b`
/// in `pb`. Both partitions must be compact; -1 entries in either side are
/// skipped. Dimensions are (ka, kb).
std::vector<std::vector<int>> ContingencyTable(const std::vector<int>& pa,
                                               int ka,
                                               const std::vector<int>& pb,
                                               int kb);

/// Count of assigned (non -1) entries.
std::size_t NumAssigned(const std::vector<int>& assignment);

}  // namespace mcirbm::clustering

#endif  // MCIRBM_CLUSTERING_PARTITION_H_
