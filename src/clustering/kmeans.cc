#include "clustering/kmeans.h"

#include <cmath>
#include <limits>

#include "linalg/ops.h"
#include "parallel/thread_pool.h"
#include "rng/rng.h"
#include "util/check.h"

namespace mcirbm::clustering {
namespace {

// Fixed shard width for the assignment-step SSE reduction: boundaries are
// independent of the thread count, so the reduction tree (and result) is
// identical serial vs parallel.
constexpr std::size_t kAssignGrain = 256;

// One full k-means run (k-means++ init + Lloyd) returning SSE.
ClusteringResult RunOnce(const linalg::Matrix& x, const KMeansConfig& cfg,
                         rng::Rng* rng) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const int k = cfg.k;

  // --- k-means++ seeding ---
  linalg::Matrix centroids(k, d);
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  const std::size_t first = rng->UniformIndex(n);
  std::copy_n(x.data() + first * d, d, centroids.data());
  for (int c = 1; c < k; ++c) {
    const auto prev = centroids.Row(c - 1);
    parallel::ParallelFor(
        n, kAssignGrain, [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            const double dist = linalg::SquaredDistance(x.Row(i), prev);
            if (dist < min_dist[i]) min_dist[i] = dist;
          }
        });
    const std::size_t next = rng->Categorical(min_dist);
    std::copy_n(x.data() + next * d, d, centroids.data() + c * d);
  }

  ClusteringResult result;
  result.assignment.assign(n, 0);
  result.num_clusters = k;

  double prev_sse = std::numeric_limits<double>::max();
  for (int iter = 0; iter < cfg.max_iterations; ++iter) {
    // Assignment step: per-instance nearest centroid is an exact (and
    // hence order-independent) argmin; the SSE total is reduced over
    // fixed shards so it is thread-count independent.
    const double sse = parallel::ShardedSum(
        x.rows(), kAssignGrain, [&](std::size_t begin, std::size_t end) {
          double shard_sse = 0;
          for (std::size_t i = begin; i < end; ++i) {
            double best = std::numeric_limits<double>::max();
            int best_c = 0;
            for (int c = 0; c < k; ++c) {
              const double dist =
                  linalg::SquaredDistance(x.Row(i), centroids.Row(c));
              if (dist < best) {
                best = dist;
                best_c = c;
              }
            }
            result.assignment[i] = best_c;
            shard_sse += best;
          }
          return shard_sse;
        });
    result.objective = sse;
    result.iterations = iter + 1;

    // Update step; empty clusters are re-seeded at the farthest point.
    centroids.Fill(0.0);
    std::vector<int> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const int c = result.assignment[i];
      ++counts[c];
      double* crow = centroids.data() + static_cast<std::size_t>(c) * d;
      const double* xrow = x.data() + i * d;
      for (std::size_t j = 0; j < d; ++j) crow[j] += xrow[j];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed: farthest point from its centroid.
        double far_d = -1;
        std::size_t far_i = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const int ci = result.assignment[i];
          if (counts[ci] <= 1) continue;
          double* crow =
              centroids.data() + static_cast<std::size_t>(ci) * d;
          (void)crow;
          const double dist = linalg::SquaredDistance(
              x.Row(i), centroids.Row(ci));
          if (dist > far_d) {
            far_d = dist;
            far_i = i;
          }
        }
        std::copy_n(x.data() + far_i * d, d,
                    centroids.data() + static_cast<std::size_t>(c) * d);
        counts[c] = 1;
        continue;
      }
      double* crow = centroids.data() + static_cast<std::size_t>(c) * d;
      for (std::size_t j = 0; j < d; ++j) crow[j] /= counts[c];
    }

    // Convergence: relative SSE improvement below tolerance.
    if (prev_sse < std::numeric_limits<double>::max()) {
      const double rel = (prev_sse - sse) / std::max(prev_sse, 1e-300);
      if (rel >= 0 && rel < cfg.tol) {
        result.converged = true;
        break;
      }
    }
    prev_sse = sse;
  }
  return result;
}

}  // namespace

KMeans::KMeans(const KMeansConfig& config) : config_(config) {
  MCIRBM_CHECK_GT(config.k, 0);
  MCIRBM_CHECK_GT(config.max_iterations, 0);
  MCIRBM_CHECK_GT(config.restarts, 0);
}

ClusteringResult KMeans::Cluster(const linalg::Matrix& x,
                                 std::uint64_t seed) const {
  MCIRBM_CHECK_GE(x.rows(), static_cast<std::size_t>(config_.k))
      << "fewer instances than clusters";
  const std::uint64_t stream_seed = seed ^ 0x6b6d65616e73ULL;  // "kmeans"
  if (!parallel::Deterministic() && config_.restarts > 1 &&
      !parallel::InParallelRegion()) {
    // Opt-in fast path: restarts fan out on independent ShardRng
    // substreams. Reproducible for a fixed seed (streams and the best-of
    // selection depend only on (seed, restart index)) but not identical
    // to the serial Split() stream below.
    std::vector<ClusteringResult> candidates(config_.restarts);
    parallel::ParallelFor(
        config_.restarts, 1, [&](std::size_t begin, std::size_t end) {
          for (std::size_t r = begin; r < end; ++r) {
            rng::Rng run_rng = parallel::ShardRng(stream_seed, r);
            candidates[r] = RunOnce(x, config_, &run_rng);
          }
        });
    std::size_t best_r = 0;
    for (std::size_t r = 1; r < candidates.size(); ++r) {
      if (candidates[r].objective < candidates[best_r].objective) best_r = r;
    }
    return std::move(candidates[best_r]);
  }
  rng::Rng rng(stream_seed);
  ClusteringResult best;
  best.objective = std::numeric_limits<double>::max();
  for (int r = 0; r < config_.restarts; ++r) {
    rng::Rng run_rng = rng.Split();
    ClusteringResult candidate = RunOnce(x, config_, &run_rng);
    if (candidate.objective < best.objective) best = std::move(candidate);
  }
  return best;
}

linalg::Matrix KMeans::ComputeCentroids(const linalg::Matrix& x,
                                        const std::vector<int>& assignment,
                                        int k) {
  MCIRBM_CHECK_EQ(x.rows(), assignment.size());
  linalg::Matrix centroids(k, x.cols());
  std::vector<int> counts(k, 0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const int c = assignment[i];
    if (c < 0) continue;
    MCIRBM_CHECK_LT(c, k);
    ++counts[c];
    double* crow = centroids.data() + static_cast<std::size_t>(c) * x.cols();
    const double* xrow = x.data() + i * x.cols();
    for (std::size_t j = 0; j < x.cols(); ++j) crow[j] += xrow[j];
  }
  for (int c = 0; c < k; ++c) {
    if (counts[c] == 0) continue;
    double* crow = centroids.data() + static_cast<std::size_t>(c) * x.cols();
    for (std::size_t j = 0; j < x.cols(); ++j) crow[j] /= counts[c];
  }
  return centroids;
}

}  // namespace mcirbm::clustering
