// String-keyed factory registry over every clusterer in this module.
//
// The registry is the extension seam for the multi-clustering integration:
// the supervision stage, the eval harness, and the CLI all resolve voters
// and evaluation clusterers by name here, so a new algorithm becomes
// available everywhere by registering one factory. Built-in names:
//
//   dp | kmeans | ap | agglomerative | dbscan | gmm | spectral
//
// Every factory accepts the shared "k" parameter (requested cluster count;
// density-based algorithms that find their own count ignore it) plus the
// algorithm-specific keys documented next to each factory in registry.cc.
// Unknown names and malformed parameters come back as non-OK Status — the
// registry never aborts on user input.
#ifndef MCIRBM_CLUSTERING_REGISTRY_H_
#define MCIRBM_CLUSTERING_REGISTRY_H_

#include <memory>

#include "clustering/clusterer.h"
#include "util/param_map.h"
#include "util/registry.h"
#include "util/status.h"

namespace mcirbm::clustering {

/// Process-wide name -> factory table for Clusterer implementations.
/// Create resolves the clusterer registered under a name and instantiates
/// it with a ParamMap; NotFound for unknown names, factory-specific errors
/// (unknown or malformed parameters) pass through.
class ClustererRegistry
    : public NamedRegistry<StatusOr<std::unique_ptr<Clusterer>>(
          const ParamMap&)> {
 public:
  /// The singleton, pre-populated with the built-in clusterers.
  static ClustererRegistry& Global();

 private:
  ClustererRegistry();
};

}  // namespace mcirbm::clustering

#endif  // MCIRBM_CLUSTERING_REGISTRY_H_
