// Density Peaks clustering (Rodriguez & Laio, Science 2014; the paper's
// "DP" baseline, ref [57]).
//
// Each point gets a local density rho (Gaussian kernel with cutoff d_c set
// at a percentile of pairwise distances) and a separation delta (distance
// to the nearest point of higher density). Cluster centers are the points
// with the largest gamma = rho * delta; remaining points are assigned to
// the cluster of their nearest higher-density neighbor.
#ifndef MCIRBM_CLUSTERING_DENSITY_PEAKS_H_
#define MCIRBM_CLUSTERING_DENSITY_PEAKS_H_

#include "clustering/clusterer.h"

namespace mcirbm::clustering {

/// Density Peaks configuration.
struct DensityPeaksConfig {
  int k = 2;                    ///< number of cluster centers to pick
  double dc_percentile = 2.0;   ///< percentile of pairwise distances for d_c
  bool gaussian_kernel = true;  ///< Gaussian rho (vs hard cutoff count)
};

/// Deterministic Density Peaks clusterer (ignores the seed).
class DensityPeaks : public Clusterer {
 public:
  explicit DensityPeaks(const DensityPeaksConfig& config);

  std::string name() const override { return "DP"; }
  ClusteringResult Cluster(const linalg::Matrix& x,
                           std::uint64_t seed) const override;

 private:
  DensityPeaksConfig config_;
};

}  // namespace mcirbm::clustering

#endif  // MCIRBM_CLUSTERING_DENSITY_PEAKS_H_
