// DBSCAN density-based clustering (Ester et al. 1996).
//
// A density-based integration member with a different bias from DP: it
// does not fix the number of clusters and labels low-density points as
// noise (-1), which composes naturally with the voting layer — noise
// points simply never reach consensus and stay outside the local
// supervision.
#ifndef MCIRBM_CLUSTERING_DBSCAN_H_
#define MCIRBM_CLUSTERING_DBSCAN_H_

#include <string>

#include "clustering/clusterer.h"

namespace mcirbm::clustering {

/// Classic DBSCAN over Euclidean distance, O(n²) neighbour queries.
///
/// `eps <= 0` enables self-tuning: eps is set to the `eps_quantile`
/// percentile of each point's distance to its min_points-th nearest
/// neighbour (the standard k-distance heuristic), so the clusterer works
/// out of the box across datasets with different scales.
class Dbscan : public Clusterer {
 public:
  struct Options {
    double eps = 0.0;        ///< neighbourhood radius; <= 0 -> self-tune
    int min_points = 4;      ///< core-point density threshold (incl. self)
    /// Percentile of the k-distance distribution for the self-tuning rule.
    /// 75 approximates the usual "knee" pick: high enough that cluster
    /// interiors are fully connected, below the outlier tail.
    double eps_quantile = 75.0;
  };

  explicit Dbscan(const Options& options) : options_(options) {}

  std::string name() const override { return "DBSCAN"; }

  /// Deterministic; `seed` is ignored. Unassigned noise points get -1 in
  /// `assignment`; `num_clusters` counts real clusters only.
  ClusteringResult Cluster(const linalg::Matrix& x,
                           std::uint64_t seed) const override;

  /// The radius actually used on the last call is not stored (the API is
  /// const); use SelfTuneEps to inspect what self-tuning would pick.
  static double SelfTuneEps(const linalg::Matrix& x, int min_points,
                            double quantile);

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace mcirbm::clustering

#endif  // MCIRBM_CLUSTERING_DBSCAN_H_
