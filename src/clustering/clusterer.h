// Common interface for the unsupervised clusterers (DP, K-means, AP).
#ifndef MCIRBM_CLUSTERING_CLUSTERER_H_
#define MCIRBM_CLUSTERING_CLUSTERER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace mcirbm::clustering {

/// Result of one clustering run.
struct ClusteringResult {
  std::vector<int> assignment;  ///< compact ids 0..num_clusters-1
  int num_clusters = 0;
  int iterations = 0;          ///< iterations until convergence/stop
  bool converged = false;
  double objective = 0.0;      ///< algorithm-specific (e.g. k-means SSE)
};

/// Abstract clusterer over a row-major instance matrix.
class Clusterer {
 public:
  virtual ~Clusterer() = default;

  /// Human-readable algorithm name ("K-means", "DP", "AP").
  virtual std::string name() const = 0;

  /// Clusters the rows of `x`. `seed` drives any internal randomness;
  /// deterministic algorithms ignore it.
  virtual ClusteringResult Cluster(const linalg::Matrix& x,
                                   std::uint64_t seed) const = 0;
};

}  // namespace mcirbm::clustering

#endif  // MCIRBM_CLUSTERING_CLUSTERER_H_
