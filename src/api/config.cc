#include "api/config.h"

#include <utility>
#include <vector>

#include <algorithm>

#include "api/model_registry.h"
#include "clustering/registry.h"
#include "data/io.h"
#include "data/loaders.h"
#include "data/source.h"
#include "data/transforms.h"
#include "eval/experiment.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace mcirbm::api {
namespace {

// One key=value line with its 1-based source line for diagnostics.
struct ConfigEntry {
  std::string key;
  std::string value;
  int line = 0;
};

Status AtLine(int line, const Status& status) {
  return Status(status.code(),
                "line " + std::to_string(line) + ": " + status.message());
}

// Splits config text into entries; rejects lines without '='.
StatusOr<std::vector<ConfigEntry>> Tokenize(const std::string& text) {
  std::vector<ConfigEntry> entries;
  int line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string line = raw_line;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("line " + std::to_string(line_number) +
                                ": expected key = value, got '" + line +
                                "'");
    }
    ConfigEntry entry;
    entry.key = Trim(line.substr(0, eq));
    entry.value = Trim(line.substr(eq + 1));
    entry.line = line_number;
    if (entry.key.empty()) {
      return Status::ParseError("line " + std::to_string(line_number) +
                                ": empty key");
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

// Typed value parsers reusing ParamMap's error reporting.
StatusOr<int> ValueAsInt(const ConfigEntry& e) {
  ParamMap one;
  one.Set(e.key, e.value);
  auto v = one.GetInt(e.key, 0);
  if (!v.ok()) return AtLine(e.line, v.status());
  return v.value();
}

StatusOr<double> ValueAsDouble(const ConfigEntry& e) {
  ParamMap one;
  one.Set(e.key, e.value);
  auto v = one.GetDouble(e.key, 0);
  if (!v.ok()) return AtLine(e.line, v.status());
  return v.value();
}

StatusOr<bool> ValueAsBool(const ConfigEntry& e) {
  ParamMap one;
  one.Set(e.key, e.value);
  auto v = one.GetBool(e.key, false);
  if (!v.ok()) return AtLine(e.line, v.status());
  return v.value();
}

// Applies one pipeline key to `config`. NotFound for keys outside the
// pipeline vocabulary so callers layering extra keys (ParsePipelineSpec)
// can distinguish "not mine" from "mine but malformed".
Status ApplyConfigKey(const ConfigEntry& e, core::PipelineConfig* config) {
  const std::string& key = e.key;
  if (key == "model") {
    auto kind = ModelKindFromName(e.value);
    if (!kind.ok()) return AtLine(e.line, kind.status());
    config->model = kind.value();
  } else if (key == "rbm.hidden") {
    MCIRBM_ASSIGN_OR_RETURN(config->rbm.num_hidden, ValueAsInt(e));
  } else if (key == "rbm.epochs") {
    MCIRBM_ASSIGN_OR_RETURN(config->rbm.epochs, ValueAsInt(e));
  } else if (key == "rbm.lr" || key == "rbm.learning_rate") {
    MCIRBM_ASSIGN_OR_RETURN(config->rbm.learning_rate, ValueAsDouble(e));
  } else if (key == "rbm.batch_size") {
    MCIRBM_ASSIGN_OR_RETURN(config->rbm.batch_size, ValueAsInt(e));
  } else if (key == "rbm.cd_k") {
    MCIRBM_ASSIGN_OR_RETURN(config->rbm.cd_k, ValueAsInt(e));
  } else if (key == "rbm.momentum") {
    MCIRBM_ASSIGN_OR_RETURN(config->rbm.momentum, ValueAsDouble(e));
  } else if (key == "rbm.momentum_final") {
    MCIRBM_ASSIGN_OR_RETURN(config->rbm.momentum_final, ValueAsDouble(e));
  } else if (key == "rbm.momentum_switch_epoch") {
    MCIRBM_ASSIGN_OR_RETURN(config->rbm.momentum_switch_epoch, ValueAsInt(e));
  } else if (key == "rbm.weight_decay") {
    MCIRBM_ASSIGN_OR_RETURN(config->rbm.weight_decay, ValueAsDouble(e));
  } else if (key == "rbm.init_weight_stddev") {
    MCIRBM_ASSIGN_OR_RETURN(config->rbm.init_weight_stddev, ValueAsDouble(e));
  } else if (key == "rbm.sample_hidden") {
    MCIRBM_ASSIGN_OR_RETURN(config->rbm.sample_hidden_states, ValueAsBool(e));
  } else if (key == "rbm.persistent_cd") {
    MCIRBM_ASSIGN_OR_RETURN(config->rbm.use_persistent_cd, ValueAsBool(e));
  } else if (key == "rbm.pcd_chains") {
    MCIRBM_ASSIGN_OR_RETURN(config->rbm.pcd_chains, ValueAsInt(e));
  } else if (key == "rbm.sparsity_target") {
    MCIRBM_ASSIGN_OR_RETURN(config->rbm.sparsity_target, ValueAsDouble(e));
  } else if (key == "rbm.sparsity_cost") {
    MCIRBM_ASSIGN_OR_RETURN(config->rbm.sparsity_cost, ValueAsDouble(e));
  } else if (key == "rbm.weight_init") {
    if (e.value == "gaussian") {
      config->rbm.weight_init = rbm::RbmConfig::WeightInit::kGaussian;
    } else if (e.value == "pca") {
      config->rbm.weight_init = rbm::RbmConfig::WeightInit::kPca;
    } else {
      return Status::ParseError("line " + std::to_string(e.line) +
                                ": rbm.weight_init must be gaussian|pca");
    }
  } else if (key == "rbm.seed") {
    int seed = 0;
    MCIRBM_ASSIGN_OR_RETURN(seed, ValueAsInt(e));
    config->rbm.seed = static_cast<std::uint64_t>(seed);
  } else if (key == "sls.eta") {
    MCIRBM_ASSIGN_OR_RETURN(config->sls.eta, ValueAsDouble(e));
  } else if (key == "sls.scale" || key == "sls.supervision_scale") {
    MCIRBM_ASSIGN_OR_RETURN(config->sls.supervision_scale, ValueAsDouble(e));
  } else if (key == "sls.include_recon_term") {
    MCIRBM_ASSIGN_OR_RETURN(config->sls.include_recon_term, ValueAsBool(e));
  } else if (key == "sls.include_disperse_term") {
    MCIRBM_ASSIGN_OR_RETURN(config->sls.include_disperse_term, ValueAsBool(e));
  } else if (key == "sls.disperse_weight") {
    MCIRBM_ASSIGN_OR_RETURN(config->sls.disperse_weight, ValueAsDouble(e));
  } else if (key == "sls.normalize_by_pairs") {
    MCIRBM_ASSIGN_OR_RETURN(config->sls.normalize_by_pairs, ValueAsBool(e));
  } else if (key == "sls.use_fast_gradient") {
    MCIRBM_ASSIGN_OR_RETURN(config->sls.use_fast_gradient, ValueAsBool(e));
  } else if (key == "sls.max_grad_norm") {
    MCIRBM_ASSIGN_OR_RETURN(config->sls.max_grad_norm, ValueAsDouble(e));
  } else if (key == "supervision.clusters") {
    MCIRBM_ASSIGN_OR_RETURN(config->supervision.num_clusters, ValueAsInt(e));
  } else if (key == "supervision.strategy") {
    if (e.value == "unanimous") {
      config->supervision.strategy = voting::VoteStrategy::kUnanimous;
    } else if (e.value == "majority") {
      config->supervision.strategy = voting::VoteStrategy::kMajority;
    } else {
      return Status::ParseError(
          "line " + std::to_string(e.line) +
          ": supervision.strategy must be unanimous|majority");
    }
  } else if (key == "supervision.min_cluster_size") {
    MCIRBM_ASSIGN_OR_RETURN(config->supervision.min_cluster_size, ValueAsInt(e));
  } else if (key == "supervision.voters") {
    auto voters = core::ParseVoterList(e.value);
    if (!voters.ok()) return AtLine(e.line, voters.status());
    config->supervision.voters = std::move(voters).value();
  } else if (key == "parallel.threads") {
    MCIRBM_ASSIGN_OR_RETURN(config->parallel.num_threads, ValueAsInt(e));
  } else if (key == "parallel.deterministic") {
    MCIRBM_ASSIGN_OR_RETURN(config->parallel.deterministic, ValueAsBool(e));
  } else {
    return Status::NotFound("line " + std::to_string(e.line) +
                            ": unknown config key '" + key + "'");
  }
  return Status::Ok();
}

// Applies one run-spec key (data/eval/out/seed); NotFound when the key is
// not part of the spec vocabulary.
Status ApplySpecKey(const ConfigEntry& e, PipelineSpec* spec) {
  const std::string& key = e.key;
  if (key == "data") {
    spec->data_spec = e.value;
  } else if (key == "data.path") {
    spec->data_path = e.value;
  } else if (key == "data.family") {
    if (e.value != "msra" && e.value != "uci") {
      return Status::ParseError("line " + std::to_string(e.line) +
                                ": data.family must be msra|uci");
    }
    spec->data_family = e.value;
  } else if (key == "data.index") {
    MCIRBM_ASSIGN_OR_RETURN(spec->data_index, ValueAsInt(e));
  } else if (key == "data.max_resident_rows") {
    int n = 0;
    MCIRBM_ASSIGN_OR_RETURN(n, ValueAsInt(e));
    if (n < 0) {
      return Status::InvalidArgument(
          "line " + std::to_string(e.line) +
          ": data.max_resident_rows must be non-negative");
    }
    spec->max_resident_rows = static_cast<std::size_t>(n);
  } else if (key == "data.max_instances") {
    int n = 0;
    MCIRBM_ASSIGN_OR_RETURN(n, ValueAsInt(e));
    if (n < 0) {
      return Status::InvalidArgument(
          "line " + std::to_string(e.line) +
          ": data.max_instances must be non-negative");
    }
    spec->max_instances = static_cast<std::size_t>(n);
  } else if (key == "data.transform") {
    if (e.value != "auto" && e.value != "none" && e.value != "standardize" &&
        e.value != "minmax" && e.value != "binarize") {
      return Status::ParseError(
          "line " + std::to_string(e.line) +
          ": data.transform must be auto|none|standardize|minmax|binarize");
    }
    spec->transform = e.value;
  } else if (key == "eval.clusterer") {
    // "none" skips the evaluation stage (required for out-of-core runs,
    // where clustering would materialize every instance).
    if (e.value != "none" &&
        !clustering::ClustererRegistry::Global().Contains(e.value)) {
      return Status::NotFound("line " + std::to_string(e.line) +
                              ": unknown eval.clusterer '" + e.value + "'");
    }
    spec->eval_clusterer = e.value;
  } else if (key == "eval.k") {
    MCIRBM_ASSIGN_OR_RETURN(spec->eval_k, ValueAsInt(e));
  } else if (key == "out.model") {
    spec->model_out = e.value;
  } else if (key == "out.features") {
    spec->features_out = e.value;
  } else if (key == "seed") {
    int seed = 0;
    MCIRBM_ASSIGN_OR_RETURN(seed, ValueAsInt(e));
    spec->seed = static_cast<std::uint64_t>(seed);
  } else {
    return Status::NotFound("spec key '" + key + "' not recognized");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<core::PipelineConfig> ParseConfig(const std::string& text,
                                           core::PipelineConfig base) {
  auto entries = Tokenize(text);
  if (!entries.ok()) return entries.status();
  for (const ConfigEntry& e : entries.value()) {
    const Status status = ApplyConfigKey(e, &base);
    if (!status.ok()) return status;
  }
  return base;
}

StatusOr<PipelineSpec> ParsePipelineSpec(const std::string& text) {
  auto entries_or = Tokenize(text);
  if (!entries_or.ok()) return entries_or.status();
  const std::vector<ConfigEntry> entries = std::move(entries_or).value();

  // The model choice decides which paper family's hyper-parameters seed
  // the base config, so resolve it before applying any other key.
  core::ModelKind kind = core::ModelKind::kSlsGrbm;
  for (const ConfigEntry& e : entries) {
    if (e.key != "model") continue;
    auto parsed = ModelKindFromName(e.value);
    if (!parsed.ok()) return AtLine(e.line, parsed.status());
    kind = parsed.value();
  }
  const bool grbm_family = kind == core::ModelKind::kGrbm ||
                           kind == core::ModelKind::kSlsGrbm;
  const eval::ExperimentConfig paper = eval::MakePaperConfig(grbm_family);

  PipelineSpec spec;
  spec.config.model = kind;
  spec.config.rbm = paper.rbm;
  spec.config.sls = paper.sls;
  spec.config.supervision = paper.supervision;
  // 0 = "derive from the dataset's class count" at run time.
  spec.config.supervision.num_clusters = 0;

  for (const ConfigEntry& e : entries) {
    Status status = ApplySpecKey(e, &spec);
    if (status.ok()) continue;
    if (status.code() != StatusCode::kNotFound) return status;
    status = ApplyConfigKey(e, &spec.config);
    if (!status.ok()) return status;
  }

  const int sources = (spec.data_spec.empty() ? 0 : 1) +
                      (spec.data_path.empty() ? 0 : 1) +
                      (spec.data_family.empty() ? 0 : 1);
  if (sources == 0) {
    return Status::InvalidArgument(
        "config must set data, data.path, or data.family");
  }
  if (sources > 1) {
    return Status::InvalidArgument(
        "data, data.path, and data.family are mutually exclusive");
  }
  return spec;
}

StatusOr<PipelineSpec> ParsePipelineSpecFile(const std::string& path) {
  auto text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return ParsePipelineSpec(text.value());
}

namespace {

// The loader-registry spec string describing the run's dataset source.
// The legacy data.family/data.index pair is the spelling of synth specs
// that predates the registry, so it maps onto one.
std::string ResolveDataSpec(const PipelineSpec& spec) {
  if (!spec.data_spec.empty()) return spec.data_spec;
  if (!spec.data_path.empty()) return spec.data_path;
  return "synth:" + spec.data_family + ":" + std::to_string(spec.data_index);
}

// The out-of-core run: training streams minibatches from the source and
// the feature export streams chunk-by-chunk through the same CsvWriter
// byte format as SaveDatasetCsv, so at most max_resident_rows source rows
// (plus a couple of minibatches) are ever resident. Stages that need the
// full matrix at once are rejected up front rather than silently
// materializing.
StatusOr<PipelineRunSummary> RunPipelineOutOfCore(const PipelineSpec& spec) {
  if (spec.max_instances > 0) {
    return Status::InvalidArgument(
        "data.max_instances requires a materialized run; drop it or set "
        "data.max_resident_rows = 0");
  }
  if (spec.transform != "none") {
    return Status::InvalidArgument(
        "out-of-core runs need data.transform = none: global column "
        "statistics would require materializing the dataset (got '" +
        spec.transform + "')");
  }
  if (spec.eval_clusterer != "none") {
    return Status::InvalidArgument(
        "out-of-core runs need eval.clusterer = none: clustering "
        "materializes every instance (got '" + spec.eval_clusterer + "')");
  }

  data::DataSourceConfig source_config;
  source_config.max_resident_rows = spec.max_resident_rows;
  source_config.synth_seed = spec.seed;
  auto source_or = data::OpenDataSource(ResolveDataSpec(spec), source_config);
  if (!source_or.ok()) return source_or.status();
  data::DataSource& source = *source_or.value();

  core::PipelineConfig config = spec.config;
  if (config.supervision.num_clusters <= 0) {
    config.supervision.num_clusters = source.num_classes();
  }
  auto model_or = Model::TrainFromSource(source, config, spec.seed);
  if (!model_or.ok()) return model_or.status();

  PipelineRunSummary summary;
  summary.model = std::move(model_or).value();
  summary.dataset_name = source.name();
  summary.instances = source.rows();
  summary.features = source.cols();
  summary.supervision_coverage = summary.model.supervision().Coverage();
  summary.supervision_clusters = summary.model.supervision().num_clusters;
  summary.reconstruction_error = summary.model.final_reconstruction_error();
  summary.eval_k = spec.eval_k > 0 ? spec.eval_k : source.num_classes();

  if (!spec.model_out.empty()) {
    const Status status = summary.model.Save(spec.model_out);
    if (!status.ok()) return status;
  }
  if (!spec.features_out.empty()) {
    // Same header and cell formatting as SaveDatasetCsv, and row-sliced
    // Transform is bit-identical to the full pass, so this file is
    // byte-for-byte the materialized export.
    std::vector<std::string> header;
    header.reserve(summary.model.num_hidden() + 1);
    for (std::size_t j = 0; j < summary.model.num_hidden(); ++j) {
      header.push_back("f" + std::to_string(j));
    }
    header.push_back("label");
    CsvWriter writer;
    Status status = writer.Open(spec.features_out, header);
    if (!status.ok()) return status;
    std::vector<double> row;
    status = source.ForEachChunk([&](const data::ChunkSpec& chunk) {
      linalg::Matrix block(chunk.rows, chunk.cols);
      std::copy(chunk.x, chunk.x + chunk.rows * chunk.cols, block.data());
      auto hidden = summary.model.Transform(block);
      if (!hidden.ok()) return hidden.status();
      const linalg::Matrix& h = hidden.value();
      row.resize(h.cols() + 1);
      for (std::size_t i = 0; i < h.rows(); ++i) {
        std::copy(h.data() + i * h.cols(), h.data() + (i + 1) * h.cols(),
                  row.begin());
        row.back() = static_cast<double>(chunk.labels[i]);
        const Status written = writer.WriteRow(row);
        if (!written.ok()) return written;
      }
      return Status::Ok();
    });
    if (!status.ok()) return status;
    status = writer.Close();
    if (!status.ok()) return status;
  }
  return summary;
}

}  // namespace

StatusOr<PipelineRunSummary> RunPipeline(const PipelineSpec& spec) {
  if (spec.max_resident_rows > 0) return RunPipelineOutOfCore(spec);

  // 1. Dataset — any registered loader spec; synth sources see the run
  // seed, so data.family runs reproduce the pre-registry datasets exactly.
  data::DataSourceConfig source_config;
  source_config.synth_seed = spec.seed;
  auto loaded = data::LoadDataset(ResolveDataSpec(spec), source_config);
  if (!loaded.ok()) return loaded.status();
  data::Dataset dataset = std::move(loaded).value();
  if (spec.max_instances > 0) {
    dataset = data::StratifiedSubsample(dataset, spec.max_instances,
                                        spec.seed ^ 0x73756273ULL);
  }

  // 2. Preprocessing (paper per-family defaults under "auto").
  const bool grbm_family = spec.config.model == core::ModelKind::kGrbm ||
                           spec.config.model == core::ModelKind::kSlsGrbm;
  linalg::Matrix x = dataset.x;
  std::string transform = spec.transform;
  if (transform == "auto") {
    transform = grbm_family ? "standardize" : "minmax";
  }
  if (transform == "standardize") {
    data::StandardizeInPlace(&x);
  } else if (transform == "minmax") {
    data::MinMaxScaleInPlace(&x);
  } else if (transform == "binarize") {
    data::MinMaxScaleInPlace(&x);
    data::BinarizeAtColumnMeanInPlace(&x);
  } else if (transform != "none") {
    return Status::InvalidArgument("unknown transform '" + transform + "'");
  }

  // 3. Train through the facade.
  core::PipelineConfig config = spec.config;
  if (config.supervision.num_clusters <= 0) {
    config.supervision.num_clusters = dataset.num_classes;
  }
  auto model_or = Model::Train(x, config, spec.seed);
  if (!model_or.ok()) return model_or.status();

  PipelineRunSummary summary;
  summary.model = std::move(model_or).value();
  summary.dataset_name = dataset.name;
  summary.instances = dataset.num_instances();
  summary.features = dataset.num_features();
  summary.supervision_coverage = summary.model.supervision().Coverage();
  summary.supervision_clusters = summary.model.supervision().num_clusters;
  summary.reconstruction_error = summary.model.final_reconstruction_error();

  // 4. Optional outputs.
  if (!spec.model_out.empty()) {
    const Status status = summary.model.Save(spec.model_out);
    if (!status.ok()) return status;
  }
  auto hidden = summary.model.Transform(x);
  if (!hidden.ok()) return hidden.status();
  if (!spec.features_out.empty()) {
    data::Dataset features = dataset;
    features.x = hidden.value();
    features.name = dataset.name + ":hidden";
    const Status status = data::SaveDatasetCsv(features, spec.features_out);
    if (!status.ok()) return status;
  }

  // 5. Evaluation: the named clusterer on raw vs hidden representations
  // ("none" skips it, leaving the metric bundles zero).
  summary.eval_k = spec.eval_k > 0 ? spec.eval_k : dataset.num_classes;
  if (spec.eval_clusterer == "none") return summary;
  ParamMap params;
  params.Set("k", std::to_string(summary.eval_k));
  auto clusterer = clustering::ClustererRegistry::Global().Create(
      spec.eval_clusterer, params);
  if (!clusterer.ok()) return clusterer.status();
  const auto raw_clusters =
      clusterer.value()->Cluster(dataset.x, spec.seed);
  const auto hidden_clusters =
      clusterer.value()->Cluster(hidden.value(), spec.seed);
  summary.raw_metrics =
      metrics::ComputeAll(dataset.labels, raw_clusters.assignment);
  summary.hidden_metrics =
      metrics::ComputeAll(dataset.labels, hidden_clusters.assignment);
  return summary;
}

}  // namespace mcirbm::api
