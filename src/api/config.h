// Text configuration for the facade: key=value parsing shared by the CLI
// (`--config file`, the one-shot `pipeline` subcommand) and library
// callers.
//
// Syntax: one `key = value` pair per line ('=' optional whitespace), '#'
// starts a comment, blank lines ignored. Unknown keys, malformed values,
// and inconsistent combinations are rejected with non-OK Status naming the
// offending line.
//
// Pipeline keys (ParseConfig):
//   model                       rbm | grbm | sls-rbm | sls-grbm
//   rbm.hidden rbm.epochs rbm.lr rbm.batch_size rbm.cd_k rbm.momentum
//   rbm.momentum_final rbm.momentum_switch_epoch rbm.weight_decay
//   rbm.init_weight_stddev rbm.sample_hidden rbm.persistent_cd
//   rbm.pcd_chains rbm.sparsity_target rbm.sparsity_cost
//   rbm.weight_init (gaussian|pca) rbm.seed
//   sls.eta sls.scale sls.include_recon_term sls.include_disperse_term
//   sls.disperse_weight sls.normalize_by_pairs sls.use_fast_gradient
//   sls.max_grad_norm
//   supervision.clusters supervision.strategy (unanimous|majority)
//   supervision.min_cluster_size supervision.voters (e.g. "dp,kmeans*3,ap")
//   parallel.threads parallel.deterministic
//
// Additional run keys (ParsePipelineSpec):
//   data (loader spec: path | csv:p | bin:p | libsvm:p | synth:fam:i[:seed])
//     | data.path | data.family (msra|uci) + data.index
//   data.max_resident_rows (out-of-core chunk/memory bound; 0 = in-RAM)
//   data.max_instances data.transform (auto|none|standardize|minmax|binarize)
//   eval.clusterer (registry name or "none") eval.k
//   out.model out.features seed
#ifndef MCIRBM_API_CONFIG_H_
#define MCIRBM_API_CONFIG_H_

#include <cstdint>
#include <string>

#include "api/model.h"
#include "core/pipeline.h"
#include "metrics/external.h"
#include "util/status.h"

namespace mcirbm::api {

/// Parses pipeline keys over `base` (later lines win). Unknown keys and
/// malformed values are rejected.
StatusOr<core::PipelineConfig> ParseConfig(const std::string& text,
                                           core::PipelineConfig base = {});

/// A fully resolved one-shot pipeline run: dataset source, preprocessing,
/// encoder configuration, outputs, and evaluation settings.
struct PipelineSpec {
  core::PipelineConfig config;

  // Dataset source: exactly one of `data_spec` (a data::DataLoaderRegistry
  // spec — any path or scheme:rest form), `data_path` (file path, loader
  // inferred), or `data_family` + `data_index` (paper-equivalent
  // synthetic; the legacy spelling of data=synth:<family>:<index>).
  std::string data_spec;
  std::string data_path;
  std::string data_family;
  int data_index = 0;
  /// If > 0, the run is out-of-core: training streams minibatches from
  /// the source and transforms/export run chunk-by-chunk with at most
  /// this many source rows resident. Requires transform=none,
  /// eval.clusterer=none, max_instances=0, and a random-access source
  /// (binary/mmap or in-memory). Results are bit-identical to the
  /// materialized run.
  std::size_t max_resident_rows = 0;
  /// If > 0, stratified-subsample to this many instances first.
  std::size_t max_instances = 0;
  /// auto = standardize for the GRBM family, min-max scale for the RBM
  /// family (the paper's per-family preprocessing).
  std::string transform = "auto";

  std::string model_out;     ///< save the trained model here (optional)
  std::string features_out;  ///< save hidden features as CSV (optional)

  std::string eval_clusterer = "kmeans";  ///< ClustererRegistry name
  int eval_k = 0;                         ///< 0 = dataset class count
  std::uint64_t seed = 7;
};

/// Parses a full run spec. The `model` key (default sls-grbm) selects the
/// paper's family hyper-parameters as the base config, exactly as the CLI
/// `train` subcommand does; every other key then overrides that base.
StatusOr<PipelineSpec> ParsePipelineSpec(const std::string& text);

/// ParsePipelineSpec over the contents of `path`.
StatusOr<PipelineSpec> ParsePipelineSpecFile(const std::string& path);

/// Everything the one-shot run produces.
struct PipelineRunSummary {
  std::string dataset_name;
  std::size_t instances = 0;
  std::size_t features = 0;
  double supervision_coverage = 0;
  int supervision_clusters = 0;
  double reconstruction_error = 0;
  int eval_k = 0;
  metrics::MetricBundle raw_metrics;     ///< clusterer on the input data
  metrics::MetricBundle hidden_metrics;  ///< clusterer on hidden features
  Model model;                           ///< the trained encoder
};

/// Runs the full pipeline described by `spec`: load/synthesize data,
/// preprocess, train through Model::Train, optionally persist model and
/// features, evaluate raw vs hidden representations.
StatusOr<PipelineRunSummary> RunPipeline(const PipelineSpec& spec);

}  // namespace mcirbm::api

#endif  // MCIRBM_API_CONFIG_H_
