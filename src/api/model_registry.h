// String-keyed factory registry over the encoder models.
//
// Built-in names mirror the CLI's --model values:
//
//   rbm | grbm | sls-rbm | sls-grbm
//
// Each factory builds an *untrained* encoder from a ParamMap (see the key
// list next to each factory in model_registry.cc); the sls variants
// additionally consume the LocalSupervision handed to Create. Training,
// persistence, and inference on top of these live in api::Model.
#ifndef MCIRBM_API_MODEL_REGISTRY_H_
#define MCIRBM_API_MODEL_REGISTRY_H_

#include <memory>
#include <string>

#include "core/pipeline.h"
#include "rbm/rbm_base.h"
#include "util/param_map.h"
#include "util/registry.h"
#include "util/status.h"
#include "voting/local_supervision.h"

namespace mcirbm::api {

/// Maps a registry/CLI model name to the pipeline's ModelKind.
/// NotFound for unregistered names.
StatusOr<core::ModelKind> ModelKindFromName(const std::string& name);

/// Registry/CLI name of a ModelKind ("rbm", "grbm", "sls-rbm", "sls-grbm").
const char* ModelKindRegistryName(core::ModelKind kind);

/// Process-wide name -> factory table for encoder models. Create builds
/// an *untrained* model; `supervision` is consumed by the sls variants
/// and ignored by plain ones. NotFound for unknown names; factory
/// parameter errors pass through.
class ModelRegistry
    : public NamedRegistry<StatusOr<std::unique_ptr<rbm::RbmBase>>(
          const ParamMap&, const voting::LocalSupervision&)> {
 public:
  /// The singleton, pre-populated with the four built-in models.
  static ModelRegistry& Global();

  using NamedRegistry::Create;
  /// Convenience overload for the plain models, which take no supervision.
  StatusOr<std::unique_ptr<rbm::RbmBase>> Create(
      const std::string& name, const ParamMap& params) const {
    return Create(name, params, voting::LocalSupervision{});
  }

 private:
  ModelRegistry();
};

}  // namespace mcirbm::api

#endif  // MCIRBM_API_MODEL_REGISTRY_H_
