// api::Model — the versioned, unified encoder artifact.
//
// One type covers the whole model lifecycle through the facade:
//
//   auto model = api::Model::Train(x, config, seed);      // StatusOr
//   model.value().Save("encoder.mcirbm");
//   auto restored = api::Model::Load("encoder.mcirbm");
//   auto features = restored.value().Transform(x);        // bit-identical
//   auto scores = restored.value().Evaluate(x, labels, {"kmeans"});
//
// On-disk format ("mcirbm-model v1"):
//
//   mcirbm-model v1
//   kind: <registry model name>
//   <single-model payload of rbm/serialize.h>
//
// Load also accepts the two legacy artifacts — bare "mcirbm-rbm v1"
// parameter files and "mcirbm-stack v1" manifests (core/stack_serialize.h)
// — so anything ever saved by the CLI or the library round-trips through
// the same entry point. Unsupported versions, truncated payloads, and
// dimension mismatches all surface as non-OK Status, never as aborts.
#ifndef MCIRBM_API_MODEL_H_
#define MCIRBM_API_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/stack_serialize.h"
#include "data/source.h"
#include "linalg/matrix.h"
#include "metrics/external.h"
#include "rbm/rbm_base.h"
#include "util/status.h"

namespace mcirbm::api {

/// The api::Model wrapper magic line ("mcirbm-model v1").
extern const char kModelMagic[];
/// Format version written by Save; Load rejects anything newer.
inline constexpr int kModelFormatVersion = 1;

/// Options for Model::Evaluate.
struct EvalOptions {
  std::string clusterer = "kmeans";  ///< ClustererRegistry name
  int k = 0;                         ///< cluster count; 0 = #distinct labels
  std::uint64_t seed = 7;
};

/// Outcome of Model::Evaluate: the paper's external metrics plus the
/// cluster count the algorithm actually produced.
struct EvalResult {
  metrics::MetricBundle metrics;
  int clusters_found = 0;
};

/// Clusters pre-computed features with the named clusterer and scores the
/// assignment against `labels`. This is exactly the post-transform half of
/// Model::Evaluate, exposed so batch-serving callers that already hold a
/// feature slice score it through the identical code path (same registry
/// lookup, same seed handling, same metrics).
StatusOr<EvalResult> EvaluateFeatures(const linalg::Matrix& features,
                                      const std::vector<int>& labels,
                                      const EvalOptions& options = {});

/// A trained (or loaded) encoder with unified persistence and inference.
/// Move-only; a default-constructed Model is empty until assigned from
/// Train or Load.
///
/// Thread safety: every const member is safe to call concurrently from
/// any number of threads on one instance. Transform and Evaluate read the
/// immutable parameter blocks (weights, biases) and keep all per-call
/// state on the stack; the parallel kernels they invoke (linalg::Gemm et
/// al.) may be entered concurrently from multiple external threads — the
/// global parallel::ThreadPool serializes region scheduling internally.
/// Nothing in the inference path mutates the model, so a single instance
/// can back many concurrent batches (the serve::ModelStore relies on
/// this). Non-const operations (move-assignment, mutable_* access via
/// encoder()) must be externally synchronized, as usual.
class Model {
 public:
  Model() = default;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;
  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  /// Trains the configured encoder on `x` through the core pipeline.
  /// Invalid configurations come back as non-OK Status.
  static StatusOr<Model> Train(const linalg::Matrix& x,
                               const core::PipelineConfig& config,
                               std::uint64_t seed);

  /// Trains by streaming minibatches from `source` — the out-of-core
  /// path. Requires random row access (mmap/in-memory backends; convert
  /// text formats with `mcirbm_cli dataset convert`). Bit-identical to
  /// Train on the materialized rows at any thread count, in both
  /// determinism modes. Sls models and PCA init need the matrix resident
  /// and fail with kInvalidArgument on non-dense sources.
  static StatusOr<Model> TrainFromSource(const data::DataSource& source,
                                         const core::PipelineConfig& config,
                                         std::uint64_t seed);

  /// Restores a model saved by Save, a bare rbm/serialize.h parameter
  /// file, or a core/stack_serialize.h manifest.
  static StatusOr<Model> Load(const std::string& path);

  /// Load with shared ownership: the artifact is immutable after loading,
  /// so long-lived services (serve::ModelStore) hand the same instance to
  /// many concurrent readers and retire it only when the last batch in
  /// flight releases its reference.
  static StatusOr<std::shared_ptr<const Model>> LoadShared(
      const std::string& path);

  /// Writes the versioned artifact. Stack-backed models are persisted by
  /// core::SaveStack (multi-file manifests) and rejected here.
  Status Save(const std::string& path) const;

  /// Hidden-layer features for the rows of `x`; InvalidArgument when
  /// `x`'s width does not match the encoder's visible layer.
  StatusOr<linalg::Matrix> Transform(const linalg::Matrix& x) const;

  /// Transforms `x`, clusters the features with the named clusterer, and
  /// scores the assignment against `labels`.
  StatusOr<EvalResult> Evaluate(const linalg::Matrix& x,
                                const std::vector<int>& labels,
                                const EvalOptions& options = {}) const;

  /// False for a default-constructed (empty) model.
  bool valid() const { return encoder_ != nullptr || stack_ != nullptr; }

  /// Registry name of the trained kind ("sls-grbm", ...; "stack" for
  /// loaded stack manifests; the stored payload name for legacy files).
  const std::string& kind() const { return kind_; }

  std::size_t num_visible() const;
  std::size_t num_hidden() const;
  /// 1 for single-layer encoders, the layer count for stacks, 0 if empty.
  std::size_t num_layers() const;

  // Training telemetry — meaningful only for models produced by Train.
  const voting::LocalSupervision& supervision() const {
    return supervision_;
  }
  double final_reconstruction_error() const {
    return final_reconstruction_error_;
  }

  /// Underlying single-layer encoder; requires valid() and !is_stack().
  const rbm::RbmBase& encoder() const;
  bool is_stack() const { return stack_ != nullptr; }

 private:
  std::string kind_;
  std::unique_ptr<rbm::RbmBase> encoder_;
  std::unique_ptr<core::LoadedStack> stack_;
  voting::LocalSupervision supervision_;
  double final_reconstruction_error_ = 0;
};

}  // namespace mcirbm::api

#endif  // MCIRBM_API_MODEL_H_
