#include "api/model_registry.h"

#include <utility>

#include "core/sls_models.h"
#include "rbm/grbm.h"
#include "rbm/rbm.h"

namespace mcirbm::api {
namespace {

constexpr std::initializer_list<const char*> kRbmKeys = {
    "visible",        "hidden",       "epochs",
    "lr",             "batch_size",   "cd_k",
    "momentum",       "momentum_final", "momentum_switch_epoch",
    "weight_decay",   "init_weight_stddev",
    "sample_hidden",  "seed"};

constexpr std::initializer_list<const char*> kSlsKeys = {
    "visible",        "hidden",       "epochs",
    "lr",             "batch_size",   "cd_k",
    "momentum",       "momentum_final", "momentum_switch_epoch",
    "weight_decay",   "init_weight_stddev",
    "sample_hidden",  "seed",         "eta",
    "scale",          "disperse_weight", "max_grad_norm"};

// Shared rbm hyper-parameter keys: visible (required), hidden, epochs,
// lr, batch_size, cd_k, momentum, weight_decay, init_weight_stddev,
// sample_hidden, seed.
StatusOr<rbm::RbmConfig> RbmConfigFromParams(const ParamMap& p) {
  rbm::RbmConfig cfg;
  MCIRBM_ASSIGN_OR_RETURN(cfg.num_visible, p.GetInt("visible", cfg.num_visible));
  MCIRBM_ASSIGN_OR_RETURN(cfg.num_hidden, p.GetInt("hidden", cfg.num_hidden));
  MCIRBM_ASSIGN_OR_RETURN(cfg.epochs, p.GetInt("epochs", cfg.epochs));
  MCIRBM_ASSIGN_OR_RETURN(cfg.learning_rate,
                      p.GetDouble("lr", cfg.learning_rate));
  MCIRBM_ASSIGN_OR_RETURN(cfg.batch_size, p.GetInt("batch_size", cfg.batch_size));
  MCIRBM_ASSIGN_OR_RETURN(cfg.cd_k, p.GetInt("cd_k", cfg.cd_k));
  MCIRBM_ASSIGN_OR_RETURN(cfg.momentum, p.GetDouble("momentum", cfg.momentum));
  MCIRBM_ASSIGN_OR_RETURN(cfg.momentum_final,
                      p.GetDouble("momentum_final", cfg.momentum_final));
  MCIRBM_ASSIGN_OR_RETURN(
      cfg.momentum_switch_epoch,
      p.GetInt("momentum_switch_epoch", cfg.momentum_switch_epoch));
  MCIRBM_ASSIGN_OR_RETURN(cfg.weight_decay,
                      p.GetDouble("weight_decay", cfg.weight_decay));
  MCIRBM_ASSIGN_OR_RETURN(
      cfg.init_weight_stddev,
      p.GetDouble("init_weight_stddev", cfg.init_weight_stddev));
  MCIRBM_ASSIGN_OR_RETURN(cfg.sample_hidden_states,
                      p.GetBool("sample_hidden", cfg.sample_hidden_states));
  int seed = static_cast<int>(cfg.seed);
  MCIRBM_ASSIGN_OR_RETURN(seed, p.GetInt("seed", seed));
  cfg.seed = static_cast<std::uint64_t>(seed);
  if (cfg.num_visible <= 0) {
    return Status::InvalidArgument(
        "model factory requires a positive 'visible' parameter");
  }
  if (cfg.num_hidden <= 0) {
    return Status::InvalidArgument("'hidden' must be positive");
  }
  // Mirror RbmBase's constructor CHECKs so a bad parameter surfaces as a
  // Status instead of an abort.
  if (cfg.epochs < 0) {
    return Status::InvalidArgument("'epochs' must be non-negative");
  }
  if (!(cfg.learning_rate > 0)) {
    return Status::InvalidArgument("'lr' must be positive");
  }
  if (cfg.cd_k < 1) {
    return Status::InvalidArgument("'cd_k' must be >= 1");
  }
  return cfg;
}

// sls-only keys: eta, scale, disperse_weight, max_grad_norm.
StatusOr<core::SlsConfig> SlsConfigFromParams(const ParamMap& p) {
  core::SlsConfig cfg;
  MCIRBM_ASSIGN_OR_RETURN(cfg.eta, p.GetDouble("eta", cfg.eta));
  MCIRBM_ASSIGN_OR_RETURN(cfg.supervision_scale,
                      p.GetDouble("scale", cfg.supervision_scale));
  MCIRBM_ASSIGN_OR_RETURN(cfg.disperse_weight,
                      p.GetDouble("disperse_weight", cfg.disperse_weight));
  MCIRBM_ASSIGN_OR_RETURN(cfg.max_grad_norm,
                      p.GetDouble("max_grad_norm", cfg.max_grad_norm));
  if (!(cfg.eta > 0 && cfg.eta < 1)) {
    return Status::InvalidArgument("'eta' must be in (0, 1)");
  }
  if (cfg.supervision_scale < 0) {
    return Status::InvalidArgument("'scale' must be non-negative");
  }
  return cfg;
}

template <typename PlainModel>
StatusOr<std::unique_ptr<rbm::RbmBase>> MakePlain(
    const ParamMap& p, const voting::LocalSupervision& /*supervision*/) {
  Status s = p.ExpectOnly(kRbmKeys);
  if (!s.ok()) return s;
  auto cfg = RbmConfigFromParams(p);
  if (!cfg.ok()) return cfg.status();
  return std::unique_ptr<rbm::RbmBase>(new PlainModel(cfg.value()));
}

template <typename SlsModel>
StatusOr<std::unique_ptr<rbm::RbmBase>> MakeSls(
    const ParamMap& p, const voting::LocalSupervision& supervision) {
  Status s = p.ExpectOnly(kSlsKeys);
  if (!s.ok()) return s;
  auto cfg = RbmConfigFromParams(p);
  if (!cfg.ok()) return cfg.status();
  auto sls = SlsConfigFromParams(p);
  if (!sls.ok()) return sls.status();
  return std::unique_ptr<rbm::RbmBase>(
      new SlsModel(cfg.value(), sls.value(), supervision));
}

}  // namespace

StatusOr<core::ModelKind> ModelKindFromName(const std::string& name) {
  if (name == "rbm") return core::ModelKind::kRbm;
  if (name == "grbm") return core::ModelKind::kGrbm;
  if (name == "sls-rbm") return core::ModelKind::kSlsRbm;
  if (name == "sls-grbm") return core::ModelKind::kSlsGrbm;
  return Status::NotFound("unknown model '" + name +
                          "' (rbm|grbm|sls-rbm|sls-grbm)");
}

const char* ModelKindRegistryName(core::ModelKind kind) {
  switch (kind) {
    case core::ModelKind::kRbm:
      return "rbm";
    case core::ModelKind::kGrbm:
      return "grbm";
    case core::ModelKind::kSlsRbm:
      return "sls-rbm";
    case core::ModelKind::kSlsGrbm:
      return "sls-grbm";
  }
  return "?";
}

ModelRegistry::ModelRegistry() : NamedRegistry("model") {
  AddBuiltin("rbm", MakePlain<rbm::Rbm>);
  AddBuiltin("grbm", MakePlain<rbm::Grbm>);
  AddBuiltin("sls-rbm", MakeSls<core::SlsRbm>);
  AddBuiltin("sls-grbm", MakeSls<core::SlsGrbm>);
}

ModelRegistry& ModelRegistry::Global() {
  static ModelRegistry* registry = new ModelRegistry();
  return *registry;
}

}  // namespace mcirbm::api
