// Umbrella header for the mcirbm public facade.
//
// The api module is the single entry point consumers should need:
//
//   - clustering::ClustererRegistry / api::ModelRegistry — string-keyed
//     component factories (clustering/registry.h, api/model_registry.h);
//   - api::Model — versioned Train/Save/Load/Transform/Evaluate artifact
//     (api/model.h);
//   - api::ParseConfig / api::ParsePipelineSpec / api::RunPipeline —
//     key=value configuration and the one-shot pipeline (api/config.h).
//
// Everything fallible on this surface reports through Status/StatusOr;
// nothing here aborts on user input.
#ifndef MCIRBM_API_API_H_
#define MCIRBM_API_API_H_

#include "api/config.h"
#include "api/model.h"
#include "api/model_registry.h"
#include "clustering/registry.h"
#include "core/pipeline.h"
#include "util/param_map.h"
#include "util/status.h"

#endif  // MCIRBM_API_API_H_
