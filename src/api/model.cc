#include "api/model.h"

#include <fstream>
#include <set>
#include <utility>

#include "api/model_registry.h"
#include "clustering/registry.h"
#include "rbm/serialize.h"
#include "util/check.h"
#include "util/string_util.h"

namespace mcirbm::api {

const char kModelMagic[] = "mcirbm-model v1";

namespace {

// Bridges data::DataSource to the trainer's row-gather contract. Labels
// are dropped — training is unsupervised; the supervision stage (sls)
// reads them never, and evaluation loads them separately.
class DataSourceAdapter final : public rbm::TrainingDataSource {
 public:
  explicit DataSourceAdapter(const data::DataSource& source)
      : source_(source) {}

  std::size_t rows() const override { return source_.rows(); }
  std::size_t cols() const override { return source_.cols(); }

  Status GatherRows(const std::vector<std::size_t>& indices,
                    linalg::Matrix* out) const override {
    return source_.GatherRows(indices, out, nullptr);
  }

  const linalg::Matrix* DenseView() const override {
    const data::Dataset* dense = source_.DenseView();
    return dense != nullptr ? &dense->x : nullptr;
  }

 private:
  const data::DataSource& source_;
};

constexpr char kMagicPrefix[] = "mcirbm-model v";

// Parses "mcirbm-model v<N>" into N; ParseError for anything else.
StatusOr<int> ParseModelVersion(const std::string& line,
                                const std::string& path) {
  if (!StartsWith(line, kMagicPrefix)) {
    return Status::ParseError(path + ": bad model magic '" + line + "'");
  }
  const std::string version_text =
      line.substr(std::string(kMagicPrefix).size());
  // 6 digits bounds the accumulator well below INT_MAX; any real version
  // is a small integer, so longer strings are corruption.
  if (version_text.empty() || version_text.size() > 6) {
    return Status::ParseError(path + ": bad model version '" + line + "'");
  }
  int version = 0;
  for (char c : version_text) {
    if (c < '0' || c > '9') {
      return Status::ParseError(path + ": bad model version '" + line + "'");
    }
    version = version * 10 + (c - '0');
  }
  return version;
}

}  // namespace

StatusOr<Model> Model::Train(const linalg::Matrix& x,
                             const core::PipelineConfig& config,
                             std::uint64_t seed) {
  auto result = core::TryRunEncoderPipeline(x, config, seed);
  if (!result.ok()) return result.status();
  core::PipelineResult pipeline = std::move(result).value();
  Model model;
  model.kind_ = ModelKindRegistryName(config.model);
  model.encoder_ = std::move(pipeline.model);
  model.supervision_ = std::move(pipeline.supervision);
  model.final_reconstruction_error_ = pipeline.final_reconstruction_error;
  return model;
}

StatusOr<Model> Model::TrainFromSource(const data::DataSource& source,
                                       const core::PipelineConfig& config,
                                       std::uint64_t seed) {
  if (!source.SupportsRandomAccess()) {
    return Status::InvalidArgument(
        "out-of-core training needs random row access; source '" +
        source.name() +
        "' is sequential — convert it with `mcirbm_cli dataset convert`");
  }
  const DataSourceAdapter adapter(source);
  auto result = core::TryRunEncoderPipelineFromSource(adapter, config, seed);
  if (!result.ok()) return result.status();
  core::PipelineResult pipeline = std::move(result).value();
  Model model;
  model.kind_ = ModelKindRegistryName(config.model);
  model.encoder_ = std::move(pipeline.model);
  model.supervision_ = std::move(pipeline.supervision);
  model.final_reconstruction_error_ = pipeline.final_reconstruction_error;
  return model;
}

Status Model::Save(const std::string& path) const {
  if (!valid()) return Status::InvalidArgument("cannot save an empty model");
  if (stack_ != nullptr) {
    return Status::InvalidArgument(
        "stack-backed models are multi-file manifests; save them with "
        "core::SaveStack");
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << kModelMagic << "\n" << "kind: " << kind_ << "\n";
  const Status status = rbm::SaveParameters(*encoder_, out);
  if (!status.ok()) {
    return Status::IoError(status.message() + " for " + path);
  }
  return Status::Ok();
}

StatusOr<Model> Model::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string first_line;
  if (!std::getline(in, first_line)) {
    return Status::ParseError(path + ": empty model file");
  }

  Model model;

  // Legacy stack manifest: delegate to core/stack_serialize (the layer
  // payloads live in sibling files).
  if (first_line == core::kStackMagic) {
    auto stack = std::make_unique<core::LoadedStack>();
    const Status status = core::LoadStack(path, stack.get());
    if (!status.ok()) return status;
    model.kind_ = "stack";
    model.stack_ = std::move(stack);
    return model;
  }

  // Legacy bare parameter file: the payload names the model itself. Keep
  // the *stored* name — the reconstruction is a plain rbm/grbm, but an
  // sls-trained artifact's provenance must survive Load (and re-Save).
  if (first_line == rbm::kRbmMagic) {
    in.seekg(0);
    std::string stored_name;
    auto encoder = rbm::LoadInferenceModel(in, path, &stored_name);
    if (!encoder.ok()) return encoder.status();
    model.encoder_ = std::move(encoder).value();
    model.kind_ = stored_name;
    return model;
  }

  // Versioned wrapper.
  auto version = ParseModelVersion(first_line, path);
  if (!version.ok()) return version.status();
  if (version.value() > kModelFormatVersion) {
    return Status::InvalidArgument(
        path + ": model format v" + std::to_string(version.value()) +
        " is newer than this build supports (v" +
        std::to_string(kModelFormatVersion) + ")");
  }
  std::string kind_line;
  if (!std::getline(in, kind_line) || !StartsWith(kind_line, "kind: ")) {
    return Status::ParseError(path + ": missing 'kind:' header line");
  }
  model.kind_ = Trim(kind_line.substr(std::string("kind: ").size()));
  if (model.kind_.empty()) {
    return Status::ParseError(path + ": empty model kind");
  }
  auto encoder = rbm::LoadInferenceModel(in, path);
  if (!encoder.ok()) return encoder.status();
  model.encoder_ = std::move(encoder).value();
  return model;
}

StatusOr<std::shared_ptr<const Model>> Model::LoadShared(
    const std::string& path) {
  auto model = Load(path);
  if (!model.ok()) return model.status();
  return std::shared_ptr<const Model>(
      std::make_shared<Model>(std::move(model).value()));
}

StatusOr<linalg::Matrix> Model::Transform(const linalg::Matrix& x) const {
  if (!valid()) {
    return Status::InvalidArgument("cannot transform with an empty model");
  }
  if (x.rows() == 0) {
    return Status::InvalidArgument("transform input is empty");
  }
  if (x.cols() != num_visible()) {
    return Status::InvalidArgument(
        "transform input has " + std::to_string(x.cols()) +
        " features but the model expects " + std::to_string(num_visible()));
  }
  return stack_ != nullptr ? stack_->Transform(x)
                           : encoder_->HiddenFeatures(x);
}

StatusOr<EvalResult> EvaluateFeatures(const linalg::Matrix& features,
                                      const std::vector<int>& labels,
                                      const EvalOptions& options) {
  if (labels.size() != features.rows()) {
    return Status::InvalidArgument(
        "labels length " + std::to_string(labels.size()) +
        " does not match " + std::to_string(features.rows()) + " instances");
  }
  int k = options.k;
  if (k <= 0) {
    k = static_cast<int>(
        std::set<int>(labels.begin(), labels.end()).size());
  }
  if (k <= 0) return Status::InvalidArgument("cannot infer cluster count");

  ParamMap params;
  params.Set("k", std::to_string(k));
  auto clusterer = clustering::ClustererRegistry::Global().Create(
      options.clusterer, params);
  if (!clusterer.ok()) return clusterer.status();

  const clustering::ClusteringResult clustering =
      clusterer.value()->Cluster(features, options.seed);
  EvalResult result;
  result.metrics = metrics::ComputeAll(labels, clustering.assignment);
  result.clusters_found = clustering.num_clusters;
  return result;
}

StatusOr<EvalResult> Model::Evaluate(const linalg::Matrix& x,
                                     const std::vector<int>& labels,
                                     const EvalOptions& options) const {
  auto features = Transform(x);
  if (!features.ok()) return features.status();
  // Transform preserves the row count, so EvaluateFeatures' label/row
  // check covers the input too.
  return EvaluateFeatures(features.value(), labels, options);
}

std::size_t Model::num_visible() const {
  if (stack_ != nullptr) return stack_->layer(0).weights().rows();
  return encoder_ != nullptr ? encoder_->weights().rows() : 0;
}

std::size_t Model::num_hidden() const {
  if (stack_ != nullptr) {
    return stack_->layer(stack_->num_layers() - 1).weights().cols();
  }
  return encoder_ != nullptr ? encoder_->weights().cols() : 0;
}

std::size_t Model::num_layers() const {
  if (stack_ != nullptr) return stack_->num_layers();
  return encoder_ != nullptr ? 1 : 0;
}

const rbm::RbmBase& Model::encoder() const {
  MCIRBM_CHECK(encoder_ != nullptr)
      << "encoder() requires a single-layer model";
  return *encoder_;
}

}  // namespace mcirbm::api
