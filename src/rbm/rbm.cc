#include "rbm/rbm.h"

#include "linalg/ops.h"

namespace mcirbm::rbm {

linalg::Matrix Rbm::ReconstructVisible(const linalg::Matrix& h) const {
  // p(v=1|h) = σ(a + h·Wᵀ)  (Eq. 3).
  linalg::Matrix v = linalg::GemmTransB(h, w_);
  linalg::AddRowVector(&v, a_);
  linalg::SigmoidInPlace(&v);
  return v;
}

double Rbm::VisibleFreeEnergyTerm(std::span<const double> v) const {
  double dot = 0;
  for (std::size_t i = 0; i < v.size(); ++i) dot += a_[i] * v[i];
  return -dot;
}

}  // namespace mcirbm::rbm
