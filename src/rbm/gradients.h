// Gradient accumulation buffers shared by CD learning and the sls terms.
#ifndef MCIRBM_RBM_GRADIENTS_H_
#define MCIRBM_RBM_GRADIENTS_H_

#include <vector>

#include "linalg/matrix.h"

namespace mcirbm::rbm {

/// Accumulators for one parameter update: dW (nv x nh), da (nv), db (nh).
struct GradientBuffers {
  linalg::Matrix dw;
  std::vector<double> da;
  std::vector<double> db;

  GradientBuffers() = default;
  GradientBuffers(std::size_t num_visible, std::size_t num_hidden)
      : dw(num_visible, num_hidden),
        da(num_visible, 0.0),
        db(num_hidden, 0.0) {}

  /// Zeroes all buffers (shape preserved).
  void Reset() {
    dw.Fill(0.0);
    std::fill(da.begin(), da.end(), 0.0);
    std::fill(db.begin(), db.end(), 0.0);
  }
};

}  // namespace mcirbm::rbm

#endif  // MCIRBM_RBM_GRADIENTS_H_
