// Base class for RBM-family energy models trained with contrastive
// divergence (Hinton 2002), Section III of the paper.
//
// The base implements everything shared by the four concrete models
// (RBM, GRBM, slsRBM, slsGRBM): parameter storage, the sigmoid hidden
// layer (Eq. 2), the CD-k update loop (Eq. 10-12) with momentum and weight
// decay, and a supervision hook through which the sls variants inject the
// constrict/disperse gradient (Eq. 33-34). Subclasses choose the visible
// reconstruction: sigmoid (Eq. 3) or Gaussian-linear mean field (Eq. 5).
#ifndef MCIRBM_RBM_RBM_BASE_H_
#define MCIRBM_RBM_RBM_BASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "rbm/config.h"
#include "rbm/gradients.h"
#include "rbm/training_source.h"
#include "rng/rng.h"
#include "util/status.h"

namespace mcirbm::rbm {

/// Per-epoch training telemetry.
struct EpochStats {
  int epoch = 0;
  double reconstruction_error = 0;  ///< mean squared recon error per element
  double grad_norm = 0;             ///< Frobenius norm of the applied dW
  double mean_hidden_activation = 0;  ///< data-phase mean of h (sparsity)
};

/// One minibatch mid-update snapshot handed to the supervision hook.
struct BatchContext {
  /// Global dataset row index of every batch row.
  const std::vector<std::size_t>& indices;
  const linalg::Matrix& v;        ///< batch visible data
  const linalg::Matrix& h_data;   ///< sigmoid hidden probs of `v`
  const linalg::Matrix& v_recon;  ///< reconstructed visible layer
  const linalg::Matrix& h_recon;  ///< sigmoid hidden probs of `v_recon`
};

/// Abstract CD-trained RBM.
class RbmBase {
 public:
  explicit RbmBase(const RbmConfig& config);
  virtual ~RbmBase() = default;

  RbmBase(const RbmBase&) = delete;
  RbmBase& operator=(const RbmBase&) = delete;

  /// Model name for logs/serialization ("rbm", "grbm", "sls-rbm", ...).
  virtual std::string name() const = 0;

  /// Trains on the rows of `data` (n x num_visible). Returns per-epoch
  /// stats. Deterministic given config.seed.
  std::vector<EpochStats> Train(const linalg::Matrix& data);

  /// Trains by gathering minibatches from `source` — the out-of-core
  /// path. A background thread double-buffers the next batch gather
  /// while the current one trains, so at most two batches (plus PCD
  /// chains) are resident at once. Gathering is RNG-free, so the result
  /// is bit-identical to Train on the materialized matrix, in both
  /// determinism modes and at any thread count. PCA weight init needs
  /// the full matrix and fails with kInvalidArgument unless the source
  /// has a DenseView; malformed shapes and gather failures surface as
  /// non-OK Status instead of aborting.
  StatusOr<std::vector<EpochStats>> TrainFromSource(
      const TrainingDataSource& source);

  /// Hidden-layer features σ(b + V·W) for each row of `v` (Eq. 2) — the
  /// representation consumed by downstream clustering.
  linalg::Matrix HiddenFeatures(const linalg::Matrix& v) const;

  /// One full reconstruction pass: v -> h probs -> visible reconstruction.
  linalg::Matrix Reconstruct(const linalg::Matrix& v) const;

  /// One Gibbs step v -> h -> v'. With `sample_hidden`, binary hidden
  /// states are drawn from their probabilities (proper block Gibbs);
  /// otherwise probabilities propagate (mean field). Returns the new
  /// visible configuration (probabilities/means).
  linalg::Matrix GibbsStep(const linalg::Matrix& v, bool sample_hidden,
                           rng::Rng* rng) const;

  /// Mean squared reconstruction error per element over `v`.
  double ReconstructionError(const linalg::Matrix& v) const;

  /// Free energy F(v) of one visible row: p(v) ∝ exp(−F(v)). Shared
  /// hidden part −Σ_j softplus(b_j + v·W_j) plus a model-specific visible
  /// part (−a·v for binary units, ½|v−a|² for Gaussian units).
  double FreeEnergy(std::span<const double> v) const;

  /// Mean free energy over the rows of `v` (training-progress monitor:
  /// should drop relative to a held-out set as the model fits).
  double MeanFreeEnergy(const linalg::Matrix& v) const;

  const linalg::Matrix& weights() const { return w_; }
  const std::vector<double>& visible_bias() const { return a_; }
  const std::vector<double>& hidden_bias() const { return b_; }
  const RbmConfig& config() const { return config_; }

  /// Mutable access for serialization / tests.
  linalg::Matrix* mutable_weights() { return &w_; }
  std::vector<double>* mutable_visible_bias() { return &a_; }
  std::vector<double>* mutable_hidden_bias() { return &b_; }

 protected:
  /// Visible-layer reconstruction from hidden activations `h` (probs or
  /// sampled states, per config). RBM: σ(a + h·Wᵀ); GRBM: a + h·Wᵀ.
  virtual linalg::Matrix ReconstructVisible(const linalg::Matrix& h) const
      = 0;

  /// Visible part of the free energy for one row (the hidden part is
  /// shared and computed by FreeEnergy).
  virtual double VisibleFreeEnergyTerm(std::span<const double> v) const = 0;

  /// Supervision hook: subclasses add extra gradient into `grads`
  /// *after* the CD term has been accumulated. `grads` holds the full
  /// negative-objective direction to be scaled by the learning rate; the
  /// default adds nothing.
  virtual void AccumulateSupervisionGradient(const BatchContext& batch,
                                             GradientBuffers* grads);

  /// Scale applied to the CD part of the gradient (the paper's η for sls
  /// variants, 1.0 for plain models).
  virtual double CdScale() const { return 1.0; }

  RbmConfig config_;
  linalg::Matrix w_;       ///< num_visible x num_hidden
  std::vector<double> a_;  ///< visible bias
  std::vector<double> b_;  ///< hidden bias

 private:
  /// Shared CD loop behind Train and TrainFromSource. With `prefetch`,
  /// batch gathers run one ahead on a background thread (results are
  /// identical either way; Train on a resident matrix skips the thread).
  StatusOr<std::vector<EpochStats>> TrainImpl(
      const TrainingDataSource& source, bool prefetch);

  void InitParameters();
  /// Replaces the Gaussian init with the leading principal directions of
  /// `data` (config WeightInit::kPca); called once at the start of Train.
  void InitWeightsFromPca(const linalg::Matrix& data);
  /// Samples binary states from probabilities in place.
  void SampleBernoulliInPlace(linalg::Matrix* probs, rng::Rng* rng) const;
  /// Fast-path Bernoulli sampling (parallel::Deterministic() == false):
  /// row shards of fixed width draw from independent ShardRng substreams
  /// keyed by (stream, shard), so the result is reproducible for a fixed
  /// stream and identical at any thread count — but not identical to the
  /// serial single-stream draw above.
  void SampleBernoulliSharded(linalg::Matrix* probs,
                              std::uint64_t stream) const;
};

}  // namespace mcirbm::rbm

#endif  // MCIRBM_RBM_RBM_BASE_H_
