// Classical binary-binary RBM (Hinton & Sejnowski 1986), Eq. 1-3.
#ifndef MCIRBM_RBM_RBM_H_
#define MCIRBM_RBM_RBM_H_

#include "rbm/rbm_base.h"

namespace mcirbm::rbm {

/// Binary visible + binary hidden units; sigmoid visible reconstruction
/// (Eq. 3). Inputs should be in [0,1] (bits or Bernoulli probabilities).
class Rbm : public RbmBase {
 public:
  explicit Rbm(const RbmConfig& config) : RbmBase(config) {}

  std::string name() const override { return "rbm"; }

 protected:
  linalg::Matrix ReconstructVisible(const linalg::Matrix& h) const override;

  /// Binary visible part: −a·v.
  double VisibleFreeEnergyTerm(std::span<const double> v) const override;
};

}  // namespace mcirbm::rbm

#endif  // MCIRBM_RBM_RBM_H_
