#include "rbm/rbm_base.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <thread>
#include <utility>

#include "linalg/ops.h"
#include "linalg/pca.h"
#include "parallel/thread_pool.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mcirbm::rbm {

namespace {
// Fixed shard widths for the reductions below; independent of the thread
// count so results are bit-identical serial vs parallel.
constexpr std::size_t kElemGrain = 1 << 16;  // element-wise buffers
constexpr std::size_t kRowGrain = 64;        // per-instance reductions

// Double-buffered minibatch pipeline for one epoch: a background thread
// gathers batch b+1 from the source while the trainer consumes batch b,
// keeping at most two gathered batches resident. The gather order is the
// epoch's batch order, so results are identical to synchronous gathering.
class BatchPrefetcher {
 public:
  BatchPrefetcher(const TrainingDataSource& source,
                  const std::vector<std::vector<std::size_t>>& batches)
      : source_(source), batches_(batches) {
    worker_ = std::thread([this] { Run(); });
  }

  ~BatchPrefetcher() {
    {
      MutexLock lock(mu_);
      abort_ = true;
    }
    cv_.NotifyAll();
    worker_.join();
  }

  /// Blocks until the next batch (in order) is gathered; a gather failure
  /// is delivered exactly once, in its batch position.
  Status Take(linalg::Matrix* out) {
    MutexLock lock(mu_);
    while (ready_.empty()) cv_.Wait(mu_);
    Slot slot = std::move(ready_.front());
    ready_.pop_front();
    cv_.NotifyAll();
    if (!slot.status.ok()) return slot.status;
    *out = std::move(slot.batch);
    return Status::Ok();
  }

 private:
  struct Slot {
    linalg::Matrix batch;
    Status status = Status::Ok();
  };

  void Run() {
    for (const std::vector<std::size_t>& indices : batches_) {
      Slot slot;
      slot.status = source_.GatherRows(indices, &slot.batch);
      const bool failed = !slot.status.ok();
      {
        MutexLock lock(mu_);
        while (!abort_ && ready_.size() >= 2) cv_.Wait(mu_);
        if (abort_) return;
        ready_.push_back(std::move(slot));
      }
      cv_.NotifyAll();
      if (failed) return;  // error delivered; stop gathering
    }
  }

  const TrainingDataSource& source_;
  const std::vector<std::vector<std::size_t>>& batches_;
  Mutex mu_;
  CondVar cv_;
  std::deque<Slot> ready_ MCIRBM_GUARDED_BY(mu_);
  bool abort_ MCIRBM_GUARDED_BY(mu_) = false;
  std::thread worker_;
};
}  // namespace

RbmBase::RbmBase(const RbmConfig& config) : config_(config) {
  MCIRBM_CHECK_GT(config.num_visible, 0);
  MCIRBM_CHECK_GT(config.num_hidden, 0);
  MCIRBM_CHECK_GT(config.learning_rate, 0.0);
  MCIRBM_CHECK_GE(config.epochs, 0);
  MCIRBM_CHECK_GE(config.cd_k, 1);
  InitParameters();
}

void RbmBase::InitParameters() {
  const std::size_t nv = config_.num_visible;
  const std::size_t nh = config_.num_hidden;
  w_.Resize(nv, nh);
  a_.assign(nv, 0.0);
  b_.assign(nh, 0.0);
  rng::Rng rng(config_.seed ^ 0x52424d696e6974ULL);  // "RBMinit" stream
  for (std::size_t i = 0; i < w_.size(); ++i) {
    w_.data()[i] = rng.Gaussian(0.0, config_.init_weight_stddev);
  }
}

linalg::Matrix RbmBase::HiddenFeatures(const linalg::Matrix& v) const {
  MCIRBM_CHECK_EQ(v.cols(), w_.rows());
  linalg::Matrix h = linalg::Gemm(v, w_);
  linalg::AddRowVector(&h, b_);
  linalg::SigmoidInPlace(&h);
  return h;
}

linalg::Matrix RbmBase::Reconstruct(const linalg::Matrix& v) const {
  return ReconstructVisible(HiddenFeatures(v));
}

linalg::Matrix RbmBase::GibbsStep(const linalg::Matrix& v,
                                  bool sample_hidden, rng::Rng* rng) const {
  linalg::Matrix h = HiddenFeatures(v);
  if (sample_hidden) {
    MCIRBM_CHECK_NE(rng, nullptr) << "sampled Gibbs step needs an Rng";
    SampleBernoulliInPlace(&h, rng);
  }
  return ReconstructVisible(h);
}

double RbmBase::ReconstructionError(const linalg::Matrix& v) const {
  const linalg::Matrix r = Reconstruct(v);
  const double err = parallel::ShardedSum(
      v.size(), kElemGrain, [&](std::size_t begin, std::size_t end) {
        double s = 0;
        for (std::size_t i = begin; i < end; ++i) {
          const double d = v.data()[i] - r.data()[i];
          s += d * d;
        }
        return s;
      });
  return err / static_cast<double>(v.size());
}

double RbmBase::FreeEnergy(std::span<const double> v) const {
  MCIRBM_CHECK_EQ(v.size(), w_.rows());
  // Hidden part: −Σ_j log(1 + exp(b_j + v·W_j)), stable softplus.
  double hidden = 0;
  for (std::size_t j = 0; j < w_.cols(); ++j) {
    double pre = b_[j];
    for (std::size_t i = 0; i < w_.rows(); ++i) pre += v[i] * w_(i, j);
    const double softplus =
        pre > 30 ? pre : std::log1p(std::exp(std::min(pre, 30.0)));
    hidden += softplus;
  }
  return VisibleFreeEnergyTerm(v) - hidden;
}

double RbmBase::MeanFreeEnergy(const linalg::Matrix& v) const {
  MCIRBM_CHECK_GT(v.rows(), 0u);
  const double total = parallel::ShardedSum(
      v.rows(), kRowGrain, [&](std::size_t begin, std::size_t end) {
        double s = 0;
        for (std::size_t i = begin; i < end; ++i) s += FreeEnergy(v.Row(i));
        return s;
      });
  return total / static_cast<double>(v.rows());
}

void RbmBase::InitWeightsFromPca(const linalg::Matrix& data) {
  if (data.rows() < 2) return;  // PCA undefined; keep the Gaussian init
  linalg::Pca::Options options;
  options.num_components =
      std::min<std::size_t>(w_.cols(), std::min(data.rows() - 1, w_.rows()));
  const linalg::Pca pca = linalg::Pca::Fit(data, options);
  // Column j of W <- principal direction j scaled so the initial hidden
  // pre-activations have magnitude comparable to the Gaussian init.
  const double scale = config_.init_weight_stddev *
                       std::sqrt(static_cast<double>(w_.rows()));
  for (std::size_t j = 0; j < pca.num_components(); ++j) {
    for (std::size_t i = 0; i < w_.rows(); ++i) {
      w_(i, j) = scale * pca.components()(i, j);
    }
  }
  // Columns beyond the data rank keep their Gaussian values.
}

void RbmBase::AccumulateSupervisionGradient(const BatchContext& /*batch*/,
                                            GradientBuffers* /*grads*/) {}

void RbmBase::SampleBernoulliInPlace(linalg::Matrix* probs,
                                     rng::Rng* rng) const {
  double* p = probs->data();
  for (std::size_t i = 0; i < probs->size(); ++i) {
    p[i] = rng->Bernoulli(p[i]) ? 1.0 : 0.0;
  }
}

void RbmBase::SampleBernoulliSharded(linalg::Matrix* probs,
                                     std::uint64_t stream) const {
  const std::size_t cols = probs->cols();
  parallel::ParallelFor(
      probs->rows(), kRowGrain, [&](std::size_t begin, std::size_t end) {
        rng::Rng rng = parallel::ShardRng(stream, begin / kRowGrain);
        for (std::size_t i = begin; i < end; ++i) {
          double* row = probs->data() + i * cols;
          for (std::size_t j = 0; j < cols; ++j) {
            row[j] = rng.Bernoulli(row[j]) ? 1.0 : 0.0;
          }
        }
      });
}

std::vector<EpochStats> RbmBase::Train(const linalg::Matrix& data) {
  const MatrixTrainingSource source(data);
  auto history = TrainImpl(source, /*prefetch=*/false);
  MCIRBM_CHECK(history.ok()) << name() << ": " << history.status().ToString();
  return std::move(history).value();
}

StatusOr<std::vector<EpochStats>> RbmBase::TrainFromSource(
    const TrainingDataSource& source) {
  return TrainImpl(source, /*prefetch=*/true);
}

StatusOr<std::vector<EpochStats>> RbmBase::TrainImpl(
    const TrainingDataSource& source, bool prefetch) {
  if (source.cols() != static_cast<std::size_t>(config_.num_visible)) {
    return Status::InvalidArgument(
        name() + ": data width " + std::to_string(source.cols()) +
        " != num_visible " + std::to_string(config_.num_visible));
  }
  const std::size_t n = source.rows();
  if (n == 0) {
    return Status::InvalidArgument(name() + ": training data is empty");
  }
  const std::size_t batch_size =
      config_.batch_size > 0 ? static_cast<std::size_t>(config_.batch_size)
                             : n;

  rng::Rng rng(config_.seed ^ 0x5242747261696eULL);  // "RBtrain" stream
  const std::size_t nv = w_.rows(), nh = w_.cols();

  // Hidden-state draws. Deterministic mode (default) consumes the single
  // serial training stream — bit-identical to the serial reference at any
  // thread count. The opt-in fast path (parallel::Deterministic() false)
  // batches row shards onto independent ShardRng substreams, one fresh
  // stream id per draw: reproducible for a fixed seed and thread-count
  // invariant, but a different (parallelizable) stream.
  const bool sharded_sampling = !parallel::Deterministic();
  std::uint64_t draw_counter = 0;
  const std::uint64_t draw_stream_base =
      config_.seed ^ 0x73686473747261ULL;  // "shdstra" stream tag
  const auto draw_hidden_states = [&](linalg::Matrix* probs) {
    if (sharded_sampling) {
      SampleBernoulliSharded(
          probs, draw_stream_base + 0x9e3779b97f4a7c15ULL * ++draw_counter);
    } else {
      SampleBernoulliInPlace(probs, &rng);
    }
  };

  if (config_.weight_init == RbmConfig::WeightInit::kPca) {
    const linalg::Matrix* dense = source.DenseView();
    if (dense == nullptr) {
      return Status::InvalidArgument(
          name() + ": pca weight init needs the full matrix in memory; "
          "use gaussian init for out-of-core training");
    }
    InitWeightsFromPca(*dense);
  }

  GradientBuffers grads(nv, nh);
  linalg::Matrix w_vel(nv, nh);  // momentum velocity
  std::vector<double> a_vel(nv, 0.0), b_vel(nh, 0.0);

  // Persistent fantasy chains (PCD): seeded from random data rows, then
  // evolved by Gibbs steps across updates instead of restarting at data.
  const bool pcd = config_.use_persistent_cd;
  linalg::Matrix chains;
  if (pcd) {
    const std::size_t num_chains =
        config_.pcd_chains > 0 ? static_cast<std::size_t>(config_.pcd_chains)
                               : batch_size;
    std::vector<std::size_t> seed_rows(num_chains);
    for (std::size_t c = 0; c < num_chains; ++c) {
      seed_rows[c] = rng.UniformIndex(n);
    }
    const Status status = source.GatherRows(seed_rows, &chains);
    if (!status.ok()) return status;
  }

  // Running mean hidden activation (per unit) for the sparsity penalty.
  const bool sparsity =
      config_.sparsity_cost > 0 && config_.sparsity_target > 0;
  std::vector<double> activation_estimate(nh, config_.sparsity_target);

  std::vector<EpochStats> history;
  history.reserve(config_.epochs);

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_err = 0;
    double epoch_gnorm = 0;
    double epoch_activation = 0;
    std::size_t batches = 0;

    // The epoch's minibatches: contiguous slices of the shuffled order.
    std::vector<std::vector<std::size_t>> epoch_batches;
    epoch_batches.reserve((n + batch_size - 1) / batch_size);
    for (std::size_t start = 0; start < n; start += batch_size) {
      const std::size_t end = std::min(start + batch_size, n);
      epoch_batches.emplace_back(order.begin() + start, order.begin() + end);
    }
    std::unique_ptr<BatchPrefetcher> prefetcher;
    if (prefetch) {
      prefetcher = std::make_unique<BatchPrefetcher>(source, epoch_batches);
    }

    for (const std::vector<std::size_t>& idx : epoch_batches) {
      linalg::Matrix v;
      const Status gather_status = prefetcher != nullptr
                                       ? prefetcher->Take(&v)
                                       : source.GatherRows(idx, &v);
      if (!gather_status.ok()) return gather_status;
      const std::size_t m = v.rows();

      // Positive phase: h probs driven by data (Eq. 2).
      const linalg::Matrix h_data = HiddenFeatures(v);

      // Gibbs chain: CD-k (k=1 in the paper's experiments). The one-step
      // reconstruction of the batch is always computed — it feeds the
      // supervision hook (Lrecon is defined on reconstructed data) and
      // the telemetry — even when PCD supplies the negative phase.
      linalg::Matrix h_states = h_data;
      if (config_.sample_hidden_states) {
        draw_hidden_states(&h_states);
      }
      linalg::Matrix v_recon = ReconstructVisible(h_states);
      linalg::Matrix h_recon = HiddenFeatures(v_recon);
      for (int k = 1; k < config_.cd_k && !pcd; ++k) {
        h_states = h_recon;
        if (config_.sample_hidden_states) {
          draw_hidden_states(&h_states);
        }
        v_recon = ReconstructVisible(h_states);
        h_recon = HiddenFeatures(v_recon);
      }

      // Negative phase: batch reconstruction (CD) or persistent fantasy
      // particles advanced k Gibbs steps (PCD).
      const linalg::Matrix* v_neg = &v_recon;
      const linalg::Matrix* h_neg = &h_recon;
      linalg::Matrix h_chain;
      if (pcd) {
        for (int k = 0; k < config_.cd_k; ++k) {
          h_chain = HiddenFeatures(chains);
          linalg::Matrix h_sample = h_chain;
          if (config_.sample_hidden_states) {
            draw_hidden_states(&h_sample);
          }
          chains = ReconstructVisible(h_sample);
        }
        h_chain = HiddenFeatures(chains);
        v_neg = &chains;
        h_neg = &h_chain;
      }

      // CD gradient: <v hᵀ>_data − <v hᵀ>_neg (Eq. 7-9), batch-averaged,
      // scaled by CdScale() (η for sls variants).
      grads.Reset();
      const double inv_m = 1.0 / static_cast<double>(m);
      const double inv_neg = 1.0 / static_cast<double>(v_neg->rows());
      const double cd = CdScale();
      linalg::AccumulateGemmTransA(cd * inv_m, v, h_data, &grads.dw);
      linalg::AccumulateGemmTransA(-cd * inv_neg, *v_neg, *h_neg,
                                   &grads.dw);
      {
        const std::vector<double> v_sum = linalg::ColSums(v);
        const std::vector<double> vr_sum = linalg::ColSums(*v_neg);
        for (std::size_t j = 0; j < nv; ++j) {
          grads.da[j] += cd * (inv_m * v_sum[j] - inv_neg * vr_sum[j]);
        }
        const std::vector<double> h_sum = linalg::ColSums(h_data);
        const std::vector<double> hr_sum = linalg::ColSums(*h_neg);
        for (std::size_t j = 0; j < nh; ++j) {
          grads.db[j] += cd * (inv_m * h_sum[j] - inv_neg * hr_sum[j]);
        }
      }

      // Sparsity penalty: push every hidden unit's running mean
      // activation q_j toward the target p. Gradient of
      // −cost·Σ_j (p − q_j)² through the data-phase activations:
      // db_j += cost·(p − q_j), dW_ij += cost·(p − q_j)·<v_i h_j(1−h_j)>.
      if (sparsity) {
        const std::vector<double> h_mean = linalg::ColMeans(h_data);
        for (std::size_t j = 0; j < nh; ++j) {
          activation_estimate[j] =
              config_.sparsity_decay * activation_estimate[j] +
              (1 - config_.sparsity_decay) * h_mean[j];
        }
        linalg::Matrix weighted = linalg::SigmoidDeriv(h_data);
        for (std::size_t r = 0; r < weighted.rows(); ++r) {
          auto row = weighted.Row(r);
          for (std::size_t j = 0; j < nh; ++j) {
            row[j] *= config_.sparsity_cost *
                      (config_.sparsity_target - activation_estimate[j]);
          }
        }
        linalg::AccumulateGemmTransA(inv_m, v, weighted, &grads.dw);
        const std::vector<double> penalty_sum = linalg::ColSums(weighted);
        for (std::size_t j = 0; j < nh; ++j) {
          grads.db[j] += inv_m * penalty_sum[j];
        }
      }

      // Supervision hook (no-op for plain RBM/GRBM).
      const BatchContext ctx{idx, v, h_data, v_recon, h_recon};
      AccumulateSupervisionGradient(ctx, &grads);

      // Parameter update with momentum and L2 weight decay on W.
      const double lr = config_.learning_rate;
      const double mom =
          (config_.momentum_final > 0 &&
           epoch >= config_.momentum_switch_epoch)
              ? config_.momentum_final
              : config_.momentum;
      parallel::ParallelFor(
          w_.size(), kElemGrain, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
              const double g =
                  grads.dw.data()[i] - config_.weight_decay * w_.data()[i];
              w_vel.data()[i] = mom * w_vel.data()[i] + lr * g;
              w_.data()[i] += w_vel.data()[i];
            }
          });
      for (std::size_t j = 0; j < nv; ++j) {
        a_vel[j] = mom * a_vel[j] + lr * grads.da[j];
        a_[j] += a_vel[j];
      }
      for (std::size_t j = 0; j < nh; ++j) {
        b_vel[j] = mom * b_vel[j] + lr * grads.db[j];
        b_[j] += b_vel[j];
      }

      // Telemetry.
      const double err = parallel::ShardedSum(
          v.size(), kElemGrain, [&](std::size_t begin, std::size_t end) {
            double s = 0;
            for (std::size_t i = begin; i < end; ++i) {
              const double d = v.data()[i] - v_recon.data()[i];
              s += d * d;
            }
            return s;
          });
      epoch_err += err / static_cast<double>(v.size());
      epoch_gnorm += grads.dw.FrobeniusNorm();
      epoch_activation +=
          h_data.Sum() / static_cast<double>(h_data.size());
      ++batches;
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.reconstruction_error = epoch_err / static_cast<double>(batches);
    stats.grad_norm = epoch_gnorm / static_cast<double>(batches);
    stats.mean_hidden_activation =
        epoch_activation / static_cast<double>(batches);
    history.push_back(stats);
    MCIRBM_LOG(kDebug) << name() << " epoch " << epoch
                       << " recon=" << stats.reconstruction_error;
  }
  return history;
}

}  // namespace mcirbm::rbm
