#include "rbm/sampling.h"

#include "rng/rng.h"
#include "util/check.h"

namespace mcirbm::rbm {

linalg::Matrix SampleFantasies(const RbmBase& model,
                               const linalg::Matrix& start,
                               const GibbsOptions& options) {
  MCIRBM_CHECK_GT(start.rows(), 0u);
  MCIRBM_CHECK_EQ(start.cols(), model.weights().rows())
      << "start width != num_visible";
  MCIRBM_CHECK_GE(options.burn_in, 1);
  rng::Rng rng(options.seed ^ 0x6769626273ULL);  // "gibbs" stream tag
  linalg::Matrix v = start;
  for (int step = 0; step < options.burn_in; ++step) {
    v = model.GibbsStep(v, options.sample_hidden, &rng);
  }
  return v;
}

linalg::Matrix SampleFantasiesFromNoise(const RbmBase& model,
                                        std::size_t num_samples,
                                        const GibbsOptions& options) {
  MCIRBM_CHECK_GT(num_samples, 0u);
  rng::Rng rng(options.seed ^ 0x6e6f697365ULL);  // "noise" stream tag
  linalg::Matrix start(num_samples, model.weights().rows());
  for (std::size_t i = 0; i < start.size(); ++i) {
    start.data()[i] = rng.Bernoulli(0.5) ? 1.0 : 0.0;
  }
  return SampleFantasies(model, start, options);
}

}  // namespace mcirbm::rbm
