#include "rbm/sampling.h"

#include <algorithm>

#include "parallel/thread_pool.h"
#include "rng/rng.h"
#include "util/check.h"

namespace mcirbm::rbm {
namespace {

// Fixed shard width for the fast-path chains: boundaries depend only on
// the chain count, so results are identical at any thread count.
constexpr std::size_t kChainGrain = 32;

}  // namespace

linalg::Matrix SampleFantasies(const RbmBase& model,
                               const linalg::Matrix& start,
                               const GibbsOptions& options) {
  MCIRBM_CHECK_GT(start.rows(), 0u);
  MCIRBM_CHECK_EQ(start.cols(), model.weights().rows())
      << "start width != num_visible";
  MCIRBM_CHECK_GE(options.burn_in, 1);
  const std::uint64_t stream = options.seed ^ 0x6769626273ULL;  // "gibbs"

  if (!parallel::Deterministic() && options.sample_hidden) {
    // Opt-in fast path: chains run in fixed row shards, each shard on its
    // own ShardRng substream. Reproducible for a fixed seed and identical
    // at any thread count, but not the serial single-stream draw order.
    const std::size_t n = start.rows();
    const std::size_t d = start.cols();
    linalg::Matrix out(n, d);
    parallel::ParallelFor(
        n, kChainGrain, [&](std::size_t begin, std::size_t end) {
          rng::Rng rng = parallel::ShardRng(stream, begin / kChainGrain);
          linalg::Matrix v(end - begin, d);
          for (std::size_t i = begin; i < end; ++i) {
            std::copy_n(start.data() + i * d, d,
                        v.data() + (i - begin) * d);
          }
          for (int step = 0; step < options.burn_in; ++step) {
            v = model.GibbsStep(v, /*sample_hidden=*/true, &rng);
          }
          for (std::size_t i = begin; i < end; ++i) {
            std::copy_n(v.data() + (i - begin) * d, d, out.data() + i * d);
          }
        });
    return out;
  }

  rng::Rng rng(stream);
  linalg::Matrix v = start;
  for (int step = 0; step < options.burn_in; ++step) {
    v = model.GibbsStep(v, options.sample_hidden, &rng);
  }
  return v;
}

linalg::Matrix SampleFantasiesFromNoise(const RbmBase& model,
                                        std::size_t num_samples,
                                        const GibbsOptions& options) {
  MCIRBM_CHECK_GT(num_samples, 0u);
  rng::Rng rng(options.seed ^ 0x6e6f697365ULL);  // "noise" stream tag
  linalg::Matrix start(num_samples, model.weights().rows());
  for (std::size_t i = 0; i < start.size(); ++i) {
    start.data()[i] = rng.Bernoulli(0.5) ? 1.0 : 0.0;
  }
  return SampleFantasies(model, start, options);
}

}  // namespace mcirbm::rbm
