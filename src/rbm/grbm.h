// RBM with Gaussian linear visible units (Eq. 4-5): the canonical energy
// model for real-valued data, trained with CD per Karakida et al. [27].
#ifndef MCIRBM_RBM_GRBM_H_
#define MCIRBM_RBM_GRBM_H_

#include "rbm/rbm_base.h"

namespace mcirbm::rbm {

/// Gaussian (unit-variance, noise-free) visible + binary hidden units.
/// Reconstruction is the linear mean field a + h·Wᵀ — "the reconstructed
/// values of Gaussian linear visible units are equal to their top-down
/// input values from the binary hidden units plus their bias" (Sec III.B).
/// Inputs should be standardized (zero mean, unit variance per feature).
class Grbm : public RbmBase {
 public:
  explicit Grbm(const RbmConfig& config) : RbmBase(config) {}

  std::string name() const override { return "grbm"; }

 protected:
  linalg::Matrix ReconstructVisible(const linalg::Matrix& h) const override;

  /// Gaussian (unit variance) visible part: ½ Σ_i (v_i − a_i)².
  double VisibleFreeEnergyTerm(std::span<const double> v) const override;
};

}  // namespace mcirbm::rbm

#endif  // MCIRBM_RBM_GRBM_H_
