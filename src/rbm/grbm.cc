#include "rbm/grbm.h"

#include "linalg/ops.h"

namespace mcirbm::rbm {

linalg::Matrix Grbm::ReconstructVisible(const linalg::Matrix& h) const {
  // E[v|h] = a + h·Wᵀ  (Eq. 5 with unit variance, noise-free).
  linalg::Matrix v = linalg::GemmTransB(h, w_);
  linalg::AddRowVector(&v, a_);
  return v;
}

double Grbm::VisibleFreeEnergyTerm(std::span<const double> v) const {
  // ½ Σ_i (v_i − a_i)² from the Gaussian term of Eq. 4 (unit σ).
  double sum = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double d = v[i] - a_[i];
    sum += d * d;
  }
  return 0.5 * sum;
}

}  // namespace mcirbm::rbm
