#include "rbm/serialize.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "rbm/grbm.h"
#include "rbm/rbm.h"

namespace mcirbm::rbm {

const char kRbmMagic[] = "mcirbm-rbm v1";

Status SaveParameters(const RbmBase& model, std::ostream& out) {
  out << kRbmMagic << "\n" << model.name() << "\n";
  const auto& w = model.weights();
  out << w.rows() << " " << w.cols() << "\n";
  out << std::setprecision(17);
  out << "a:";
  for (double v : model.visible_bias()) out << " " << v;
  out << "\nb:";
  for (double v : model.hidden_bias()) out << " " << v;
  out << "\nW:\n";
  for (std::size_t r = 0; r < w.rows(); ++r) {
    for (std::size_t c = 0; c < w.cols(); ++c) {
      if (c) out << " ";
      out << w(r, c);
    }
    out << "\n";
  }
  if (!out) return Status::IoError("parameter write failed");
  return Status::Ok();
}

Status SaveParameters(const RbmBase& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const Status status = SaveParameters(model, out);
  if (!status.ok()) {
    return Status::IoError(status.message() + " for " + path);
  }
  return Status::Ok();
}

namespace {

// Parses the "magic / name / nv nh" preamble shared by both loaders.
Status ReadHeader(std::istream& in, const std::string& context,
                  std::string* name, std::size_t* nv, std::size_t* nh) {
  std::string line;
  if (!std::getline(in, line) || line != kRbmMagic) {
    return Status::ParseError(context + ": bad magic header");
  }
  if (!std::getline(in, *name) || name->empty()) {
    return Status::ParseError(context + ": missing model name");
  }
  in >> *nv >> *nh;
  if (!in) return Status::ParseError(context + ": bad shape line");
  if (*nv == 0 || *nh == 0) {
    return Status::ParseError(context + ": degenerate shape");
  }
  // Bound the dimensions before they are narrowed to int (and before the
  // weight matrix is allocated): a corrupted shape line must surface as a
  // parse error, not signed-overflow UB or an allocation failure.
  constexpr std::size_t kMaxDim = 1u << 24;
  constexpr std::size_t kMaxElements = 1u << 28;
  if (*nv > kMaxDim || *nh > kMaxDim || *nv > kMaxElements / *nh) {
    return Status::ParseError(context + ": implausible shape " +
                              std::to_string(*nv) + "x" +
                              std::to_string(*nh));
  }
  return Status::Ok();
}

// Reads the a/b/W parameter block into an already shape-matched model.
Status ReadParameterBlock(std::istream& in, const std::string& context,
                          std::size_t nv, std::size_t nh, RbmBase* model) {
  std::string tag;
  in >> tag;
  if (tag != "a:") return Status::ParseError(context + ": expected 'a:'");
  for (std::size_t j = 0; j < nv; ++j) {
    in >> (*model->mutable_visible_bias())[j];
  }
  in >> tag;
  if (tag != "b:") return Status::ParseError(context + ": expected 'b:'");
  for (std::size_t j = 0; j < nh; ++j) {
    in >> (*model->mutable_hidden_bias())[j];
  }
  in >> tag;
  if (tag != "W:") return Status::ParseError(context + ": expected 'W:'");
  linalg::Matrix* w = model->mutable_weights();
  for (std::size_t r = 0; r < nv; ++r) {
    for (std::size_t c = 0; c < nh; ++c) in >> (*w)(r, c);
  }
  if (!in) {
    return Status::ParseError(context + ": truncated parameter block");
  }
  return Status::Ok();
}

}  // namespace

Status LoadParameters(std::istream& in, RbmBase* model) {
  std::string stored_name;
  std::size_t nv = 0, nh = 0;
  Status status = ReadHeader(in, "parameter stream", &stored_name, &nv, &nh);
  if (!status.ok()) return status;
  if (nv != model->weights().rows() || nh != model->weights().cols()) {
    std::ostringstream msg;
    msg << "parameter stream: shape " << nv << "x" << nh << " != model "
        << model->weights().rows() << "x" << model->weights().cols();
    return Status::InvalidArgument(msg.str());
  }
  return ReadParameterBlock(in, "parameter stream", nv, nh, model);
}

Status LoadParameters(const std::string& path, RbmBase* model) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  const Status status = LoadParameters(in, model);
  if (!status.ok()) {
    // Re-prefix stream diagnostics with the file path.
    std::string message = status.message();
    const std::string generic = "parameter stream";
    const std::size_t at = message.find(generic);
    if (at != std::string::npos) {
      message.replace(at, generic.size(), path);
    }
    return Status(status.code(), message);
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<RbmBase>> LoadInferenceModel(
    std::istream& in, const std::string& context,
    std::string* stored_name_out) {
  std::string stored_name;
  std::size_t nv = 0, nh = 0;
  Status status = ReadHeader(in, context, &stored_name, &nv, &nh);
  if (!status.ok()) return status;
  if (stored_name_out != nullptr) *stored_name_out = stored_name;

  RbmConfig config;
  config.num_visible = static_cast<int>(nv);
  config.num_hidden = static_cast<int>(nh);
  std::unique_ptr<RbmBase> model;
  if (stored_name.find("grbm") != std::string::npos) {
    model = std::make_unique<Grbm>(config);
  } else {
    model = std::make_unique<Rbm>(config);
  }
  status = ReadParameterBlock(in, context, nv, nh, model.get());
  if (!status.ok()) return status;
  return model;
}

}  // namespace mcirbm::rbm
