#include "rbm/serialize.h"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace mcirbm::rbm {
namespace {
constexpr char kMagic[] = "mcirbm-rbm v1";
}  // namespace

Status SaveParameters(const RbmBase& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << kMagic << "\n" << model.name() << "\n";
  const auto& w = model.weights();
  out << w.rows() << " " << w.cols() << "\n";
  out << std::setprecision(17);
  out << "a:";
  for (double v : model.visible_bias()) out << " " << v;
  out << "\nb:";
  for (double v : model.hidden_bias()) out << " " << v;
  out << "\nW:\n";
  for (std::size_t r = 0; r < w.rows(); ++r) {
    for (std::size_t c = 0; c < w.cols(); ++c) {
      if (c) out << " ";
      out << w(r, c);
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Status LoadParameters(const std::string& path, RbmBase* model) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Status::ParseError(path + ": bad magic header");
  }
  std::string stored_name;
  if (!std::getline(in, stored_name)) {
    return Status::ParseError(path + ": missing model name");
  }
  std::size_t nv = 0, nh = 0;
  in >> nv >> nh;
  if (!in) return Status::ParseError(path + ": bad shape line");
  if (nv != model->weights().rows() || nh != model->weights().cols()) {
    std::ostringstream msg;
    msg << path << ": shape " << nv << "x" << nh << " != model "
        << model->weights().rows() << "x" << model->weights().cols();
    return Status::InvalidArgument(msg.str());
  }
  std::string tag;
  in >> tag;
  if (tag != "a:") return Status::ParseError(path + ": expected 'a:'");
  for (std::size_t j = 0; j < nv; ++j) in >> (*model->mutable_visible_bias())[j];
  in >> tag;
  if (tag != "b:") return Status::ParseError(path + ": expected 'b:'");
  for (std::size_t j = 0; j < nh; ++j) in >> (*model->mutable_hidden_bias())[j];
  in >> tag;
  if (tag != "W:") return Status::ParseError(path + ": expected 'W:'");
  linalg::Matrix* w = model->mutable_weights();
  for (std::size_t r = 0; r < nv; ++r) {
    for (std::size_t c = 0; c < nh; ++c) in >> (*w)(r, c);
  }
  if (!in) return Status::ParseError(path + ": truncated parameter block");
  return Status::Ok();
}

}  // namespace mcirbm::rbm
