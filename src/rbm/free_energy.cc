#include "rbm/free_energy.h"

#include <cmath>
#include <vector>

#include "linalg/ops.h"
#include "rng/rng.h"
#include "util/check.h"

namespace mcirbm::rbm {

double PseudoLogLikelihood(const RbmBase& model, const linalg::Matrix& v,
                           std::uint64_t seed) {
  const std::size_t n = v.rows();
  const std::size_t nv = v.cols();
  MCIRBM_CHECK_GT(n, 0u);
  MCIRBM_CHECK_GT(nv, 0u);
  rng::Rng rng(seed);

  double total = 0;
  std::vector<double> row(nv);
  for (std::size_t r = 0; r < n; ++r) {
    const auto src = v.Row(r);
    for (std::size_t i = 0; i < nv; ++i) row[i] = src[i];
    const double fe = model.FreeEnergy(row);
    const std::size_t flip = rng.UniformIndex(nv);
    row[flip] = 1.0 - row[flip];
    const double fe_flipped = model.FreeEnergy(row);
    // log σ(F(ṽ) − F(v)), stable for large |gap|.
    const double gap = fe_flipped - fe;
    const double log_sigmoid =
        gap > 30 ? 0.0 : gap - std::log1p(std::exp(std::min(gap, 30.0)));
    total += static_cast<double>(nv) * log_sigmoid;
  }
  return total / static_cast<double>(n);
}

double FreeEnergyGap(const RbmBase& model, const linalg::Matrix& train,
                     const linalg::Matrix& reference) {
  return model.MeanFreeEnergy(reference) - model.MeanFreeEnergy(train);
}

}  // namespace mcirbm::rbm
