// Likelihood-progress estimators built on the free energy.
//
// CD reconstruction error is the usual training monitor but is not a
// likelihood; pseudo-log-likelihood (PLL) gives a tractable proxy for
// binary RBMs, and the free-energy gap between training and a reference
// sample detects overfitting for both unit types.
#ifndef MCIRBM_RBM_FREE_ENERGY_H_
#define MCIRBM_RBM_FREE_ENERGY_H_

#include <cstdint>

#include "linalg/matrix.h"
#include "rbm/rbm_base.h"

namespace mcirbm::rbm {

/// Stochastic pseudo-log-likelihood per instance for a binary-visible
/// model: for each row one random bit i is flipped and
/// PLL ≈ nv · log σ(F(ṽ) − F(v)) (Marlin et al. 2010). Inputs should be
/// in {0,1}; deterministic given `seed`. More negative = worse fit.
double PseudoLogLikelihood(const RbmBase& model, const linalg::Matrix& v,
                           std::uint64_t seed);

/// Mean free-energy gap F(reference) − F(train). A model that merely
/// memorizes training rows drives train free energy far below that of
/// held-out/reference data; a well-fit model keeps the gap small.
double FreeEnergyGap(const RbmBase& model, const linalg::Matrix& train,
                     const linalg::Matrix& reference);

}  // namespace mcirbm::rbm

#endif  // MCIRBM_RBM_FREE_ENERGY_H_
