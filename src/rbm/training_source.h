// Row-gather abstraction the CD training loop pulls minibatches through.
//
// The trainer only ever needs two things from its data: the shape, and
// "give me these rows as a dense matrix" (the epoch shuffle selects the
// rows; gathering them is RNG-free). Abstracting that pair lets the same
// loop train from a fully resident matrix or stream batches from an
// out-of-core backing store (data::DataSource adapters live in the api
// layer) with bit-identical results: identical gathered batches in
// identical order reproduce every downstream draw and update exactly.
#ifndef MCIRBM_RBM_TRAINING_SOURCE_H_
#define MCIRBM_RBM_TRAINING_SOURCE_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "util/check.h"
#include "util/status.h"

namespace mcirbm::rbm {

/// Random-access row provider for RbmBase::TrainFromSource.
class TrainingDataSource {
 public:
  virtual ~TrainingDataSource() = default;

  virtual std::size_t rows() const = 0;
  virtual std::size_t cols() const = 0;

  /// Gathers the given rows, in order, into `out` (resized to
  /// indices.size() x cols()). Must be safe to call from the trainer's
  /// background prefetch thread (no shared mutable state with other
  /// GatherRows calls in flight — the trainer issues at most one at a
  /// time, but concurrently with parallel compute regions).
  virtual Status GatherRows(const std::vector<std::size_t>& indices,
                            linalg::Matrix* out) const = 0;

  /// The full matrix when it is memory-resident, nullptr otherwise.
  /// Enables the features that genuinely need all rows at once (PCA
  /// weight init); everything else streams through GatherRows.
  virtual const linalg::Matrix* DenseView() const { return nullptr; }
};

/// Zero-copy adapter over an in-memory matrix; gathers via SelectRows so
/// Train(matrix) and TrainFromSource(MatrixTrainingSource(matrix)) are the
/// same computation.
class MatrixTrainingSource final : public TrainingDataSource {
 public:
  explicit MatrixTrainingSource(const linalg::Matrix& x) : x_(x) {}

  std::size_t rows() const override { return x_.rows(); }
  std::size_t cols() const override { return x_.cols(); }

  Status GatherRows(const std::vector<std::size_t>& indices,
                    linalg::Matrix* out) const override {
    for (std::size_t i : indices) {
      if (i >= x_.rows()) {
        return Status::InvalidArgument("gather index " + std::to_string(i) +
                                       " out of range");
      }
    }
    *out = x_.SelectRows(indices);
    return Status::Ok();
  }

  const linalg::Matrix* DenseView() const override { return &x_; }

 private:
  const linalg::Matrix& x_;
};

}  // namespace mcirbm::rbm

#endif  // MCIRBM_RBM_TRAINING_SOURCE_H_
