// Text (de)serialization of RBM parameters for checkpointing / export.
//
// Format (line oriented, locale-independent):
//   mcirbm-rbm v1
//   <model-name>
//   <num_visible> <num_hidden>
//   a: <nv doubles>
//   b: <nh doubles>
//   W: nv lines of nh doubles
#ifndef MCIRBM_RBM_SERIALIZE_H_
#define MCIRBM_RBM_SERIALIZE_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "rbm/rbm_base.h"
#include "util/status.h"

namespace mcirbm::rbm {

/// The single-model format magic line ("mcirbm-rbm v1").
extern const char kRbmMagic[];

/// Writes `model`'s parameters to `path`.
Status SaveParameters(const RbmBase& model, const std::string& path);

/// Stream form of SaveParameters — lets container formats (api::Model)
/// embed the parameter block after their own header.
Status SaveParameters(const RbmBase& model, std::ostream& out);

/// Loads parameters into `model`; fails if the stored shape does not match
/// the model's configured shape (the model name is informational only).
Status LoadParameters(const std::string& path, RbmBase* model);

/// Stream form of LoadParameters, starting at the format's magic line.
Status LoadParameters(std::istream& in, RbmBase* model);

/// Reads a parameter block from `in` and reconstructs an
/// inference-equivalent model sized from the stored shape: the stored name
/// chooses sigmoid vs linear reconstruction (sls variants are
/// inference-identical to their plain bases). `context` labels errors.
/// `stored_name`, when non-null, receives the payload's model name — the
/// returned object's name() is the plain reconstruction ("rbm"/"grbm"),
/// so callers preserving provenance (e.g. api::Model) need the original.
StatusOr<std::unique_ptr<RbmBase>> LoadInferenceModel(
    std::istream& in, const std::string& context,
    std::string* stored_name = nullptr);

}  // namespace mcirbm::rbm

#endif  // MCIRBM_RBM_SERIALIZE_H_
