// Text (de)serialization of RBM parameters for checkpointing / export.
//
// Format (line oriented, locale-independent):
//   mcirbm-rbm v1
//   <model-name>
//   <num_visible> <num_hidden>
//   a: <nv doubles>
//   b: <nh doubles>
//   W: nv lines of nh doubles
#ifndef MCIRBM_RBM_SERIALIZE_H_
#define MCIRBM_RBM_SERIALIZE_H_

#include <string>

#include "rbm/rbm_base.h"
#include "util/status.h"

namespace mcirbm::rbm {

/// Writes `model`'s parameters to `path`.
Status SaveParameters(const RbmBase& model, const std::string& path);

/// Loads parameters into `model`; fails if the stored shape does not match
/// the model's configured shape (the model name is informational only).
Status LoadParameters(const std::string& path, RbmBase* model);

}  // namespace mcirbm::rbm

#endif  // MCIRBM_RBM_SERIALIZE_H_
