// Training configuration for RBM-family models.
#ifndef MCIRBM_RBM_CONFIG_H_
#define MCIRBM_RBM_CONFIG_H_

#include <cstdint>

namespace mcirbm::rbm {

/// Hyper-parameters for CD training of an RBM/GRBM.
///
/// The paper trains slsGRBM with learning rate 1e-4 and slsRBM with 1e-5
/// (Section V.B); those are the defaults used by the experiment harness.
struct RbmConfig {
  int num_visible = 0;
  int num_hidden = 64;

  double learning_rate = 1e-4;
  int epochs = 30;

  /// Minibatch size; 0 = full-batch (the paper's regime on these small
  /// datasets).
  int batch_size = 0;

  /// Gibbs steps per update (CD-k). The paper uses CD-1 following
  /// Karakida et al.'s analysis.
  int cd_k = 1;

  double momentum = 0.5;

  /// Two-stage momentum schedule (Hinton's practical guide: 0.5 for the
  /// first few epochs while gradients are large and noisy, then 0.9).
  /// 0 disables the switch and `momentum` is used throughout.
  double momentum_final = 0.0;
  int momentum_switch_epoch = 5;

  double weight_decay = 1e-4;

  /// Stddev of the Gaussian weight init (Hinton's practical guide value).
  double init_weight_stddev = 0.01;

  /// If true, the hidden layer is sampled to binary states before the
  /// reconstruction pass (standard CD); if false, probabilities are used
  /// (mean-field, lower-variance gradients).
  bool sample_hidden_states = true;

  // --- Training extensions beyond the paper's CD-1 (all default off;
  // exercised by bench/ablation_training).

  /// Persistent CD (Tieleman 2008, the paper's ref [11]): the negative
  /// phase runs persistent fantasy chains instead of restarting the Gibbs
  /// chain at the data. Better likelihood gradients at small k on
  /// multi-modal data.
  bool use_persistent_cd = false;

  /// Number of persistent fantasy chains; 0 = one per batch row.
  int pcd_chains = 0;

  /// Sparsity regularization (sparse RBM, the paper's ref [25]): drives
  /// the mean activation of every hidden unit toward `sparsity_target`
  /// with penalty weight `sparsity_cost`. Both must be > 0 to enable.
  double sparsity_target = 0.0;
  double sparsity_cost = 0.0;

  /// Exponential-decay factor of the running mean-activation estimate
  /// used by the sparsity penalty.
  double sparsity_decay = 0.9;

  /// Weight initialization scheme.
  enum class WeightInit {
    kGaussian,  ///< N(0, init_weight_stddev) — Hinton's default
    kPca,       ///< principal directions of the training data (Xie et
                ///< al., the paper's ref [46]); falls back to Gaussian
                ///< columns beyond the data rank
  };
  WeightInit weight_init = WeightInit::kGaussian;

  std::uint64_t seed = 42;
};

}  // namespace mcirbm::rbm

#endif  // MCIRBM_RBM_CONFIG_H_
