// Gibbs sampling from a trained RBM-family model.
//
// An RBM is a generative model; drawing fantasy samples is both a
// qualitative check that training captured the data's modes and the
// negative-phase machinery behind PCD exposed as a public API.
#ifndef MCIRBM_RBM_SAMPLING_H_
#define MCIRBM_RBM_SAMPLING_H_

#include <cstdint>

#include "linalg/matrix.h"
#include "rbm/rbm_base.h"

namespace mcirbm::rbm {

/// Options for the Gibbs chain.
struct GibbsOptions {
  /// Full v->h->v steps per returned sample.
  int burn_in = 100;
  /// Sample binary hidden states (true, proper Gibbs) or propagate
  /// probabilities (false, mean-field — deterministic given the start).
  bool sample_hidden = true;
  std::uint64_t seed = 1;
};

/// Runs `options.burn_in` Gibbs steps from each row of `start` and returns
/// the final visible configurations (probabilities/means, not sampled
/// states) — one fantasy per start row.
linalg::Matrix SampleFantasies(const RbmBase& model,
                               const linalg::Matrix& start,
                               const GibbsOptions& options);

/// Convenience: starts `num_samples` chains from Bernoulli(0.5) noise
/// (binary models) — for Gaussian models prefer SampleFantasies with
/// data-shaped starts, since a unit-Gaussian start may sit far from the
/// model's modes.
linalg::Matrix SampleFantasiesFromNoise(const RbmBase& model,
                                        std::size_t num_samples,
                                        const GibbsOptions& options);

}  // namespace mcirbm::rbm

#endif  // MCIRBM_RBM_SAMPLING_H_
