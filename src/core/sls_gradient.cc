#include "core/sls_gradient.h"

#include <cmath>

#include "linalg/ops.h"
#include "parallel/thread_pool.h"
#include "util/check.h"

namespace mcirbm::core {
namespace {

// Fixed shard widths: hidden columns for the pairwise sweeps (each column
// j owns db[j] and dW column j, so shards write disjoint elements) and
// visible rows for the fast path's rank-1 corrections.
constexpr std::size_t kColGrain = 8;
constexpr std::size_t kRowGrain = 64;

// Visible-cluster centers O_k (rows) for the retained clusters.
linalg::Matrix ClusterCenters(const linalg::Matrix& v,
                              const SupervisionBatch& batch) {
  const std::size_t k = batch.num_clusters();
  linalg::Matrix centers(k, v.cols());
  for (std::size_t c = 0; c < k; ++c) {
    const auto& rows = batch.members[c];
    MCIRBM_DCHECK(!rows.empty());
    double* crow = centers.data() + c * v.cols();
    for (std::size_t r : rows) {
      const double* vrow = v.data() + r * v.cols();
      for (std::size_t j = 0; j < v.cols(); ++j) crow[j] += vrow[j];
    }
    const double inv = 1.0 / static_cast<double>(rows.size());
    for (std::size_t j = 0; j < v.cols(); ++j) crow[j] *= inv;
  }
  return centers;
}

// Mapped centers C_k = σ(b + O_k W).
linalg::Matrix MappedCenters(const linalg::Matrix& centers,
                             const linalg::Matrix& w,
                             const std::vector<double>& b) {
  linalg::Matrix c = linalg::Gemm(centers, w);
  linalg::AddRowVector(&c, b);
  linalg::SigmoidInPlace(&c);
  return c;
}

// Adds scale * ∂(−w_d·Ld)/∂θ where Ld is the center-dispersion term
// (1/NC) Σ_{p<q} ||C_p − C_q||² and w_d the disperse weight. Shared by
// both implementations: K is tiny so the explicit pair loop is optimal.
void AccumulateDisperse(const linalg::Matrix& v,
                        const SupervisionBatch& batch,
                        const linalg::Matrix& w,
                        const std::vector<double>& b, double scale,
                        double disperse_weight, SlsGradientOutput out) {
  const std::size_t k = batch.num_clusters();
  if (k < 2) return;
  const linalg::Matrix centers = ClusterCenters(v, batch);
  const linalg::Matrix mapped = MappedCenters(centers, w, b);
  const std::size_t nv = w.rows(), nh = w.cols();
  const double nc = static_cast<double>(k) * (k - 1) / 2.0;
  // ∂Ld/∂w_ij = (2/NC) Σ_{p<q} (C_pj−C_qj)(gC_pj O_pi − gC_qj O_qi);
  // the dispersion enters L with a minus sign, hence -scale below.
  const double f = -scale * disperse_weight * 2.0 / nc;
  // Hidden columns are independent (db[j] and dW column j); the (p,q)
  // pair loop runs innermost so each element accumulates contributions
  // in the same pair order at any thread count.
  parallel::ParallelFor(
      nh, kColGrain, [&](std::size_t j_begin, std::size_t j_end) {
        for (std::size_t j = j_begin; j < j_end; ++j) {
          for (std::size_t p = 0; p < k; ++p) {
            for (std::size_t q = p + 1; q < k; ++q) {
              const double cp = mapped(p, j), cq = mapped(q, j);
              const double diff = cp - cq;
              if (diff == 0.0) continue;
              const double gp = cp * (1 - cp), gq = cq * (1 - cq);
              (*out.db)[j] += f * diff * (gp - gq);
              const double cj = f * diff;
              double* dwcol = out.dw->data() + j;  // column j, stride nh
              const double* op = centers.data() + p * nv;
              const double* oq = centers.data() + q * nv;
              for (std::size_t i = 0; i < nv; ++i) {
                dwcol[i * nh] += cj * (gp * op[i] - gq * oq[i]);
              }
            }
          }
        }
      });
}

}  // namespace

SupervisionBatch BuildSupervisionBatch(
    const voting::LocalSupervision& supervision,
    const std::vector<std::size_t>& batch_indices) {
  SupervisionBatch batch;
  std::vector<std::vector<std::size_t>> raw(supervision.num_clusters);
  for (std::size_t r = 0; r < batch_indices.size(); ++r) {
    const std::size_t global = batch_indices[r];
    MCIRBM_CHECK_LT(global, supervision.cluster_of.size());
    const int c = supervision.cluster_of[global];
    if (c >= 0) raw[c].push_back(r);
  }
  for (auto& rows : raw) {
    if (rows.size() >= 2) {
      batch.num_credible += rows.size();
      batch.num_ordered_pairs += rows.size() * (rows.size() - 1);
      batch.members.push_back(std::move(rows));
    }
  }
  return batch;
}

void AccumulateSlsGradientNaive(const linalg::Matrix& v,
                                const linalg::Matrix& h,
                                const SupervisionBatch& batch,
                                const linalg::Matrix& w,
                                const std::vector<double>& b,
                                const SlsGradientOptions& options,
                                SlsGradientOutput out) {
  if (batch.empty()) return;
  MCIRBM_CHECK_EQ(v.rows(), h.rows());
  MCIRBM_CHECK(out.dw->rows() == v.cols() && out.dw->cols() == h.cols());
  MCIRBM_CHECK_EQ(out.db->size(), h.cols());
  const std::size_t nv = v.cols(), nh = h.cols();
  const double inv_norm =
      1.0 / static_cast<double>(options.normalize_by_pairs
                                    ? batch.num_ordered_pairs
                                    : batch.num_credible);
  const double f = options.scale * 2.0 * inv_norm;  // constrict prefactor

  // Literal Eq. 27/31: ordered pairs (s,t) within each credible cluster.
  // Sharded over hidden columns — each j owns db[j] and dW column j, and
  // the (cluster, s, t) loops run innermost, so every element receives
  // its contributions in the serial pair order at any thread count.
  parallel::ParallelFor(
      nh, kColGrain, [&](std::size_t j_begin, std::size_t j_end) {
        for (std::size_t j = j_begin; j < j_end; ++j) {
          for (const auto& rows : batch.members) {
            for (std::size_t s : rows) {
              const double* hs = h.data() + s * nh;
              const double* vs = v.data() + s * nv;
              for (std::size_t t : rows) {
                if (s == t) continue;
                const double* ht = h.data() + t * nh;
                const double* vt = v.data() + t * nv;
                const double diff = hs[j] - ht[j];
                if (diff == 0.0) continue;
                const double gs = hs[j] * (1 - hs[j]);
                const double gt = ht[j] * (1 - ht[j]);
                (*out.db)[j] += f * diff * (gs - gt);
                const double cj = f * diff;
                double* dwcol = out.dw->data() + j;
                for (std::size_t i = 0; i < nv; ++i) {
                  dwcol[i * nh] += cj * (gs * vs[i] - gt * vt[i]);
                }
              }
            }
          }
        }
      });
  if (options.include_disperse) {
    AccumulateDisperse(v, batch, w, b, options.scale,
                       options.disperse_weight, out);
  }
}

void AccumulateSlsGradientFast(const linalg::Matrix& v,
                               const linalg::Matrix& h,
                               const SupervisionBatch& batch,
                               const linalg::Matrix& w,
                               const std::vector<double>& b,
                               const SlsGradientOptions& options,
                               SlsGradientOutput out) {
  if (batch.empty()) return;
  MCIRBM_CHECK_EQ(v.rows(), h.rows());
  MCIRBM_CHECK(out.dw->rows() == v.cols() && out.dw->cols() == h.cols());
  MCIRBM_CHECK_EQ(out.db->size(), h.cols());
  const std::size_t nv = v.cols(), nh = h.cols();
  const double inv_norm =
      1.0 / static_cast<double>(options.normalize_by_pairs
                                    ? batch.num_ordered_pairs
                                    : batch.num_credible);

  // Σ_{s,t∈k}(a_s−a_t)(c_s−c_t) = 2N_k Σ_s a_s c_s − 2(Σ_s a_s)(Σ_s c_s)
  // applied per column j with a_s = h_sj and c_s = g_sj·v_si turns the
  // pairwise sums into two GEMMs per cluster.
  for (const auto& rows : batch.members) {
    const std::size_t nk = rows.size();
    const linalg::Matrix vk = v.SelectRows(rows);
    const linalg::Matrix hk = h.SelectRows(rows);
    linalg::Matrix gk = linalg::SigmoidDeriv(hk);       // g = h(1-h)
    linalg::Matrix hg = hk;
    hg.HadamardInPlace(gk);                              // h∘g

    const double c1 = options.scale * 4.0 * static_cast<double>(nk) *
                      inv_norm;                      // (2/norm)·2N_k
    const double c2 = options.scale * 4.0 * inv_norm;  // (2/norm)·2

    // dW += c1·V_kᵀ(H∘G) − c2·diag-col-scaled V_kᵀG.
    linalg::AccumulateGemmTransA(c1, vk, hg, out.dw);
    const linalg::Matrix vg = linalg::GemmTransA(vk, gk);  // nv x nh
    const std::vector<double> hsum = linalg::ColSums(hk);
    parallel::ParallelFor(
        nv, kRowGrain, [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            double* dwrow = out.dw->data() + i * nh;
            const double* vgrow = vg.data() + i * nh;
            for (std::size_t j = 0; j < nh; ++j) {
              dwrow[j] -= c2 * hsum[j] * vgrow[j];
            }
          }
        });
    // db += c1·Σ_s h_sj g_sj − c2·hsum_j·gsum_j.
    const std::vector<double> hgsum = linalg::ColSums(hg);
    const std::vector<double> gsum = linalg::ColSums(gk);
    for (std::size_t j = 0; j < nh; ++j) {
      (*out.db)[j] += c1 * hgsum[j] - c2 * hsum[j] * gsum[j];
    }
  }
  if (options.include_disperse) {
    AccumulateDisperse(v, batch, w, b, options.scale,
                       options.disperse_weight, out);
  }
}

double SlsObjective(const linalg::Matrix& v, const linalg::Matrix& h,
                    const SupervisionBatch& batch, const linalg::Matrix& w,
                    const std::vector<double>& b,
                    const SlsGradientOptions& options) {
  if (batch.empty()) return 0.0;
  const std::size_t nh = h.cols();
  // Per-cluster subtotals over fixed single-cluster shards, combined in
  // cluster order (thread-count independent).
  double constrict = parallel::ShardedSum(
      batch.members.size(), 1, [&](std::size_t begin, std::size_t end) {
        double sum = 0;
        for (std::size_t c = begin; c < end; ++c) {
          const auto& rows = batch.members[c];
          for (std::size_t s : rows) {
            for (std::size_t t : rows) {
              if (s == t) continue;
              sum += linalg::SquaredDistance(h.Row(s), h.Row(t));
            }
          }
        }
        return sum;
      });
  constrict /= static_cast<double>(options.normalize_by_pairs
                                       ? batch.num_ordered_pairs
                                       : batch.num_credible);

  double disperse = 0;
  const std::size_t k = batch.num_clusters();
  if (options.include_disperse && k >= 2) {
    const linalg::Matrix centers = ClusterCenters(v, batch);
    const linalg::Matrix mapped = MappedCenters(centers, w, b);
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t q = p + 1; q < k; ++q) {
        for (std::size_t j = 0; j < nh; ++j) {
          const double d = mapped(p, j) - mapped(q, j);
          disperse += d * d;
        }
      }
    }
    disperse /= static_cast<double>(k) * (k - 1) / 2.0;
  }
  return constrict - options.disperse_weight * disperse;
}

}  // namespace mcirbm::core
