// End-to-end encoder pipeline (Fig. 1 of the paper).
//
//   visible data ──> {DP, K-means, AP} ──> unanimous voting ──>
//   self-learning local supervision ──> sls(G)RBM CD-1 training ──>
//   hidden-layer features for downstream clustering.
#ifndef MCIRBM_CORE_PIPELINE_H_
#define MCIRBM_CORE_PIPELINE_H_

#include <cstdint>
#include <memory>

#include "core/sls_config.h"
#include "core/sls_models.h"
#include "linalg/matrix.h"
#include "rbm/config.h"
#include "voting/local_supervision.h"
#include "voting/vote.h"

namespace mcirbm::core {

/// Which encoder to train.
enum class ModelKind {
  kRbm,      ///< plain binary RBM baseline
  kGrbm,     ///< plain Gaussian RBM baseline
  kSlsRbm,   ///< paper model for binary data
  kSlsGrbm,  ///< paper model for real-valued data
};

const char* ModelKindName(ModelKind kind);

/// Configuration of the supervision-construction stage.
struct SupervisionConfig {
  int num_clusters = 2;  ///< K passed to the base clusterers
  voting::VoteStrategy strategy = voting::VoteStrategy::kUnanimous;
  int min_cluster_size = 2;
  bool use_density_peaks = true;
  bool use_kmeans = true;
  bool use_affinity_propagation = true;

  /// Number of independently seeded K-means members contributed to the
  /// integration (>= 1). Additional runs make the unanimous vote stricter:
  /// instances that K-means assigns unstably across restarts lose their
  /// credibility, which raises consensus precision at some coverage cost.
  int kmeans_voters = 1;

  // --- Extended integration members (beyond the paper's DP/K-means/AP).
  // All default off; the ablation bench compares member sets. Diverse
  // voters sharpen the unanimous vote: agreement across *different biases*
  // (hierarchical, density-with-noise, model-based, graph-based) is
  // stronger evidence than agreement across similar ones.

  /// Ward-linkage agglomerative clustering as a voter.
  bool use_agglomerative = false;
  /// Self-tuning DBSCAN as a voter. Its noise points (-1) abstain, which
  /// the voting layer already treats as "no consensus".
  bool use_dbscan = false;
  /// Diagonal-covariance GMM (EM) as a voter.
  bool use_gmm = false;
  /// Normalized-cut spectral clustering as a voter. O(n³) eigensolve —
  /// intended for datasets up to a few hundred instances.
  bool use_spectral = false;
};

/// Runs the enabled base clusterers on `x` and integrates their partitions
/// into a LocalSupervision (Section V.A.2). `x` should already be in the
/// representation the encoder will train on.
voting::LocalSupervision ComputeSelfLearningSupervision(
    const linalg::Matrix& x, const SupervisionConfig& config,
    std::uint64_t seed);

/// Full pipeline configuration.
struct PipelineConfig {
  ModelKind model = ModelKind::kSlsGrbm;
  rbm::RbmConfig rbm;          ///< num_visible may be 0 = infer from data
  SlsConfig sls;               ///< ignored by plain models
  SupervisionConfig supervision;  ///< ignored by plain models
  ParallelConfig parallel;     ///< execution-engine settings
};

/// Applies the execution-engine settings to the global thread pool:
/// resizes it when num_threads > 0 and records the determinism mode.
/// Idempotent; called by RunEncoderPipeline and the experiment harness.
void ApplyParallelConfig(const ParallelConfig& config);

/// Result of running the pipeline on one dataset.
struct PipelineResult {
  linalg::Matrix hidden_features;           ///< n x num_hidden
  voting::LocalSupervision supervision;     ///< empty for plain models
  std::unique_ptr<rbm::RbmBase> model;      ///< the trained encoder
  double final_reconstruction_error = 0;
};

/// Trains the configured encoder on `x` and extracts hidden features.
/// For sls models the supervision is computed from `x` itself (fully
/// unsupervised). Deterministic given `seed`.
PipelineResult RunEncoderPipeline(const linalg::Matrix& x,
                                  const PipelineConfig& config,
                                  std::uint64_t seed);

}  // namespace mcirbm::core

#endif  // MCIRBM_CORE_PIPELINE_H_
