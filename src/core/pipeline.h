// End-to-end encoder pipeline (Fig. 1 of the paper).
//
//   visible data ──> {DP, K-means, AP} ──> unanimous voting ──>
//   self-learning local supervision ──> sls(G)RBM CD-1 training ──>
//   hidden-layer features for downstream clustering.
#ifndef MCIRBM_CORE_PIPELINE_H_
#define MCIRBM_CORE_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/sls_config.h"
#include "core/sls_models.h"
#include "linalg/matrix.h"
#include "rbm/config.h"
#include "rbm/training_source.h"
#include "util/param_map.h"
#include "util/status.h"
#include "voting/local_supervision.h"
#include "voting/vote.h"

namespace mcirbm::core {

/// Which encoder to train.
enum class ModelKind {
  kRbm,      ///< plain binary RBM baseline
  kGrbm,     ///< plain Gaussian RBM baseline
  kSlsRbm,   ///< paper model for binary data
  kSlsGrbm,  ///< paper model for real-valued data
};

const char* ModelKindName(ModelKind kind);

/// One ordered member of the multi-clustering integration, resolved
/// against clustering::ClustererRegistry by name.
struct VoterSpec {
  std::string clusterer;  ///< registry name ("dp", "kmeans", "ap", ...)
  ParamMap params;        ///< factory parameters; "k" defaults to
                          ///< SupervisionConfig::num_clusters
  /// Independently seeded repeats of this voter (>= 1). Extra repeats of a
  /// randomized clusterer make the unanimous vote stricter: instances it
  /// assigns unstably across restarts lose their credibility.
  int count = 1;
};

/// Parses a comma-separated voter list such as "dp,kmeans*3,ap" into
/// ordered specs (`name` or `name*count`). Names are validated against the
/// registry; parameters beyond "k" are set programmatically on the specs.
StatusOr<std::vector<VoterSpec>> ParseVoterList(const std::string& text);

/// Configuration of the supervision-construction stage.
struct SupervisionConfig {
  int num_clusters = 2;  ///< K passed to the base clusterers
  voting::VoteStrategy strategy = voting::VoteStrategy::kUnanimous;
  int min_cluster_size = 2;

  /// Ordered integration members. When non-empty this list is
  /// authoritative and the deprecated `use_*` flags below are ignored;
  /// when empty, the flags are translated into the equivalent specs by
  /// ResolveVoterSpecs (bit-identical to the historical behavior).
  std::vector<VoterSpec> voters;

  // --- Deprecated voter toggles. Prefer `voters`; these booleans survive
  // only as a source-compatibility shim for pre-registry callers and are
  // consulted solely when `voters` is empty.
  bool use_density_peaks = true;           ///< deprecated: use `voters`
  bool use_kmeans = true;                  ///< deprecated: use `voters`
  bool use_affinity_propagation = true;    ///< deprecated: use `voters`
  /// Deprecated: number of independently seeded K-means members (>= 1);
  /// expressed as VoterSpec::count in the registry form.
  int kmeans_voters = 1;
  bool use_agglomerative = false;  ///< deprecated: Ward-linkage voter
  /// Deprecated: self-tuning DBSCAN voter. Its noise points (-1) abstain,
  /// which the voting layer already treats as "no consensus".
  bool use_dbscan = false;
  bool use_gmm = false;       ///< deprecated: diagonal-covariance GMM voter
  /// Deprecated: normalized-cut spectral voter. O(n³) eigensolve —
  /// intended for datasets up to a few hundred instances.
  bool use_spectral = false;
};

/// Expands `config` into the ordered voter list the integration will run:
/// `config.voters` verbatim when non-empty, otherwise the deprecated bool
/// flags in their historical order (dp, kmeans×kmeans_voters, ap,
/// agglomerative, dbscan, gmm, spectral). InvalidArgument when the result
/// would be empty or a count is non-positive.
StatusOr<std::vector<VoterSpec>> ResolveVoterSpecs(
    const SupervisionConfig& config);

/// Runs the configured base clusterers on `x` and integrates their
/// partitions into a LocalSupervision (Section V.A.2). `x` should already
/// be in the representation the encoder will train on. Unknown clusterer
/// names and malformed parameters surface as non-OK Status.
StatusOr<voting::LocalSupervision> TryComputeSelfLearningSupervision(
    const linalg::Matrix& x, const SupervisionConfig& config,
    std::uint64_t seed);

/// CHECK-aborting wrapper around TryComputeSelfLearningSupervision for
/// callers with statically valid configs.
voting::LocalSupervision ComputeSelfLearningSupervision(
    const linalg::Matrix& x, const SupervisionConfig& config,
    std::uint64_t seed);

/// Full pipeline configuration.
struct PipelineConfig {
  ModelKind model = ModelKind::kSlsGrbm;
  rbm::RbmConfig rbm;          ///< num_visible may be 0 = infer from data
  SlsConfig sls;               ///< ignored by plain models
  SupervisionConfig supervision;  ///< ignored by plain models
  ParallelConfig parallel;     ///< execution-engine settings
};

/// Applies the execution-engine settings to the global thread pool:
/// resizes it when num_threads > 0 and records the determinism mode.
/// Idempotent; called by RunEncoderPipeline and the experiment harness.
void ApplyParallelConfig(const ParallelConfig& config);

/// Result of running the pipeline on one dataset.
struct PipelineResult {
  linalg::Matrix hidden_features;           ///< n x num_hidden
  voting::LocalSupervision supervision;     ///< empty for plain models
  std::unique_ptr<rbm::RbmBase> model;      ///< the trained encoder
  double final_reconstruction_error = 0;
};

/// Trains the configured encoder on `x` and extracts hidden features.
/// For sls models the supervision is computed from `x` itself (fully
/// unsupervised). Deterministic given `seed`. Invalid configurations
/// (empty data, bad hyper-parameters, unresolvable voters) return non-OK
/// Status instead of aborting.
StatusOr<PipelineResult> TryRunEncoderPipeline(const linalg::Matrix& x,
                                               const PipelineConfig& config,
                                               std::uint64_t seed);

/// TryRunEncoderPipeline gathering minibatches through `source` — the
/// out-of-core entry point. Bit-identical to the materialized run with the
/// same rows: the trainer streams double-buffered batches, so peak
/// residency is a couple of minibatches, not the dataset. Features that
/// need every row at once degrade explicitly: sls supervision and PCA
/// weight init require source.DenseView() (kInvalidArgument otherwise),
/// and PipelineResult::hidden_features stays empty — stream transforms
/// chunk-by-chunk instead (row-sliced GEMM is bit-identical to the full
/// pass).
StatusOr<PipelineResult> TryRunEncoderPipelineFromSource(
    const rbm::TrainingDataSource& source, const PipelineConfig& config,
    std::uint64_t seed);

/// CHECK-aborting wrapper around TryRunEncoderPipeline for callers with
/// statically valid configs.
PipelineResult RunEncoderPipeline(const linalg::Matrix& x,
                                  const PipelineConfig& config,
                                  std::uint64_t seed);

}  // namespace mcirbm::core

#endif  // MCIRBM_CORE_PIPELINE_H_
