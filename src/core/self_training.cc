#include "core/self_training.h"

#include <cmath>
#include <utility>

#include "util/check.h"
#include "util/logging.h"

namespace mcirbm::core {

SelfTrainingResult RunSelfTraining(const linalg::Matrix& x,
                                   const SelfTrainingConfig& config,
                                   std::uint64_t seed) {
  MCIRBM_CHECK_GT(x.rows(), 0u);
  MCIRBM_CHECK_GE(config.rounds, 1);
  const bool is_sls = config.pipeline.model == ModelKind::kSlsRbm ||
                      config.pipeline.model == ModelKind::kSlsGrbm;
  MCIRBM_CHECK(is_sls) << "self-training needs an sls model";

  SelfTrainingResult result;
  double previous_coverage = -1;

  // The representation the supervision is derived from: visible data in
  // round 0, the previous encoder's hidden features afterwards.
  linalg::Matrix supervision_input = x;

  for (int round = 0; round < config.rounds; ++round) {
    const std::uint64_t round_seed = seed + 7919ULL * round;
    voting::LocalSupervision supervision = ComputeSelfLearningSupervision(
        supervision_input, config.pipeline.supervision, round_seed);

    rbm::RbmConfig rbm_config = config.pipeline.rbm;
    if (rbm_config.num_visible == 0) {
      rbm_config.num_visible = static_cast<int>(x.cols());
    }
    rbm_config.seed = rbm_config.seed ^ round_seed;

    std::unique_ptr<rbm::RbmBase> model;
    if (config.pipeline.model == ModelKind::kSlsRbm) {
      model = std::make_unique<SlsRbm>(rbm_config, config.pipeline.sls,
                                       supervision);
    } else {
      model = std::make_unique<SlsGrbm>(rbm_config, config.pipeline.sls,
                                        supervision);
    }
    const auto history = model->Train(x);

    SelfTrainingRound stats;
    stats.round = round;
    stats.supervision_coverage = supervision.Coverage();
    stats.supervision_clusters = supervision.num_clusters;
    stats.final_reconstruction_error =
        history.empty() ? model->ReconstructionError(x)
                        : history.back().reconstruction_error;
    result.rounds.push_back(stats);
    MCIRBM_LOG(kInfo) << "self-training round " << round << ": coverage "
                      << stats.supervision_coverage << ", "
                      << stats.supervision_clusters << " clusters";

    result.hidden_features = model->HiddenFeatures(x);
    result.supervision = std::move(supervision);
    result.model = std::move(model);
    supervision_input = result.hidden_features;

    if (config.coverage_tolerance > 0 && previous_coverage >= 0 &&
        std::abs(stats.supervision_coverage - previous_coverage) <
            config.coverage_tolerance) {
      result.stopped_early = true;
      break;
    }
    previous_coverage = stats.supervision_coverage;
  }
  return result;
}

}  // namespace mcirbm::core
