// The paper's two instantiation models.
//
//  * slsRBM  — binary visible/hidden units, sigmoid reconstruction,
//              for binarized (UCI-style) data.
//  * slsGRBM — Gaussian linear visible units, linear reconstruction,
//              for standardized real-valued (image-feature) data.
//
// Both fuse the self-learning local supervision into CD-1 learning: each
// update applies η-scaled CD plus the (1−η)-scaled constrict/disperse
// gradient evaluated on BOTH the data view (V, H) and the reconstructed
// view (Ṽ, H̃) — update rules Eq. 33-35.
#ifndef MCIRBM_CORE_SLS_MODELS_H_
#define MCIRBM_CORE_SLS_MODELS_H_

#include "core/sls_config.h"
#include "core/sls_gradient.h"
#include "rbm/grbm.h"
#include "rbm/rbm.h"
#include "voting/local_supervision.h"

namespace mcirbm::core {

/// Shared supervision-fusion logic; owned by both sls models.
class SlsSupervisionFuser {
 public:
  SlsSupervisionFuser(const SlsConfig& config,
                      voting::LocalSupervision supervision);

  /// Adds the (1−η)-scaled descent direction of Ldata (+ Lrecon) into
  /// `grads`, using the batch snapshot and the current parameters.
  void Accumulate(const rbm::BatchContext& batch, const linalg::Matrix& w,
                  const std::vector<double>& b,
                  rbm::GradientBuffers* grads) const;

  const SlsConfig& config() const { return config_; }
  const voting::LocalSupervision& supervision() const { return supervision_; }

 private:
  SlsConfig config_;
  voting::LocalSupervision supervision_;
};

/// Self-learning local supervision RBM (binary units).
class SlsRbm : public rbm::Rbm {
 public:
  SlsRbm(const rbm::RbmConfig& rbm_config, const SlsConfig& sls_config,
         voting::LocalSupervision supervision)
      : Rbm(rbm_config), fuser_(sls_config, std::move(supervision)) {}

  std::string name() const override { return "sls-rbm"; }
  const SlsSupervisionFuser& fuser() const { return fuser_; }

 protected:
  double CdScale() const override { return fuser_.config().eta; }
  void AccumulateSupervisionGradient(const rbm::BatchContext& batch,
                                     rbm::GradientBuffers* grads) override {
    fuser_.Accumulate(batch, w_, b_, grads);
  }

 private:
  SlsSupervisionFuser fuser_;
};

/// Self-learning local supervision GRBM (Gaussian linear visible units).
class SlsGrbm : public rbm::Grbm {
 public:
  SlsGrbm(const rbm::RbmConfig& rbm_config, const SlsConfig& sls_config,
          voting::LocalSupervision supervision)
      : Grbm(rbm_config), fuser_(sls_config, std::move(supervision)) {}

  std::string name() const override { return "sls-grbm"; }
  const SlsSupervisionFuser& fuser() const { return fuser_; }

 protected:
  double CdScale() const override { return fuser_.config().eta; }
  void AccumulateSupervisionGradient(const rbm::BatchContext& batch,
                                     rbm::GradientBuffers* grads) override {
    fuser_.Accumulate(batch, w_, b_, grads);
  }

 private:
  SlsSupervisionFuser fuser_;
};

}  // namespace mcirbm::core

#endif  // MCIRBM_CORE_SLS_MODELS_H_
