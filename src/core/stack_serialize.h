// (De)serialization of trained stacked encoders.
//
// Layout: a manifest at `path` plus one per-layer parameter file
// "<path>.layer<i>" in the single-model format of rbm/serialize.h:
//
//   mcirbm-stack v1
//   <num_layers>
//   <model-name> <reconstruction: sigmoid|linear> <layer-file-basename>
//   ...
//
// Loading reconstructs inference-equivalent plain models (Rbm for sigmoid
// reconstruction, Grbm for linear): the sls supervision only affects
// training, so Transform on a loaded stack matches the original exactly.
#ifndef MCIRBM_CORE_STACK_SERIALIZE_H_
#define MCIRBM_CORE_STACK_SERIALIZE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/stacked.h"
#include "linalg/matrix.h"
#include "rbm/rbm_base.h"
#include "util/status.h"

namespace mcirbm::core {

/// The stack manifest magic line ("mcirbm-stack v1").
extern const char kStackMagic[];

/// A stack restored from disk: feature extraction only.
class LoadedStack {
 public:
  /// Feature map through the first `depth` layers (0 = all layers).
  linalg::Matrix Transform(const linalg::Matrix& x,
                           std::size_t depth = 0) const;

  std::size_t num_layers() const { return layers_.size(); }
  const rbm::RbmBase& layer(std::size_t i) const;

 private:
  friend Status LoadStack(const std::string& path, LoadedStack* out);
  std::vector<std::unique_ptr<rbm::RbmBase>> layers_;
};

/// Writes a trained stack (manifest + per-layer files). Fails if the
/// stack has not been trained.
Status SaveStack(const StackedEncoder& stack, const std::string& path);

/// Restores a stack saved by SaveStack into `out`.
Status LoadStack(const std::string& path, LoadedStack* out);

}  // namespace mcirbm::core

#endif  // MCIRBM_CORE_STACK_SERIALIZE_H_
