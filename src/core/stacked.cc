#include "core/stacked.h"

#include <utility>

#include "util/check.h"
#include "util/logging.h"

namespace mcirbm::core {

StackedEncoder::StackedEncoder(std::vector<StackedLayerConfig> layers)
    : configs_(std::move(layers)) {
  MCIRBM_CHECK(!configs_.empty()) << "stack needs at least one layer";
}

std::vector<StackedLayerStats> StackedEncoder::Train(const linalg::Matrix& x,
                                                     std::uint64_t seed) {
  MCIRBM_CHECK_GT(x.rows(), 0u);
  models_.clear();
  std::vector<StackedLayerStats> stats(configs_.size());

  linalg::Matrix input = x;
  voting::LocalSupervision supervision;  // carried down-up when reused
  bool have_supervision = false;

  for (std::size_t l = 0; l < configs_.size(); ++l) {
    const StackedLayerConfig& layer = configs_[l];
    rbm::RbmConfig rbm_config = layer.rbm;
    if (rbm_config.num_visible == 0) {
      rbm_config.num_visible = static_cast<int>(input.cols());
    }
    // Independent per-layer parameter streams from one seed.
    rbm_config.seed = rbm_config.seed ^ (seed + 0x9e3779b97f4a7c15ULL * l);

    const bool is_sls = layer.model == ModelKind::kSlsRbm ||
                        layer.model == ModelKind::kSlsGrbm;
    std::unique_ptr<rbm::RbmBase> model;
    if (is_sls) {
      if (layer.recompute_supervision || !have_supervision) {
        supervision = ComputeSelfLearningSupervision(
            input, layer.supervision, seed + 31 * l);
        have_supervision = true;
      }
      stats[l].supervision_coverage = supervision.Coverage();
      stats[l].supervision_clusters = supervision.num_clusters;
      if (layer.model == ModelKind::kSlsRbm) {
        model = std::make_unique<SlsRbm>(rbm_config, layer.sls, supervision);
      } else {
        model =
            std::make_unique<SlsGrbm>(rbm_config, layer.sls, supervision);
      }
    } else if (layer.model == ModelKind::kRbm) {
      model = std::make_unique<rbm::Rbm>(rbm_config);
    } else {
      model = std::make_unique<rbm::Grbm>(rbm_config);
    }

    stats[l].epochs = model->Train(input);
    input = model->HiddenFeatures(input);
    MCIRBM_LOG(kInfo) << "stack layer " << l << " (" << model->name()
                      << ") trained; output width " << input.cols();
    models_.push_back(std::move(model));
  }
  return stats;
}

linalg::Matrix StackedEncoder::Transform(const linalg::Matrix& x,
                                         std::size_t depth) const {
  MCIRBM_CHECK_EQ(models_.size(), configs_.size())
      << "Transform before Train";
  const std::size_t layers = depth == 0 ? models_.size() : depth;
  MCIRBM_CHECK_LE(layers, models_.size());
  linalg::Matrix features = x;
  for (std::size_t l = 0; l < layers; ++l) {
    features = models_[l]->HiddenFeatures(features);
  }
  return features;
}

const rbm::RbmBase& StackedEncoder::layer(std::size_t i) const {
  MCIRBM_CHECK_LT(i, models_.size());
  return *models_[i];
}

const StackedLayerConfig& StackedEncoder::layer_config(std::size_t i) const {
  MCIRBM_CHECK_LT(i, configs_.size());
  return configs_[i];
}

}  // namespace mcirbm::core
