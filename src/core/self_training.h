// Iterated self-training: re-derive the self-learning local supervision
// from the model's own hidden features and retrain.
//
// The paper computes the supervision once, from the visible data. If the
// sls encoder really improves the feature distribution, clustering *its
// hidden features* should produce better-agreeing partitions — i.e. a
// broader and purer consensus — which in turn should supervise a better
// encoder. This module closes that loop and reports whether it converges
// (the coverage trace is the diagnostic: it typically grows and then
// plateaus).
#ifndef MCIRBM_CORE_SELF_TRAINING_H_
#define MCIRBM_CORE_SELF_TRAINING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/pipeline.h"
#include "linalg/matrix.h"

namespace mcirbm::core {

/// Configuration of the iterated self-training loop.
struct SelfTrainingConfig {
  /// Base pipeline; `model` must be one of the sls kinds.
  PipelineConfig pipeline;

  /// Number of rounds. Round 0 is exactly the paper's pipeline
  /// (supervision from visible data); each later round re-derives the
  /// supervision from the previous round's hidden features and retrains
  /// a fresh encoder on the visible data.
  int rounds = 3;

  /// Stop early when consensus coverage changes by less than this
  /// between rounds (<= 0 disables early stopping).
  double coverage_tolerance = 0.0;
};

/// Telemetry of one self-training round.
struct SelfTrainingRound {
  int round = 0;
  double supervision_coverage = 0;
  int supervision_clusters = 0;
  double final_reconstruction_error = 0;
};

/// Outcome of the loop: the last round's model/features plus the trace.
struct SelfTrainingResult {
  std::vector<SelfTrainingRound> rounds;
  linalg::Matrix hidden_features;           ///< last round, n x num_hidden
  voting::LocalSupervision supervision;     ///< last round's supervision
  std::unique_ptr<rbm::RbmBase> model;      ///< last round's encoder
  bool stopped_early = false;
};

/// Runs the loop on `x`. Deterministic given `seed`.
SelfTrainingResult RunSelfTraining(const linalg::Matrix& x,
                                   const SelfTrainingConfig& config,
                                   std::uint64_t seed);

}  // namespace mcirbm::core

#endif  // MCIRBM_CORE_SELF_TRAINING_H_
