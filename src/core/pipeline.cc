#include "core/pipeline.h"

#include <utility>
#include <vector>

#include "clustering/affinity_propagation.h"
#include "clustering/agglomerative.h"
#include "clustering/dbscan.h"
#include "clustering/density_peaks.h"
#include "clustering/gmm.h"
#include "clustering/kmeans.h"
#include "clustering/spectral.h"
#include "util/check.h"
#include "util/logging.h"

namespace mcirbm::core {

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kRbm:
      return "RBM";
    case ModelKind::kGrbm:
      return "GRBM";
    case ModelKind::kSlsRbm:
      return "slsRBM";
    case ModelKind::kSlsGrbm:
      return "slsGRBM";
  }
  return "?";
}

voting::LocalSupervision ComputeSelfLearningSupervision(
    const linalg::Matrix& x, const SupervisionConfig& config,
    std::uint64_t seed) {
  MCIRBM_CHECK_GT(config.num_clusters, 0);
  std::vector<std::vector<int>> partitions;

  if (config.use_density_peaks) {
    clustering::DensityPeaksConfig dp;
    dp.k = config.num_clusters;
    partitions.push_back(
        clustering::DensityPeaks(dp).Cluster(x, seed).assignment);
  }
  if (config.use_kmeans) {
    MCIRBM_CHECK_GT(config.kmeans_voters, 0);
    clustering::KMeansConfig km;
    km.k = config.num_clusters;
    for (int v = 0; v < config.kmeans_voters; ++v) {
      partitions.push_back(
          clustering::KMeans(km)
              .Cluster(x, seed + static_cast<std::uint64_t>(v) * 7919ULL)
              .assignment);
    }
  }
  if (config.use_affinity_propagation) {
    clustering::AffinityPropagationConfig ap;
    ap.target_clusters = config.num_clusters;
    partitions.push_back(
        clustering::AffinityPropagation(ap).Cluster(x, seed).assignment);
  }
  if (config.use_agglomerative) {
    partitions.push_back(
        clustering::Agglomerative(config.num_clusters,
                                  clustering::Linkage::kWard)
            .Cluster(x, seed)
            .assignment);
  }
  if (config.use_dbscan) {
    partitions.push_back(
        clustering::Dbscan(clustering::Dbscan::Options{})
            .Cluster(x, seed)
            .assignment);
  }
  if (config.use_gmm) {
    clustering::GaussianMixture::Options gmm;
    gmm.num_components = config.num_clusters;
    partitions.push_back(
        clustering::GaussianMixture(gmm).Cluster(x, seed).assignment);
  }
  if (config.use_spectral) {
    clustering::Spectral::Options sp;
    sp.num_clusters = config.num_clusters;
    partitions.push_back(
        clustering::Spectral(sp).Cluster(x, seed).assignment);
  }
  MCIRBM_CHECK(!partitions.empty())
      << "at least one base clusterer must be enabled";

  voting::LocalSupervision sup = voting::IntegratePartitions(
      partitions, config.strategy, config.min_cluster_size);
  MCIRBM_LOG(kInfo) << "self-learning supervision: " << sup.num_clusters
                    << " credible clusters, coverage " << sup.Coverage();
  return sup;
}

PipelineResult RunEncoderPipeline(const linalg::Matrix& x,
                                  const PipelineConfig& config,
                                  std::uint64_t seed) {
  MCIRBM_CHECK_GT(x.rows(), 0u);
  rbm::RbmConfig rbm_config = config.rbm;
  if (rbm_config.num_visible == 0) {
    rbm_config.num_visible = static_cast<int>(x.cols());
  }
  rbm_config.seed = rbm_config.seed ^ seed;

  PipelineResult result;
  const bool is_sls = config.model == ModelKind::kSlsRbm ||
                      config.model == ModelKind::kSlsGrbm;
  if (is_sls) {
    result.supervision =
        ComputeSelfLearningSupervision(x, config.supervision, seed);
  }

  switch (config.model) {
    case ModelKind::kRbm:
      result.model = std::make_unique<rbm::Rbm>(rbm_config);
      break;
    case ModelKind::kGrbm:
      result.model = std::make_unique<rbm::Grbm>(rbm_config);
      break;
    case ModelKind::kSlsRbm:
      result.model = std::make_unique<SlsRbm>(rbm_config, config.sls,
                                              result.supervision);
      break;
    case ModelKind::kSlsGrbm:
      result.model = std::make_unique<SlsGrbm>(rbm_config, config.sls,
                                               result.supervision);
      break;
  }

  const std::vector<rbm::EpochStats> history = result.model->Train(x);
  result.final_reconstruction_error =
      history.empty() ? result.model->ReconstructionError(x)
                      : history.back().reconstruction_error;
  result.hidden_features = result.model->HiddenFeatures(x);
  return result;
}

}  // namespace mcirbm::core
