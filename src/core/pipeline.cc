#include "core/pipeline.h"

#include <functional>
#include <utility>
#include <vector>

#include "clustering/affinity_propagation.h"
#include "clustering/agglomerative.h"
#include "clustering/dbscan.h"
#include "clustering/density_peaks.h"
#include "clustering/gmm.h"
#include "clustering/kmeans.h"
#include "clustering/spectral.h"
#include "parallel/thread_pool.h"
#include "util/check.h"
#include "util/logging.h"

namespace mcirbm::core {

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kRbm:
      return "RBM";
    case ModelKind::kGrbm:
      return "GRBM";
    case ModelKind::kSlsRbm:
      return "slsRBM";
    case ModelKind::kSlsGrbm:
      return "slsGRBM";
  }
  return "?";
}

voting::LocalSupervision ComputeSelfLearningSupervision(
    const linalg::Matrix& x, const SupervisionConfig& config,
    std::uint64_t seed) {
  MCIRBM_CHECK_GT(config.num_clusters, 0);

  // Every enabled voter is an independent (clusterer, seed) job; collect
  // them first so the ensemble can train in parallel. Slot order — and
  // therefore the integrated result — matches the original serial
  // construction exactly; each voter keeps its original seed.
  std::vector<std::function<std::vector<int>()>> voters;

  if (config.use_density_peaks) {
    clustering::DensityPeaksConfig dp;
    dp.k = config.num_clusters;
    voters.push_back([&x, dp, seed] {
      return clustering::DensityPeaks(dp).Cluster(x, seed).assignment;
    });
  }
  if (config.use_kmeans) {
    MCIRBM_CHECK_GT(config.kmeans_voters, 0);
    clustering::KMeansConfig km;
    km.k = config.num_clusters;
    for (int v = 0; v < config.kmeans_voters; ++v) {
      const std::uint64_t voter_seed =
          seed + static_cast<std::uint64_t>(v) * 7919ULL;
      voters.push_back([&x, km, voter_seed] {
        return clustering::KMeans(km).Cluster(x, voter_seed).assignment;
      });
    }
  }
  if (config.use_affinity_propagation) {
    clustering::AffinityPropagationConfig ap;
    ap.target_clusters = config.num_clusters;
    voters.push_back([&x, ap, seed] {
      return clustering::AffinityPropagation(ap).Cluster(x, seed).assignment;
    });
  }
  if (config.use_agglomerative) {
    voters.push_back([&x, &config, seed] {
      return clustering::Agglomerative(config.num_clusters,
                                       clustering::Linkage::kWard)
          .Cluster(x, seed)
          .assignment;
    });
  }
  if (config.use_dbscan) {
    voters.push_back([&x, seed] {
      return clustering::Dbscan(clustering::Dbscan::Options{})
          .Cluster(x, seed)
          .assignment;
    });
  }
  if (config.use_gmm) {
    clustering::GaussianMixture::Options gmm;
    gmm.num_components = config.num_clusters;
    voters.push_back([&x, gmm, seed] {
      return clustering::GaussianMixture(gmm).Cluster(x, seed).assignment;
    });
  }
  if (config.use_spectral) {
    clustering::Spectral::Options sp;
    sp.num_clusters = config.num_clusters;
    voters.push_back([&x, sp, seed] {
      return clustering::Spectral(sp).Cluster(x, seed).assignment;
    });
  }
  MCIRBM_CHECK(!voters.empty())
      << "at least one base clusterer must be enabled";

  std::vector<std::vector<int>> partitions(voters.size());
  parallel::ParallelFor(voters.size(), 1,
                        [&](std::size_t begin, std::size_t end) {
                          for (std::size_t v = begin; v < end; ++v) {
                            partitions[v] = voters[v]();
                          }
                        });

  voting::LocalSupervision sup = voting::IntegratePartitions(
      partitions, config.strategy, config.min_cluster_size);
  MCIRBM_LOG(kInfo) << "self-learning supervision: " << sup.num_clusters
                    << " credible clusters, coverage " << sup.Coverage();
  return sup;
}

void ApplyParallelConfig(const ParallelConfig& config) {
  if (config.num_threads > 0 &&
      config.num_threads != parallel::NumThreads() &&
      !parallel::InParallelRegion()) {
    parallel::SetNumThreads(config.num_threads);
  }
  parallel::SetDeterministic(config.deterministic);
}

PipelineResult RunEncoderPipeline(const linalg::Matrix& x,
                                  const PipelineConfig& config,
                                  std::uint64_t seed) {
  MCIRBM_CHECK_GT(x.rows(), 0u);
  ApplyParallelConfig(config.parallel);
  rbm::RbmConfig rbm_config = config.rbm;
  if (rbm_config.num_visible == 0) {
    rbm_config.num_visible = static_cast<int>(x.cols());
  }
  rbm_config.seed = rbm_config.seed ^ seed;

  PipelineResult result;
  const bool is_sls = config.model == ModelKind::kSlsRbm ||
                      config.model == ModelKind::kSlsGrbm;
  if (is_sls) {
    result.supervision =
        ComputeSelfLearningSupervision(x, config.supervision, seed);
  }

  switch (config.model) {
    case ModelKind::kRbm:
      result.model = std::make_unique<rbm::Rbm>(rbm_config);
      break;
    case ModelKind::kGrbm:
      result.model = std::make_unique<rbm::Grbm>(rbm_config);
      break;
    case ModelKind::kSlsRbm:
      result.model = std::make_unique<SlsRbm>(rbm_config, config.sls,
                                              result.supervision);
      break;
    case ModelKind::kSlsGrbm:
      result.model = std::make_unique<SlsGrbm>(rbm_config, config.sls,
                                               result.supervision);
      break;
  }

  const std::vector<rbm::EpochStats> history = result.model->Train(x);
  result.final_reconstruction_error =
      history.empty() ? result.model->ReconstructionError(x)
                      : history.back().reconstruction_error;
  result.hidden_features = result.model->HiddenFeatures(x);
  return result;
}

}  // namespace mcirbm::core
