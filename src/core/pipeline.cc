#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>
#include <vector>

#include "clustering/registry.h"
#include "parallel/thread_pool.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace mcirbm::core {

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kRbm:
      return "RBM";
    case ModelKind::kGrbm:
      return "GRBM";
    case ModelKind::kSlsRbm:
      return "slsRBM";
    case ModelKind::kSlsGrbm:
      return "slsGRBM";
  }
  return "?";
}

StatusOr<std::vector<VoterSpec>> ParseVoterList(const std::string& text) {
  std::vector<VoterSpec> specs;
  for (const std::string& part : Split(text, ',')) {
    const std::string entry = Trim(part);
    if (entry.empty()) continue;
    VoterSpec spec;
    const std::size_t star = entry.find('*');
    if (star == std::string::npos) {
      spec.clusterer = entry;
    } else {
      spec.clusterer = Trim(entry.substr(0, star));
      if (!ParseInt(Trim(entry.substr(star + 1)), &spec.count)) {
        return Status::ParseError("voter '" + entry +
                                  "': count must be an integer");
      }
      if (spec.count <= 0) {
        return Status::InvalidArgument("voter '" + entry +
                                       "': count must be positive");
      }
    }
    if (!clustering::ClustererRegistry::Global().Contains(spec.clusterer)) {
      return Status::NotFound("unknown voter clusterer '" + spec.clusterer +
                              "'");
    }
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) {
    return Status::InvalidArgument("voter list '" + text +
                                   "' resolves to no voters");
  }
  return specs;
}

StatusOr<std::vector<VoterSpec>> ResolveVoterSpecs(
    const SupervisionConfig& config) {
  if (!config.voters.empty()) {
    std::vector<VoterSpec> specs = config.voters;
    for (const VoterSpec& spec : specs) {
      if (spec.count <= 0) {
        return Status::InvalidArgument("voter '" + spec.clusterer +
                                       "': count must be positive");
      }
    }
    return specs;
  }
  // Deprecated bool-flag shim, preserved in the historical voter order so
  // seeds — and therefore results — match the pre-registry pipeline.
  std::vector<VoterSpec> specs;
  if (config.use_density_peaks) specs.push_back({"dp", {}, 1});
  if (config.use_kmeans) {
    if (config.kmeans_voters <= 0) {
      return Status::InvalidArgument("kmeans_voters must be positive");
    }
    specs.push_back({"kmeans", {}, config.kmeans_voters});
  }
  if (config.use_affinity_propagation) specs.push_back({"ap", {}, 1});
  if (config.use_agglomerative) specs.push_back({"agglomerative", {}, 1});
  if (config.use_dbscan) specs.push_back({"dbscan", {}, 1});
  if (config.use_gmm) specs.push_back({"gmm", {}, 1});
  if (config.use_spectral) specs.push_back({"spectral", {}, 1});
  if (specs.empty()) {
    return Status::InvalidArgument(
        "at least one base clusterer must be enabled");
  }
  return specs;
}

StatusOr<voting::LocalSupervision> TryComputeSelfLearningSupervision(
    const linalg::Matrix& x, const SupervisionConfig& config,
    std::uint64_t seed) {
  if (config.num_clusters <= 0) {
    return Status::InvalidArgument("supervision num_clusters must be > 0");
  }
  auto specs_or = ResolveVoterSpecs(config);
  if (!specs_or.ok()) return specs_or.status();
  const std::vector<VoterSpec> specs = std::move(specs_or).value();

  // Every voter repeat is an independent (clusterer, seed) job; collect
  // them first so the ensemble can train in parallel. Slot order — and
  // therefore the integrated result — matches the original serial
  // construction exactly: repeat v of a spec runs with seed + v·7919.
  std::vector<std::function<std::vector<int>()>> voters;
  for (const VoterSpec& spec : specs) {
    ParamMap params = spec.params;
    if (!params.Has("k")) {
      params.Set("k", std::to_string(config.num_clusters));
    }
    auto clusterer_or =
        clustering::ClustererRegistry::Global().Create(spec.clusterer,
                                                       params);
    if (!clusterer_or.ok()) return clusterer_or.status();
    std::shared_ptr<clustering::Clusterer> clusterer =
        std::move(clusterer_or).value();
    for (int v = 0; v < spec.count; ++v) {
      const std::uint64_t voter_seed =
          seed + static_cast<std::uint64_t>(v) * 7919ULL;
      voters.push_back([&x, clusterer, voter_seed] {
        return clusterer->Cluster(x, voter_seed).assignment;
      });
    }
  }

  std::vector<std::vector<int>> partitions(voters.size());
  parallel::ParallelFor(voters.size(), 1,
                        [&](std::size_t begin, std::size_t end) {
                          for (std::size_t v = begin; v < end; ++v) {
                            partitions[v] = voters[v]();
                          }
                        });

  voting::LocalSupervision sup = voting::IntegratePartitions(
      partitions, config.strategy, config.min_cluster_size);
  MCIRBM_LOG(kInfo) << "self-learning supervision: " << sup.num_clusters
                    << " credible clusters, coverage " << sup.Coverage();
  return sup;
}

voting::LocalSupervision ComputeSelfLearningSupervision(
    const linalg::Matrix& x, const SupervisionConfig& config,
    std::uint64_t seed) {
  auto sup = TryComputeSelfLearningSupervision(x, config, seed);
  MCIRBM_CHECK(sup.ok()) << sup.status().ToString();
  return std::move(sup).value();
}

void ApplyParallelConfig(const ParallelConfig& config) {
  if (config.num_threads > 0 &&
      config.num_threads != parallel::NumThreads() &&
      !parallel::InParallelRegion()) {
    parallel::SetNumThreads(config.num_threads);
  }
  parallel::SetDeterministic(config.deterministic);
}

namespace {

// Shape/hyper-parameter validation shared by the materialized and
// streaming pipeline entry points.
Status ValidatePipelineInput(std::size_t rows, std::size_t cols,
                             const PipelineConfig& config) {
  if (rows == 0 || cols == 0) {
    return Status::InvalidArgument("pipeline input matrix is empty");
  }
  if (config.rbm.num_hidden <= 0) {
    return Status::InvalidArgument("rbm num_hidden must be positive");
  }
  if (config.rbm.epochs < 0) {
    return Status::InvalidArgument("rbm epochs must be non-negative");
  }
  if (config.rbm.cd_k < 1) {
    return Status::InvalidArgument("rbm cd_k must be >= 1");
  }
  if (!(config.rbm.learning_rate > 0) ||
      !std::isfinite(config.rbm.learning_rate)) {
    return Status::InvalidArgument("rbm learning_rate must be positive");
  }
  if (config.rbm.num_visible != 0 &&
      static_cast<std::size_t>(config.rbm.num_visible) != cols) {
    return Status::InvalidArgument(
        "rbm num_visible (" + std::to_string(config.rbm.num_visible) +
        ") does not match data columns (" + std::to_string(cols) + ")");
  }
  const bool is_sls = config.model == ModelKind::kSlsRbm ||
                      config.model == ModelKind::kSlsGrbm;
  if (is_sls && !(config.sls.eta > 0 && config.sls.eta < 1)) {
    return Status::InvalidArgument("sls eta must be in (0, 1)");
  }
  if (is_sls && config.sls.supervision_scale < 0) {
    return Status::InvalidArgument("sls scale must be non-negative");
  }
  return Status::Ok();
}

// Instantiates the configured (possibly sls-supervised) encoder.
std::unique_ptr<rbm::RbmBase> MakeEncoder(
    const PipelineConfig& config, const rbm::RbmConfig& rbm_config,
    const voting::LocalSupervision& supervision) {
  switch (config.model) {
    case ModelKind::kRbm:
      return std::make_unique<rbm::Rbm>(rbm_config);
    case ModelKind::kGrbm:
      return std::make_unique<rbm::Grbm>(rbm_config);
    case ModelKind::kSlsRbm:
      return std::make_unique<SlsRbm>(rbm_config, config.sls, supervision);
    case ModelKind::kSlsGrbm:
      return std::make_unique<SlsGrbm>(rbm_config, config.sls, supervision);
  }
  return nullptr;
}

}  // namespace

StatusOr<PipelineResult> TryRunEncoderPipeline(const linalg::Matrix& x,
                                               const PipelineConfig& config,
                                               std::uint64_t seed) {
  const Status valid = ValidatePipelineInput(x.rows(), x.cols(), config);
  if (!valid.ok()) return valid;
  const bool is_sls = config.model == ModelKind::kSlsRbm ||
                      config.model == ModelKind::kSlsGrbm;

  ApplyParallelConfig(config.parallel);
  rbm::RbmConfig rbm_config = config.rbm;
  if (rbm_config.num_visible == 0) {
    rbm_config.num_visible = static_cast<int>(x.cols());
  }
  rbm_config.seed = rbm_config.seed ^ seed;

  PipelineResult result;
  if (is_sls) {
    auto sup =
        TryComputeSelfLearningSupervision(x, config.supervision, seed);
    if (!sup.ok()) return sup.status();
    result.supervision = std::move(sup).value();
  }

  result.model = MakeEncoder(config, rbm_config, result.supervision);

  const std::vector<rbm::EpochStats> history = result.model->Train(x);
  result.final_reconstruction_error =
      history.empty() ? result.model->ReconstructionError(x)
                      : history.back().reconstruction_error;
  result.hidden_features = result.model->HiddenFeatures(x);
  return result;
}

StatusOr<PipelineResult> TryRunEncoderPipelineFromSource(
    const rbm::TrainingDataSource& source, const PipelineConfig& config,
    std::uint64_t seed) {
  const Status valid =
      ValidatePipelineInput(source.rows(), source.cols(), config);
  if (!valid.ok()) return valid;
  const bool is_sls = config.model == ModelKind::kSlsRbm ||
                      config.model == ModelKind::kSlsGrbm;

  ApplyParallelConfig(config.parallel);
  rbm::RbmConfig rbm_config = config.rbm;
  if (rbm_config.num_visible == 0) {
    rbm_config.num_visible = static_cast<int>(source.cols());
  }
  rbm_config.seed = rbm_config.seed ^ seed;

  PipelineResult result;
  if (is_sls) {
    // The supervision ensemble clusters every row at once (distance
    // matrices, O(n^2)); it cannot stream. Sls training therefore needs
    // the matrix resident — plain rbm/grbm train fully out of core.
    const linalg::Matrix* dense = source.DenseView();
    if (dense == nullptr) {
      return Status::InvalidArgument(
          "sls models need the training matrix in memory for the "
          "supervision ensemble; train a plain rbm/grbm out of core or "
          "materialize the source");
    }
    auto sup =
        TryComputeSelfLearningSupervision(*dense, config.supervision, seed);
    if (!sup.ok()) return sup.status();
    result.supervision = std::move(sup).value();
  }

  result.model = MakeEncoder(config, rbm_config, result.supervision);

  auto history_or = result.model->TrainFromSource(source);
  if (!history_or.ok()) return history_or.status();
  const std::vector<rbm::EpochStats>& history = history_or.value();
  if (!history.empty()) {
    result.final_reconstruction_error =
        history.back().reconstruction_error;
  } else {
    // Zero-epoch run: stream the reconstruction error in row blocks.
    // (Block-mean accumulation, not element-shard order — only this
    // untrained edge case differs from the materialized path in FP
    // ordering.)
    constexpr std::size_t kBlockRows = 4096;
    double weighted = 0;
    for (std::size_t begin = 0; begin < source.rows();
         begin += kBlockRows) {
      const std::size_t end =
          std::min(begin + kBlockRows, source.rows());
      std::vector<std::size_t> indices(end - begin);
      for (std::size_t i = begin; i < end; ++i) indices[i - begin] = i;
      linalg::Matrix block;
      const Status status = source.GatherRows(indices, &block);
      if (!status.ok()) return status;
      weighted += result.model->ReconstructionError(block) *
                  static_cast<double>(end - begin);
    }
    result.final_reconstruction_error =
        weighted / static_cast<double>(source.rows());
  }
  // hidden_features stays empty: out-of-core callers stream transforms.
  return result;
}

PipelineResult RunEncoderPipeline(const linalg::Matrix& x,
                                  const PipelineConfig& config,
                                  std::uint64_t seed) {
  auto result = TryRunEncoderPipeline(x, config, seed);
  MCIRBM_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

}  // namespace mcirbm::core
