// Greedy layer-wise stacked encoder (DBN-style pre-training over the
// sls framework).
//
// The paper trains a single encoding layer; stacking is the natural
// deep extension: layer 0 encodes the visible data (slsGRBM/slsRBM per
// unit type), each further layer encodes the sigmoid activations of the
// layer below (binary-ish inputs -> RBM-family with sigmoid
// reconstruction). Each sls layer can recompute its self-learning local
// supervision *in the representation it actually trains on*, so the
// constrict/disperse pressure follows the features upward.
#ifndef MCIRBM_CORE_STACKED_H_
#define MCIRBM_CORE_STACKED_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/pipeline.h"
#include "linalg/matrix.h"
#include "rbm/rbm_base.h"

namespace mcirbm::core {

/// Configuration of one stack layer.
struct StackedLayerConfig {
  ModelKind model = ModelKind::kSlsRbm;
  rbm::RbmConfig rbm;             ///< num_visible 0 = infer from input
  SlsConfig sls;                  ///< ignored by plain models
  SupervisionConfig supervision;  ///< ignored by plain models

  /// For sls layers: recompute the supervision on this layer's input
  /// (true, default) or reuse the supervision handed down from the layer
  /// below / the visible data (false).
  bool recompute_supervision = true;
};

/// Per-layer training record.
struct StackedLayerStats {
  std::vector<rbm::EpochStats> epochs;
  double supervision_coverage = 0;  ///< 0 for plain layers
  int supervision_clusters = 0;
};

/// A trained stack of encoders applied bottom-up.
class StackedEncoder {
 public:
  /// `layers` must be non-empty. Layer configs are copied.
  explicit StackedEncoder(std::vector<StackedLayerConfig> layers);

  /// Greedy layer-wise training on the rows of `x`; deterministic given
  /// `seed`. Returns per-layer stats (same order as the configs).
  std::vector<StackedLayerStats> Train(const linalg::Matrix& x,
                                       std::uint64_t seed);

  /// Feature map through the first `depth` layers (0 = all layers).
  /// Requires Train to have completed.
  linalg::Matrix Transform(const linalg::Matrix& x,
                           std::size_t depth = 0) const;

  std::size_t num_layers() const { return configs_.size(); }
  /// True once Train has completed.
  bool is_trained() const { return models_.size() == configs_.size(); }
  const rbm::RbmBase& layer(std::size_t i) const;
  const StackedLayerConfig& layer_config(std::size_t i) const;

 private:
  std::vector<StackedLayerConfig> configs_;
  std::vector<std::unique_ptr<rbm::RbmBase>> models_;
};

}  // namespace mcirbm::core

#endif  // MCIRBM_CORE_STACKED_H_
