// Label-free model selection for the encoder's hidden width.
//
// The paper does not report how its hidden-layer sizes were chosen; this
// helper makes the choice reproducible without labels: for each candidate
// width, train the configured encoder and score the hidden features by
// the silhouette of a k-means clustering on them (an internal index —
// no ground truth involved). Returns the full sweep so callers can also
// inspect the trade-off curve.
#ifndef MCIRBM_CORE_MODEL_SELECTION_H_
#define MCIRBM_CORE_MODEL_SELECTION_H_

#include <cstdint>
#include <vector>

#include "core/pipeline.h"
#include "linalg/matrix.h"

namespace mcirbm::core {

/// Score of one candidate hidden width.
struct WidthCandidate {
  int num_hidden = 0;
  double silhouette = 0;  ///< of k-means clusters on the hidden features
  double reconstruction_error = 0;
};

/// Result of the sweep: every candidate plus the argmax by silhouette.
struct WidthSelection {
  std::vector<WidthCandidate> candidates;
  int best_num_hidden = 0;
};

/// Trains `config` once per width in `widths` (all else equal) and scores
/// each; `k` is the cluster count used for the internal scoring.
/// Deterministic given `seed`. `widths` must be non-empty.
WidthSelection SelectHiddenWidth(const linalg::Matrix& x,
                                 const PipelineConfig& config,
                                 const std::vector<int>& widths, int k,
                                 std::uint64_t seed);

/// Score of one candidate cluster count.
struct KCandidate {
  int k = 0;
  double silhouette = 0;  ///< of a k-means clustering at this k
};

/// Result of a cluster-count sweep: every candidate plus the argmax.
struct KSelection {
  std::vector<KCandidate> candidates;
  int best_k = 0;
};

/// Label-free choice of the cluster count K for the supervision stage.
///
/// The paper sets K to the number of classes, which presumes knowledge a
/// fully unsupervised pipeline does not have. This helper recovers K from
/// the data: k-means at every k in [k_min, k_max], scored by silhouette.
/// Deterministic given `seed`; requires 2 <= k_min <= k_max < x.rows().
KSelection SelectNumClusters(const linalg::Matrix& x, int k_min, int k_max,
                             std::uint64_t seed);

}  // namespace mcirbm::core

#endif  // MCIRBM_CORE_MODEL_SELECTION_H_
