// Configuration of the self-learning local supervision (sls) objective.
#ifndef MCIRBM_CORE_SLS_CONFIG_H_
#define MCIRBM_CORE_SLS_CONFIG_H_

#include "parallel/thread_pool.h"

namespace mcirbm::core {

/// Execution-engine knobs plumbed through the pipeline/experiment configs
/// into src/parallel/ (see ApplyParallelConfig in core/pipeline.h).
struct ParallelConfig {
  /// Worker threads for the global pool. 0 keeps the current global
  /// setting (MCIRBM_THREADS env var, else hardware concurrency).
  int num_threads = 0;

  /// When true (default) every parallel kernel partitions work into
  /// shards whose boundaries are independent of the thread count, so
  /// results are bit-identical serial vs parallel. When false, kernels
  /// may trade the fixed serial-reference schedule for faster ones that
  /// are still reproducible for a fixed seed (e.g. parallel k-means
  /// restarts, or CD-1 hidden-state sampling batched onto independent
  /// ShardRng substreams). Defaults to the process-wide mode so the
  /// MCIRBM_DETERMINISTIC environment variable reaches pipelines whose
  /// callers never touch this field.
  bool deterministic = parallel::DefaultDeterministic();
};

/// Hyper-parameters of the constrict/disperse supervision terms (Eq. 13).
struct SlsConfig {
  /// Scale coefficient η ∈ (0,1) weighting the CD likelihood term against
  /// the supervision terms (Eq. 16). The paper sets 0.4 for slsGRBM and
  /// 0.5 for slsRBM (Section V.B).
  double eta = 0.5;

  /// Step-size multiplier for the supervision gradient, relative to the CD
  /// learning rate. The paper's update rule (Eq. 33) applies the
  /// (1-η)-weighted supervision terms *without* the CD learning rate ε;
  /// with ε = 1e-4..1e-5 that makes the supervision step ~1/ε times the CD
  /// step. supervision_scale reproduces that family: the applied step is
  ///   lr * supervision_scale * (1-η) * (-∂(Ldata+Lrecon)/∂θ).
  double supervision_scale = 1000.0;

  /// Include the reconstructed-view term Lrecon (Eq. 15). The paper always
  /// does; exposed for ablation.
  bool include_recon_term = true;

  /// Include the center-dispersion term (second half of Eq. 14/15).
  /// Exposed for ablation.
  bool include_disperse_term = true;

  /// Relative weight of the dispersion term. 1.0 keeps the paper's form;
  /// larger values resist the collapse of the hidden space when credible
  /// clusters are large.
  double disperse_weight = 1.0;

  /// Normalize the constriction sum by the ordered-pair count Σ N_k(N_k−1)
  /// (true, default — keeps constrict and disperse on a comparable
  /// per-pair scale) or by the credible-instance count Nh (false — the
  /// literal Eq. 13, reproduced for the ablation bench). See DESIGN.md.
  bool normalize_by_pairs = true;

  /// Use the O(N·d) algebraically reduced gradient (true) or the literal
  /// O(N²·d) pairwise form (false). Both produce identical values (see
  /// tests/core/sls_gradient_test.cc); the naive path exists as the
  /// executable specification of Eq. 27/28/31/32.
  bool use_fast_gradient = true;

  /// Trust-region cap on the Frobenius norm of the (already scaled)
  /// supervision gradient per update; 0 disables. With the paper's ε-free
  /// supervision step a large supervision_scale is needed on datasets with
  /// sparse consensus, but the same scale diverges on datasets whose
  /// consensus covers nearly every instance (e.g. Iris-like). The cap
  /// keeps one family-wide scale stable across both regimes.
  double max_grad_norm = 0.0;
};

}  // namespace mcirbm::core

#endif  // MCIRBM_CORE_SLS_CONFIG_H_
