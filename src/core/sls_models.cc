#include "core/sls_models.h"

#include <cmath>

#include "util/check.h"

namespace mcirbm::core {

SlsSupervisionFuser::SlsSupervisionFuser(const SlsConfig& config,
                                         voting::LocalSupervision supervision)
    : config_(config), supervision_(std::move(supervision)) {
  MCIRBM_CHECK(config.eta > 0 && config.eta < 1)
      << "eta must lie in (0,1)";
  MCIRBM_CHECK_GE(config.supervision_scale, 0.0);
  supervision_.CheckValid();
}

void SlsSupervisionFuser::Accumulate(const rbm::BatchContext& batch,
                                     const linalg::Matrix& w,
                                     const std::vector<double>& b,
                                     rbm::GradientBuffers* grads) const {
  const SupervisionBatch sup =
      BuildSupervisionBatch(supervision_, batch.indices);
  if (sup.empty()) return;

  // Descent on F adds −(1−η)·∂(Ldata+Lrecon)/∂θ; Train() later multiplies
  // the buffers by the CD learning rate, so supervision_scale restores the
  // paper's ε-free magnitude for the supervision step (see SlsConfig).
  SlsGradientOptions options;
  options.include_disperse = config_.include_disperse_term;
  options.disperse_weight = config_.disperse_weight;
  options.normalize_by_pairs = config_.normalize_by_pairs;
  options.scale = -(1.0 - config_.eta) * config_.supervision_scale;

  // Accumulate into scratch buffers so the supervision contribution can be
  // trust-region capped independently of the CD term (large
  // supervision_scale values otherwise diverge on easy datasets whose
  // consensus covers nearly every instance).
  rbm::GradientBuffers local(w.rows(), w.cols());
  const SlsGradientOutput out{&local.dw, &local.db};
  const auto accumulate = config_.use_fast_gradient
                              ? &AccumulateSlsGradientFast
                              : &AccumulateSlsGradientNaive;
  // Data view (Eq. 27/31).
  accumulate(batch.v, batch.h_data, sup, w, b, options, out);
  // Reconstructed view (Eq. 28/32): same credible clusters, the
  // reconstructed visible rows Ṽ and their hidden features H̃.
  if (config_.include_recon_term) {
    accumulate(batch.v_recon, batch.h_recon, sup, w, b, options, out);
  }

  double rescale = 1.0;
  if (config_.max_grad_norm > 0) {
    double sq = 0;
    for (std::size_t i = 0; i < local.dw.size(); ++i) {
      sq += local.dw.data()[i] * local.dw.data()[i];
    }
    for (const double g : local.db) sq += g * g;
    const double norm = std::sqrt(sq);
    if (norm > config_.max_grad_norm) {
      rescale = config_.max_grad_norm / norm;
    }
  }
  for (std::size_t i = 0; i < local.dw.size(); ++i) {
    grads->dw.data()[i] += rescale * local.dw.data()[i];
  }
  for (std::size_t j = 0; j < local.db.size(); ++j) {
    grads->db[j] += rescale * local.db[j];
  }
}

}  // namespace mcirbm::core
