#include "core/model_selection.h"

#include "clustering/kmeans.h"
#include "metrics/internal.h"
#include "util/check.h"
#include "util/logging.h"

namespace mcirbm::core {

WidthSelection SelectHiddenWidth(const linalg::Matrix& x,
                                 const PipelineConfig& config,
                                 const std::vector<int>& widths, int k,
                                 std::uint64_t seed) {
  MCIRBM_CHECK(!widths.empty()) << "no candidate widths";
  MCIRBM_CHECK_GE(k, 2) << "internal scoring needs k >= 2";

  WidthSelection selection;
  double best_score = 0;
  for (const int width : widths) {
    MCIRBM_CHECK_GT(width, 0);
    PipelineConfig candidate_config = config;
    candidate_config.rbm.num_hidden = width;
    const PipelineResult result =
        RunEncoderPipeline(x, candidate_config, seed);

    clustering::KMeansConfig km;
    km.k = k;
    const auto clusters =
        clustering::KMeans(km).Cluster(result.hidden_features, seed);

    WidthCandidate candidate;
    candidate.num_hidden = width;
    candidate.silhouette = metrics::SilhouetteScore(result.hidden_features,
                                                    clusters.assignment);
    candidate.reconstruction_error = result.final_reconstruction_error;
    MCIRBM_LOG(kDebug) << "width " << width << ": silhouette "
                       << candidate.silhouette;

    if (selection.candidates.empty() || candidate.silhouette > best_score) {
      best_score = candidate.silhouette;
      selection.best_num_hidden = width;
    }
    selection.candidates.push_back(candidate);
  }
  return selection;
}

KSelection SelectNumClusters(const linalg::Matrix& x, int k_min, int k_max,
                             std::uint64_t seed) {
  MCIRBM_CHECK_GE(k_min, 2) << "silhouette is undefined below k = 2";
  MCIRBM_CHECK_LE(k_min, k_max);
  MCIRBM_CHECK_LT(static_cast<std::size_t>(k_max), x.rows())
      << "more clusters than instances";

  KSelection selection;
  double best_score = 0;
  for (int k = k_min; k <= k_max; ++k) {
    clustering::KMeansConfig km;
    km.k = k;
    const auto clusters = clustering::KMeans(km).Cluster(x, seed);
    KCandidate candidate;
    candidate.k = k;
    candidate.silhouette = metrics::SilhouetteScore(x, clusters.assignment);
    MCIRBM_LOG(kDebug) << "k " << k << ": silhouette "
                       << candidate.silhouette;
    if (selection.candidates.empty() || candidate.silhouette > best_score) {
      best_score = candidate.silhouette;
      selection.best_k = k;
    }
    selection.candidates.push_back(candidate);
  }
  return selection;
}

}  // namespace mcirbm::core
