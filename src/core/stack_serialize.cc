#include "core/stack_serialize.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "rbm/grbm.h"
#include "rbm/rbm.h"
#include "rbm/serialize.h"
#include "util/check.h"

namespace mcirbm::core {

const char kStackMagic[] = "mcirbm-stack v1";

namespace {

// Reconstruction type of one layer, from its configured model kind.
const char* ReconstructionName(ModelKind kind) {
  return (kind == ModelKind::kGrbm || kind == ModelKind::kSlsGrbm)
             ? "linear"
             : "sigmoid";
}

std::string LayerFileName(const std::string& path, std::size_t index) {
  return path + ".layer" + std::to_string(index);
}

// Peeks (nv, nh) from a single-model parameter file without loading it.
Status PeekShape(const std::string& path, int* nv, int* nh) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string magic_line, name_line, shape_line;
  std::getline(in, magic_line);
  std::getline(in, name_line);
  if (!std::getline(in, shape_line)) {
    return Status::ParseError("truncated layer file " + path);
  }
  std::istringstream shape(shape_line);
  if (!(shape >> *nv >> *nh) || *nv <= 0 || *nh <= 0) {
    return Status::ParseError("bad shape line in " + path);
  }
  return Status::Ok();
}

}  // namespace

Status SaveStack(const StackedEncoder& stack, const std::string& path) {
  if (!stack.is_trained()) {
    return Status::InvalidArgument("stack has not been trained");
  }
  std::ofstream manifest(path);
  if (!manifest) return Status::IoError("cannot open " + path);
  manifest << kStackMagic << "\n" << stack.num_layers() << "\n";
  for (std::size_t l = 0; l < stack.num_layers(); ++l) {
    const std::string layer_path = LayerFileName(path, l);
    const Status status = rbm::SaveParameters(stack.layer(l), layer_path);
    if (!status.ok()) return status;
    manifest << stack.layer(l).name() << " "
             << ReconstructionName(stack.layer_config(l).model) << " "
             << LayerFileName("", l) << "\n";
  }
  if (!manifest) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Status LoadStack(const std::string& path, LoadedStack* out) {
  MCIRBM_CHECK_NE(out, nullptr);
  std::ifstream manifest(path);
  if (!manifest) return Status::IoError("cannot open " + path);
  std::string magic_line;
  std::getline(manifest, magic_line);
  if (magic_line != kStackMagic) {
    return Status::ParseError("bad stack magic in " + path);
  }
  std::size_t num_layers = 0;
  manifest >> num_layers;
  if (!manifest || num_layers == 0) {
    return Status::ParseError("bad layer count in " + path);
  }

  std::vector<std::unique_ptr<rbm::RbmBase>> layers;
  for (std::size_t l = 0; l < num_layers; ++l) {
    std::string model_name, reconstruction, suffix;
    if (!(manifest >> model_name >> reconstruction >> suffix)) {
      return Status::ParseError("truncated manifest " + path);
    }
    if (reconstruction != "sigmoid" && reconstruction != "linear") {
      return Status::ParseError("unknown reconstruction '" + reconstruction +
                                "' in " + path);
    }
    const std::string layer_path = path + suffix;
    int nv = 0, nh = 0;
    Status status = PeekShape(layer_path, &nv, &nh);
    if (!status.ok()) return status;

    rbm::RbmConfig config;
    config.num_visible = nv;
    config.num_hidden = nh;
    std::unique_ptr<rbm::RbmBase> model;
    if (reconstruction == "linear") {
      model = std::make_unique<rbm::Grbm>(config);
    } else {
      model = std::make_unique<rbm::Rbm>(config);
    }
    status = rbm::LoadParameters(layer_path, model.get());
    if (!status.ok()) return status;
    layers.push_back(std::move(model));
  }
  out->layers_ = std::move(layers);
  return Status::Ok();
}

linalg::Matrix LoadedStack::Transform(const linalg::Matrix& x,
                                      std::size_t depth) const {
  MCIRBM_CHECK(!layers_.empty()) << "empty stack";
  const std::size_t count = depth == 0 ? layers_.size() : depth;
  MCIRBM_CHECK_LE(count, layers_.size());
  linalg::Matrix features = x;
  for (std::size_t l = 0; l < count; ++l) {
    features = layers_[l]->HiddenFeatures(features);
  }
  return features;
}

const rbm::RbmBase& LoadedStack::layer(std::size_t i) const {
  MCIRBM_CHECK_LT(i, layers_.size());
  return *layers_[i];
}

}  // namespace mcirbm::core
