// Gradients of the constrict/disperse supervision objective (Section IV).
//
// For one "view" (the data view V,H or the reconstructed view Ṽ,H̃) the
// objective over locally credible clusters H_1..H_K is (Eq. 14/15):
//
//   L = (1/Nh) Σ_k Σ_{s,t∈H_k} ||h_s − h_t||²
//     − (1/N_C) Σ_{p<q} ||C_p − C_q||²
//
// where h_s = σ(b + v_s W) are hidden features, C_k = σ(b + O_k W) is the
// hidden image of the visible cluster center O_k (mean of cluster-k rows),
// Nh = number of credible instances in the view, N_C = K(K−1)/2, and the
// pairwise sum runs over ordered pairs (the literal reading of Eq. 14).
//
// ∂L/∂W and ∂L/∂b are Eq. 27/31 (data view) and Eq. 28/32 (recon view).
// Two exact implementations are provided:
//  * Naive — the literal O(ΣN_k²·d) pairwise translation of Eq. 27/31;
//    kept as the executable specification and for property testing.
//  * Fast — the O(ΣN_k·d) reduction via
//      Σ_{s,t}(a_s−a_t)(c_s−c_t) = 2N·Σ_s a_s c_s − 2(Σ_s a_s)(Σ_s c_s),
//    which turns the per-cluster sums into GEMMs.
#ifndef MCIRBM_CORE_SLS_GRADIENT_H_
#define MCIRBM_CORE_SLS_GRADIENT_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "voting/local_supervision.h"

namespace mcirbm::core {

/// Credible-cluster membership restricted to the rows of one batch.
/// Row indices refer to positions *within the batch matrices*.
struct SupervisionBatch {
  /// members[k] = batch-row indices of credible cluster k; clusters with
  /// fewer than 2 in-batch members are dropped (no pair to constrict).
  std::vector<std::vector<std::size_t>> members;

  /// Total credible instances across the retained clusters (the view's Nh).
  std::size_t num_credible = 0;

  /// Σ_k N_k(N_k−1): number of ordered within-cluster pairs; the
  /// denominator of the pair-count normalization (see SlsGradientOptions).
  std::size_t num_ordered_pairs = 0;

  bool empty() const { return members.size() < 1 || num_credible == 0; }
  std::size_t num_clusters() const { return members.size(); }
};

/// Restricts `supervision` to the batch rows `batch_indices` (global row
/// ids, in batch order).
SupervisionBatch BuildSupervisionBatch(
    const voting::LocalSupervision& supervision,
    const std::vector<std::size_t>& batch_indices);

/// Output accumulators for one view's supervision gradient. Shapes must be
/// pre-sized: dw (nv x nh), db (nh). Values are *added* into the buffers.
struct SlsGradientOutput {
  linalg::Matrix* dw;
  std::vector<double>* db;
};

/// Options controlling which objective terms are evaluated.
struct SlsGradientOptions {
  bool include_disperse = true;
  double scale = 1.0;  ///< multiplies the whole contribution

  /// Relative weight of the dispersion term against the constriction term.
  double disperse_weight = 1.0;

  /// Normalization of the constriction sum. The paper's Eq. 13 divides the
  /// Σ_k Σ_{s,t∈H_k} pair sum by Nh (the credible-instance count), which
  /// leaves the term ~Nh times larger than the per-pair-normalized center
  /// dispersion; in practice that imbalance collapses the whole hidden
  /// space onto one point before dispersion can act (see DESIGN.md). With
  /// `true` (default) the pair sum is divided by Σ_k N_k(N_k−1) — the
  /// ordered-pair count — making both terms per-pair quantities of
  /// comparable magnitude. `false` reproduces the literal Eq. 13 for the
  /// ablation bench.
  bool normalize_by_pairs = true;
};

/// Literal pairwise implementation of ∂L/∂W (Eq. 27/28) and ∂L/∂b
/// (Eq. 31/32) for one view.
///
/// `v`: batch visible rows (data or reconstructed), m x nv.
/// `h`: sigmoid hidden features of `v`, m x nh.
/// `w`, `b`: current parameters (needed for the mapped centers C_k).
void AccumulateSlsGradientNaive(const linalg::Matrix& v,
                                const linalg::Matrix& h,
                                const SupervisionBatch& batch,
                                const linalg::Matrix& w,
                                const std::vector<double>& b,
                                const SlsGradientOptions& options,
                                SlsGradientOutput out);

/// GEMM-reduced implementation; numerically identical to the naive form
/// (asserted to 1e-9 by property tests).
void AccumulateSlsGradientFast(const linalg::Matrix& v,
                               const linalg::Matrix& h,
                               const SupervisionBatch& batch,
                               const linalg::Matrix& w,
                               const std::vector<double>& b,
                               const SlsGradientOptions& options,
                               SlsGradientOutput out);

/// Evaluates the view objective L itself (for monitoring / tests of the
/// descent property). Uses the same options as the gradient functions
/// (scale is ignored; it only rescales gradients).
double SlsObjective(const linalg::Matrix& v, const linalg::Matrix& h,
                    const SupervisionBatch& batch, const linalg::Matrix& w,
                    const std::vector<double>& b,
                    const SlsGradientOptions& options);

}  // namespace mcirbm::core

#endif  // MCIRBM_CORE_SLS_GRADIENT_H_
