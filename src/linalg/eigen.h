// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//
// The spectral-clustering substrate and the PCA module need eigenpairs of
// small symmetric matrices (covariance / graph Laplacians, n up to ~1k).
// Jacobi is the right tool at that scale: unconditionally stable,
// dependency-free and accurate to machine precision for symmetric input.
#ifndef MCIRBM_LINALG_EIGEN_H_
#define MCIRBM_LINALG_EIGEN_H_

#include <vector>

#include "linalg/matrix.h"

namespace mcirbm::linalg {

/// Eigenpairs of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues in descending order.
  std::vector<double> values;
  /// Column j of `vectors` is the unit eigenvector for values[j].
  Matrix vectors;
  /// Sweeps until convergence (off-diagonal norm below tolerance).
  int sweeps = 0;
  bool converged = false;
};

/// Options for the Jacobi iteration.
struct JacobiOptions {
  /// Stop when the off-diagonal Frobenius norm falls below
  /// `tolerance * initial_frobenius_norm`.
  double tolerance = 1e-12;
  int max_sweeps = 64;
};

/// Decomposes a symmetric matrix `a` (validated: squareness always,
/// symmetry up to 1e-9 relative). Returns eigenvalues sorted descending
/// with matching eigenvector columns.
EigenDecomposition JacobiEigenSymmetric(const Matrix& a,
                                        const JacobiOptions& options = {});

/// The `k` eigenvector columns with the largest eigenvalues, as an
/// n x k matrix (convenience for PCA / spectral embedding).
Matrix TopEigenvectors(const EigenDecomposition& eig, std::size_t k);

/// The `k` eigenvector columns with the smallest eigenvalues (ascending),
/// as an n x k matrix (convenience for Laplacian embeddings).
Matrix BottomEigenvectors(const EigenDecomposition& eig, std::size_t k);

}  // namespace mcirbm::linalg

#endif  // MCIRBM_LINALG_EIGEN_H_
