#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mcirbm::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    MCIRBM_CHECK_EQ(row.size(), cols_) << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

void Matrix::AppendRow(std::span<const double> row) {
  if (data_.empty() && cols_ == 0) {
    cols_ = row.size();
  }
  MCIRBM_CHECK_EQ(row.size(), cols_) << "AppendRow width mismatch";
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* src = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = src[c];
  }
  return t;
}

Matrix Matrix::SelectRows(const std::vector<std::size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    MCIRBM_CHECK_LT(indices[i], rows_);
    std::copy_n(data_.data() + indices[i] * cols_, cols_,
                out.data() + i * cols_);
  }
  return out;
}

Matrix Matrix::SelectRows(const std::vector<int>& indices) const {
  std::vector<std::size_t> idx(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    MCIRBM_CHECK_GE(indices[i], 0);
    idx[i] = static_cast<std::size_t>(indices[i]);
  }
  return SelectRows(idx);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  MCIRBM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  MCIRBM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

Matrix& Matrix::HadamardInPlace(const Matrix& other) {
  MCIRBM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

void Matrix::Axpy(double scalar, const Matrix& other) {
  MCIRBM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scalar * other.data_[i];
  }
}

double Matrix::FrobeniusNorm() const {
  double s = 0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::Sum() const {
  double s = 0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::MaxAbs() const {
  double m = 0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool Matrix::AllClose(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::ToString(std::size_t max_rows,
                             std::size_t max_cols) const {
  std::ostringstream out;
  out << rows_ << "x" << cols_ << " [";
  const std::size_t rshow = std::min(rows_, max_rows);
  for (std::size_t r = 0; r < rshow; ++r) {
    out << (r ? ", [" : "[");
    const std::size_t cshow = std::min(cols_, max_cols);
    for (std::size_t c = 0; c < cshow; ++c) {
      if (c) out << ", ";
      out << (*this)(r, c);
    }
    if (cshow < cols_) out << ", ...";
    out << "]";
  }
  if (rshow < rows_) out << ", ...";
  out << "]";
  return out.str();
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out += b;
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out -= b;
  return out;
}

Matrix operator*(const Matrix& a, double s) {
  Matrix out = a;
  out *= s;
  return out;
}

Matrix operator*(double s, const Matrix& a) { return a * s; }

}  // namespace mcirbm::linalg
