#include "linalg/stats.h"

#include <algorithm>
#include <cmath>

namespace mcirbm::linalg {

ColumnStats ComputeColumnStats(const Matrix& m) {
  MCIRBM_CHECK_GT(m.rows(), 0u);
  const std::size_t n = m.rows(), d = m.cols();
  ColumnStats stats;
  stats.mean.assign(d, 0.0);
  stats.stddev.assign(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = m.data() + i * d;
    for (std::size_t j = 0; j < d; ++j) stats.mean[j] += row[j];
  }
  for (double& v : stats.mean) v /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = m.data() + i * d;
    for (std::size_t j = 0; j < d; ++j) {
      const double dv = row[j] - stats.mean[j];
      stats.stddev[j] += dv * dv;
    }
  }
  for (double& v : stats.stddev) {
    v = std::sqrt(v / static_cast<double>(n));
  }
  return stats;
}

ColumnRange ComputeColumnRange(const Matrix& m) {
  MCIRBM_CHECK_GT(m.rows(), 0u);
  const std::size_t n = m.rows(), d = m.cols();
  ColumnRange range;
  range.min.assign(m.Row(0).begin(), m.Row(0).end());
  range.max = range.min;
  for (std::size_t i = 1; i < n; ++i) {
    const double* row = m.data() + i * d;
    for (std::size_t j = 0; j < d; ++j) {
      range.min[j] = std::min(range.min[j], row[j]);
      range.max[j] = std::max(range.max[j], row[j]);
    }
  }
  return range;
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() <= 1) return 0.0;
  const double m = Mean(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  return std::sqrt(Variance(xs));
}

double Percentile(std::vector<double> xs, double p) {
  MCIRBM_CHECK(!xs.empty());
  MCIRBM_CHECK(p >= 0 && p <= 100);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1 - frac) + xs[hi] * frac;
}

}  // namespace mcirbm::linalg
