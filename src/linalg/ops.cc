#include "linalg/ops.h"

#include <algorithm>
#include <cmath>

#include "parallel/thread_pool.h"

namespace mcirbm::linalg {

namespace {
constexpr std::size_t kBlock = 64;  // elements per cache tile dimension

// Rows per shard so one shard carries ~64k multiply-adds. Depends only on
// the problem shape (never the thread count), so shard boundaries — and
// therefore results — are identical at any pool width. Small problems
// collapse to a single shard, which ParallelFor runs inline.
std::size_t RowGrain(std::size_t unit_cost) {
  constexpr std::size_t kTargetShardWork = std::size_t{1} << 16;
  return std::max<std::size_t>(
      1, kTargetShardWork / std::max<std::size_t>(1, unit_cost));
}
}  // namespace

Matrix Gemm(const Matrix& a, const Matrix& b) {
  MCIRBM_CHECK_EQ(a.cols(), b.rows()) << "Gemm shape mismatch";
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  // Row stripes are independent; within a stripe the p-blocked loop keeps
  // the per-element accumulation order of the serial kernel, so the result
  // is bit-identical at any thread count.
  const std::size_t grain = std::max(kBlock, RowGrain(k * n));
  parallel::ParallelFor(m, grain, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t p0 = 0; p0 < k; p0 += kBlock) {
      const std::size_t p1 = std::min(p0 + kBlock, k);
      for (std::size_t i = i0; i < i1; ++i) {
        const double* arow = a.data() + i * k;
        double* crow = c.data() + i * n;
        for (std::size_t p = p0; p < p1; ++p) {
          const double av = arow[p];
          if (av == 0.0) continue;
          const double* brow = b.data() + p * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  });
  return c;
}

Matrix GemmTransA(const Matrix& a, const Matrix& b) {
  MCIRBM_CHECK_EQ(a.rows(), b.rows()) << "GemmTransA shape mismatch";
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  Matrix c(m, n);
  // Partitioned by output row (column of A), but each shard keeps the
  // serial p-outer rank-1 order on its row slice: `a` is read
  // contiguously per p and every element still accumulates over p in
  // increasing order, matching the serial formulation bit for bit.
  parallel::ParallelFor(
      m, RowGrain(k * n), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t p = 0; p < k; ++p) {
          const double* arow = a.data() + p * m;
          const double* brow = b.data() + p * n;
          for (std::size_t i = i0; i < i1; ++i) {
            const double av = arow[i];
            if (av == 0.0) continue;
            double* crow = c.data() + i * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      });
  return c;
}

Matrix GemmTransB(const Matrix& a, const Matrix& b) {
  MCIRBM_CHECK_EQ(a.cols(), b.cols()) << "GemmTransB shape mismatch";
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  parallel::ParallelFor(
      m, RowGrain(k * n), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const double* arow = a.data() + i * k;
          double* crow = c.data() + i * n;
          for (std::size_t j = 0; j < n; ++j) {
            const double* brow = b.data() + j * k;
            double s = 0;
            for (std::size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
            crow[j] = s;
          }
        }
      });
  return c;
}

void AccumulateGemmTransA(double alpha, const Matrix& a, const Matrix& b,
                          Matrix* out) {
  MCIRBM_CHECK_EQ(a.rows(), b.rows());
  MCIRBM_CHECK(out->rows() == a.cols() && out->cols() == b.cols());
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  // Same row-sliced rank-1 scheme as GemmTransA; per-element accumulation
  // order over p is unchanged from the serial kernel.
  parallel::ParallelFor(
      m, RowGrain(k * n), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t p = 0; p < k; ++p) {
          const double* arow = a.data() + p * m;
          const double* brow = b.data() + p * n;
          for (std::size_t i = i0; i < i1; ++i) {
            const double av = alpha * arow[i];
            if (av == 0.0) continue;
            double* crow = out->data() + i * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      });
}

std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x) {
  MCIRBM_CHECK_EQ(a.cols(), x.size());
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.data() + i * a.cols();
    double s = 0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += row[j] * x[j];
    y[i] = s;
  }
  return y;
}

std::vector<double> MatTVec(const Matrix& a, const std::vector<double>& x) {
  MCIRBM_CHECK_EQ(a.rows(), x.size());
  std::vector<double> y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* row = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += xi * row[j];
  }
  return y;
}

void AddRowVector(Matrix* m, const std::vector<double>& v) {
  MCIRBM_CHECK_EQ(m->cols(), v.size());
  const std::size_t cols = m->cols();
  parallel::ParallelFor(
      m->rows(), RowGrain(cols), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          double* row = m->data() + i * cols;
          for (std::size_t j = 0; j < cols; ++j) row[j] += v[j];
        }
      });
}

std::vector<double> ColSums(const Matrix& m) {
  std::vector<double> s(m.cols(), 0.0);
  // Partitioned by *column*: each shard owns a column slice and walks the
  // rows in order, so every s[j] accumulates in exactly the serial order.
  const std::size_t rows = m.rows(), cols = m.cols();
  parallel::ParallelFor(
      cols, RowGrain(rows), [&](std::size_t j0, std::size_t j1) {
        for (std::size_t i = 0; i < rows; ++i) {
          const double* row = m.data() + i * cols;
          for (std::size_t j = j0; j < j1; ++j) s[j] += row[j];
        }
      });
  return s;
}

std::vector<double> ColMeans(const Matrix& m) {
  MCIRBM_CHECK_GT(m.rows(), 0u);
  std::vector<double> s = ColSums(m);
  for (double& v : s) v /= static_cast<double>(m.rows());
  return s;
}

std::vector<double> RowSums(const Matrix& m) {
  std::vector<double> s(m.rows(), 0.0);
  const std::size_t cols = m.cols();
  parallel::ParallelFor(
      m.rows(), RowGrain(cols), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const double* row = m.data() + i * cols;
          double acc = 0;
          for (std::size_t j = 0; j < cols; ++j) acc += row[j];
          s[i] = acc;
        }
      });
  return s;
}

void Apply(Matrix* m, const std::function<double(double)>& f) {
  double* p = m->data();
  const std::size_t n = m->size();
  parallel::ParallelFor(n, RowGrain(4), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) p[i] = f(p[i]);
  });
}

double Sigmoid(double x) {
  if (x >= 0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

void SigmoidInPlace(Matrix* m) {
  double* p = m->data();
  const std::size_t n = m->size();
  parallel::ParallelFor(n, RowGrain(8), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) p[i] = Sigmoid(p[i]);
  });
}

Matrix SigmoidDeriv(const Matrix& a) {
  Matrix d(a.rows(), a.cols());
  const double* src = a.data();
  double* dst = d.data();
  parallel::ParallelFor(
      a.size(), RowGrain(4), [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) dst[i] = src[i] * (1 - src[i]);
      });
  return d;
}

double SquaredDistance(std::span<const double> a,
                       std::span<const double> b) {
  MCIRBM_DCHECK(a.size() == b.size());
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

Matrix PairwiseSquaredDistances(const Matrix& m) {
  const std::size_t n = m.rows();
  Matrix gram = GemmTransB(m, m);  // n x n
  std::vector<double> sq(n);
  for (std::size_t i = 0; i < n; ++i) sq[i] = gram(i, i);
  Matrix d(n, n);
  // Full-row expansion (rather than mirrored upper-triangle writes) keeps
  // every element owned by exactly one row shard; the symmetric formula
  // yields the identical value for (i,j) and (j,i).
  parallel::ParallelFor(n, RowGrain(n), [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      double* drow = d.data() + i * n;
      const double* grow = gram.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        double v = sq[i] + sq[j] - 2.0 * grow[j];
        if (v < 0) v = 0;  // numeric guard
        drow[j] = v;
      }
      drow[i] = 0.0;
    }
  });
  return d;
}

double Dot(std::span<const double> a, std::span<const double> b) {
  MCIRBM_DCHECK(a.size() == b.size());
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace mcirbm::linalg
