#include "linalg/ops.h"

#include <algorithm>
#include <cmath>

namespace mcirbm::linalg {

namespace {
constexpr std::size_t kBlock = 64;  // elements per cache tile dimension
}  // namespace

Matrix Gemm(const Matrix& a, const Matrix& b) {
  MCIRBM_CHECK_EQ(a.cols(), b.rows()) << "Gemm shape mismatch";
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  for (std::size_t i0 = 0; i0 < m; i0 += kBlock) {
    const std::size_t i1 = std::min(i0 + kBlock, m);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlock) {
      const std::size_t p1 = std::min(p0 + kBlock, k);
      for (std::size_t i = i0; i < i1; ++i) {
        const double* arow = a.data() + i * k;
        double* crow = c.data() + i * n;
        for (std::size_t p = p0; p < p1; ++p) {
          const double av = arow[p];
          if (av == 0.0) continue;
          const double* brow = b.data() + p * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
  return c;
}

Matrix GemmTransA(const Matrix& a, const Matrix& b) {
  MCIRBM_CHECK_EQ(a.rows(), b.rows()) << "GemmTransA shape mismatch";
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  Matrix c(m, n);
  // Cᵀ-style accumulation: iterate shared dim outermost, rank-1 updates.
  for (std::size_t p = 0; p < k; ++p) {
    const double* arow = a.data() + p * m;
    const double* brow = b.data() + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* crow = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix GemmTransB(const Matrix& a, const Matrix& b) {
  MCIRBM_CHECK_EQ(a.cols(), b.cols()) << "GemmTransB shape mismatch";
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a.data() + i * k;
    double* crow = c.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* brow = b.data() + j * k;
      double s = 0;
      for (std::size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      crow[j] = s;
    }
  }
  return c;
}

void AccumulateGemmTransA(double alpha, const Matrix& a, const Matrix& b,
                          Matrix* out) {
  MCIRBM_CHECK_EQ(a.rows(), b.rows());
  MCIRBM_CHECK(out->rows() == a.cols() && out->cols() == b.cols());
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (std::size_t p = 0; p < k; ++p) {
    const double* arow = a.data() + p * m;
    const double* brow = b.data() + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double av = alpha * arow[i];
      if (av == 0.0) continue;
      double* crow = out->data() + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x) {
  MCIRBM_CHECK_EQ(a.cols(), x.size());
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.data() + i * a.cols();
    double s = 0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += row[j] * x[j];
    y[i] = s;
  }
  return y;
}

std::vector<double> MatTVec(const Matrix& a, const std::vector<double>& x) {
  MCIRBM_CHECK_EQ(a.rows(), x.size());
  std::vector<double> y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* row = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += xi * row[j];
  }
  return y;
}

void AddRowVector(Matrix* m, const std::vector<double>& v) {
  MCIRBM_CHECK_EQ(m->cols(), v.size());
  for (std::size_t i = 0; i < m->rows(); ++i) {
    double* row = m->data() + i * m->cols();
    for (std::size_t j = 0; j < m->cols(); ++j) row[j] += v[j];
  }
}

std::vector<double> ColSums(const Matrix& m) {
  std::vector<double> s(m.cols(), 0.0);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* row = m.data() + i * m.cols();
    for (std::size_t j = 0; j < m.cols(); ++j) s[j] += row[j];
  }
  return s;
}

std::vector<double> ColMeans(const Matrix& m) {
  MCIRBM_CHECK_GT(m.rows(), 0u);
  std::vector<double> s = ColSums(m);
  for (double& v : s) v /= static_cast<double>(m.rows());
  return s;
}

std::vector<double> RowSums(const Matrix& m) {
  std::vector<double> s(m.rows(), 0.0);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* row = m.data() + i * m.cols();
    double acc = 0;
    for (std::size_t j = 0; j < m.cols(); ++j) acc += row[j];
    s[i] = acc;
  }
  return s;
}

void Apply(Matrix* m, const std::function<double(double)>& f) {
  double* p = m->data();
  const std::size_t n = m->size();
  for (std::size_t i = 0; i < n; ++i) p[i] = f(p[i]);
}

double Sigmoid(double x) {
  if (x >= 0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

void SigmoidInPlace(Matrix* m) {
  double* p = m->data();
  const std::size_t n = m->size();
  for (std::size_t i = 0; i < n; ++i) p[i] = Sigmoid(p[i]);
}

Matrix SigmoidDeriv(const Matrix& a) {
  Matrix d(a.rows(), a.cols());
  const double* src = a.data();
  double* dst = d.data();
  for (std::size_t i = 0; i < a.size(); ++i) dst[i] = src[i] * (1 - src[i]);
  return d;
}

double SquaredDistance(std::span<const double> a,
                       std::span<const double> b) {
  MCIRBM_DCHECK(a.size() == b.size());
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

Matrix PairwiseSquaredDistances(const Matrix& m) {
  const std::size_t n = m.rows();
  Matrix gram = GemmTransB(m, m);  // n x n
  std::vector<double> sq(n);
  for (std::size_t i = 0; i < n; ++i) sq[i] = gram(i, i);
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    d(i, i) = 0.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      double v = sq[i] + sq[j] - 2.0 * gram(i, j);
      if (v < 0) v = 0;  // numeric guard
      d(i, j) = v;
      d(j, i) = v;
    }
  }
  return d;
}

double Dot(std::span<const double> a, std::span<const double> b) {
  MCIRBM_DCHECK(a.size() == b.size());
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace mcirbm::linalg
