// Principal component analysis on the covariance eigendecomposition.
//
// Two consumers inside the library:
//  * the PCA-based weight initialization for RBM pre-training (ablation of
//    Xie et al. [46], one of the paper's cited alternatives), and
//  * dimensionality reduction ahead of the clustering substrates on wide
//    image-feature data.
#ifndef MCIRBM_LINALG_PCA_H_
#define MCIRBM_LINALG_PCA_H_

#include <vector>

#include "linalg/matrix.h"

namespace mcirbm::linalg {

/// A fitted PCA basis.
class Pca {
 public:
  /// Options controlling the fit.
  struct Options {
    /// Number of components to keep; 0 keeps min(rows-1, cols).
    std::size_t num_components = 0;
    /// Scale each projected coordinate by 1/sqrt(eigenvalue) so the
    /// transformed features have unit variance (up to regularization).
    bool whiten = false;
    /// Variance floor added before whitening division, for stability on
    /// near-degenerate directions.
    double whiten_epsilon = 1e-8;
  };

  /// Fits the basis to the rows of `x` (n instances x d features).
  /// Requires n >= 2 and d >= 1.
  static Pca Fit(const Matrix& x, const Options& options);
  /// Fit with default options.
  static Pca Fit(const Matrix& x) { return Fit(x, Options{}); }

  /// Projects rows of `x` (n x d) onto the basis -> n x num_components.
  Matrix Transform(const Matrix& x) const;

  /// Maps projected rows back to the original space (lossy when
  /// num_components < d). Inverse of Transform up to truncation error.
  Matrix InverseTransform(const Matrix& projected) const;

  /// d x num_components; column j is the j-th principal direction.
  const Matrix& components() const { return components_; }

  /// Per-component variance (descending eigenvalues of the covariance).
  const std::vector<double>& explained_variance() const {
    return explained_variance_;
  }

  /// Fraction of total variance captured per component; sums to <= 1.
  std::vector<double> ExplainedVarianceRatio() const;

  /// Smallest number of leading components whose cumulative variance
  /// ratio reaches `target` in [0, 1]; at least 1.
  std::size_t ComponentsForVariance(double target) const;

  const std::vector<double>& mean() const { return mean_; }
  std::size_t num_components() const { return components_.cols(); }

 private:
  Pca() = default;

  std::vector<double> mean_;            // feature means, length d
  Matrix components_;                   // d x k
  std::vector<double> explained_variance_;  // length k
  std::vector<double> scale_;           // per-component whitening scale
  double total_variance_ = 0;
  bool whiten_ = false;
};

}  // namespace mcirbm::linalg

#endif  // MCIRBM_LINALG_PCA_H_
