#include "linalg/pca.h"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.h"
#include "linalg/ops.h"
#include "util/check.h"

namespace mcirbm::linalg {

Pca Pca::Fit(const Matrix& x, const Options& options) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  MCIRBM_CHECK_GE(n, 2u) << "PCA needs at least two instances";
  MCIRBM_CHECK_GE(d, 1u) << "PCA needs at least one feature";

  Pca pca;
  pca.mean_ = ColMeans(x);
  pca.whiten_ = options.whiten;

  // Centered copy, then covariance C = Xcᵀ·Xc / (n-1).
  Matrix centered = x;
  for (std::size_t i = 0; i < n; ++i) {
    auto row = centered.Row(i);
    for (std::size_t j = 0; j < d; ++j) row[j] -= pca.mean_[j];
  }
  Matrix cov = GemmTransA(centered, centered);
  cov *= 1.0 / static_cast<double>(n - 1);

  const EigenDecomposition eig = JacobiEigenSymmetric(cov);
  MCIRBM_CHECK(eig.converged) << "covariance eigendecomposition diverged";

  std::size_t k = options.num_components;
  const std::size_t max_k = std::min(n - 1, d);
  if (k == 0) k = max_k;
  MCIRBM_CHECK_LE(k, d) << "more components than features";

  pca.components_ = TopEigenvectors(eig, k);
  pca.explained_variance_.assign(eig.values.begin(), eig.values.begin() + k);
  // Numerical noise can push tiny eigenvalues below zero; clamp.
  for (double& v : pca.explained_variance_) v = std::max(v, 0.0);
  pca.total_variance_ = 0;
  for (double v : eig.values) pca.total_variance_ += std::max(v, 0.0);

  pca.scale_.assign(k, 1.0);
  if (options.whiten) {
    for (std::size_t j = 0; j < k; ++j) {
      pca.scale_[j] =
          1.0 / std::sqrt(pca.explained_variance_[j] + options.whiten_epsilon);
    }
  }
  return pca;
}

Matrix Pca::Transform(const Matrix& x) const {
  MCIRBM_CHECK_EQ(x.cols(), mean_.size()) << "feature-count mismatch";
  Matrix centered = x;
  for (std::size_t i = 0; i < centered.rows(); ++i) {
    auto row = centered.Row(i);
    for (std::size_t j = 0; j < row.size(); ++j) row[j] -= mean_[j];
  }
  Matrix projected = Gemm(centered, components_);
  if (whiten_) {
    for (std::size_t i = 0; i < projected.rows(); ++i) {
      auto row = projected.Row(i);
      for (std::size_t j = 0; j < row.size(); ++j) row[j] *= scale_[j];
    }
  }
  return projected;
}

Matrix Pca::InverseTransform(const Matrix& projected) const {
  MCIRBM_CHECK_EQ(projected.cols(), components_.cols())
      << "component-count mismatch";
  Matrix unscaled = projected;
  if (whiten_) {
    for (std::size_t i = 0; i < unscaled.rows(); ++i) {
      auto row = unscaled.Row(i);
      for (std::size_t j = 0; j < row.size(); ++j) row[j] /= scale_[j];
    }
  }
  Matrix restored = GemmTransB(unscaled, components_);
  for (std::size_t i = 0; i < restored.rows(); ++i) {
    auto row = restored.Row(i);
    for (std::size_t j = 0; j < row.size(); ++j) row[j] += mean_[j];
  }
  return restored;
}

std::vector<double> Pca::ExplainedVarianceRatio() const {
  std::vector<double> ratio(explained_variance_.size(), 0.0);
  if (total_variance_ <= 0) return ratio;
  for (std::size_t j = 0; j < ratio.size(); ++j) {
    ratio[j] = explained_variance_[j] / total_variance_;
  }
  return ratio;
}

std::size_t Pca::ComponentsForVariance(double target) const {
  MCIRBM_CHECK_GE(target, 0.0);
  MCIRBM_CHECK_LE(target, 1.0);
  const std::vector<double> ratio = ExplainedVarianceRatio();
  double cumulative = 0;
  for (std::size_t j = 0; j < ratio.size(); ++j) {
    cumulative += ratio[j];
    if (cumulative >= target) return j + 1;
  }
  return std::max<std::size_t>(ratio.size(), 1);
}

}  // namespace mcirbm::linalg
