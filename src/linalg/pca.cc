#include "linalg/pca.h"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.h"
#include "linalg/ops.h"
#include "parallel/thread_pool.h"
#include "util/check.h"

namespace mcirbm::linalg {
namespace {

// Fixed shard width for the per-row sweeps (centering, whitening);
// boundaries depend only on the row count, so results are bit-identical
// at any thread count.
constexpr std::size_t kRowGrain = 128;

// Adds `shift[j] * sign` to every row of `m` in parallel.
void ShiftRows(Matrix* m, const std::vector<double>& shift, double sign) {
  parallel::ParallelFor(
      m->rows(), kRowGrain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          auto row = m->Row(i);
          for (std::size_t j = 0; j < row.size(); ++j) {
            row[j] += sign * shift[j];
          }
        }
      });
}

// Multiplies column j of `m` by scale[j] (or divides, with `invert`).
void ScaleColumns(Matrix* m, const std::vector<double>& scale, bool invert) {
  parallel::ParallelFor(
      m->rows(), kRowGrain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          auto row = m->Row(i);
          for (std::size_t j = 0; j < row.size(); ++j) {
            if (invert) {
              row[j] /= scale[j];
            } else {
              row[j] *= scale[j];
            }
          }
        }
      });
}

}  // namespace

Pca Pca::Fit(const Matrix& x, const Options& options) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  MCIRBM_CHECK_GE(n, 2u) << "PCA needs at least two instances";
  MCIRBM_CHECK_GE(d, 1u) << "PCA needs at least one feature";

  Pca pca;
  pca.mean_ = ColMeans(x);
  pca.whiten_ = options.whiten;

  // Centered copy, then covariance C = Xcᵀ·Xc / (n-1).
  Matrix centered = x;
  ShiftRows(&centered, pca.mean_, -1.0);
  Matrix cov = GemmTransA(centered, centered);
  cov *= 1.0 / static_cast<double>(n - 1);

  const EigenDecomposition eig = JacobiEigenSymmetric(cov);
  MCIRBM_CHECK(eig.converged) << "covariance eigendecomposition diverged";

  std::size_t k = options.num_components;
  const std::size_t max_k = std::min(n - 1, d);
  if (k == 0) k = max_k;
  MCIRBM_CHECK_LE(k, d) << "more components than features";

  pca.components_ = TopEigenvectors(eig, k);
  pca.explained_variance_.assign(eig.values.begin(), eig.values.begin() + k);
  // Numerical noise can push tiny eigenvalues below zero; clamp.
  for (double& v : pca.explained_variance_) v = std::max(v, 0.0);
  pca.total_variance_ = 0;
  for (double v : eig.values) pca.total_variance_ += std::max(v, 0.0);

  pca.scale_.assign(k, 1.0);
  if (options.whiten) {
    for (std::size_t j = 0; j < k; ++j) {
      pca.scale_[j] =
          1.0 / std::sqrt(pca.explained_variance_[j] + options.whiten_epsilon);
    }
  }
  return pca;
}

Matrix Pca::Transform(const Matrix& x) const {
  MCIRBM_CHECK_EQ(x.cols(), mean_.size()) << "feature-count mismatch";
  Matrix centered = x;
  ShiftRows(&centered, mean_, -1.0);
  Matrix projected = Gemm(centered, components_);
  if (whiten_) ScaleColumns(&projected, scale_, /*invert=*/false);
  return projected;
}

Matrix Pca::InverseTransform(const Matrix& projected) const {
  MCIRBM_CHECK_EQ(projected.cols(), components_.cols())
      << "component-count mismatch";
  Matrix unscaled = projected;
  if (whiten_) ScaleColumns(&unscaled, scale_, /*invert=*/true);
  Matrix restored = GemmTransB(unscaled, components_);
  ShiftRows(&restored, mean_, 1.0);
  return restored;
}

std::vector<double> Pca::ExplainedVarianceRatio() const {
  std::vector<double> ratio(explained_variance_.size(), 0.0);
  if (total_variance_ <= 0) return ratio;
  for (std::size_t j = 0; j < ratio.size(); ++j) {
    ratio[j] = explained_variance_[j] / total_variance_;
  }
  return ratio;
}

std::size_t Pca::ComponentsForVariance(double target) const {
  MCIRBM_CHECK_GE(target, 0.0);
  MCIRBM_CHECK_LE(target, 1.0);
  const std::vector<double> ratio = ExplainedVarianceRatio();
  double cumulative = 0;
  for (std::size_t j = 0; j < ratio.size(); ++j) {
    cumulative += ratio[j];
    if (cumulative >= target) return j + 1;
  }
  return std::max<std::size_t>(ratio.size(), 1);
}

}  // namespace mcirbm::linalg
