#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "parallel/thread_pool.h"
#include "util/check.h"

namespace mcirbm::linalg {
namespace {

// Fixed shard width for the per-row sweeps; rotations below this size run
// the plain loop (identical arithmetic) to spare the dispatch overhead on
// the small matrices spectral clustering typically produces.
constexpr std::size_t kRowGrain = 256;

// Sum of squares of the strictly off-diagonal elements, reduced over
// fixed row shards (thread-count independent).
double OffDiagonalSquaredNorm(const Matrix& a) {
  const std::size_t n = a.rows();
  return parallel::ShardedSum(
      n, kRowGrain, [&](std::size_t begin, std::size_t end) {
        double sum = 0;
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t j = i + 1; j < n; ++j) {
            sum += 2 * a(i, j) * a(i, j);
          }
        }
        return sum;
      });
}

void ValidateSymmetric(const Matrix& a) {
  MCIRBM_CHECK_EQ(a.rows(), a.cols()) << "Jacobi needs a square matrix";
  double max_abs = 0;
  double max_asym = 0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i; j < a.cols(); ++j) {
      max_abs = std::max(max_abs, std::abs(a(i, j)));
      max_asym = std::max(max_asym, std::abs(a(i, j) - a(j, i)));
    }
  }
  MCIRBM_CHECK_LE(max_asym, 1e-9 * std::max(1.0, max_abs))
      << "Jacobi input is not symmetric";
}

}  // namespace

EigenDecomposition JacobiEigenSymmetric(const Matrix& a,
                                        const JacobiOptions& options) {
  ValidateSymmetric(a);
  const std::size_t n = a.rows();
  EigenDecomposition out;
  out.vectors.Resize(n, n);
  if (n == 0) {
    out.converged = true;
    return out;
  }

  Matrix d = a;  // Working copy, driven to diagonal form.
  Matrix& v = out.vectors;
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  const double initial = std::sqrt(OffDiagonalSquaredNorm(d));
  const double threshold =
      options.tolerance * std::max(initial, 1e-300);

  int sweep = 0;
  for (; sweep < options.max_sweeps; ++sweep) {
    const double off = std::sqrt(OffDiagonalSquaredNorm(d));
    if (off <= threshold) {
      out.converged = true;
      break;
    }
    // One cyclic sweep: rotate away every off-diagonal element once.
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (apq == 0.0) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        // Stable rotation angle computation (Golub & Van Loan §8.5).
        const double theta = (aqq - app) / (2 * apq);
        const double t =
            (theta >= 0 ? 1.0 : -1.0) /
            (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply J(p,q,θ)ᵀ·D·J(p,q,θ) touching only rows/cols p,q. Within
        // each pass every index i touches disjoint elements, so large
        // rotations fan out over fixed shards; the passes themselves must
        // stay ordered (the row update at i=p reads the column update
        // from i=q and vice versa). Below the grain the plain loops
        // perform the identical arithmetic without dispatch overhead.
        const auto run_pass = [n](const auto& pass) {
          if (n > kRowGrain) {
            parallel::ParallelFor(n, kRowGrain, pass);
          } else {
            pass(0, n);
          }
        };
        run_pass([&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            const double dip = d(i, p);
            const double diq = d(i, q);
            d(i, p) = c * dip - s * diq;
            d(i, q) = s * dip + c * diq;
          }
        });
        run_pass([&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            const double dpi = d(p, i);
            const double dqi = d(q, i);
            d(p, i) = c * dpi - s * dqi;
            d(q, i) = s * dpi + c * dqi;
          }
        });
        // Accumulate the rotation into the eigenvector matrix.
        run_pass([&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            const double vip = v(i, p);
            const double viq = v(i, q);
            v(i, p) = c * vip - s * viq;
            v(i, q) = s * vip + c * viq;
          }
        });
      }
    }
  }
  out.sweeps = sweep;
  if (!out.converged) {
    out.converged = std::sqrt(OffDiagonalSquaredNorm(d)) <= threshold;
  }

  // Sort eigenpairs by descending eigenvalue.
  out.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.values[i] = d(i, i);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return out.values[x] > out.values[y];
  });

  std::vector<double> sorted_values(n);
  Matrix sorted_vectors(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted_values[j] = out.values[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      sorted_vectors(i, j) = v(i, order[j]);
    }
  }
  out.values = std::move(sorted_values);
  out.vectors = std::move(sorted_vectors);
  return out;
}

Matrix TopEigenvectors(const EigenDecomposition& eig, std::size_t k) {
  const std::size_t n = eig.vectors.rows();
  MCIRBM_CHECK_LE(k, n) << "asking for more eigenvectors than exist";
  Matrix out(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) out(i, j) = eig.vectors(i, j);
  }
  return out;
}

Matrix BottomEigenvectors(const EigenDecomposition& eig, std::size_t k) {
  const std::size_t n = eig.vectors.rows();
  MCIRBM_CHECK_LE(k, n) << "asking for more eigenvectors than exist";
  Matrix out(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      // Column n-1-j holds the (j+1)-th smallest eigenvalue's vector;
      // emit them in ascending-eigenvalue order.
      out(i, j) = eig.vectors(i, n - 1 - j);
    }
  }
  return out;
}

}  // namespace mcirbm::linalg
