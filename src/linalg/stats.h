// Per-column statistics and simple scalar aggregates used by data
// transforms and experiment reporting.
#ifndef MCIRBM_LINALG_STATS_H_
#define MCIRBM_LINALG_STATS_H_

#include <vector>

#include "linalg/matrix.h"

namespace mcirbm::linalg {

/// Per-column mean and (population) standard deviation.
struct ColumnStats {
  std::vector<double> mean;
  std::vector<double> stddev;  ///< sqrt(E[x²] − E[x]²), >= 0
};

/// Computes per-column mean/stddev; requires rows() > 0.
ColumnStats ComputeColumnStats(const Matrix& m);

/// Per-column min and max.
struct ColumnRange {
  std::vector<double> min;
  std::vector<double> max;
};

/// Computes per-column min/max; requires rows() > 0.
ColumnRange ComputeColumnRange(const Matrix& m);

/// Mean of a scalar sample.
double Mean(const std::vector<double>& xs);

/// Population variance of a scalar sample (0 for n <= 1).
double Variance(const std::vector<double>& xs);

/// Population standard deviation of a scalar sample.
double StdDev(const std::vector<double>& xs);

/// p-th percentile (p in [0,100]) with linear interpolation; requires a
/// non-empty sample. Input is copied, not mutated.
double Percentile(std::vector<double> xs, double p);

}  // namespace mcirbm::linalg

#endif  // MCIRBM_LINALG_STATS_H_
