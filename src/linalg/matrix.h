// Dense row-major matrix of doubles.
//
// This is the numeric workhorse of the library (no external BLAS/Eigen is
// available offline). Storage is a single contiguous buffer; rows are the
// unit of data-parallel work (instances), columns are features/units.
#ifndef MCIRBM_LINALG_MATRIX_H_
#define MCIRBM_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/check.h"

namespace mcirbm::linalg {

/// Dense row-major matrix. Cheap to move, explicit to copy (via Clone()
/// semantics are unnecessary — copy ctor is allowed but prefer refs).
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols matrix filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, double value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// Builds from nested initializer lists: Matrix m{{1,2},{3,4}};
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    MCIRBM_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    MCIRBM_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Mutable view of row `r` as a span of length cols().
  std::span<double> Row(std::size_t r) {
    MCIRBM_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  /// Read-only view of row `r`.
  std::span<const double> Row(std::size_t r) const {
    MCIRBM_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Sets every element to `value`.
  void Fill(double value);

  /// Resizes to rows x cols, zeroing all content.
  void Resize(std::size_t rows, std::size_t cols);

  /// Appends one row; on an empty matrix the row fixes cols(), afterwards
  /// the length must match. Amortized O(cols) — streaming loaders build
  /// matrices row by row with this.
  void AppendRow(std::span<const double> row);

  /// Returns the transposed matrix (cols x rows).
  Matrix Transposed() const;

  /// Extracts the rows listed in `indices` (in that order).
  Matrix SelectRows(const std::vector<std::size_t>& indices) const;

  /// Extracts the int-indexed rows (convenience for label-driven subsets).
  Matrix SelectRows(const std::vector<int>& indices) const;

  /// Element-wise in-place operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Element-wise (Hadamard) in-place product.
  Matrix& HadamardInPlace(const Matrix& other);

  /// this += scalar * other (AXPY over the whole buffer).
  void Axpy(double scalar, const Matrix& other);

  /// Frobenius norm sqrt(sum x^2).
  double FrobeniusNorm() const;

  /// Sum of all elements.
  double Sum() const;

  /// Max |x| over all elements.
  double MaxAbs() const;

  /// True if same shape and all |a-b| <= tol.
  bool AllClose(const Matrix& other, double tol) const;

  /// Debug rendering ("2x3 [[1, 2, 3], [4, 5, 6]]"), truncated when large.
  std::string ToString(std::size_t max_rows = 6, std::size_t max_cols = 8)
      const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// Element-wise binary operators (shape-checked).
Matrix operator+(const Matrix& a, const Matrix& b);
Matrix operator-(const Matrix& a, const Matrix& b);
Matrix operator*(const Matrix& a, double s);
Matrix operator*(double s, const Matrix& a);

}  // namespace mcirbm::linalg

#endif  // MCIRBM_LINALG_MATRIX_H_
