// Matrix kernels: GEMM variants, row/column reductions, element maps.
//
// GEMM variants are named by operand orientation so call sites read like the
// math: Gemm(A,B) = A·B; GemmTransA(A,B) = Aᵀ·B; GemmTransB(A,B) = A·Bᵀ.
// All use a cache-blocked ikj loop order — adequate for the ≤1k x ≤1k
// problem sizes of the paper's workloads.
#ifndef MCIRBM_LINALG_OPS_H_
#define MCIRBM_LINALG_OPS_H_

#include <functional>
#include <vector>

#include "linalg/matrix.h"

namespace mcirbm::linalg {

/// C = A·B. Shapes: (m,k)·(k,n) -> (m,n).
Matrix Gemm(const Matrix& a, const Matrix& b);

/// C = Aᵀ·B. Shapes: (k,m)ᵀ·(k,n) -> (m,n).
Matrix GemmTransA(const Matrix& a, const Matrix& b);

/// C = A·Bᵀ. Shapes: (m,k)·(n,k)ᵀ -> (m,n).
Matrix GemmTransB(const Matrix& a, const Matrix& b);

/// out += alpha · Aᵀ·B (accumulating version used by gradient code).
void AccumulateGemmTransA(double alpha, const Matrix& a, const Matrix& b,
                          Matrix* out);

/// y = A·x for a row-major matrix and dense vector (length cols()).
std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x);

/// y = Aᵀ·x (x has length rows()).
std::vector<double> MatTVec(const Matrix& a, const std::vector<double>& x);

/// Adds `v` (length cols) to every row of `m` in place.
void AddRowVector(Matrix* m, const std::vector<double>& v);

/// Column sums: length cols().
std::vector<double> ColSums(const Matrix& m);

/// Column means: length cols(); requires rows() > 0.
std::vector<double> ColMeans(const Matrix& m);

/// Row sums: length rows().
std::vector<double> RowSums(const Matrix& m);

/// Applies f element-wise in place.
void Apply(Matrix* m, const std::function<double(double)>& f);

/// Element-wise logistic sigmoid, numerically stable for large |x|.
double Sigmoid(double x);

/// Applies the logistic sigmoid element-wise in place.
void SigmoidInPlace(Matrix* m);

/// out(i,j) = a(i,j) * (1 - a(i,j)); the sigmoid derivative given sigmoid
/// activations. Used heavily by the sls gradient.
Matrix SigmoidDeriv(const Matrix& a);

/// Squared Euclidean distance between two equal-length spans.
double SquaredDistance(std::span<const double> a, std::span<const double> b);

/// Dense pairwise squared-distance matrix between rows of `m` (n x n,
/// symmetric, zero diagonal). Uses the expansion |a|²+|b|²−2a·b with a GEMM.
Matrix PairwiseSquaredDistances(const Matrix& m);

/// Dot product of two equal-length spans.
double Dot(std::span<const double> a, std::span<const double> b);

}  // namespace mcirbm::linalg

#endif  // MCIRBM_LINALG_OPS_H_
