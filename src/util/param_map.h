// String-keyed parameter bag consumed by the registry factories
// (clustering::ClustererRegistry, api::ModelRegistry) and api::ParseConfig.
//
// Values are stored as text; the typed getters parse on access and report
// malformed values through StatusOr instead of aborting, so a bad
// user-supplied parameter surfaces as a recoverable error at the API
// boundary.
#ifndef MCIRBM_UTIL_PARAM_MAP_H_
#define MCIRBM_UTIL_PARAM_MAP_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

/// Assigns the value of a StatusOr expression to `lhs`, or propagates its
/// error Status out of the enclosing Status/StatusOr-returning function.
/// Shared by the registry factories and the config parser.
#define MCIRBM_ASSIGN_OR_RETURN(lhs, expr)          \
  {                                                 \
    auto assign_or = (expr);                        \
    if (!assign_or.ok()) return assign_or.status(); \
    lhs = std::move(assign_or).value();             \
  }

namespace mcirbm {

/// Ordered key -> text-value map with Status-reporting typed accessors.
class ParamMap {
 public:
  ParamMap() = default;
  ParamMap(std::initializer_list<std::pair<const std::string, std::string>>
               entries)
      : values_(entries) {}

  /// Parses "key=value,key=value" text (used by CLI voter specs). Keys and
  /// values are trimmed; empty text yields an empty map.
  static StatusOr<ParamMap> FromText(const std::string& text);

  void Set(const std::string& key, std::string value) {
    values_[key] = std::move(value);
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  bool empty() const { return values_.empty(); }
  std::size_t size() const { return values_.size(); }

  /// All keys in sorted order.
  std::vector<std::string> Keys() const;

  /// Non-OK when the map holds any key outside `allowed` — how a factory
  /// rejects parameters it does not understand.
  Status ExpectOnly(std::initializer_list<const char*> allowed) const;

  /// Typed getters: `fallback` when the key is absent, ParseError when the
  /// stored text does not parse cleanly as the requested type.
  StatusOr<std::string> GetString(const std::string& key,
                                  const std::string& fallback) const;
  StatusOr<int> GetInt(const std::string& key, int fallback) const;
  /// Full 64-bit unsigned range (seeds); rejects signs and overflow.
  StatusOr<std::uint64_t> GetUint64(const std::string& key,
                                    std::uint64_t fallback) const;
  StatusOr<double> GetDouble(const std::string& key, double fallback) const;
  /// Accepts true/false, 1/0, on/off, yes/no (case-insensitive).
  StatusOr<bool> GetBool(const std::string& key, bool fallback) const;

  /// Renders as "key=value,key=value" in key order (diagnostics).
  std::string ToString() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace mcirbm

#endif  // MCIRBM_UTIL_PARAM_MAP_H_
