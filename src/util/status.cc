#include "util/status.h"

namespace mcirbm {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace mcirbm
