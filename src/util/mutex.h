// Annotated mutex wrappers — the only lock primitives allowed in src/.
//
// Mutex / MutexLock / CondVar wrap the std primitives 1:1 but carry the
// clang thread-safety capability attributes (util/thread_annotations.h),
// so every guarded member can declare its lock and the CI thread-safety
// job rejects unguarded accesses at compile time. Raw std::mutex /
// std::lock_guard / std::condition_variable are banned in src/ by
// tools/lint/check_source.py, because they are invisible to the
// analysis.
//
// Usage:
//
//   class Cache {
//    public:
//     int size() const {
//       MutexLock lock(mu_);
//       return entries_;
//     }
//    private:
//     void GrowLocked() MCIRBM_REQUIRES(mu_);   // callee needs the lock
//     mutable Mutex mu_;
//     int entries_ MCIRBM_GUARDED_BY(mu_) = 0;
//   };
//
// Condition waits are written as explicit loops so the guarded reads in
// the predicate stay inside the annotated function (the analysis cannot
// see through a predicate lambda invoked by the wait internals):
//
//   MutexLock lock(mu_);
//   while (queue_.empty() && !stopping_) cv_.Wait(mu_);
//
// MutexLock supports the unlock/relock pattern used by flusher loops
// (run the slow pass without the lock, reclaim it after):
//
//   lock.Unlock();
//   ExecuteBatch(&batch);   // MCIRBM_EXCLUDES(mu_) — takes mu_ itself
//   lock.Lock();
#ifndef MCIRBM_UTIL_MUTEX_H_
#define MCIRBM_UTIL_MUTEX_H_

#include <condition_variable>
#include <cstdint>
#include <chrono>
#include <mutex>

#include "util/thread_annotations.h"

namespace mcirbm {

class CondVar;

/// std::mutex with the clang `capability` attribute.
class MCIRBM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MCIRBM_ACQUIRE() { mu_.lock(); }
  void Unlock() MCIRBM_RELEASE() { mu_.unlock(); }
  bool TryLock() MCIRBM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a Mutex (scoped capability). Supports temporary
/// release via Unlock()/Lock(); the destructor releases only if held.
class MCIRBM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MCIRBM_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }
  ~MutexLock() MCIRBM_RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the lock early (e.g. around a slow batch execution).
  void Unlock() MCIRBM_RELEASE() {
    mu_.Unlock();
    held_ = false;
  }
  /// Re-acquires after an early Unlock.
  void Lock() MCIRBM_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable bound to Mutex. Wait/WaitForMicros require the
/// caller to hold the mutex — the analysis checks that — and return with
/// it held again. No predicate overloads on purpose: write the wait loop
/// in the caller so the predicate's guarded reads are analyzed there.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires before returning.
  /// Spurious wakeups happen; always wait in a `while (!cond)` loop.
  void Wait(Mutex& mu) MCIRBM_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the mutex
  }

  /// Wait with a timeout; returns false on timeout, true when notified
  /// (either way the mutex is held again). Negative waits clamp to 0.
  bool WaitForMicros(Mutex& mu, std::int64_t micros) MCIRBM_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const auto status = cv_.wait_for(
        lock, std::chrono::microseconds(micros < 0 ? 0 : micros));
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mcirbm

#endif  // MCIRBM_UTIL_MUTEX_H_
