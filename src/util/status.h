// Minimal Status / StatusOr for recoverable errors (I/O, parsing).
#ifndef MCIRBM_UTIL_STATUS_H_
#define MCIRBM_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

namespace mcirbm {

/// Error categories surfaced by fallible library operations.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kParseError,
  kInternal,
  kUnavailable,  ///< a service rejected the call (e.g. shutting down)
};

/// Returns a short human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// Value-semantic result of a fallible operation: a code plus a message.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "CODE: message".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of T or an error Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT
    MCIRBM_CHECK(!status_.ok()) << "StatusOr(Status) requires an error";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the value; aborts if not ok().
  const T& value() const& {
    MCIRBM_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T&& value() && {
    MCIRBM_CHECK(ok()) << status_.ToString();
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace mcirbm

#endif  // MCIRBM_UTIL_STATUS_H_
