#include "util/csv.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/string_util.h"

namespace mcirbm {

StatusOr<CsvTable> ReadCsv(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  CsvTable table;
  std::string line;
  size_t lineno = 0;
  size_t width = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (Trim(line).empty()) continue;
    const std::vector<std::string> cells = Split(line, ',');
    if (lineno == 1 && has_header) {
      for (const auto& c : cells) table.header.push_back(Trim(c));
      width = cells.size();
      continue;
    }
    if (width == 0) width = cells.size();
    if (cells.size() != width) {
      return Status::ParseError(path + ":" + std::to_string(lineno) +
                                ": ragged row");
    }
    std::vector<double> row;
    row.reserve(cells.size());
    for (const auto& c : cells) {
      double v;
      if (!ParseDouble(c, &v)) {
        return Status::ParseError(path + ":" + std::to_string(lineno) +
                                  ": non-numeric cell '" + c + "'");
      }
      row.push_back(v);
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

Status WriteCsv(const std::string& path,
                const std::vector<std::string>& header,
                const std::vector<std::vector<double>>& rows) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << std::setprecision(17);  // lossless double round-trip
  if (!header.empty()) out << Join(header, ",") << "\n";
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << row[i];
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace mcirbm
