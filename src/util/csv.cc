#include "util/csv.h"

#include <iomanip>

#include "util/string_util.h"

namespace mcirbm {

namespace {

// Strips one pair of surrounding double quotes ("f0" -> f0). Quotes must
// enclose the whole trimmed cell; embedded commas are not supported.
std::string UnquoteCell(const std::string& cell) {
  if (cell.size() >= 2 && cell.front() == '"' && cell.back() == '"') {
    return cell.substr(1, cell.size() - 2);
  }
  return cell;
}

}  // namespace

Status ScanCsv(
    const std::string& path, bool has_header,
    std::vector<std::string>* header,
    const std::function<Status(std::size_t lineno,
                               const std::vector<double>& row)>& on_row) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string line;
  std::size_t lineno = 0;
  std::size_t width = 0;
  bool header_pending = has_header;
  std::vector<double> row;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (Trim(line).empty()) continue;
    const std::vector<std::string> cells = Split(line, ',');
    if (header_pending) {
      header_pending = false;
      if (header != nullptr) {
        for (const auto& c : cells) header->push_back(UnquoteCell(Trim(c)));
      }
      width = cells.size();
      continue;
    }
    if (width == 0) width = cells.size();
    if (cells.size() != width) {
      return Status::ParseError(path + ":" + std::to_string(lineno) +
                                ": ragged row");
    }
    row.clear();
    row.reserve(cells.size());
    for (const auto& c : cells) {
      double v;
      if (!ParseDouble(UnquoteCell(Trim(c)), &v)) {
        return Status::ParseError(path + ":" + std::to_string(lineno) +
                                  ": non-numeric cell '" + c + "'");
      }
      row.push_back(v);
    }
    const Status status = on_row(lineno, row);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

StatusOr<CsvTable> ReadCsv(const std::string& path, bool has_header) {
  CsvTable table;
  const Status status = ScanCsv(
      path, has_header, &table.header,
      [&table](std::size_t /*lineno*/, const std::vector<double>& row) {
        table.rows.push_back(row);
        return Status::Ok();
      });
  if (!status.ok()) return status;
  return table;
}

Status CsvWriter::Open(const std::string& path,
                       const std::vector<std::string>& header) {
  path_ = path;
  out_.open(path);
  if (!out_) return Status::IoError("cannot open " + path + " for writing");
  out_ << std::setprecision(17);  // lossless double round-trip
  if (!header.empty()) out_ << Join(header, ",") << "\n";
  return Status::Ok();
}

Status CsvWriter::WriteRow(std::span<const double> row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << row[i];
  }
  out_ << "\n";
  if (!out_) return Status::IoError("write failed for " + path_);
  return Status::Ok();
}

Status CsvWriter::Close() {
  if (out_.is_open()) {
    out_.flush();
    if (!out_) return Status::IoError("write failed for " + path_);
    out_.close();
  }
  return Status::Ok();
}

Status WriteCsv(const std::string& path,
                const std::vector<std::string>& header,
                const std::vector<std::vector<double>>& rows) {
  CsvWriter writer;
  Status status = writer.Open(path, header);
  if (!status.ok()) return status;
  for (const auto& row : rows) {
    status = writer.WriteRow(row);
    if (!status.ok()) return status;
  }
  return writer.Close();
}

}  // namespace mcirbm
