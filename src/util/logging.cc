#include "util/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace mcirbm {
namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("MCIRBM_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarning;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarning;
}

std::atomic<int>& LevelStore() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  LevelStore().store(static_cast<int>(level));
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(LevelStore().load());
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               static_cast<int>(GetLogLevel())),
      level_(level) {
  if (enabled_) {
    const char* base = std::strrchr(file, '/');
    out_ << "[" << LevelTag(level) << " " << (base ? base + 1 : file) << ":"
         << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << out_.str() << std::endl;
}

}  // namespace internal
}  // namespace mcirbm
