#include "util/param_map.h"

#include <algorithm>
#include <cctype>

#include "util/string_util.h"

namespace mcirbm {

StatusOr<ParamMap> ParamMap::FromText(const std::string& text) {
  ParamMap map;
  if (Trim(text).empty()) return map;
  for (const std::string& part : Split(text, ',')) {
    const std::string entry = Trim(part);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("parameter '" + entry +
                                "' is not key=value");
    }
    const std::string key = Trim(entry.substr(0, eq));
    if (key.empty()) {
      return Status::ParseError("empty parameter key in '" + entry + "'");
    }
    map.Set(key, Trim(entry.substr(eq + 1)));
  }
  return map;
}

std::vector<std::string> ParamMap::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [key, value] : values_) keys.push_back(key);
  return keys;
}

Status ParamMap::ExpectOnly(
    std::initializer_list<const char*> allowed) const {
  for (const auto& [key, value] : values_) {
    if (std::none_of(allowed.begin(), allowed.end(),
                     [&](const char* a) { return key == a; })) {
      std::string known;
      for (const char* a : allowed) {
        if (!known.empty()) known += ", ";
        known += a;
      }
      return Status::InvalidArgument("unknown parameter '" + key +
                                     "' (accepted: " + known + ")");
    }
  }
  return Status::Ok();
}

StatusOr<std::string> ParamMap::GetString(const std::string& key,
                                          const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

StatusOr<int> ParamMap::GetInt(const std::string& key, int fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  int v = 0;
  if (!ParseInt(it->second, &v)) {
    return Status::ParseError("parameter '" + key +
                              "' expects an integer, got '" + it->second +
                              "'");
  }
  return v;
}

StatusOr<std::uint64_t> ParamMap::GetUint64(const std::string& key,
                                            std::uint64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::uint64_t v = 0;
  if (!ParseUint64(it->second, &v)) {
    return Status::ParseError("parameter '" + key +
                              "' expects an unsigned 64-bit integer, got '" +
                              it->second + "'");
  }
  return v;
}

StatusOr<double> ParamMap::GetDouble(const std::string& key,
                                     double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  double v = 0;
  if (!ParseDouble(it->second, &v)) {
    return Status::ParseError("parameter '" + key + "' expects a number, got '" +
                              it->second + "'");
  }
  return v;
}

StatusOr<bool> ParamMap::GetBool(const std::string& key,
                                 bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "true" || v == "1" || v == "on" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "off" || v == "no") return false;
  return Status::ParseError("parameter '" + key +
                            "' expects a boolean, got '" + it->second + "'");
}

std::string ParamMap::ToString() const {
  std::string out;
  for (const auto& [key, value] : values_) {
    if (!out.empty()) out += ",";
    out += key + "=" + value;
  }
  return out;
}

}  // namespace mcirbm
