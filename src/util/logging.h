// Leveled logging to stderr with a runtime-adjustable threshold.
//
// Usage:  MCIRBM_LOG(kInfo) << "trained epoch " << e << " recon=" << err;
// Set MCIRBM_LOG_LEVEL=debug|info|warning|error in the environment, or call
// SetLogLevel() programmatically. Default threshold is kWarning so library
// consumers see nothing unless they opt in.
#ifndef MCIRBM_UTIL_LOGGING_H_
#define MCIRBM_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace mcirbm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);

/// Current global threshold (initialized from MCIRBM_LOG_LEVEL env var).
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) out_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream out_;
};

}  // namespace internal
}  // namespace mcirbm

#define MCIRBM_LOG(severity)                                        \
  ::mcirbm::internal::LogMessage(::mcirbm::LogLevel::severity, \
                                 __FILE__, __LINE__)

#endif  // MCIRBM_UTIL_LOGGING_H_
