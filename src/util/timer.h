// Wall-clock timing helpers. Every latency source in the tree — the
// micro-batcher's queue waits, the model store's load times, the bench
// drivers — reads the same monotonic clock through MonotonicMicros(),
// so histograms and bench numbers are directly comparable.
#ifndef MCIRBM_UTIL_TIMER_H_
#define MCIRBM_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace mcirbm {

/// Microseconds on the process-wide monotonic clock. Only differences
/// are meaningful (the epoch is unspecified); never goes backwards.
inline std::int64_t MonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Measures elapsed wall-clock time; starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(MonotonicMicros()) {}

  /// Restarts the timer.
  void Reset() { start_ = MonotonicMicros(); }

  /// Elapsed microseconds since construction or the last Reset().
  std::int64_t Micros() const { return MonotonicMicros() - start_; }

  /// Elapsed seconds.
  double Seconds() const { return static_cast<double>(Micros()) * 1e-6; }

  /// Elapsed milliseconds.
  double Millis() const { return static_cast<double>(Micros()) * 1e-3; }

 private:
  std::int64_t start_;
};

}  // namespace mcirbm

#endif  // MCIRBM_UTIL_TIMER_H_
