// Wall-clock timer for experiment bookkeeping.
#ifndef MCIRBM_UTIL_TIMER_H_
#define MCIRBM_UTIL_TIMER_H_

#include <chrono>

namespace mcirbm {

/// Measures elapsed wall-clock time; starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mcirbm

#endif  // MCIRBM_UTIL_TIMER_H_
