// Minimal CSV reading/writing for numeric tables (datasets, features).
//
// Parsing rules shared by every entry point: lines end in LF or CRLF,
// blank lines (including a trailing one) are skipped, and any cell may be
// wrapped in double quotes (stripped after trimming; embedded commas are
// not supported). Ragged rows and non-numeric cells fail with kParseError
// naming `path:lineno`.
#ifndef MCIRBM_UTIL_CSV_H_
#define MCIRBM_UTIL_CSV_H_

#include <fstream>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace mcirbm {

/// A parsed numeric CSV: optional header plus a dense row-major table.
struct CsvTable {
  std::vector<std::string> header;       ///< empty if has_header was false
  std::vector<std::vector<double>> rows; ///< all rows have equal width
};

/// Streams a numeric CSV without materializing it: `on_row` is invoked once
/// per data row with its 1-based line number; a non-OK return aborts the
/// scan and propagates. If `has_header`, the first non-blank line is
/// delivered through `header` (ignored when null) instead of `on_row`.
Status ScanCsv(
    const std::string& path, bool has_header,
    std::vector<std::string>* header,
    const std::function<Status(std::size_t lineno,
                               const std::vector<double>& row)>& on_row);

/// Reads a numeric CSV file. If `has_header`, the first line is kept as
/// column names. Fails with kParseError on ragged rows or non-numeric cells.
StatusOr<CsvTable> ReadCsv(const std::string& path, bool has_header);

/// Streaming CSV row sink. Writes the exact same bytes as WriteCsv
/// (setprecision(17) doubles, '\n' line ends), so chunked exports are
/// byte-identical to materialized ones.
class CsvWriter {
 public:
  CsvWriter() = default;
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Opens `path` and writes the header line (skipped when empty).
  Status Open(const std::string& path,
              const std::vector<std::string>& header);

  /// Appends one data row.
  Status WriteRow(std::span<const double> row);

  /// Flushes and reports any deferred write error. Idempotent.
  Status Close();

 private:
  std::ofstream out_;
  std::string path_;
};

/// Writes a numeric CSV file; `header` may be empty to omit the header line.
Status WriteCsv(const std::string& path,
                const std::vector<std::string>& header,
                const std::vector<std::vector<double>>& rows);

}  // namespace mcirbm

#endif  // MCIRBM_UTIL_CSV_H_
