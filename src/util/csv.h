// Minimal CSV reading/writing for numeric tables (datasets, features).
#ifndef MCIRBM_UTIL_CSV_H_
#define MCIRBM_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace mcirbm {

/// A parsed numeric CSV: optional header plus a dense row-major table.
struct CsvTable {
  std::vector<std::string> header;       ///< empty if has_header was false
  std::vector<std::vector<double>> rows; ///< all rows have equal width
};

/// Reads a numeric CSV file. If `has_header`, the first line is kept as
/// column names. Fails with kParseError on ragged rows or non-numeric cells.
StatusOr<CsvTable> ReadCsv(const std::string& path, bool has_header);

/// Writes a numeric CSV file; `header` may be empty to omit the header line.
Status WriteCsv(const std::string& path,
                const std::vector<std::string>& header,
                const std::vector<std::vector<double>>& rows);

}  // namespace mcirbm

#endif  // MCIRBM_UTIL_CSV_H_
