// Shared machinery for the string-keyed component registries
// (clustering::ClustererRegistry, api::ModelRegistry): a mutex-guarded
// name -> std::function table with Status-reporting Register/Create and
// consistent "unknown <noun> 'x' (registered: ...)" diagnostics.
#ifndef MCIRBM_UTIL_REGISTRY_H_
#define MCIRBM_UTIL_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace mcirbm {

template <typename Signature>
class NamedRegistry;

/// Name -> factory table over factories of signature `Result(Args...)`.
/// `Result` must be constructible from a Status (e.g. StatusOr<T>) so
/// lookup failures report through the same channel as factory errors.
template <typename Result, typename... Args>
class NamedRegistry<Result(Args...)> {
 public:
  using Factory = std::function<Result(Args...)>;

  /// `noun` names the component kind in diagnostics ("clusterer", ...).
  explicit NamedRegistry(std::string noun) : noun_(std::move(noun)) {}

  /// Adds a factory under `name`; InvalidArgument if the name is taken.
  Status Register(const std::string& name, Factory factory) {
    if (name.empty()) {
      return Status::InvalidArgument(noun_ + " name must be non-empty");
    }
    MutexLock lock(mutex_);
    const auto [it, inserted] = factories_.emplace(name, std::move(factory));
    if (!inserted) {
      return Status::InvalidArgument(noun_ + " '" + name +
                                     "' is already registered");
    }
    return Status::Ok();
  }

  /// Invokes the factory registered under `name`. NotFound for unknown
  /// names; factory-specific errors pass through.
  Result Create(const std::string& name, Args... args) const {
    Factory factory;
    {
      MutexLock lock(mutex_);
      const auto it = factories_.find(name);
      if (it == factories_.end()) {
        std::string known;
        for (const auto& [key, value] : factories_) {
          if (!known.empty()) known += ", ";
          known += key;
        }
        return Status::NotFound("unknown " + noun_ + " '" + name +
                                "' (registered: " + known + ")");
      }
      factory = it->second;
    }
    return factory(std::forward<Args>(args)...);
  }

  bool Contains(const std::string& name) const {
    MutexLock lock(mutex_);
    return factories_.count(name) > 0;
  }

  /// Registered names in sorted order.
  std::vector<std::string> ListRegistered() const {
    MutexLock lock(mutex_);
    std::vector<std::string> names;
    names.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) names.push_back(name);
    return names;
  }

 protected:
  /// Pre-registration hook for the subclass constructor (built-ins skip
  /// the Register name checks — they are statically well-formed). Takes
  /// the lock even though it only runs during construction: base-class
  /// members get no constructor exemption from the analysis, and the
  /// uncontended acquire is free at startup.
  void AddBuiltin(const std::string& name, Factory factory) {
    MutexLock lock(mutex_);
    factories_.emplace(name, std::move(factory));
  }

 private:
  std::string noun_;
  mutable Mutex mutex_;
  std::map<std::string, Factory> factories_ MCIRBM_GUARDED_BY(mutex_);
};

}  // namespace mcirbm

#endif  // MCIRBM_UTIL_REGISTRY_H_
