// Clang thread-safety analysis macros (no-ops on other compilers).
//
// These wrap the attributes documented at
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html so that the
// concurrency invariants of the serve stack are machine-checked at
// compile time: a member declared MCIRBM_GUARDED_BY(mu_) cannot be read
// or written without holding mu_, a helper declared
// MCIRBM_REQUIRES(mu_) cannot be called without it, and a function
// declared MCIRBM_EXCLUDES(mu_) cannot be called while holding it
// (deadlock guard for helpers that take the lock themselves).
//
// The annotations only do anything on util::Mutex / util::MutexLock
// (util/mutex.h), which carry the CAPABILITY / SCOPED_CAPABILITY
// attributes — raw std::mutex is invisible to the analysis, which is why
// tools/lint/check_source.py bans it outside the wrapper header.
//
// The CI `thread-safety` job compiles the tree with clang and
// `-Wthread-safety -Werror`; under gcc every macro expands to nothing.
#ifndef MCIRBM_UTIL_THREAD_ANNOTATIONS_H_
#define MCIRBM_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define MCIRBM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MCIRBM_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

/// Declares a class to be a lockable capability ("mutex").
#define MCIRBM_CAPABILITY(x) MCIRBM_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define MCIRBM_SCOPED_CAPABILITY MCIRBM_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define MCIRBM_GUARDED_BY(x) MCIRBM_THREAD_ANNOTATION_(guarded_by(x))

/// Declares that the data pointed to by a pointer member is protected by
/// the given capability (the pointer itself is not).
#define MCIRBM_PT_GUARDED_BY(x) MCIRBM_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares that the calling thread must hold the given capability(ies).
#define MCIRBM_REQUIRES(...) \
  MCIRBM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Declares that a function acquires the capability and does not release
/// it (the caller must not already hold it).
#define MCIRBM_ACQUIRE(...) \
  MCIRBM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Declares that a function releases a held capability.
#define MCIRBM_RELEASE(...) \
  MCIRBM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Declares that a function acquires the capability iff it returns the
/// given value (TryLock).
#define MCIRBM_TRY_ACQUIRE(...) \
  MCIRBM_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Declares that the caller must NOT hold the given capability — the
/// function (or a callee) acquires it itself, so calling it with the
/// lock held would self-deadlock.
#define MCIRBM_EXCLUDES(...) \
  MCIRBM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Lock-order declarations on mutex members: checked under
/// -Wthread-safety-beta (the CI job runs it as an advisory pass).
#define MCIRBM_ACQUIRED_BEFORE(...) \
  MCIRBM_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define MCIRBM_ACQUIRED_AFTER(...) \
  MCIRBM_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Declares that a function returns a reference to the given capability.
#define MCIRBM_RETURN_CAPABILITY(x) \
  MCIRBM_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: turns the analysis off for one function. Use only with
/// a comment explaining why the invariant holds anyway.
#define MCIRBM_NO_THREAD_SAFETY_ANALYSIS \
  MCIRBM_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // MCIRBM_UTIL_THREAD_ANNOTATIONS_H_
