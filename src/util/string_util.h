// Small string helpers shared by CSV parsing and table rendering.
#ifndef MCIRBM_UTIL_STRING_UTIL_H_
#define MCIRBM_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace mcirbm {

/// Splits `s` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(const std::string& s, char delim);

/// Joins `parts` with `delim` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& delim);

/// Strips ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double v, int digits);

/// Left-pads (or passes through) `s` to width `w` with spaces.
std::string PadLeft(const std::string& s, int w);

/// Right-pads (or passes through) `s` to width `w` with spaces.
std::string PadRight(const std::string& s, int w);

/// Parses a double; returns false on any trailing garbage or empty input.
bool ParseDouble(const std::string& s, double* out);

/// Parses an int; returns false on any trailing garbage or empty input.
bool ParseInt(const std::string& s, int* out);

/// Parses an unsigned 64-bit integer; returns false on empty input,
/// trailing garbage, a leading '-', or a value above 2^64 - 1.
bool ParseUint64(const std::string& s, std::uint64_t* out);

/// Reads an entire text file; IoError when it cannot be opened or read.
StatusOr<std::string> ReadFileToString(const std::string& path);

}  // namespace mcirbm

#endif  // MCIRBM_UTIL_STRING_UTIL_H_
