// Lightweight CHECK macros for precondition validation.
//
// Library code is exception-free (Google C++ style); violated invariants are
// programming errors and abort with a diagnostic. Use Status (status.h) for
// recoverable conditions such as I/O failures.
#ifndef MCIRBM_UTIL_CHECK_H_
#define MCIRBM_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace mcirbm {
namespace internal {

/// Prints the failure message and aborts. Never returns.
[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr, const std::string& msg) {
  std::cerr << "CHECK failed at " << file << ":" << line << ": " << expr;
  if (!msg.empty()) std::cerr << " — " << msg;
  std::cerr << std::endl;
  std::abort();
}

/// Stream-collecting helper so CHECK(x) << "context" works.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessage() { CheckFail(file_, line_, expr_, out_.str()); }
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream out_;
};

}  // namespace internal
}  // namespace mcirbm

#define MCIRBM_CHECK(cond)                                             \
  if (cond) {                                                          \
  } else                                                               \
    ::mcirbm::internal::CheckMessage(__FILE__, __LINE__, #cond)

#define MCIRBM_CHECK_OP(a, b, op) \
  MCIRBM_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "

#define MCIRBM_CHECK_EQ(a, b) MCIRBM_CHECK_OP(a, b, ==)
#define MCIRBM_CHECK_NE(a, b) MCIRBM_CHECK_OP(a, b, !=)
#define MCIRBM_CHECK_LT(a, b) MCIRBM_CHECK_OP(a, b, <)
#define MCIRBM_CHECK_LE(a, b) MCIRBM_CHECK_OP(a, b, <=)
#define MCIRBM_CHECK_GT(a, b) MCIRBM_CHECK_OP(a, b, >)
#define MCIRBM_CHECK_GE(a, b) MCIRBM_CHECK_OP(a, b, >=)

// Debug-only variants; compiled out in NDEBUG builds (hot loops).
#ifdef NDEBUG
#define MCIRBM_DCHECK(cond) \
  if (true) {               \
  } else                    \
    ::mcirbm::internal::CheckMessage(__FILE__, __LINE__, #cond)
#else
#define MCIRBM_DCHECK(cond) MCIRBM_CHECK(cond)
#endif

#endif  // MCIRBM_UTIL_CHECK_H_
