#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mcirbm {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string PadLeft(const std::string& s, int w) {
  if (static_cast<int>(s.size()) >= w) return s;
  return std::string(w - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, int w) {
  if (static_cast<int>(s.size()) >= w) return s;
  return s + std::string(w - s.size(), ' ');
}

bool ParseDouble(const std::string& s, double* out) {
  const std::string t = Trim(s);
  if (t.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size()) return false;
  *out = v;
  return true;
}

bool ParseInt(const std::string& s, int* out) {
  const std::string t = Trim(s);
  if (t.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(t.c_str(), &end, 10);
  if (end != t.c_str() + t.size()) return false;
  *out = static_cast<int>(v);
  return true;
}

bool ParseUint64(const std::string& s, std::uint64_t* out) {
  const std::string t = Trim(s);
  // strtoull silently negates "-1" instead of failing; reject any sign
  // (a '+' would also survive round-tripping oddly) up front.
  if (t.empty() || t[0] == '-' || t[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(t.c_str(), &end, 10);
  if (end != t.c_str() + t.size() || errno == ERANGE) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed for " + path);
  return buffer.str();
}

}  // namespace mcirbm
