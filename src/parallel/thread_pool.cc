#include "parallel/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>

#include "util/check.h"

namespace mcirbm::parallel {
namespace {

// Set while a thread executes shard work (worker threads always; the
// calling thread while it participates in a region). Guards against
// re-entering the pool from nested parallel calls.
thread_local bool tls_in_parallel_region = false;

int ResolveWidth(int num_threads) {
  if (num_threads <= 0) {
    if (const char* env = std::getenv("MCIRBM_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && v > 0) num_threads = static_cast<int>(v);
    }
  }
  if (num_threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  return num_threads;
}

std::unique_ptr<ThreadPool>& GlobalSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

Mutex& GlobalMutex() {
  static Mutex mu;
  return mu;
}

}  // namespace

// One Run() invocation: tasks are claimed with an atomic counter; the last
// finisher signals the caller. Workers holding a Region outlive neither
// the counter nor the callback because the caller blocks until
// `completed == num_tasks`.
struct ThreadPool::Region {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t num_tasks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  Mutex mu;
  CondVar done_cv;
  std::exception_ptr error MCIRBM_GUARDED_BY(mu);  // first exception

  // Claims and runs tasks until none remain. Returns after contributing
  // its completions to `completed`.
  void Drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_tasks) break;
      try {
        (*fn)(i);
      } catch (...) {
        MutexLock lock(mu);
        if (!error) error = std::current_exception();
      }
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_tasks) {
        // Wake the caller (it may already be draining; harmless).
        MutexLock lock(mu);
        done_cv.NotifyAll();
      }
    }
  }
};

ThreadPool::ThreadPool(int num_threads) {
  const int width = ResolveWidth(num_threads);
  workers_.reserve(width - 1);
  for (int t = 0; t < width - 1; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  tls_in_parallel_region = true;
  for (;;) {
    std::shared_ptr<Region> region;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.Wait(mu_);
      if (shutdown_ && queue_.empty()) return;
      region = queue_.front();
      queue_.pop_front();
    }
    region->Drain();
  }
}

void ThreadPool::Run(std::size_t num_tasks,
                     const std::function<void(std::size_t)>& fn) {
  if (num_tasks == 0) return;
  MCIRBM_CHECK(!tls_in_parallel_region)
      << "ThreadPool::Run re-entered from a parallel region";
  if (num_tasks == 1) {
    // A single task runs inline at every pool width; it is not a region.
    fn(0);
    return;
  }
  if (workers_.empty()) {
    // Width-1 serial fallback. Mark the region anyway so nested calls see
    // the same InParallelRegion() answer they would on a worker thread —
    // otherwise kernels that branch on it would become thread-count
    // dependent.
    tls_in_parallel_region = true;
    try {
      for (std::size_t i = 0; i < num_tasks; ++i) fn(i);
    } catch (...) {
      tls_in_parallel_region = false;
      throw;
    }
    tls_in_parallel_region = false;
    return;
  }

  auto region = std::make_shared<Region>();
  region->fn = &fn;
  region->num_tasks = num_tasks;

  // One queue entry per helper; each drains the shared counter, so idle
  // helpers exit immediately once tasks run out.
  const std::size_t helpers =
      std::min(workers_.size(), num_tasks - 1);
  {
    MutexLock lock(mu_);
    for (std::size_t h = 0; h < helpers; ++h) queue_.push_back(region);
  }
  if (helpers == 1) {
    work_cv_.NotifyOne();
  } else {
    work_cv_.NotifyAll();
  }

  // The caller participates, then waits for stragglers.
  tls_in_parallel_region = true;
  region->Drain();
  tls_in_parallel_region = false;
  {
    MutexLock lock(region->mu);
    while (region->completed.load(std::memory_order_acquire) !=
           region->num_tasks) {
      region->done_cv.Wait(region->mu);
    }
    if (region->error) std::rethrow_exception(region->error);
  }
}

ThreadPool& ThreadPool::Global() {
  MutexLock lock(GlobalMutex());
  std::unique_ptr<ThreadPool>& slot = GlobalSlot();
  if (!slot) slot = std::make_unique<ThreadPool>(0);
  return *slot;
}

int NumThreads() { return ThreadPool::Global().num_threads(); }

void SetNumThreads(int num_threads) {
  MutexLock lock(GlobalMutex());
  GlobalSlot() = std::make_unique<ThreadPool>(num_threads);
}

bool InParallelRegion() { return tls_in_parallel_region; }

namespace {

// Resolves the process-default determinism mode once: MCIRBM_DETERMINISTIC
// set to 0/false/off opts the whole process into the fast schedules.
bool ResolveDeterministicEnv() {
  const char* env = std::getenv("MCIRBM_DETERMINISTIC");
  if (!env) return true;
  const std::string v(env);
  return !(v == "0" || v == "false" || v == "off" || v == "no");
}

}  // namespace

bool DefaultDeterministic() {
  static const bool kDefault = ResolveDeterministicEnv();
  return kDefault;
}

namespace {
// Live flag, seeded from the single env resolution point above so the
// default and the initial live value cannot diverge.
std::atomic<bool> g_deterministic{DefaultDeterministic()};
}  // namespace

bool Deterministic() {
  return g_deterministic.load(std::memory_order_relaxed);
}

void SetDeterministic(bool deterministic) {
  g_deterministic.store(deterministic, std::memory_order_relaxed);
}

void ParallelFor(std::size_t n, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t shards = (n + grain - 1) / grain;
  if (shards == 1 || tls_in_parallel_region) {
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t begin = s * grain;
      fn(begin, std::min(begin + grain, n));
    }
    return;
  }
  ThreadPool::Global().Run(shards, [&](std::size_t s) {
    const std::size_t begin = s * grain;
    fn(begin, std::min(begin + grain, n));
  });
}

rng::Rng ShardRng(std::uint64_t seed, std::uint64_t shard) {
  // Mix the shard index into the seed with two odd 64-bit constants
  // (SplitMix64-style) so adjacent shards land in distant seed states;
  // rng::Rng's own SplitMix64 expansion does the rest.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (shard + 1);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  return rng::Rng(z);
}

}  // namespace mcirbm::parallel
