// Parallel execution engine: a lazily constructed global thread pool plus
// deterministic data-parallel primitives built on top of it.
//
// Design goals, in priority order:
//   1. Bit-identical results at any thread count. Work is partitioned into
//      *fixed-size shards* whose boundaries depend only on the problem size
//      and the grain — never on how many workers happen to exist — and
//      reductions combine shard partials in shard order. A kernel written
//      against ParallelFor/ShardedReduce therefore produces the same
//      floating-point result serial and parallel (see tests/parallel/).
//   2. Safety under composition. ParallelFor called from inside a parallel
//      region (a worker thread, or the caller participating in one)
//      executes inline and serially instead of re-entering the pool, so
//      coarse-grained fan-out (ensemble voters, experiment repeats) can
//      freely call into fine-grained parallel kernels.
//   3. Zero cost when cheap. Regions smaller than one grain never touch
//      the pool; a pool of width 1 never spawns threads.
//
// The pool width defaults to std::thread::hardware_concurrency() and can be
// overridden by the MCIRBM_THREADS environment variable or SetNumThreads()
// (the CLI's --threads flag). Exceptions thrown by shard functions are
// captured and rethrown on the calling thread (first one wins).
#ifndef MCIRBM_PARALLEL_THREAD_POOL_H_
#define MCIRBM_PARALLEL_THREAD_POOL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "rng/rng.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mcirbm::parallel {

/// Fixed-width pool of worker threads executing enqueued jobs. Most code
/// should use the free functions below rather than the pool directly.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 resolves to hardware concurrency.
  /// A width of 1 creates no threads (all work runs on the caller).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads participating in a region (workers + caller).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(task) for every task in [0, num_tasks), distributing tasks
  /// dynamically over the workers and the calling thread. Blocks until all
  /// tasks finish. Rethrows the first exception any task threw. Must not
  /// be called from a worker thread (callers use ParallelFor, which
  /// degrades to inline execution there).
  ///
  /// Run may be entered concurrently from any number of *external*
  /// threads: each call is an independent region and the shared queue is
  /// internally synchronized. This is what lets a persistent service
  /// (serve::MicroBatcher's flusher, plus its client threads) share one
  /// pool with the rest of the process instead of spawning its own
  /// workers. The pool's lifetime is the caveat — SetNumThreads replaces
  /// the global pool and must not race live regions, so long-lived
  /// services pick the width at startup and leave it alone.
  void Run(std::size_t num_tasks, const std::function<void(std::size_t)>& fn);

  /// The process-wide pool. Created on first use with the width given by
  /// MCIRBM_THREADS (else hardware concurrency).
  static ThreadPool& Global();

 private:
  struct Region;  // one Run() invocation

  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar work_cv_;
  std::deque<std::shared_ptr<Region>> queue_ MCIRBM_GUARDED_BY(mu_);
  bool shutdown_ MCIRBM_GUARDED_BY(mu_) = false;
};

/// Width of the global pool (>= 1).
int NumThreads();

/// Rebuilds the global pool with `num_threads` workers (0 = auto). Not
/// thread-safe with respect to concurrently running parallel regions; call
/// at startup or between phases.
void SetNumThreads(int num_threads);

/// True while the current thread is executing inside a parallel region;
/// nested ParallelFor/ShardedReduce calls then run inline and serially.
bool InParallelRegion();

/// Global determinism mode (default true): every kernel reproduces the
/// serial reference bit for bit. When false, kernels may choose faster
/// schedules that are still reproducible for a fixed seed but not
/// identical to the serial stream (e.g. k-means restarts fanned out on
/// independent ShardRng substreams).
bool Deterministic();
void SetDeterministic(bool deterministic);

/// Process-default determinism mode: true unless the MCIRBM_DETERMINISTIC
/// environment variable is set to 0/false/off/no. Config structs that
/// carry a `deterministic` field default to this value so an environment
/// override survives ApplyParallelConfig.
bool DefaultDeterministic();

/// Splits [0, n) into ceil(n/grain) fixed-size shards and runs
/// fn(begin, end) for each. Shard boundaries depend only on (n, grain), so
/// any side effects that are disjoint per shard are deterministic across
/// thread counts. Runs serially when there is one shard, the pool has
/// width 1, or the caller is already inside a parallel region.
void ParallelFor(std::size_t n, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& fn);

/// Deterministic map-reduce over [0, n): shard s covers
/// [s*grain, min((s+1)*grain, n)) and produces map(begin, end); partials
/// are combined *in shard order* into `init`, so the floating-point
/// summation tree is fixed by (n, grain) alone — identical at 1 or N
/// threads.
template <typename T, typename MapFn, typename CombineFn>
T ShardedReduce(std::size_t n, std::size_t grain, T init, const MapFn& map,
                const CombineFn& combine) {
  if (n == 0) return init;
  if (grain == 0) grain = 1;
  const std::size_t shards = (n + grain - 1) / grain;
  std::vector<T> partials(shards);
  ParallelFor(n, grain, [&](std::size_t begin, std::size_t end) {
    partials[begin / grain] = map(begin, end);
  });
  T acc = std::move(init);
  for (std::size_t s = 0; s < shards; ++s) {
    acc = combine(std::move(acc), std::move(partials[s]));
  }
  return acc;
}

/// Sum-reduction convenience: Σ map(begin, end) over fixed shards.
template <typename MapFn>
double ShardedSum(std::size_t n, std::size_t grain, const MapFn& map) {
  return ShardedReduce(
      n, grain, 0.0, map,
      [](double a, double b) { return a + b; });
}

/// Statistically independent RNG substream for shard `shard` of a
/// computation seeded with `seed`. Thread-count independent by
/// construction: the stream depends only on (seed, shard).
rng::Rng ShardRng(std::uint64_t seed, std::uint64_t shard);

}  // namespace mcirbm::parallel

#endif  // MCIRBM_PARALLEL_THREAD_POOL_H_
