#include "data/binary_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>
#include <vector>

namespace mcirbm::data {

namespace {

// The on-disk layout assumes the host's native f64/i32 representation.
static_assert(std::endian::native == std::endian::little,
              "mcirbm-data v1 is a little-endian format");
static_assert(sizeof(int) == 4, "label block is i32");
static_assert(sizeof(double) == 8, "feature block is f64");

constexpr std::size_t kHeaderBytes = 24;

struct ParsedHeader {
  std::size_t rows = 0;
  std::size_t cols = 0;
  int num_classes = 0;
};

StatusOr<ParsedHeader> ParseHeader(const unsigned char* bytes,
                                   std::size_t file_size,
                                   const std::string& path) {
  if (file_size < kHeaderBytes) {
    return Status::ParseError(path + ": truncated mcirbm-data header (" +
                              std::to_string(file_size) + " bytes)");
  }
  if (std::memcmp(bytes, kBinaryDatasetMagic, 8) != 0) {
    return Status::ParseError(path + ": not a mcirbm-data v1 file (bad magic)");
  }
  std::uint32_t fields[4];
  std::memcpy(fields, bytes + 8, sizeof(fields));
  ParsedHeader header;
  header.rows = fields[0];
  header.cols = fields[1];
  if (fields[2] >
      static_cast<std::uint32_t>(std::numeric_limits<int>::max())) {
    return Status::ParseError(path + ": num_classes overflows int");
  }
  header.num_classes = static_cast<int>(fields[2]);
  if (header.rows == 0 || header.cols == 0 || header.num_classes <= 0) {
    return Status::ParseError(
        path + ": empty dataset (rows=" + std::to_string(header.rows) +
        " cols=" + std::to_string(header.cols) +
        " classes=" + std::to_string(header.num_classes) + ")");
  }
  const std::size_t per_row = header.cols * sizeof(double) + sizeof(int);
  if (header.rows > (std::numeric_limits<std::size_t>::max() -
                     kHeaderBytes) / per_row) {
    return Status::ParseError(path + ": header dimensions overflow");
  }
  const std::size_t expected = kHeaderBytes + header.rows * per_row;
  if (file_size != expected) {
    return Status::ParseError(
        path + ": file size " + std::to_string(file_size) +
        " does not match header (expected " + std::to_string(expected) +
        " bytes)");
  }
  return header;
}

class MmapSource final : public DataSource {
 public:
  MmapSource(std::string name, const DataSourceConfig& config)
      : name_(std::move(name)), config_(config) {}

  ~MmapSource() override {
    if (mapping_ != MAP_FAILED) munmap(mapping_, size_);
  }

  Status Open(const std::string& path) {
    const int fd = open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IoError("cannot open " + path);
    struct stat st;
    if (fstat(fd, &st) != 0) {
      close(fd);
      return Status::IoError("cannot stat " + path);
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ > 0) {
      mapping_ = mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    }
    close(fd);
    if (size_ == 0 || mapping_ == MAP_FAILED) {
      return Status::ParseError(path + ": empty or unmappable file");
    }
    const auto* bytes = static_cast<const unsigned char*>(mapping_);
    auto header = ParseHeader(bytes, size_, path);
    if (!header.ok()) return header.status();
    rows_ = header.value().rows;
    cols_ = header.value().cols;
    num_classes_ = header.value().num_classes;
    x_ = reinterpret_cast<const double*>(bytes + kHeaderBytes);
    labels_ = reinterpret_cast<const int*>(bytes + kHeaderBytes +
                                           rows_ * cols_ * sizeof(double));

    // One sequential validation pass (the loader contract: bad labels and
    // non-finite features are reported, never trained on silently).
    for (std::size_t i = 0; i < rows_; ++i) {
      if (labels_[i] < 0 || labels_[i] >= num_classes_) {
        return Status::ParseError(
            path + ": label " + std::to_string(labels_[i]) + " at row " +
            std::to_string(i) + " out of range [0, " +
            std::to_string(num_classes_) + ")");
      }
    }
    for (std::size_t i = 0; i < rows_ * cols_; ++i) {
      if (!std::isfinite(x_[i])) {
        return Status::ParseError(
            path + ": non-finite feature at row " +
            std::to_string(i / cols_) + ", column " +
            std::to_string(i % cols_));
      }
    }
    return Status::Ok();
  }

  const std::string& name() const override { return name_; }
  std::size_t rows() const override { return rows_; }
  std::size_t cols() const override { return cols_; }
  int num_classes() const override { return num_classes_; }
  bool SupportsRandomAccess() const override { return true; }

  Status ForEachChunk(
      const std::function<Status(const ChunkSpec&)>& fn) override {
    const std::size_t step =
        config_.max_resident_rows > 0 ? config_.max_resident_rows : rows_;
    for (std::size_t begin = 0; begin < rows_; begin += step) {
      ChunkSpec chunk;
      chunk.row_begin = begin;
      chunk.rows = std::min(step, rows_ - begin);
      chunk.cols = cols_;
      chunk.x = x_ + begin * cols_;
      chunk.labels = labels_ + begin;
      const Status status = fn(chunk);
      if (!status.ok()) return status;
    }
    return Status::Ok();
  }

  Status GatherRows(const std::vector<std::size_t>& indices,
                    linalg::Matrix* x,
                    std::vector<int>* labels) const override {
    x->Resize(indices.size(), cols_);
    if (labels != nullptr) labels->resize(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const std::size_t r = indices[i];
      if (r >= rows_) {
        return Status::InvalidArgument("gather index " + std::to_string(r) +
                                       " out of range for " +
                                       std::to_string(rows_) + " rows");
      }
      std::memcpy(x->data() + i * cols_, x_ + r * cols_,
                  cols_ * sizeof(double));
      if (labels != nullptr) (*labels)[i] = labels_[r];
    }
    return Status::Ok();
  }

 private:
  const std::string name_;
  const DataSourceConfig config_;
  void* mapping_ = MAP_FAILED;
  std::size_t size_ = 0;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  int num_classes_ = 0;
  const double* x_ = nullptr;
  const int* labels_ = nullptr;
};

}  // namespace

Status SaveDatasetBinary(const Dataset& dataset, const std::string& path) {
  const Status valid = dataset.Validate();
  if (!valid.ok()) return valid;
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const std::uint32_t fields[4] = {
      static_cast<std::uint32_t>(dataset.num_instances()),
      static_cast<std::uint32_t>(dataset.num_features()),
      static_cast<std::uint32_t>(dataset.num_classes), 0};
  out.write(kBinaryDatasetMagic, sizeof(kBinaryDatasetMagic));
  out.write(reinterpret_cast<const char*>(fields), sizeof(fields));
  out.write(reinterpret_cast<const char*>(dataset.x.data()),
            static_cast<std::streamsize>(dataset.x.size() * sizeof(double)));
  out.write(reinterpret_cast<const char*>(dataset.labels.data()),
            static_cast<std::streamsize>(dataset.labels.size() *
                                         sizeof(int)));
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Status ConvertSourceToBinary(DataSource& source, const std::string& path) {
  if (source.rows() == 0 || source.cols() == 0) {
    return Status::InvalidArgument("cannot convert an empty source (" +
                                   source.name() + ")");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const std::uint32_t fields[4] = {
      static_cast<std::uint32_t>(source.rows()),
      static_cast<std::uint32_t>(source.cols()),
      static_cast<std::uint32_t>(source.num_classes()), 0};
  out.write(kBinaryDatasetMagic, sizeof(kBinaryDatasetMagic));
  out.write(reinterpret_cast<const char*>(fields), sizeof(fields));
  std::vector<int> labels;
  labels.reserve(source.rows());
  const Status streamed = source.ForEachChunk([&](const ChunkSpec& chunk) {
    out.write(reinterpret_cast<const char*>(chunk.x),
              static_cast<std::streamsize>(chunk.rows * chunk.cols *
                                           sizeof(double)));
    labels.insert(labels.end(), chunk.labels, chunk.labels + chunk.rows);
    return out ? Status::Ok() : Status::IoError("write failed for " + path);
  });
  if (!streamed.ok()) return streamed;
  out.write(reinterpret_cast<const char*>(labels.data()),
            static_cast<std::streamsize>(labels.size() * sizeof(int)));
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

StatusOr<std::unique_ptr<DataSource>> OpenMmapSource(
    const std::string& path, const std::string& name,
    const DataSourceConfig& config) {
  auto source = std::make_unique<MmapSource>(name, config);
  const Status status = source->Open(path);
  if (!status.ok()) return status;
  return std::unique_ptr<DataSource>(std::move(source));
}

StatusOr<Dataset> LoadDatasetBinary(const std::string& path,
                                    const std::string& name) {
  auto source = OpenMmapSource(path, name, {});
  if (!source.ok()) return source.status();
  return source.value()->Materialize();
}

}  // namespace mcirbm::data
