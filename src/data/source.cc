#include "data/source.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <map>
#include <utility>

#include "util/csv.h"
#include "util/string_util.h"

namespace mcirbm::data {

namespace {

// Shared label-cell validation for text loaders: the value must be a
// non-negative integer (within 1e-9, matching the historical CSV loader).
StatusOr<int> ParseLabelValue(double value, const std::string& path,
                              std::size_t lineno) {
  const int label = static_cast<int>(std::lround(value));
  if (std::fabs(value - label) > 1e-9 || label < 0) {
    return Status::ParseError(path + ":" + std::to_string(lineno) +
                              ": non-integer label");
  }
  return label;
}

Status CheckFiniteFeatures(const std::vector<double>& row, std::size_t cols,
                           const std::string& path, std::size_t lineno) {
  for (std::size_t j = 0; j < cols; ++j) {
    if (!std::isfinite(row[j])) {
      return Status::ParseError(path + ":" + std::to_string(lineno) +
                                ": non-finite feature in column " +
                                std::to_string(j));
    }
  }
  return Status::Ok();
}

}  // namespace

Status DataSource::GatherRows(const std::vector<std::size_t>& /*indices*/,
                              linalg::Matrix* /*x*/,
                              std::vector<int>* /*labels*/) const {
  return Status::InvalidArgument(
      "data source '" + name() +
      "' is sequential and does not support random row access; convert it "
      "to the binary format with `mcirbm_cli dataset convert`");
}

StatusOr<Dataset> DataSource::Materialize() {
  Dataset out;
  out.name = name();
  out.num_classes = num_classes();
  out.x.Resize(rows(), cols());
  out.labels.resize(rows());
  const Status status = ForEachChunk([&out](const ChunkSpec& chunk) {
    std::memcpy(out.x.data() + chunk.row_begin * chunk.cols, chunk.x,
                chunk.rows * chunk.cols * sizeof(double));
    std::copy(chunk.labels, chunk.labels + chunk.rows,
              out.labels.begin() + chunk.row_begin);
    return Status::Ok();
  });
  if (!status.ok()) return status;
  const Status valid = out.Validate();
  if (!valid.ok()) return valid;
  return out;
}

namespace {

class InMemorySource final : public DataSource {
 public:
  InMemorySource(Dataset dataset, const DataSourceConfig& config)
      : dataset_(std::move(dataset)), config_(config) {}

  const std::string& name() const override { return dataset_.name; }
  std::size_t rows() const override { return dataset_.num_instances(); }
  std::size_t cols() const override { return dataset_.num_features(); }
  int num_classes() const override { return dataset_.num_classes; }
  bool SupportsRandomAccess() const override { return true; }
  const Dataset* DenseView() const override { return &dataset_; }

  Status ForEachChunk(
      const std::function<Status(const ChunkSpec&)>& fn) override {
    const std::size_t n = rows();
    const std::size_t step =
        config_.max_resident_rows > 0 ? config_.max_resident_rows : n;
    for (std::size_t begin = 0; begin < n; begin += step) {
      ChunkSpec chunk;
      chunk.row_begin = begin;
      chunk.rows = std::min(step, n - begin);
      chunk.cols = cols();
      chunk.x = dataset_.x.data() + begin * chunk.cols;
      chunk.labels = dataset_.labels.data() + begin;
      const Status status = fn(chunk);
      if (!status.ok()) return status;
    }
    return Status::Ok();
  }

  Status GatherRows(const std::vector<std::size_t>& indices,
                    linalg::Matrix* x,
                    std::vector<int>* labels) const override {
    const std::size_t d = cols();
    x->Resize(indices.size(), d);
    if (labels != nullptr) labels->resize(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const std::size_t r = indices[i];
      if (r >= rows()) {
        return Status::InvalidArgument("gather index " + std::to_string(r) +
                                       " out of range for " +
                                       std::to_string(rows()) + " rows");
      }
      std::memcpy(x->data() + i * d, dataset_.x.data() + r * d,
                  d * sizeof(double));
      if (labels != nullptr) (*labels)[i] = dataset_.labels[r];
    }
    return Status::Ok();
  }

 private:
  const Dataset dataset_;
  const DataSourceConfig config_;
};

class CsvSource final : public DataSource {
 public:
  CsvSource(std::string path, std::string name,
            const DataSourceConfig& config)
      : path_(std::move(path)), name_(std::move(name)), config_(config) {}

  /// One streaming pass: establishes rows/cols/num_classes and rejects
  /// malformed content up front so iteration never surprises consumers.
  Status Open() {
    rows_ = 0;
    cols_ = 0;
    int max_label = 0;
    const Status status = ScanCsv(
        path_, /*has_header=*/true, nullptr,
        [&](std::size_t lineno, const std::vector<double>& row) {
          if (cols_ == 0) {
            if (row.size() < 2) {
              return Status::ParseError(
                  path_ + ":" + std::to_string(lineno) +
                  ": need >=1 feature column plus a trailing label column");
            }
            cols_ = row.size() - 1;
          }
          const Status finite =
              CheckFiniteFeatures(row, cols_, path_, lineno);
          if (!finite.ok()) return finite;
          auto label = ParseLabelValue(row[cols_], path_, lineno);
          if (!label.ok()) return label.status();
          max_label = std::max(max_label, label.value());
          ++rows_;
          return Status::Ok();
        });
    if (!status.ok()) return status;
    if (rows_ == 0) return Status::ParseError(path_ + ": no data rows");
    num_classes_ = max_label + 1;
    return Status::Ok();
  }

  const std::string& name() const override { return name_; }
  std::size_t rows() const override { return rows_; }
  std::size_t cols() const override { return cols_; }
  int num_classes() const override { return num_classes_; }
  bool SupportsRandomAccess() const override { return false; }

  Status ForEachChunk(
      const std::function<Status(const ChunkSpec&)>& fn) override {
    const std::size_t step =
        config_.max_resident_rows > 0 ? config_.max_resident_rows : rows_;
    buf_x_.Resize(step, cols_);
    buf_labels_.resize(step);
    std::size_t filled = 0;
    std::size_t emitted = 0;
    const auto emit = [&]() -> Status {
      ChunkSpec chunk;
      chunk.row_begin = emitted;
      chunk.rows = filled;
      chunk.cols = cols_;
      chunk.x = buf_x_.data();
      chunk.labels = buf_labels_.data();
      emitted += filled;
      filled = 0;
      return fn(chunk);
    };
    const Status status = ScanCsv(
        path_, /*has_header=*/true, nullptr,
        [&](std::size_t lineno, const std::vector<double>& row) {
          // Open() already validated; re-check the label defensively in
          // case the file changed between passes.
          auto label = ParseLabelValue(row[cols_], path_, lineno);
          if (!label.ok()) return label.status();
          std::memcpy(buf_x_.data() + filled * cols_, row.data(),
                      cols_ * sizeof(double));
          buf_labels_[filled] = label.value();
          if (++filled == step) return emit();
          return Status::Ok();
        });
    if (!status.ok()) return status;
    if (filled > 0) return emit();
    return Status::Ok();
  }

 private:
  const std::string path_;
  const std::string name_;
  const DataSourceConfig config_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  int num_classes_ = 0;
  linalg::Matrix buf_x_;
  std::vector<int> buf_labels_;
};

}  // namespace

StatusOr<std::unique_ptr<DataSource>> MakeInMemorySource(
    Dataset dataset, const DataSourceConfig& config) {
  const Status valid = dataset.Validate();
  if (!valid.ok()) return valid;
  return std::unique_ptr<DataSource>(
      new InMemorySource(std::move(dataset), config));
}

StatusOr<std::unique_ptr<DataSource>> OpenCsvSource(
    const std::string& path, const std::string& name,
    const DataSourceConfig& config) {
  auto source = std::make_unique<CsvSource>(path, name, config);
  const Status status = source->Open();
  if (!status.ok()) return status;
  return std::unique_ptr<DataSource>(std::move(source));
}

StatusOr<Dataset> LoadDatasetLibsvm(const std::string& path,
                                    const std::string& name) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);

  struct SparseRow {
    double label = 0;
    std::vector<std::pair<std::size_t, double>> features;  ///< 0-based
  };
  std::vector<SparseRow> sparse;
  std::size_t max_index = 0;  // 1-based maximum seen
  std::map<double, int> label_ids;

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    SparseRow row;
    bool saw_label = false;
    for (const std::string& raw_token : Split(trimmed, ' ')) {
      const std::string token = Trim(raw_token);
      if (token.empty()) continue;
      if (!saw_label) {
        if (!ParseDouble(token, &row.label) ||
            !std::isfinite(row.label)) {
          return Status::ParseError(path + ":" + std::to_string(lineno) +
                                    ": non-numeric label '" + token + "'");
        }
        saw_label = true;
        continue;
      }
      const std::size_t colon = token.find(':');
      if (colon == std::string::npos) {
        return Status::ParseError(path + ":" + std::to_string(lineno) +
                                  ": expected index:value, got '" + token +
                                  "'");
      }
      int index = 0;
      double value = 0;
      if (!ParseInt(token.substr(0, colon), &index) || index < 1) {
        return Status::ParseError(path + ":" + std::to_string(lineno) +
                                  ": feature index must be a positive "
                                  "integer in '" + token + "'");
      }
      if (!ParseDouble(token.substr(colon + 1), &value) ||
          !std::isfinite(value)) {
        return Status::ParseError(path + ":" + std::to_string(lineno) +
                                  ": non-finite feature value in '" + token +
                                  "'");
      }
      max_index = std::max(max_index, static_cast<std::size_t>(index));
      row.features.emplace_back(static_cast<std::size_t>(index) - 1, value);
    }
    if (!saw_label) continue;  // whitespace-only line
    label_ids.emplace(row.label, 0);
    sparse.push_back(std::move(row));
  }
  if (sparse.empty()) return Status::ParseError(path + ": no data rows");
  if (max_index == 0) {
    return Status::ParseError(path + ": no feature entries in any row");
  }

  // Distinct labels, ascending -> 0..C-1 (maps -1/+1 to 0/1).
  int next_id = 0;
  for (auto& [value, id] : label_ids) id = next_id++;

  Dataset out;
  out.name = name;
  out.num_classes = next_id;
  out.x.Resize(sparse.size(), max_index);
  out.labels.resize(sparse.size());
  for (std::size_t i = 0; i < sparse.size(); ++i) {
    out.labels[i] = label_ids.at(sparse[i].label);
    for (const auto& [j, value] : sparse[i].features) {
      out.x(i, j) = value;
    }
  }
  const Status valid = out.Validate();
  if (!valid.ok()) return valid;
  return out;
}

}  // namespace mcirbm::data
