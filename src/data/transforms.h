// Feature transforms applied before feeding data to RBM variants.
//
// slsGRBM consumes standardized real-valued features (Gaussian visible
// units with unit variance); slsRBM consumes values in [0,1] interpreted
// as Bernoulli probabilities (the standard RBM treatment of gray-scale /
// normalized features) or hard-binarized bits.
#ifndef MCIRBM_DATA_TRANSFORMS_H_
#define MCIRBM_DATA_TRANSFORMS_H_

#include "linalg/matrix.h"

namespace mcirbm::data {

/// z-scores every column in place: (x - mean) / stddev. Constant columns
/// (stddev < eps) are centered only.
void StandardizeInPlace(linalg::Matrix* x, double eps = 1e-12);

/// Rescales every column to [0, 1] in place. Constant columns map to 0.5.
void MinMaxScaleInPlace(linalg::Matrix* x, double eps = 1e-12);

/// Hard binarization: x >= threshold -> 1 else 0, element-wise in place.
void BinarizeInPlace(linalg::Matrix* x, double threshold);

/// Binarizes each column at its own mean (adaptive thresholding commonly
/// used when feeding UCI data to binary RBMs).
void BinarizeAtColumnMeanInPlace(linalg::Matrix* x);

/// L2-normalizes every row in place (zero rows are left unchanged).
void L2NormalizeRowsInPlace(linalg::Matrix* x, double eps = 1e-12);

}  // namespace mcirbm::data

#endif  // MCIRBM_DATA_TRANSFORMS_H_
