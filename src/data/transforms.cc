#include "data/transforms.h"

#include <cmath>

#include "linalg/stats.h"

namespace mcirbm::data {

void StandardizeInPlace(linalg::Matrix* x, double eps) {
  if (x->rows() == 0) return;
  const linalg::ColumnStats stats = linalg::ComputeColumnStats(*x);
  const std::size_t n = x->rows(), d = x->cols();
  for (std::size_t i = 0; i < n; ++i) {
    double* row = x->data() + i * d;
    for (std::size_t j = 0; j < d; ++j) {
      row[j] -= stats.mean[j];
      if (stats.stddev[j] > eps) row[j] /= stats.stddev[j];
    }
  }
}

void MinMaxScaleInPlace(linalg::Matrix* x, double eps) {
  if (x->rows() == 0) return;
  const linalg::ColumnRange range = linalg::ComputeColumnRange(*x);
  const std::size_t n = x->rows(), d = x->cols();
  for (std::size_t i = 0; i < n; ++i) {
    double* row = x->data() + i * d;
    for (std::size_t j = 0; j < d; ++j) {
      const double span = range.max[j] - range.min[j];
      row[j] = span > eps ? (row[j] - range.min[j]) / span : 0.5;
    }
  }
}

void BinarizeInPlace(linalg::Matrix* x, double threshold) {
  double* p = x->data();
  for (std::size_t i = 0; i < x->size(); ++i) {
    p[i] = p[i] >= threshold ? 1.0 : 0.0;
  }
}

void BinarizeAtColumnMeanInPlace(linalg::Matrix* x) {
  if (x->rows() == 0) return;
  const linalg::ColumnStats stats = linalg::ComputeColumnStats(*x);
  const std::size_t n = x->rows(), d = x->cols();
  for (std::size_t i = 0; i < n; ++i) {
    double* row = x->data() + i * d;
    for (std::size_t j = 0; j < d; ++j) {
      row[j] = row[j] >= stats.mean[j] ? 1.0 : 0.0;
    }
  }
}

void L2NormalizeRowsInPlace(linalg::Matrix* x, double eps) {
  const std::size_t n = x->rows(), d = x->cols();
  for (std::size_t i = 0; i < n; ++i) {
    double* row = x->data() + i * d;
    double norm = 0;
    for (std::size_t j = 0; j < d; ++j) norm += row[j] * row[j];
    norm = std::sqrt(norm);
    if (norm > eps) {
      for (std::size_t j = 0; j < d; ++j) row[j] /= norm;
    }
  }
}

}  // namespace mcirbm::data
