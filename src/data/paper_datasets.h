// Registry of the paper's evaluation datasets (Tables II and III),
// realized as calibrated synthetic equivalents (see DESIGN.md).
//
// Datasets I — MSRA-MM 2.0 image-feature sets (9 sets, 3 classes,
//   ~800-930 instances x 892/899 real-valued dims, heavy class imbalance:
//   web image "relevance level" classes). Consumed by slsGRBM.
// Datasets II — UCI sets (6 sets, mostly binary classes). Consumed by
//   slsRBM after binarization.
#ifndef MCIRBM_DATA_PAPER_DATASETS_H_
#define MCIRBM_DATA_PAPER_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/synthetic.h"

namespace mcirbm::data {

/// Identifier and shape of one paper dataset plus its difficulty profile.
struct PaperDatasetInfo {
  std::string short_name;  ///< e.g. "BO"
  std::string full_name;   ///< e.g. "Book"
  int number = 0;          ///< 1-based index as used on figure X axes
  int classes = 0;
  int instances = 0;
  int features = 0;
};

/// Number of MSRA-MM-like sets (Table II).
int NumMsraDatasets();

/// Number of UCI-like sets (Table III).
int NumUciDatasets();

/// Shape metadata for MSRA set `index` in [0, NumMsraDatasets()).
const PaperDatasetInfo& MsraDatasetInfo(int index);

/// Shape metadata for UCI set `index` in [0, NumUciDatasets()).
const PaperDatasetInfo& UciDatasetInfo(int index);

/// Generates MSRA-MM-like dataset `index` (Table II row `index`+1).
/// Real-valued features; feed to GRBM-family models after standardization.
Dataset GenerateMsraLike(int index, std::uint64_t seed);

/// Generates UCI-like dataset `index` (Table III row `index`+1).
/// Real-valued features; binarize (BinarizeAtColumnMeanInPlace) before
/// feeding to binary RBM-family models.
Dataset GenerateUciLike(int index, std::uint64_t seed);

/// The full GaussianMixtureSpec used for MSRA set `index` (exposed so
/// calibration tests and ablations can perturb single knobs).
GaussianMixtureSpec MsraSpec(int index);

/// The full GaussianMixtureSpec used for UCI set `index`.
GaussianMixtureSpec UciSpec(int index);

}  // namespace mcirbm::data

#endif  // MCIRBM_DATA_PAPER_DATASETS_H_
