// mcirbm-data v1: the binary, mmap-able dataset artifact.
//
// Wire layout (little-endian, 8-byte-aligned blocks):
//
//   offset  size            field
//   ------  --------------  ------------------------------------------
//   0       8               magic "mcirbmd1"
//   8       4               u32 rows
//   12      4               u32 cols
//   16      4               u32 num_classes
//   20      4               u32 reserved (written as 0, ignored on read)
//   24      rows*cols*8     f64 feature block, row-major
//   24+8rc  rows*4          i32 label block, values in [0, num_classes)
//
// The header is exactly 24 bytes, so the f64 block starts 8-aligned and
// the i32 block (offset 24 + rows*cols*8) starts 4-aligned — both blocks
// can be read in place from a read-only mmap with zero copies. Total file
// size is fully determined by the header; any mismatch is corruption and
// loads fail with kParseError. The format round-trips CSV exactly: f64
// bits survive, and the CSV writer's setprecision(17) means
// csv -> binary -> csv reproduces the original file byte for byte.
//
// This is the out-of-core backend: OpenMmapSource yields zero-copy chunks
// and O(1) random row access, so CD training streams minibatches from a
// file larger than RAM with bit-identical results to in-memory training.
// `mcirbm_cli dataset convert` converts between this format and CSV.
#ifndef MCIRBM_DATA_BINARY_IO_H_
#define MCIRBM_DATA_BINARY_IO_H_

#include <memory>
#include <string>

#include "data/dataset.h"
#include "data/source.h"
#include "util/status.h"

namespace mcirbm::data {

/// The 8-byte magic opening every mcirbm-data v1 file.
inline constexpr char kBinaryDatasetMagic[8] = {'m', 'c', 'i', 'r',
                                                'b', 'm', 'd', '1'};

/// Writes `dataset` in the mcirbm-data v1 layout above. The dataset must
/// validate (kInvalidArgument otherwise).
Status SaveDatasetBinary(const Dataset& dataset, const std::string& path);

/// Streams `source` into the mcirbm-data v1 layout without materializing
/// it: feature chunks are written as they arrive and only the label block
/// (4 bytes/row) is buffered until the end, so converting a CSV larger
/// than RAM stays bounded by the source's chunk size. Bit-identical to
/// SaveDatasetBinary(source.Materialize(), path).
Status ConvertSourceToBinary(DataSource& source, const std::string& path);

/// Opens a mcirbm-data v1 file as a read-only mmap-backed source. The
/// header, file size, label range, and feature finiteness are validated up
/// front (one sequential pass; the page cache keeps it out-of-core safe);
/// after that, chunks and gathers are zero-copy / memcpy views into the
/// mapping. Truncated or corrupt files fail with kParseError.
StatusOr<std::unique_ptr<DataSource>> OpenMmapSource(
    const std::string& path, const std::string& name,
    const DataSourceConfig& config);

/// Materializing convenience wrapper over OpenMmapSource.
StatusOr<Dataset> LoadDatasetBinary(const std::string& path,
                                    const std::string& name);

}  // namespace mcirbm::data

#endif  // MCIRBM_DATA_BINARY_IO_H_
