#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "rng/rng.h"
#include "util/check.h"

namespace mcirbm::data {

Status Dataset::Validate() const {
  if (x.rows() != labels.size()) {
    return Status::InvalidArgument(
        "dataset " + name + ": label count mismatch (" +
        std::to_string(labels.size()) + " labels for " +
        std::to_string(x.rows()) + " rows)");
  }
  if (num_classes <= 0) {
    return Status::InvalidArgument("dataset " + name +
                                   ": num_classes must be positive");
  }
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const int l = labels[i];
    if (l < 0 || l >= num_classes) {
      return Status::InvalidArgument(
          "dataset " + name + ": label " + std::to_string(l) + " at row " +
          std::to_string(i) + " out of range [0, " +
          std::to_string(num_classes) + ")");
    }
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!std::isfinite(x.data()[i])) {
      return Status::InvalidArgument(
          "dataset " + name + ": non-finite feature at row " +
          std::to_string(i / std::max<std::size_t>(x.cols(), 1)) +
          ", column " + std::to_string(i % std::max<std::size_t>(x.cols(), 1)));
    }
  }
  return Status::Ok();
}

void Dataset::CheckValid() const {
  const Status status = Validate();
  MCIRBM_CHECK(status.ok()) << status.message();
}

Dataset Dataset::Subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.name = name;
  out.num_classes = num_classes;
  out.x = x.SelectRows(indices);
  out.labels.reserve(indices.size());
  for (std::size_t i : indices) {
    MCIRBM_CHECK_LT(i, labels.size());
    out.labels.push_back(labels[i]);
  }
  return out;
}

std::vector<int> Dataset::ClassCounts() const {
  std::vector<int> counts(num_classes, 0);
  for (int l : labels) ++counts[l];
  return counts;
}

Dataset StratifiedSubsample(const Dataset& dataset,
                            std::size_t max_instances,
                            std::uint64_t seed) {
  if (dataset.num_instances() <= max_instances) return dataset;
  rng::Rng rng(seed);
  // Partition indices per class, shuffle each, take a proportional share.
  std::vector<std::vector<std::size_t>> per_class(dataset.num_classes);
  for (std::size_t i = 0; i < dataset.labels.size(); ++i) {
    per_class[dataset.labels[i]].push_back(i);
  }
  const double keep_frac = static_cast<double>(max_instances) /
                           static_cast<double>(dataset.num_instances());
  std::vector<std::size_t> keep;
  for (auto& idx : per_class) {
    rng.Shuffle(&idx);
    std::size_t take = static_cast<std::size_t>(
        keep_frac * static_cast<double>(idx.size()) + 0.5);
    take = std::max<std::size_t>(take, idx.empty() ? 0 : 1);
    take = std::min(take, idx.size());
    keep.insert(keep.end(), idx.begin(), idx.begin() + take);
  }
  std::sort(keep.begin(), keep.end());
  return dataset.Subset(keep);
}

}  // namespace mcirbm::data
