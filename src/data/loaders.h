// String-spec dataset loader registry — the single entry point every
// consumer (pipeline configs, benches, the serve executor, the CLI) uses
// to turn a dataset spec into a DataSource.
//
// Spec grammar: "<scheme>:<rest>" with a registered scheme, or a bare
// path whose scheme is inferred (extension first, then magic sniffing).
// Built-in schemes:
//
//   csv:<path>               SaveDatasetCsv layout (trailing label column)
//   bin:<path>               mcirbm-data v1 (binary_io.h), mmap-backed
//   libsvm:<path>            sparse text "<label> <idx>:<val> ..."
//   synth:<family>:<index>[:<seed>]
//                            generated paper dataset; family msra|uci,
//                            seed defaults to DataSourceConfig::synth_seed
//
// Bare-path inference: .csv -> csv; .libsvm/.svm -> libsvm; .bin/.mcd ->
// bin; anything else is sniffed by magic (mcirbm-data files open as bin,
// the rest falls back to csv). New backends register like clusterers do:
// one factory in DataLoaderRegistry makes a format available to the
// pipeline, the benches, serving, and the CLI at once.
#ifndef MCIRBM_DATA_LOADERS_H_
#define MCIRBM_DATA_LOADERS_H_

#include <memory>
#include <string>

#include "data/dataset.h"
#include "data/source.h"
#include "util/registry.h"
#include "util/status.h"

namespace mcirbm::data {

/// Process-wide scheme -> factory table for DataSource backends. A factory
/// receives the spec remainder (after "scheme:") and the shared config.
class DataLoaderRegistry
    : public NamedRegistry<StatusOr<std::unique_ptr<DataSource>>(
          const std::string&, const DataSourceConfig&)> {
 public:
  /// The singleton, pre-populated with the built-in loaders.
  static DataLoaderRegistry& Global();

 private:
  DataLoaderRegistry();
};

/// Opens `spec` through the registry, inferring the scheme for bare paths.
StatusOr<std::unique_ptr<DataSource>> OpenDataSource(
    const std::string& spec, const DataSourceConfig& config = {});

/// OpenDataSource + Materialize: the drop-in replacement for direct
/// LoadDatasetCsv calls, accepting any registered spec.
StatusOr<Dataset> LoadDataset(const std::string& spec,
                              const DataSourceConfig& config = {});

}  // namespace mcirbm::data

#endif  // MCIRBM_DATA_LOADERS_H_
