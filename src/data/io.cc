#include "data/io.h"

#include <algorithm>
#include <cmath>

#include "util/csv.h"

namespace mcirbm::data {

Status SaveDatasetCsv(const Dataset& dataset, const std::string& path) {
  const Status valid = dataset.Validate();
  if (!valid.ok()) return valid;
  std::vector<std::string> header;
  header.reserve(dataset.num_features() + 1);
  for (std::size_t j = 0; j < dataset.num_features(); ++j) {
    header.push_back("f" + std::to_string(j));
  }
  header.push_back("label");
  CsvWriter writer;
  Status status = writer.Open(path, header);
  if (!status.ok()) return status;
  std::vector<double> row(dataset.num_features() + 1);
  for (std::size_t i = 0; i < dataset.num_instances(); ++i) {
    const auto features = dataset.x.Row(i);
    std::copy(features.begin(), features.end(), row.begin());
    row.back() = static_cast<double>(dataset.labels[i]);
    status = writer.WriteRow(row);
    if (!status.ok()) return status;
  }
  return writer.Close();
}

StatusOr<Dataset> LoadDatasetCsv(const std::string& path,
                                 const std::string& name) {
  Dataset out;
  out.name = name;
  std::size_t width = 0;
  int max_label = 0;
  const Status status = ScanCsv(
      path, /*has_header=*/true, nullptr,
      [&](std::size_t lineno, const std::vector<double>& row) {
        if (width == 0) {
          if (row.size() < 2) {
            return Status::ParseError(
                path + ":" + std::to_string(lineno) +
                ": need >=1 feature column plus a trailing label column");
          }
          width = row.size();
        }
        const double lv = row[width - 1];
        const int label = static_cast<int>(std::lround(lv));
        if (std::fabs(lv - label) > 1e-9 || label < 0) {
          return Status::ParseError(path + ":" + std::to_string(lineno) +
                                    ": non-integer label");
        }
        out.labels.push_back(label);
        max_label = std::max(max_label, label);
        out.x.AppendRow({row.data(), width - 1});
        return Status::Ok();
      });
  if (!status.ok()) return status;
  if (out.labels.empty()) {
    return Status::ParseError(path + ": no data rows");
  }
  out.num_classes = max_label + 1;
  const Status valid = out.Validate();
  if (!valid.ok()) return valid;
  return out;
}

}  // namespace mcirbm::data
