#include "data/io.h"

#include <algorithm>
#include <cmath>

#include "util/csv.h"

namespace mcirbm::data {

Status SaveDatasetCsv(const Dataset& dataset, const std::string& path) {
  dataset.CheckValid();
  std::vector<std::string> header;
  header.reserve(dataset.num_features() + 1);
  for (std::size_t j = 0; j < dataset.num_features(); ++j) {
    header.push_back("f" + std::to_string(j));
  }
  header.push_back("label");
  std::vector<std::vector<double>> rows;
  rows.reserve(dataset.num_instances());
  for (std::size_t i = 0; i < dataset.num_instances(); ++i) {
    std::vector<double> row(dataset.x.Row(i).begin(),
                            dataset.x.Row(i).end());
    row.push_back(static_cast<double>(dataset.labels[i]));
    rows.push_back(std::move(row));
  }
  return WriteCsv(path, header, rows);
}

StatusOr<Dataset> LoadDatasetCsv(const std::string& path,
                                 const std::string& name) {
  StatusOr<CsvTable> table = ReadCsv(path, /*has_header=*/true);
  if (!table.ok()) return table.status();
  const CsvTable& csv = table.value();
  if (csv.rows.empty()) return Status::ParseError(path + ": no data rows");
  const std::size_t width = csv.rows[0].size();
  if (width < 2) {
    return Status::ParseError(path + ": need >=1 feature + label column");
  }
  Dataset out;
  out.name = name;
  out.x.Resize(csv.rows.size(), width - 1);
  out.labels.resize(csv.rows.size());
  int max_label = 0;
  for (std::size_t i = 0; i < csv.rows.size(); ++i) {
    const auto& row = csv.rows[i];
    for (std::size_t j = 0; j + 1 < width; ++j) out.x(i, j) = row[j];
    const double lv = row[width - 1];
    const int label = static_cast<int>(std::lround(lv));
    if (std::fabs(lv - label) > 1e-9 || label < 0) {
      return Status::ParseError(path + ": non-integer label at row " +
                                std::to_string(i));
    }
    out.labels[i] = label;
    max_label = std::max(max_label, label);
  }
  out.num_classes = max_label + 1;
  out.CheckValid();
  return out;
}

}  // namespace mcirbm::data
