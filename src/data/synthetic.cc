#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "parallel/thread_pool.h"
#include "rng/rng.h"
#include "util/check.h"

namespace mcirbm::data {

Dataset GenerateGaussianMixture(const GaussianMixtureSpec& spec,
                                std::uint64_t seed) {
  MCIRBM_CHECK_GT(spec.num_classes, 0);
  MCIRBM_CHECK_GT(spec.num_instances, 0);
  MCIRBM_CHECK_GT(spec.num_features, 0);
  MCIRBM_CHECK(spec.informative_fraction > 0 &&
               spec.informative_fraction <= 1.0);
  rng::Rng rng(seed);

  const int k = spec.num_classes;
  const int n = spec.num_instances;
  const int d = spec.num_features;
  const int d_info = std::max(
      1, static_cast<int>(std::lround(spec.informative_fraction * d)));

  // Class proportions -> per-class counts (largest remainder rounding).
  std::vector<double> props = spec.class_proportions;
  if (props.empty()) props.assign(k, 1.0 / k);
  MCIRBM_CHECK_EQ(static_cast<int>(props.size()), k);
  double prop_sum = 0;
  for (double p : props) prop_sum += p;
  MCIRBM_CHECK(std::fabs(prop_sum - 1.0) < 1e-6)
      << "class proportions must sum to 1";
  std::vector<int> counts(k);
  int assigned = 0;
  for (int c = 0; c < k; ++c) {
    counts[c] = static_cast<int>(props[c] * n);
    assigned += counts[c];
  }
  for (int c = 0; assigned < n; c = (c + 1) % k) {
    ++counts[c];
    ++assigned;
  }

  // Class centers: random directions on the informative subspace, scaled so
  // pairwise center distance ≈ spec.separation (in within-class stddevs).
  linalg::Matrix centers(k, d_info);
  for (int c = 0; c < k; ++c) {
    double norm = 0;
    for (int j = 0; j < d_info; ++j) {
      const double v = rng.Gaussian();
      centers(c, j) = v;
      norm += v * v;
    }
    norm = std::sqrt(norm);
    // Random unit directions are ~orthogonal in high dims, so scaling each
    // center to radius sep/sqrt(2) gives pairwise distances ≈ sep.
    const double radius = spec.separation / std::numbers::sqrt2;
    for (int j = 0; j < d_info; ++j) {
      centers(c, j) = centers(c, j) / norm * radius;
    }
  }

  // Per-class spatial spread factor (see scale_spread_by_proportion).
  std::vector<double> class_spread(k, 1.0);
  if (spec.scale_spread_by_proportion) {
    for (int c = 0; c < k; ++c) {
      class_spread[c] = std::pow(static_cast<double>(k) * props[c], 0.75);
    }
  }

  // Sub-cluster centers: per class, `subclusters_per_class` modes offset
  // from the class center by subcluster_spread * separation (scaled by the
  // class's spread factor).
  const int n_sub = std::max(1, spec.subclusters_per_class);
  linalg::Matrix sub_centers(k * n_sub, d_info);
  for (int c = 0; c < k; ++c) {
    for (int s = 0; s < n_sub; ++s) {
      double norm = 0;
      std::vector<double> dir(d_info);
      for (int j = 0; j < d_info; ++j) {
        dir[j] = rng.Gaussian();
        norm += dir[j] * dir[j];
      }
      norm = std::sqrt(norm);
      const double offset =
          n_sub > 1
              ? spec.subcluster_spread * spec.separation * class_spread[c]
              : 0.0;
      for (int j = 0; j < d_info; ++j) {
        sub_centers(c * n_sub + s, j) =
            centers(c, j) + dir[j] / norm * offset;
      }
    }
  }

  // Shared-mode layout (see GaussianMixtureSpec::shared_modes): mode
  // centers at radius sep/sqrt(2) and a proportional mode->class
  // ownership table.
  const int n_modes = spec.shared_modes;
  linalg::Matrix mode_centers(std::max(n_modes, 1), d_info);
  std::vector<int> mode_owner(std::max(n_modes, 1), 0);
  std::vector<std::vector<int>> class_modes(k);
  if (n_modes > 0) {
    MCIRBM_CHECK_GE(n_modes, k) << "need at least one mode per class";
    for (int m = 0; m < n_modes; ++m) {
      double norm = 0;
      for (int j = 0; j < d_info; ++j) {
        const double v = rng.Gaussian();
        mode_centers(m, j) = v;
        norm += v * v;
      }
      norm = std::sqrt(norm);
      const double radius = spec.separation / std::numbers::sqrt2;
      for (int j = 0; j < d_info; ++j) {
        mode_centers(m, j) = mode_centers(m, j) / norm * radius;
      }
    }
    // Largest-remainder allotment of modes to classes by prior, at least
    // one mode each.
    std::vector<int> allot(k, 1);
    int remaining = n_modes - k;
    std::vector<double> frac(k);
    for (int c = 0; c < k; ++c) frac[c] = props[c] * remaining;
    for (int c = 0; c < k; ++c) {
      allot[c] += static_cast<int>(frac[c]);
      remaining -= static_cast<int>(frac[c]);
    }
    for (int c = 0; remaining > 0; c = (c + 1) % k) {
      ++allot[c];
      --remaining;
    }
    int next = 0;
    for (int c = 0; c < k; ++c) {
      for (int i = 0; i < allot[c]; ++i, ++next) {
        mode_owner[next] = c;
        class_modes[c].push_back(next);
      }
    }
  }

  // Per-dimension anisotropic within-class stddevs.
  std::vector<double> dim_stddev(d_info, 1.0);
  if (spec.anisotropy > 1.0) {
    for (int j = 0; j < d_info; ++j) {
      dim_stddev[j] = rng.Uniform(1.0 / spec.anisotropy, spec.anisotropy);
    }
  }

  // Heterogeneous scales for the uninformative dims (descriptor bins with
  // different ranges); dominates raw Euclidean distances when large.
  std::vector<double> noise_stddev(d - d_info, 1.0);
  if (spec.noise_scale_max > 1.0) {
    for (auto& s : noise_stddev) {
      s = rng.Uniform(1.0, spec.noise_scale_max);
    }
  }

  Dataset out;
  out.name = spec.name;
  out.num_classes = k;
  out.x.Resize(n, d);
  out.labels.resize(n);

  // Row -> class from the class-block layout, so rows can be sampled in
  // any order (and in parallel) without threading state through the loop.
  std::vector<int> row_class(n);
  {
    int row = 0;
    for (int c = 0; c < k; ++c) {
      for (int i = 0; i < counts[c]; ++i, ++row) row_class[row] = c;
    }
    MCIRBM_CHECK_EQ(row, n);
  }

  // Every row draws from its own ShardRng substream keyed by (seed, row):
  // instance sampling is embarrassingly parallel and bit-identical at any
  // thread count (the stream depends only on the row index, never on the
  // shard width or worker schedule).
  const std::uint64_t row_stream_seed = seed ^ 0x726f777374726dULL;  // "rowstrm"
  constexpr std::size_t kRowGrain = 64;
  const auto sample_row = [&](std::size_t r, rng::Rng* row_rng) {
    const int row = static_cast<int>(r);
    const int c = row_class[r];
    out.labels[row] = c;
    int sample_class = c;
    if (k > 1 && row_rng->Bernoulli(spec.confusion_fraction)) {
      // Re-sample around another class center (ambiguous instance).
      sample_class = static_cast<int>(row_rng->UniformIndex(k - 1));
      if (sample_class >= c) ++sample_class;
    }
    const bool outlier = row_rng->Bernoulli(spec.outlier_fraction);
    const bool halo = !row_rng->Bernoulli(spec.core_fraction);
    double* xrow = out.x.data() + static_cast<std::size_t>(row) * d;
    const double* mode_center;
    double spread;
    if (n_modes > 0) {
      // Shared-mode layout: pick an owned mode with prob affinity,
      // any foreign mode otherwise. Class spread scaling is off here —
      // modes are common visual themes of a shared space. Halo
      // instances use the (typically lower) halo affinity.
      const double affinity =
          halo && spec.halo_affinity >= 0 ? spec.halo_affinity
                                          : spec.mode_class_affinity;
      int mode;
      if (row_rng->Bernoulli(affinity) ||
          static_cast<int>(class_modes[sample_class].size()) == n_modes) {
        const auto& own = class_modes[sample_class];
        mode = own[row_rng->UniformIndex(own.size())];
      } else {
        do {
          mode = static_cast<int>(row_rng->UniformIndex(n_modes));
        } while (mode_owner[mode] == sample_class);
      }
      mode_center = mode_centers.data() +
                    static_cast<std::size_t>(mode) * d_info;
      // Minority-owned visual themes are compact, majority-owned ones
      // diffuse (see GaussianMixtureSpec::mode_tightness_exponent).
      spread = spec.mode_tightness_exponent > 0
                   ? std::pow(static_cast<double>(k) * props[mode_owner[mode]],
                              spec.mode_tightness_exponent)
                   : 1.0;
    } else {
      const int sub = static_cast<int>(row_rng->UniformIndex(n_sub));
      const int mode = sample_class * n_sub + sub;
      mode_center =
          sub_centers.data() + static_cast<std::size_t>(mode) * d_info;
      spread = class_spread[sample_class];
    }
    if (halo) spread *= spec.halo_scale;
    if (outlier) spread *= 3.0;
    for (int j = 0; j < d_info; ++j) {
      xrow[j] =
          mode_center[j] + row_rng->Gaussian(0.0, dim_stddev[j] * spread);
    }
    for (int j = d_info; j < d; ++j) {
      // Uninformative dimension with its own descriptor-bin scale.
      xrow[j] = row_rng->Gaussian(0.0, noise_stddev[j - d_info]);
    }
  };
  parallel::ParallelFor(
      static_cast<std::size_t>(n), kRowGrain,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          rng::Rng row_rng = parallel::ShardRng(row_stream_seed, r);
          sample_row(r, &row_rng);
        }
      });

  // Shuffle rows so class blocks are interleaved.
  const std::vector<std::size_t> perm = rng.Permutation(n);
  Dataset shuffled = out.Subset(perm);
  shuffled.CheckValid();
  return shuffled;
}

}  // namespace mcirbm::data
