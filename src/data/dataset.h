// Dataset container: a feature matrix plus ground-truth class labels.
//
// Labels are only consulted by *external* evaluation metrics (accuracy,
// purity, Rand, FMI) — never by the learning algorithms, which are fully
// unsupervised, matching the paper's protocol.
#ifndef MCIRBM_DATA_DATASET_H_
#define MCIRBM_DATA_DATASET_H_

#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace mcirbm::data {

/// A named dataset: n instances x d features with integer class labels.
struct Dataset {
  std::string name;                ///< e.g. "Iris (IR)"
  linalg::Matrix x;                ///< n x d feature matrix
  std::vector<int> labels;         ///< length n, values in [0, num_classes)
  int num_classes = 0;

  std::size_t num_instances() const { return x.rows(); }
  std::size_t num_features() const { return x.cols(); }

  /// Validates the invariants — label count matches the row count,
  /// num_classes > 0, every label in [0, num_classes), every feature
  /// finite — and reports violations as kInvalidArgument. Loaders call
  /// this on user-supplied files and propagate the Status instead of
  /// aborting.
  Status Validate() const;

  /// Validate() for *internal* invariants (generators, test fixtures):
  /// aborts on violation.
  void CheckValid() const;

  /// Returns a copy restricted to the given row indices.
  Dataset Subset(const std::vector<std::size_t>& indices) const;

  /// Per-class instance counts (length num_classes).
  std::vector<int> ClassCounts() const;
};

/// Uniformly subsamples `dataset` down to at most `max_instances` rows,
/// keeping class proportions approximately intact (stratified). Used by the
/// fast bench mode; a no-op if the dataset is already small enough.
Dataset StratifiedSubsample(const Dataset& dataset,
                            std::size_t max_instances,
                            std::uint64_t seed);

}  // namespace mcirbm::data

#endif  // MCIRBM_DATA_DATASET_H_
