#include "data/loaders.h"

#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "data/binary_io.h"
#include "data/paper_datasets.h"
#include "util/string_util.h"

namespace mcirbm::data {

namespace {

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// "synth:<family>:<index>[:<seed>]" remainder -> generated dataset.
StatusOr<std::unique_ptr<DataSource>> OpenSynthSource(
    const std::string& rest, const DataSourceConfig& config) {
  const std::vector<std::string> parts = Split(rest, ':');
  if (parts.size() < 2 || parts.size() > 3) {
    return Status::ParseError(
        "synth spec must be synth:<msra|uci>:<index>[:<seed>], got 'synth:" +
        rest + "'");
  }
  const std::string family = Trim(parts[0]);
  int index = 0;
  if (!ParseInt(Trim(parts[1]), &index)) {
    return Status::ParseError("synth index must be an integer, got '" +
                              parts[1] + "'");
  }
  std::uint64_t seed = config.synth_seed;
  if (parts.size() == 3 && !ParseUint64(Trim(parts[2]), &seed)) {
    return Status::ParseError("synth seed must be an integer, got '" +
                              parts[2] + "'");
  }
  Dataset dataset;
  if (family == "msra") {
    if (index < 0 || index >= NumMsraDatasets()) {
      return Status::InvalidArgument(
          "synth msra index " + std::to_string(index) + " out of range [0, " +
          std::to_string(NumMsraDatasets()) + ")");
    }
    dataset = GenerateMsraLike(index, seed);
  } else if (family == "uci") {
    if (index < 0 || index >= NumUciDatasets()) {
      return Status::InvalidArgument(
          "synth uci index " + std::to_string(index) + " out of range [0, " +
          std::to_string(NumUciDatasets()) + ")");
    }
    dataset = GenerateUciLike(index, seed);
  } else {
    return Status::ParseError("synth family must be msra|uci, got '" +
                              family + "'");
  }
  return MakeInMemorySource(std::move(dataset), config);
}

// Bare paths: extension first, then magic sniffing (a mcirbm-data file
// renamed .dat still opens), defaulting to csv.
std::string InferScheme(const std::string& path) {
  if (HasSuffix(path, ".csv")) return "csv";
  if (HasSuffix(path, ".libsvm") || HasSuffix(path, ".svm")) return "libsvm";
  if (HasSuffix(path, ".bin") || HasSuffix(path, ".mcd")) return "bin";
  std::ifstream in(path, std::ios::binary);
  char magic[8] = {};
  if (in.read(magic, sizeof(magic)) &&
      std::memcmp(magic, kBinaryDatasetMagic, sizeof(magic)) == 0) {
    return "bin";
  }
  return "csv";
}

}  // namespace

DataLoaderRegistry::DataLoaderRegistry() : NamedRegistry("data loader") {
  AddBuiltin("csv",
             [](const std::string& path, const DataSourceConfig& config) {
               return OpenCsvSource(path, path, config);
             });
  AddBuiltin("bin",
             [](const std::string& path, const DataSourceConfig& config) {
               return OpenMmapSource(path, path, config);
             });
  AddBuiltin("libsvm", [](const std::string& path,
                          const DataSourceConfig& config)
                 -> StatusOr<std::unique_ptr<DataSource>> {
    auto dataset = LoadDatasetLibsvm(path, path);
    if (!dataset.ok()) return dataset.status();
    return MakeInMemorySource(std::move(dataset).value(), config);
  });
  AddBuiltin("synth", OpenSynthSource);
}

DataLoaderRegistry& DataLoaderRegistry::Global() {
  static DataLoaderRegistry* registry = new DataLoaderRegistry();
  return *registry;
}

StatusOr<std::unique_ptr<DataSource>> OpenDataSource(
    const std::string& spec, const DataSourceConfig& config) {
  const std::string trimmed = Trim(spec);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty dataset spec");
  }
  const std::size_t colon = trimmed.find(':');
  if (colon != std::string::npos &&
      DataLoaderRegistry::Global().Contains(trimmed.substr(0, colon))) {
    return DataLoaderRegistry::Global().Create(
        trimmed.substr(0, colon), trimmed.substr(colon + 1), config);
  }
  return DataLoaderRegistry::Global().Create(InferScheme(trimmed), trimmed,
                                             config);
}

StatusOr<Dataset> LoadDataset(const std::string& spec,
                              const DataSourceConfig& config) {
  auto source = OpenDataSource(spec, config);
  if (!source.ok()) return source.status();
  return source.value()->Materialize();
}

}  // namespace mcirbm::data
