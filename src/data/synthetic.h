// Synthetic Gaussian-mixture dataset generator.
//
// This is the substitute substrate for the paper's proprietary/offline
// corpora (MSRA-MM 2.0 image features, UCI tables) — see DESIGN.md for the
// substitution rationale. The generator produces the regime the paper's
// algorithms operate in: partially recoverable class structure, class
// imbalance, irrelevant feature dimensions, and within-class anisotropy.
#ifndef MCIRBM_DATA_SYNTHETIC_H_
#define MCIRBM_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace mcirbm::data {

/// Parameters of a synthetic Gaussian-mixture dataset.
struct GaussianMixtureSpec {
  std::string name;
  int num_classes = 2;
  int num_instances = 100;
  int num_features = 10;

  /// Fraction of features that carry class signal; the rest are pure
  /// N(0,1) noise dims (like uninformative image descriptor bins).
  double informative_fraction = 1.0;

  /// Distance between class centers in units of within-class stddev on the
  /// informative subspace. ~1 = heavily overlapping, ~4 = well separated.
  double separation = 2.0;

  /// Class prior proportions; empty = balanced. Must sum to ~1 otherwise.
  std::vector<double> class_proportions;

  /// Within-class stddev spread across dims: stddev_j drawn uniformly from
  /// [1/anisotropy, anisotropy]. 1.0 = isotropic.
  double anisotropy = 1.0;

  /// Fraction of instances re-sampled around a random *other* class center
  /// (models label noise / genuinely ambiguous instances).
  double confusion_fraction = 0.0;

  /// Fraction of instances replaced by broad outliers (3x stddev).
  double outlier_fraction = 0.0;

  /// Modes per class: 1 = unimodal Gaussian blobs (k-means' best case);
  /// >1 spreads each class over several sub-clusters, the regime of real
  /// image-feature classes where k-means with k = #classes splits classes
  /// across modes while density methods and local consensus still find
  /// label-pure cores.
  int subclusters_per_class = 1;

  /// Distance of sub-cluster centers from their class center, as a
  /// fraction of `separation`.
  double subcluster_spread = 0.5;

  /// If true, each class's within-class stddev and sub-cluster offsets are
  /// scaled by sqrt(k * proportion_c): large classes become spatially
  /// diffuse, small classes compact. Models the imbalanced web-image
  /// regime where k-means carves the dominant class into pieces (raw
  /// accuracy well below the dominant-class share) while density cores
  /// stay label-pure.
  bool scale_spread_by_proportion = false;

  /// Fraction of instances drawn at the tight "core" noise level; the
  /// remainder form a diffuse halo at `halo_scale` times the stddev.
  /// Real feature clouds have exactly this core/halo shape — clusterers
  /// agree on cores (high-purity consensus) and disagree on halos (which
  /// caps raw accuracy). 1.0 = plain Gaussian classes.
  double core_fraction = 1.0;

  /// Noise multiplier for halo instances (only used if core_fraction < 1).
  double halo_scale = 2.5;

  /// Scale heterogeneity of the uninformative dims: each noise dim's
  /// stddev is drawn from Uniform(1, noise_scale_max). Real concatenated
  /// image descriptors mix bins with very different ranges, which is what
  /// makes clustering the *original* features hard until they are
  /// standardized for the Gaussian-unit encoder. 1.0 = homogeneous noise.
  double noise_scale_max = 1.0;

  /// If > 0, replaces the per-class mode layout with `shared_modes` visual
  /// modes common to all classes: every instance is drawn around one mode,
  /// and class labels are *slices* over modes — an instance of class c
  /// lands on a mode owned by c with probability `mode_class_affinity`,
  /// on some other mode otherwise. This is the web-image "relevance
  /// level" regime: clusterable structure = visual themes, labels only
  /// partially aligned with them, so raw clustering accuracy is capped by
  /// the affinity while consensus cores remain highly clusterable.
  /// Mode ownership is allotted to classes proportionally to the priors.
  int shared_modes = 0;
  double mode_class_affinity = 0.7;

  /// Affinity used for halo instances (shared-mode layout only; < 0 means
  /// "same as mode_class_affinity"). Core images of a visual theme share
  /// its dominant relevance label; halo images are nearly random — so
  /// consensus cores are much purer than whole-dataset clustering can be.
  double halo_affinity = -1.0;

  /// Shared-mode layout only: if > 0, a mode's sample stddev is scaled by
  /// pow(num_classes * proportion_of_owner, mode_tightness_exponent) —
  /// modes owned by minority classes become compact, majority-owned modes
  /// diffuse. Models niche visual themes (few, highly similar images)
  /// versus the broad dominant theme. Compact minority modes are what let
  /// an encoder isolate minority-plurality clusters (purity above the
  /// majority share) even though raw distances are noise-dominated.
  /// 0 = off (all modes unit spread).
  double mode_tightness_exponent = 0.0;
};

/// Generates a dataset from `spec`, deterministically from `seed`.
/// Rows are shuffled so class blocks are not contiguous.
Dataset GenerateGaussianMixture(const GaussianMixtureSpec& spec,
                                std::uint64_t seed);

}  // namespace mcirbm::data

#endif  // MCIRBM_DATA_SYNTHETIC_H_
