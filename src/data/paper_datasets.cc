#include "data/paper_datasets.h"

#include <array>

#include "util/check.h"

namespace mcirbm::data {
namespace {

// Difficulty knobs per dataset. Calibrated so that raw-feature clustering
// lands in the paper's reported bands (accuracy ~0.38-0.57 on datasets I,
// the per-dataset ordering of datasets II). See tests/data/calibration_test.
struct MsraRow {
  PaperDatasetInfo info;
  double separation;
  std::vector<double> proportions;  // imbalanced "relevance level" classes
  double informative_fraction;
  double confusion;
};

const std::array<MsraRow, 9>& MsraRows() {
  static const std::array<MsraRow, 9> rows = {{
      // name, full, no, k, n, d      sep   proportions          info  conf
      {{"BO", "Book", 1, 3, 896, 892}, 9.0, {0.78, 0.13, 0.09}, 0.28, 0.10},
      {{"WA", "Water", 2, 3, 922, 899}, 9.6, {0.72, 0.17, 0.11}, 0.28, 0.10},
      {{"WR", "Weddingring", 3, 3, 897, 899}, 8.2, {0.70, 0.18, 0.12}, 0.25,
       0.12},
      {{"BC", "Birthdaycake", 4, 3, 932, 892}, 9.2, {0.66, 0.21, 0.13}, 0.28,
       0.10},
      {{"VE", "Vegetable", 5, 3, 872, 899}, 9.2, {0.73, 0.16, 0.11}, 0.28,
       0.10},
      {{"AM", "Ambulances", 6, 3, 930, 892}, 10.4, {0.62, 0.24, 0.14}, 0.30,
       0.08},
      {{"VI", "Vista", 7, 3, 799, 899}, 9.6, {0.76, 0.14, 0.10}, 0.28, 0.09},
      {{"WP", "Wallpaper", 8, 3, 919, 899}, 9.0, {0.68, 0.19, 0.13}, 0.28,
       0.10},
      {{"VT", "Voituretuning", 9, 3, 879, 899}, 10.0, {0.84, 0.10, 0.06},
       0.28, 0.08},
  }};
  return rows;
}

struct UciRow {
  PaperDatasetInfo info;
  double separation;
  std::vector<double> proportions;
  double informative_fraction;
  double confusion;
};

const std::array<UciRow, 6>& UciRows() {
  static const std::array<UciRow, 6> rows = {{
      // Haberman's Survival: tiny, overlapping, imbalanced — hardest.
      {{"HS", "Haberman's Survival", 1, 2, 306, 3}, 1.1, {0.735, 0.265},
       1.0, 0.20},
      // QSAR biodegradation: mid-size, mildly separable.
      {{"QB", "QSAR biodegradation", 2, 2, 1055, 41}, 1.5, {0.66, 0.34},
       0.30, 0.16},
      // SPECT Heart: small, imbalanced, weak signal.
      {{"SH", "SPECT Heart", 3, 2, 267, 22}, 1.5, {0.79, 0.21}, 0.40, 0.16},
      // Climate Model Simulation Crashes: heavy imbalance, moderate signal.
      {{"SC", "Simulation Crashes", 4, 2, 540, 18}, 2.0, {0.915, 0.085},
       0.45, 0.08},
      // Breast Cancer Wisconsin: well separated two-class — raw clustering
      // is already strong (paper: DP 0.79, K-means 0.85) and the
      // multi-clustering consensus is near-perfect, which is what lets
      // slsRBM restore the separation that a plain RBM encoding destroys.
      {{"BCW", "Breast Cancer Wisconsin", 5, 2, 569, 32}, 3.5, {0.63, 0.37},
       0.70, 0.04},
      // Iris: three classes, one linearly separable — easiest.
      {{"IR", "Iris", 6, 3, 150, 4}, 4.5, {}, 1.0, 0.03},
  }};
  return rows;
}

GaussianMixtureSpec SpecFromMsra(const MsraRow& row) {
  GaussianMixtureSpec spec;
  spec.name = row.info.full_name + " (" + row.info.short_name + ")";
  spec.num_classes = row.info.classes;
  spec.num_instances = row.info.instances;
  spec.num_features = row.info.features;
  spec.informative_fraction = row.informative_fraction;
  spec.separation = row.separation;
  spec.class_proportions = row.proportions;
  spec.anisotropy = 2.0;  // image descriptor bins vary widely in scale
  spec.confusion_fraction = row.confusion;
  spec.outlier_fraction = 0.02;
  // Web-image "relevance level" classes are slices over shared visual
  // themes: the clusterable structure is the modes, labels only partially
  // follow them. This is what caps raw accuracy in the paper's bands.
  spec.shared_modes = 7;
  spec.mode_class_affinity = 0.96;
  spec.mode_tightness_exponent = 0.4;
  // Dense visual-theme cores with diffuse halos: consensus forms on the
  // cores, whose labels are far more typical than the halo's. Core labels
  // follow modes tightly so that the multi-clustering consensus is a
  // *credible* supervision signal (the paper's premise); the halo mass and
  // the raw-space descriptor noise below are what keep raw-feature
  // clustering in the paper's 0.38-0.50 band.
  spec.core_fraction = 0.80;
  spec.halo_scale = 3.0;
  spec.halo_affinity = 0.70;
  // Concatenated-descriptor scale heterogeneity; dominates raw distances.
  spec.noise_scale_max = 14.0;
  return spec;
}

GaussianMixtureSpec SpecFromUci(const UciRow& row) {
  GaussianMixtureSpec spec;
  spec.name = row.info.full_name + " (" + row.info.short_name + ")";
  spec.num_classes = row.info.classes;
  spec.num_instances = row.info.instances;
  spec.num_features = row.info.features;
  spec.informative_fraction = row.informative_fraction;
  spec.separation = row.separation;
  spec.class_proportions = row.proportions;
  spec.anisotropy = 1.5;
  spec.confusion_fraction = row.confusion;
  spec.outlier_fraction = 0.01;
  return spec;
}

// Seed namespaces keep dataset streams independent of each other and of
// model/experiment streams.
constexpr std::uint64_t kMsraSeedBase = 0x4d535241ULL;  // "MSRA"
constexpr std::uint64_t kUciSeedBase = 0x55434900ULL;   // "UCI"

}  // namespace

int NumMsraDatasets() { return static_cast<int>(MsraRows().size()); }
int NumUciDatasets() { return static_cast<int>(UciRows().size()); }

const PaperDatasetInfo& MsraDatasetInfo(int index) {
  MCIRBM_CHECK(index >= 0 && index < NumMsraDatasets());
  return MsraRows()[index].info;
}

const PaperDatasetInfo& UciDatasetInfo(int index) {
  MCIRBM_CHECK(index >= 0 && index < NumUciDatasets());
  return UciRows()[index].info;
}

GaussianMixtureSpec MsraSpec(int index) {
  MCIRBM_CHECK(index >= 0 && index < NumMsraDatasets());
  return SpecFromMsra(MsraRows()[index]);
}

GaussianMixtureSpec UciSpec(int index) {
  MCIRBM_CHECK(index >= 0 && index < NumUciDatasets());
  return SpecFromUci(UciRows()[index]);
}

Dataset GenerateMsraLike(int index, std::uint64_t seed) {
  return GenerateGaussianMixture(
      MsraSpec(index), kMsraSeedBase * 1000003ULL + seed * 31ULL +
                           static_cast<std::uint64_t>(index));
}

Dataset GenerateUciLike(int index, std::uint64_t seed) {
  return GenerateGaussianMixture(
      UciSpec(index), kUciSeedBase * 1000003ULL + seed * 31ULL +
                          static_cast<std::uint64_t>(index));
}

}  // namespace mcirbm::data
