// Dataset CSV persistence: features plus a trailing integer label column.
#ifndef MCIRBM_DATA_IO_H_
#define MCIRBM_DATA_IO_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace mcirbm::data {

/// Writes `dataset` as CSV: header "f0,...,f<d-1>,label", one row per
/// instance, label as the last column.
Status SaveDatasetCsv(const Dataset& dataset, const std::string& path);

/// Reads a dataset previously written by SaveDatasetCsv (or any CSV whose
/// last column is an integer class label). `name` is attached to the result.
StatusOr<Dataset> LoadDatasetCsv(const std::string& path,
                                 const std::string& name);

}  // namespace mcirbm::data

#endif  // MCIRBM_DATA_IO_H_
