// Streaming dataset access: the DataSource abstraction.
//
// Every consumer above the data layer historically assumed a fully
// materialized in-RAM Dataset. DataSource generalizes that contract to
// fixed-size row chunks so ingestion, conversion, transform export, and
// CD training can run with bounded memory on data that exceeds RAM:
//
//   auto source = data::OpenCsvSource("train.csv", "train", {.max_resident_rows = 4096});
//   source.value()->ForEachChunk([&](const ChunkSpec& chunk) { ...; return Status::Ok(); });
//
// Backends (see also binary_io.h for the mmap-backed binary format and
// loaders.h for the string-spec registry that opens any of them):
//   - in-memory  — wraps an existing Dataset; chunks are zero-copy views.
//   - csv        — streams through util ScanCsv; one bounded chunk buffer.
//   - libsvm     — sparse text rows densified at load (materializing).
//   - binary     — mcirbm-data v1 via mmap; zero-copy chunks and O(1)
//                  random row access (the out-of-core training backend).
//
// Iteration order is always row order, chunk boundaries depend only on
// (rows, max_resident_rows) — never on thread count — so anything derived
// from chunked iteration keeps the repo's determinism guarantees.
#ifndef MCIRBM_DATA_SOURCE_H_
#define MCIRBM_DATA_SOURCE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace mcirbm::data {

/// Knobs shared by every DataSource backend.
struct DataSourceConfig {
  /// Upper bound on the rows resident in one streamed chunk; 0 = no bound
  /// (the whole dataset arrives as a single chunk).
  std::size_t max_resident_rows = 0;
  /// Seed consumed by generator-backed sources ("synth:" loader specs).
  std::uint64_t synth_seed = 0;
};

/// One streamed slice of a dataset: rows [row_begin, row_begin + rows).
/// The pointers are views owned by the source, valid only for the duration
/// of the ForEachChunk callback.
struct ChunkSpec {
  std::size_t row_begin = 0;
  std::size_t rows = 0;
  std::size_t cols = 0;
  const double* x = nullptr;    ///< row-major rows x cols feature block
  const int* labels = nullptr;  ///< per-row class labels, length rows
};

/// Streaming, restartable dataset reader.
class DataSource {
 public:
  virtual ~DataSource() = default;
  DataSource() = default;
  DataSource(const DataSource&) = delete;
  DataSource& operator=(const DataSource&) = delete;

  virtual const std::string& name() const = 0;
  virtual std::size_t rows() const = 0;
  virtual std::size_t cols() const = 0;
  virtual int num_classes() const = 0;

  /// Streams every row, in row order, as chunks of at most
  /// config.max_resident_rows rows. A non-OK callback return aborts the
  /// scan and propagates. Restartable: each call re-iterates from row 0.
  virtual Status ForEachChunk(
      const std::function<Status(const ChunkSpec&)>& fn) = 0;

  /// True when GatherRows is supported (in-memory and mmap backends).
  /// Sequential text backends return false; convert them to the binary
  /// format for random access (out-of-core training needs it).
  virtual bool SupportsRandomAccess() const = 0;

  /// Gathers arbitrary rows, in the given order, into `x` (resized to
  /// indices.size() x cols()) and optionally `labels`. kInvalidArgument
  /// for sequential backends. Thread-safe for concurrent const use.
  virtual Status GatherRows(const std::vector<std::size_t>& indices,
                            linalg::Matrix* x,
                            std::vector<int>* labels) const;

  /// The backing Dataset when it is already memory-resident (zero-copy
  /// backends), nullptr otherwise.
  virtual const Dataset* DenseView() const { return nullptr; }

  /// Materializes the whole dataset via ForEachChunk and validates it.
  StatusOr<Dataset> Materialize();
};

/// Zero-copy source over an existing in-memory dataset (takes ownership).
/// `dataset` must satisfy Dataset::Validate (kInvalidArgument otherwise).
StatusOr<std::unique_ptr<DataSource>> MakeInMemorySource(
    Dataset dataset, const DataSourceConfig& config);

/// Streaming CSV source (SaveDatasetCsv layout: header + trailing integer
/// label column). Open performs one bounded-memory validation pass to
/// establish the shape and class count; each ForEachChunk re-streams the
/// file through a single chunk-sized buffer. No random access.
StatusOr<std::unique_ptr<DataSource>> OpenCsvSource(
    const std::string& path, const std::string& name,
    const DataSourceConfig& config);

/// Loads a libsvm/sparse-text file ("<label> <idx>:<val> ..." with 1-based
/// feature indices; omitted features are 0). Distinct labels are mapped to
/// 0..C-1 in ascending numeric order (so the common -1/+1 convention maps
/// to 0/1). Materializing: the densified dataset lives in RAM.
StatusOr<Dataset> LoadDatasetLibsvm(const std::string& path,
                                    const std::string& name);

}  // namespace mcirbm::data

#endif  // MCIRBM_DATA_SOURCE_H_
