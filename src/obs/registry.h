// obs::Registry — named metrics with a model-key label, and the
// mergeable/renderable snapshot that carries them to the stats surfaces.
//
// A registry instance belongs to one component (a MicroBatcher, a
// ModelStore); metrics are keyed by {metric name, label value} where the
// label is by convention the model key (empty for component-wide
// metrics). Handles returned by counter()/gauge()/histogram() are stable
// for the registry's lifetime, so hot paths can cache them and record
// without re-resolving; resolution itself takes the registry mutex,
// recording never does.
//
// snapshot() produces an obs::MetricsSnapshot — a plain value type that
// merges associatively (counters and gauges sum, histograms merge
// bucket-wise), which is how serve::Router folds N replica registries
// plus the shared ModelStore's into one view. RenderText() emits the
// Prometheus-style text form, one `name{model="key"} value` line per
// metric (histograms expand to _count/_sum/_min/_max plus quantile
// lines):
//
//   serve_requests_total{model="enc.mcirbm"} 128
//   serve_queue_wait_micros{model="enc.mcirbm",quantile="0.95"} 412.7
//   serve_queue_wait_micros_count{model="enc.mcirbm"} 128
//
// Label values escape '"' and '\' (model keys derived from quoted user
// paths may contain either), so the exposition format stays parseable
// for any key.
#ifndef MCIRBM_OBS_REGISTRY_H_
#define MCIRBM_OBS_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mcirbm::obs {

/// {metric name, label value} — the label is the model key ("" = none).
using MetricKey = std::pair<std::string, std::string>;

/// Backslash-escapes '"' and '\' for quoted rendering contexts (label
/// values in RenderText, string fields in trace JSONL).
std::string EscapeLabel(const std::string& value);

/// Point-in-time value copy of a registry (or a merge of several).
struct MetricsSnapshot {
  std::map<MetricKey, std::uint64_t> counters;
  std::map<MetricKey, double> gauges;
  std::map<MetricKey, Histogram::Snapshot> histograms;

  /// Folds `other` in: counters and gauges sum, histograms merge
  /// bucket-wise. Associative and commutative.
  void Merge(const MetricsSnapshot& other);

  /// Prometheus-style text: one `name{model="v"} value` line per scalar
  /// (no braces when the label is empty); histograms expand to
  /// quantile="0.5|0.9|0.95|0.99" lines plus `_count`, `_sum`, `_min`,
  /// and `_max`. Deterministic order (sorted by metric, then label).
  std::string RenderText() const;
};

/// Thread-safe collection of metrics owned by one serving component.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create. The reference stays valid for the registry's
  /// lifetime; creation takes the registry mutex, recording on the
  /// returned handle never does.
  Counter& counter(const std::string& name, const std::string& label = "");
  Gauge& gauge(const std::string& name, const std::string& label = "");
  Histogram& histogram(const std::string& name,
                       const std::string& label = "");

  MetricsSnapshot snapshot() const;
  std::string RenderText() const { return snapshot().RenderText(); }

 private:
  mutable Mutex mu_;
  std::map<MetricKey, std::unique_ptr<Counter>> counters_
      MCIRBM_GUARDED_BY(mu_);
  std::map<MetricKey, std::unique_ptr<Gauge>> gauges_ MCIRBM_GUARDED_BY(mu_);
  std::map<MetricKey, std::unique_ptr<Histogram>> histograms_
      MCIRBM_GUARDED_BY(mu_);
};

}  // namespace mcirbm::obs

#endif  // MCIRBM_OBS_REGISTRY_H_
