// Umbrella header for the mcirbm observability layer.
//
// src/obs is a dependency-free (util-only) metrics toolkit built for the
// serving stack but usable anywhere:
//
//   - obs::Counter / obs::Gauge — atomic scalar metrics (obs/metrics.h);
//   - obs::Histogram — fixed log-bucketed latency histogram with
//     lock-free-ish Record and mergeable snapshots (obs/histogram.h);
//   - obs::Registry — {metric, model_key}-labeled metric collection with
//     associatively mergeable MetricsSnapshot and a Prometheus-style
//     RenderText exporter (obs/registry.h);
//   - obs::TraceStore / obs::TraceContext — sampled per-request span
//     timelines with a ring buffer of completed traces (obs/trace.h).
//
// The serve layer threads a Registry through every component; the merged
// view is reachable via `op=stats` requests and `mcirbm_cli serve
// --stats-every N`. Per-request traces ride the same path when sampling
// is on (`--trace-sample N`), surfaced via `op=trace`, the stats port,
// and a JSONL stream (see README "Observability" and "Tracing").
#ifndef MCIRBM_OBS_OBS_H_
#define MCIRBM_OBS_OBS_H_

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

#endif  // MCIRBM_OBS_OBS_H_
