// obs::Counter / obs::Gauge — the two scalar metric kinds of the
// observability layer. Both are single atomics: safe from any thread,
// never blocking, cheap enough for the micro-batcher's enqueue path.
//
// A Counter only goes up (requests served, batches flushed); a Gauge is
// a live level that moves both ways (queue depth, pending rows). The
// distinction matters at aggregation time: counters from replica
// registries sum, and gauges sum too — a router-level queue-depth gauge
// is the total pressure across its replicas (obs::MetricsSnapshot).
#ifndef MCIRBM_OBS_METRICS_H_
#define MCIRBM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>

namespace mcirbm::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(std::uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Live level; Set overwrites, Add moves it by a signed delta.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double value = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(value, value + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

}  // namespace mcirbm::obs

#endif  // MCIRBM_OBS_METRICS_H_
