// obs::Trace — per-request span timelines for the serving stack.
//
// Aggregate metrics (obs::Histogram and friends) answer "how slow are
// requests overall"; traces answer "where did THIS request spend its
// time". A Trace is a dapper-style span tree flattened into one ordered
// timeline: every stage that handles a sampled request appends a span
// `{name, start_micros, duration_micros, model_key, rows}` on the shared
// mcirbm::MonotonicMicros() timebase, so a completed trace reads as
//
//   parse -> [load] -> queue -> exec -> format -> [flush]
//
// with disjoint spans whose durations sum to at most the request's
// end-to-end duration (pinned by tests and by the soak harness).
//
// Cost model: tracing is off by default (`TraceConfig::sample_every_n ==
// 0`) and the hot path pays exactly one branch — a null
// `std::shared_ptr<TraceContext>` threads through the request path and
// every stage checks it before touching anything else. With sampling on,
// every Nth request allocates one TraceContext; span appends take the
// context's own leaf mutex (spans arrive from flusher threads and the
// request thread concurrently).
//
// Completed traces land in a lock-protected fixed-capacity ring buffer
// (TraceStore), oldest-evicted, queryable via Recent() and exported as a
// mergeable TraceStore::Snapshot — the same fold discipline as
// obs::MetricsSnapshot, so multiple stores (e.g. per-process in a future
// multi-node setup) combine associatively. The store also counts
// sampled/completed/dropped in an embedded obs::Registry so the trace
// subsystem shows up in `op=stats` like everything else, and can stream
// each completed trace as one JSON line to a caller-provided sink
// (`mcirbm_cli serve --trace-jsonl <path>`).
#ifndef MCIRBM_OBS_TRACE_H_
#define MCIRBM_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mcirbm::obs {

/// One timed stage of a request. `model_key`/`rows` are attribution:
/// batch-exec spans carry the flushed batch's key and total row count.
struct TraceSpan {
  std::string name;
  std::int64_t start_micros = 0;
  std::int64_t duration_micros = 0;
  std::string model_key;
  std::size_t rows = 0;
};

/// A completed request timeline. `tag` is the protocol `id=` tag (empty
/// for untagged requests); spans are sorted by start_micros.
struct Trace {
  std::uint64_t trace_id = 0;
  std::string op;
  std::string tag;
  std::int64_t start_micros = 0;
  std::int64_t duration_micros = 0;
  std::vector<TraceSpan> spans;
};

struct TraceConfig {
  /// Sample every Nth request; 0 disables tracing entirely (default),
  /// 1 traces everything.
  std::uint64_t sample_every_n = 0;
  /// Ring-buffer capacity for completed traces (oldest evicted).
  std::size_t capacity = 256;
};

/// The live, in-flight side of one sampled request. Stages append spans
/// concurrently (request thread, flusher threads), so the context owns a
/// leaf mutex; nothing is read back until Finalize.
class TraceContext {
 public:
  TraceContext(std::uint64_t trace_id, std::string op, std::string tag,
               std::int64_t start_micros);
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// Appends one span. Safe from any thread.
  void AddSpan(const std::string& name, std::int64_t start_micros,
               std::int64_t duration_micros, const std::string& model_key = "",
               std::size_t rows = 0);

  std::uint64_t trace_id() const { return trace_.trace_id; }
  std::int64_t start_micros() const { return trace_.start_micros; }

  /// Seals the trace: sets the end-to-end duration and sorts spans by
  /// start time. Called exactly once, by TraceStore::Finish.
  Trace Finalize(std::int64_t end_micros);

 private:
  mutable Mutex mu_;
  Trace trace_ MCIRBM_GUARDED_BY(mu_);
};

/// Sampling decision + ring buffer of completed traces. Thread-safe.
class TraceStore {
 public:
  explicit TraceStore(TraceConfig config = {});
  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  /// Returns a live context for every `sample_every_n`-th call (a single
  /// atomic increment decides), null otherwise — and always null when
  /// sampling is off, so the untraced hot path is one branch.
  std::shared_ptr<TraceContext> MaybeStartTrace(const std::string& op,
                                                const std::string& tag,
                                                std::int64_t start_micros);

  /// Finalizes `context` at `end_micros` and pushes the completed trace
  /// into the ring (evicting the oldest when full). Null-safe: a null
  /// context is ignored, so callers can finish unconditionally.
  void Finish(const std::shared_ptr<TraceContext>& context,
              std::int64_t end_micros);

  /// The most recent min(n, size) completed traces, oldest first.
  std::vector<Trace> Recent(std::size_t n) const;

  /// Plain value copy of the ring + lifecycle counters; merges
  /// associatively like MetricsSnapshot (traces interleave by start
  /// time, counters sum).
  struct Snapshot {
    std::vector<Trace> traces;  ///< oldest first
    std::uint64_t sampled = 0;
    std::uint64_t completed = 0;
    std::uint64_t dropped = 0;  ///< evicted from the ring

    void Merge(const Snapshot& other);
  };
  Snapshot snapshot() const;

  /// Lifecycle counters (trace_sampled_total / trace_completed_total /
  /// trace_dropped_total) for folding into the stats surfaces.
  const Registry& registry() const { return registry_; }

  /// Streams every subsequently completed trace as one JSON line. The
  /// sink is invoked under the store mutex (keep it fast); pass nullptr
  /// to detach.
  void SetJsonlSink(std::function<void(const std::string&)> sink);

  std::uint64_t sample_every_n() const { return config_.sample_every_n; }
  bool enabled() const { return config_.sample_every_n > 0; }

  /// One trace as a JSON object on a single line (the --trace-jsonl
  /// schema; see README "Tracing"). String values escape `"` and `\`.
  static std::string TraceToJsonLine(const Trace& trace);

  /// `last` recent traces as text, one header line per trace and one
  /// line per span — the `op=trace` payload. `prefix` is prepended to
  /// every line ("# " for the stats-port rendition so exposition-format
  /// parsers skip it).
  static std::string RenderTracesText(const std::vector<Trace>& traces,
                                      const std::string& prefix = "");

 private:
  const TraceConfig config_;
  std::atomic<std::uint64_t> request_counter_{0};
  std::atomic<std::uint64_t> next_trace_id_{1};

  mutable Mutex mu_;
  std::deque<Trace> ring_ MCIRBM_GUARDED_BY(mu_);  // oldest at front
  std::function<void(const std::string&)> jsonl_sink_ MCIRBM_GUARDED_BY(mu_);

  Registry registry_;
  Counter& sampled_ = registry_.counter("trace_sampled_total");
  Counter& completed_ = registry_.counter("trace_completed_total");
  Counter& dropped_ = registry_.counter("trace_dropped_total");
};

}  // namespace mcirbm::obs

#endif  // MCIRBM_OBS_TRACE_H_
