#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

namespace mcirbm::obs {

namespace {

// 2^(1/4): four buckets per doubling.
constexpr double kBucketRatioLog2 = 0.25;

}  // namespace

std::size_t Histogram::BucketFor(double value) {
  if (!(value >= 1.0)) return 0;  // negatives and NaN clamp to bucket 0
  const double index = 1.0 + std::floor(std::log2(value) / kBucketRatioLog2);
  if (index >= static_cast<double>(kBuckets - 1)) return kBuckets - 1;
  return static_cast<std::size_t>(index);
}

double Histogram::BucketUpper(std::size_t index) {
  if (index == 0) return 1.0;
  return std::exp2(static_cast<double>(index) * kBucketRatioLog2);
}

void Histogram::Record(double value) {
  counts_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS loop instead of std::atomic<double>::fetch_add: identical
  // semantics, but portable to standard libraries that predate P0020.
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
  double min = min_.load(std::memory_order_relaxed);
  while (value < min && !min_.compare_exchange_weak(
                            min, value, std::memory_order_relaxed)) {
  }
  double max = max_.load(std::memory_order_relaxed);
  while (value > max && !max_.compare_exchange_weak(
                            max, value, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  // Sentinels (no observation yet) render as 0 so an empty snapshot is a
  // merge identity and the text form never exposes DBL_MAX.
  const double min = min_.load(std::memory_order_relaxed);
  const double max = max_.load(std::memory_order_relaxed);
  snap.min = snap.count == 0 || min == kNoMin ? 0.0 : min;
  snap.max = snap.count == 0 || max == kNoMax ? 0.0 : max;
  return snap;
}

void Histogram::Snapshot::Merge(const Snapshot& other) {
  // Extremes only count for non-empty sides: 0 means "no data", not an
  // observed value, so an empty snapshot must not drag min to 0.
  if (other.count > 0) {
    min = count == 0 ? other.min : std::min(min, other.min);
    max = count == 0 ? other.max : std::max(max, other.max);
  }
  for (std::size_t i = 0; i < kBuckets; ++i) counts[i] += other.counts[i];
  count += other.count;
  sum += other.sum;
}

double Histogram::Snapshot::Quantile(double q) const {
  // Quantiles come from the bucket counts alone (count may briefly
  // disagree with their sum under concurrent writers).
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank target, then linear interpolation inside the bucket.
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (cumulative + counts[i] >= target) {
      const double lower = i == 0 ? 0.0 : BucketUpper(i - 1);
      const double upper = BucketUpper(i);
      const double fraction = static_cast<double>(target - cumulative) /
                              static_cast<double>(counts[i]);
      return lower + fraction * (upper - lower);
    }
    cumulative += counts[i];
  }
  return BucketUpper(kBuckets - 1);  // unreachable: total > 0
}

}  // namespace mcirbm::obs
