// obs::Histogram — fixed log-bucketed latency histogram for the serving
// layer's observability surface.
//
// Design goals, in order:
//
//   1. Record() is cheap and safe from any number of threads ("lock-free
//      -ish": three relaxed/acq-rel atomic ops, no mutex, no allocation)
//      — it sits on the micro-batcher's flush path.
//   2. Snapshots are plain value types that merge associatively, so a
//      Router can fold N replica histograms into one and quantiles of
//      the merge equal quantiles of the merged traffic.
//   3. The bucket layout is fixed at compile time: 128 buckets spaced by
//      a factor of 2^(1/4) (~19% per bucket) covering [1us, ~1 hour),
//      with bucket 0 catching [0, 1us) and the last bucket everything
//      beyond. With linear interpolation inside a bucket, a quantile
//      estimate is within one bucket width (<= ~19% relative error) of
//      the exact order statistic — pinned by tests/obs/histogram_test.cc
//      against exact sorts.
//
// Values are latencies in microseconds by convention, but nothing below
// assumes a unit; negatives clamp to bucket 0.
#ifndef MCIRBM_OBS_HISTOGRAM_H_
#define MCIRBM_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace mcirbm::obs {

/// Thread-safe log-bucketed histogram with mergeable snapshots.
class Histogram {
 public:
  /// Bucket count. Bucket 0 holds [0, 1); bucket i >= 1 holds
  /// [2^((i-1)/4), 2^(i/4)); the last bucket is open above.
  static constexpr std::size_t kBuckets = 128;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one observation. Safe from any thread, never blocks.
  void Record(double value);

  /// A consistent-enough copy of the counters (a snapshot taken while
  /// writers are active may straddle a Record; each counter is itself
  /// race-free). Plain value type: copy, merge, and query freely.
  struct Snapshot {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t count = 0;  ///< total observations (== sum of counts)
    double sum = 0;           ///< sum of observed values
    double min = 0;           ///< smallest observation (0 when empty)
    double max = 0;           ///< largest observation (0 when empty)

    /// Element-wise accumulation; associative and commutative, so any
    /// fold order over replica snapshots yields the same merge.
    void Merge(const Snapshot& other);

    /// Estimated q-quantile (q in [0, 1]) with linear interpolation
    /// inside the target bucket. Returns 0 for an empty snapshot.
    double Quantile(double q) const;

    double Mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };
  Snapshot snapshot() const;

  /// Bucket index for `value` (exposed for tests).
  static std::size_t BucketFor(double value);
  /// Upper bound of bucket `index` (inclusive upper edge used for
  /// interpolation; the last bucket reports its lower edge * 2^(1/4)).
  static double BucketUpper(std::size_t index);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};  // accumulated via CAS loop (portable)
  // Extremes, CAS'd like sum_; sentinels mean "no observation yet" and
  // are translated to 0 in snapshots so empty merges stay identities.
  std::atomic<double> min_{kNoMin};
  std::atomic<double> max_{kNoMax};

  static constexpr double kNoMin = 1.7976931348623157e308;   // DBL_MAX
  static constexpr double kNoMax = -1.7976931348623157e308;  // -DBL_MAX
};

}  // namespace mcirbm::obs

#endif  // MCIRBM_OBS_HISTOGRAM_H_
