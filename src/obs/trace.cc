#include "obs/trace.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace mcirbm::obs {

TraceContext::TraceContext(std::uint64_t trace_id, std::string op,
                           std::string tag, std::int64_t start_micros) {
  trace_.trace_id = trace_id;
  trace_.op = std::move(op);
  trace_.tag = std::move(tag);
  trace_.start_micros = start_micros;
}

void TraceContext::AddSpan(const std::string& name, std::int64_t start_micros,
                           std::int64_t duration_micros,
                           const std::string& model_key, std::size_t rows) {
  TraceSpan span;
  span.name = name;
  span.start_micros = start_micros;
  span.duration_micros = duration_micros < 0 ? 0 : duration_micros;
  span.model_key = model_key;
  span.rows = rows;
  MutexLock lock(mu_);
  trace_.spans.push_back(std::move(span));
}

Trace TraceContext::Finalize(std::int64_t end_micros) {
  MutexLock lock(mu_);
  trace_.duration_micros =
      end_micros < trace_.start_micros ? 0 : end_micros - trace_.start_micros;
  std::stable_sort(trace_.spans.begin(), trace_.spans.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return a.start_micros < b.start_micros;
                   });
  return std::move(trace_);
}

TraceStore::TraceStore(TraceConfig config) : config_(config) {}

std::shared_ptr<TraceContext> TraceStore::MaybeStartTrace(
    const std::string& op, const std::string& tag, std::int64_t start_micros) {
  if (config_.sample_every_n == 0) return nullptr;
  const std::uint64_t n =
      request_counter_.fetch_add(1, std::memory_order_relaxed);
  if (n % config_.sample_every_n != 0) return nullptr;
  sampled_.Increment();
  return std::make_shared<TraceContext>(
      next_trace_id_.fetch_add(1, std::memory_order_relaxed), op, tag,
      start_micros);
}

void TraceStore::Finish(const std::shared_ptr<TraceContext>& context,
                        std::int64_t end_micros) {
  if (context == nullptr) return;
  Trace trace = context->Finalize(end_micros);
  completed_.Increment();
  MutexLock lock(mu_);
  if (jsonl_sink_) jsonl_sink_(TraceToJsonLine(trace));
  ring_.push_back(std::move(trace));
  while (ring_.size() > config_.capacity) {
    ring_.pop_front();
    dropped_.Increment();
  }
}

std::vector<Trace> TraceStore::Recent(std::size_t n) const {
  MutexLock lock(mu_);
  const std::size_t take = std::min(n, ring_.size());
  return std::vector<Trace>(ring_.end() - static_cast<std::ptrdiff_t>(take),
                            ring_.end());
}

TraceStore::Snapshot TraceStore::snapshot() const {
  Snapshot snap;
  {
    MutexLock lock(mu_);
    snap.traces.assign(ring_.begin(), ring_.end());
  }
  snap.sampled = sampled_.Value();
  snap.completed = completed_.Value();
  snap.dropped = dropped_.Value();
  return snap;
}

void TraceStore::Snapshot::Merge(const Snapshot& other) {
  traces.insert(traces.end(), other.traces.begin(), other.traces.end());
  std::stable_sort(traces.begin(), traces.end(),
                   [](const Trace& a, const Trace& b) {
                     return a.start_micros < b.start_micros;
                   });
  sampled += other.sampled;
  completed += other.completed;
  dropped += other.dropped;
}

void TraceStore::SetJsonlSink(std::function<void(const std::string&)> sink) {
  MutexLock lock(mu_);
  jsonl_sink_ = std::move(sink);
}

std::string TraceStore::TraceToJsonLine(const Trace& trace) {
  std::ostringstream out;
  out << "{\"trace_id\":" << trace.trace_id << ",\"op\":\""
      << EscapeLabel(trace.op) << "\",\"id\":\"" << EscapeLabel(trace.tag)
      << "\",\"start_micros\":" << trace.start_micros
      << ",\"duration_micros\":" << trace.duration_micros << ",\"spans\":[";
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const TraceSpan& span = trace.spans[i];
    if (i > 0) out << ',';
    out << "{\"name\":\"" << EscapeLabel(span.name)
        << "\",\"start_micros\":" << span.start_micros
        << ",\"duration_micros\":" << span.duration_micros << ",\"model\":\""
        << EscapeLabel(span.model_key) << "\",\"rows\":" << span.rows << '}';
  }
  out << "]}";
  return out.str();
}

std::string TraceStore::RenderTracesText(const std::vector<Trace>& traces,
                                         const std::string& prefix) {
  std::ostringstream out;
  for (const Trace& trace : traces) {
    out << prefix << "trace=" << trace.trace_id << " op=" << trace.op
        << " id=\"" << EscapeLabel(trace.tag)
        << "\" start_micros=" << trace.start_micros
        << " duration_micros=" << trace.duration_micros
        << " spans=" << trace.spans.size() << '\n';
    for (const TraceSpan& span : trace.spans) {
      out << prefix << "trace=" << trace.trace_id << " span=" << span.name
          << " start_micros=" << span.start_micros
          << " duration_micros=" << span.duration_micros << " model=\""
          << EscapeLabel(span.model_key) << "\" rows=" << span.rows << '\n';
    }
  }
  return out.str();
}

}  // namespace mcirbm::obs
