#include "obs/registry.h"

#include <sstream>

#include "util/string_util.h"

namespace mcirbm::obs {

std::string EscapeLabel(const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (const char c : value) {
    if (c == '"' || c == '\\') escaped.push_back('\\');
    escaped.push_back(c);
  }
  return escaped;
}

namespace {

/// `name{model="label"}` — or bare `name` when the label is empty —
/// with an optional extra `quantile="q"` pair for histogram lines.
/// Label values are escaped; quantiles are literals we control.
void AppendSeries(std::ostringstream* out, const std::string& name,
                  const std::string& label,
                  const std::string& quantile = "") {
  *out << name;
  if (label.empty() && quantile.empty()) return;
  *out << '{';
  if (!label.empty()) *out << "model=\"" << EscapeLabel(label) << '"';
  if (!quantile.empty()) {
    if (!label.empty()) *out << ',';
    *out << "quantile=\"" << quantile << '"';
  }
  *out << '}';
}

/// Compact decimal: integral values print without a fractional part so
/// counters stay counters; everything else gets three decimals.
std::string FormatValue(double value) {
  if (value == static_cast<double>(static_cast<long long>(value))) {
    return std::to_string(static_cast<long long>(value));
  }
  return FormatDouble(value, 3);
}

}  // namespace

Counter& Registry::counter(const std::string& name,
                           const std::string& label) {
  MutexLock lock(mu_);
  auto& slot = counters_[{name, label}];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name, const std::string& label) {
  MutexLock lock(mu_);
  auto& slot = gauges_[{name, label}];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& label) {
  MutexLock lock(mu_);
  auto& slot = histograms_[{name, label}];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(mu_);
  for (const auto& [key, counter] : counters_) {
    snap.counters[key] = counter->Value();
  }
  for (const auto& [key, gauge] : gauges_) {
    snap.gauges[key] = gauge->Value();
  }
  for (const auto& [key, histogram] : histograms_) {
    snap.histograms[key] = histogram->snapshot();
  }
  return snap;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [key, value] : other.counters) counters[key] += value;
  for (const auto& [key, value] : other.gauges) gauges[key] += value;
  for (const auto& [key, value] : other.histograms) {
    histograms[key].Merge(value);  // default-constructed on first sight
  }
}

std::string MetricsSnapshot::RenderText() const {
  std::ostringstream out;
  for (const auto& [key, value] : counters) {
    AppendSeries(&out, key.first, key.second);
    out << ' ' << value << '\n';
  }
  for (const auto& [key, value] : gauges) {
    AppendSeries(&out, key.first, key.second);
    out << ' ' << FormatValue(value) << '\n';
  }
  for (const auto& [key, snap] : histograms) {
    for (const char* q : {"0.5", "0.9", "0.95", "0.99"}) {
      AppendSeries(&out, key.first, key.second, q);
      out << ' ' << FormatValue(snap.Quantile(std::stod(q))) << '\n';
    }
    AppendSeries(&out, key.first + "_count", key.second);
    out << ' ' << snap.count << '\n';
    AppendSeries(&out, key.first + "_sum", key.second);
    out << ' ' << FormatValue(snap.sum) << '\n';
    AppendSeries(&out, key.first + "_min", key.second);
    out << ' ' << FormatValue(snap.min) << '\n';
    AppendSeries(&out, key.first + "_max", key.second);
    out << ' ' << FormatValue(snap.max) << '\n';
  }
  return out.str();
}

}  // namespace mcirbm::obs
