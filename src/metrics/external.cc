#include "metrics/external.h"

#include <algorithm>
#include <cmath>

#include "clustering/partition.h"
#include "metrics/hungarian.h"
#include "util/check.h"

namespace mcirbm::metrics {
namespace {

using clustering::ContingencyTable;

struct PairCounts {
  // Pair-level confusion: same/same, same/diff, diff/same, diff/diff, where
  // the first word refers to `truth` and the second to `pred`.
  double ss = 0, sd = 0, ds = 0, dd = 0;
};

// Computes the four pair counts from the contingency table in O(ka*kb).
PairCounts ComputePairCounts(const std::vector<int>& truth,
                             const std::vector<int>& pred) {
  MCIRBM_CHECK_EQ(truth.size(), pred.size());
  std::vector<int> t = truth, p = pred;
  const int kt = clustering::CompactRelabel(&t);
  const int kp = clustering::CompactRelabel(&p);
  const auto table = ContingencyTable(t, kt, p, kp);
  const double n = static_cast<double>(truth.size());

  auto choose2 = [](double m) { return m * (m - 1) / 2.0; };

  double sum_nij2 = 0;  // Σ C(n_ij, 2)
  std::vector<double> row_sums(kt, 0), col_sums(kp, 0);
  for (int a = 0; a < kt; ++a) {
    for (int b = 0; b < kp; ++b) {
      sum_nij2 += choose2(table[a][b]);
      row_sums[a] += table[a][b];
      col_sums[b] += table[a][b];
    }
  }
  double sum_ai2 = 0, sum_bj2 = 0;
  for (double r : row_sums) sum_ai2 += choose2(r);
  for (double c : col_sums) sum_bj2 += choose2(c);
  const double total_pairs = choose2(n);

  PairCounts pc;
  pc.ss = sum_nij2;                    // same class, same cluster (TP)
  pc.sd = sum_ai2 - sum_nij2;          // same class, diff cluster (FN)
  pc.ds = sum_bj2 - sum_nij2;          // diff class, same cluster (FP)
  pc.dd = total_pairs - pc.ss - pc.sd - pc.ds;
  return pc;
}

}  // namespace

double ClusteringAccuracy(const std::vector<int>& truth,
                          const std::vector<int>& pred) {
  MCIRBM_CHECK_EQ(truth.size(), pred.size());
  MCIRBM_CHECK(!truth.empty());
  std::vector<int> t = truth, p = pred;
  const int kt = clustering::CompactRelabel(&t);
  const int kp = clustering::CompactRelabel(&p);
  // Rows = clusters, cols = classes; map each cluster to at most one class.
  const auto table = ContingencyTable(p, kp, t, kt);
  const std::vector<int> match = MaxWeightAssignment(table);
  long correct = 0;
  for (int c = 0; c < kp; ++c) {
    if (match[c] >= 0) correct += table[c][match[c]];
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

double Purity(const std::vector<int>& truth, const std::vector<int>& pred) {
  MCIRBM_CHECK_EQ(truth.size(), pred.size());
  MCIRBM_CHECK(!truth.empty());
  std::vector<int> t = truth, p = pred;
  const int kt = clustering::CompactRelabel(&t);
  const int kp = clustering::CompactRelabel(&p);
  const auto table = ContingencyTable(p, kp, t, kt);
  long majority_total = 0;
  for (int c = 0; c < kp; ++c) {
    majority_total += *std::max_element(table[c].begin(), table[c].end());
  }
  return static_cast<double>(majority_total) /
         static_cast<double>(truth.size());
}

double RandIndex(const std::vector<int>& truth,
                 const std::vector<int>& pred) {
  const PairCounts pc = ComputePairCounts(truth, pred);
  const double total = pc.ss + pc.sd + pc.ds + pc.dd;
  if (total <= 0) return 1.0;
  return (pc.ss + pc.dd) / total;
}

double FowlkesMallows(const std::vector<int>& truth,
                      const std::vector<int>& pred) {
  const PairCounts pc = ComputePairCounts(truth, pred);
  const double tp = pc.ss, fp = pc.ds, fn = pc.sd;
  if (tp <= 0) return 0.0;
  return std::sqrt(tp / (tp + fp) * tp / (tp + fn));
}

double AdjustedRandIndex(const std::vector<int>& truth,
                         const std::vector<int>& pred) {
  const PairCounts pc = ComputePairCounts(truth, pred);
  const double total = pc.ss + pc.sd + pc.ds + pc.dd;
  if (total <= 0) return 1.0;
  const double sum_ai2 = pc.ss + pc.sd;  // Σ C(a_i,2)
  const double sum_bj2 = pc.ss + pc.ds;  // Σ C(b_j,2)
  const double expected = sum_ai2 * sum_bj2 / total;
  const double max_index = 0.5 * (sum_ai2 + sum_bj2);
  if (std::fabs(max_index - expected) < 1e-12) return 1.0;
  return (pc.ss - expected) / (max_index - expected);
}

double NormalizedMutualInformation(const std::vector<int>& truth,
                                   const std::vector<int>& pred) {
  MCIRBM_CHECK_EQ(truth.size(), pred.size());
  MCIRBM_CHECK(!truth.empty());
  std::vector<int> t = truth, p = pred;
  const int kt = clustering::CompactRelabel(&t);
  const int kp = clustering::CompactRelabel(&p);
  const auto table = ContingencyTable(t, kt, p, kp);
  const double n = static_cast<double>(truth.size());
  std::vector<double> row(kt, 0), col(kp, 0);
  for (int a = 0; a < kt; ++a) {
    for (int b = 0; b < kp; ++b) {
      row[a] += table[a][b];
      col[b] += table[a][b];
    }
  }
  double mi = 0, ht = 0, hp = 0;
  for (int a = 0; a < kt; ++a) {
    if (row[a] > 0) ht -= row[a] / n * std::log(row[a] / n);
    for (int b = 0; b < kp; ++b) {
      const double nij = table[a][b];
      if (nij > 0) {
        mi += nij / n * std::log(nij * n / (row[a] * col[b]));
      }
    }
  }
  for (int b = 0; b < kp; ++b) {
    if (col[b] > 0) hp -= col[b] / n * std::log(col[b] / n);
  }
  const double denom = 0.5 * (ht + hp);
  if (denom < 1e-12) return 1.0;  // both partitions trivial
  return mi / denom;
}

double JaccardIndex(const std::vector<int>& truth,
                    const std::vector<int>& pred) {
  const PairCounts pc = ComputePairCounts(truth, pred);
  const double denom = pc.ss + pc.sd + pc.ds;
  if (denom <= 0) return 1.0;  // no positive pairs anywhere: trivial match
  return pc.ss / denom;
}

namespace {

// Entropies needed by homogeneity/completeness, all in nats over n points:
// H(T), H(P) and the joint H(T,P), from which the conditionals follow.
struct PartitionEntropies {
  double h_truth = 0, h_pred = 0, h_joint = 0;
};

PartitionEntropies ComputeEntropies(const std::vector<int>& truth,
                                    const std::vector<int>& pred) {
  MCIRBM_CHECK_EQ(truth.size(), pred.size());
  MCIRBM_CHECK(!truth.empty());
  std::vector<int> t = truth, p = pred;
  const int kt = clustering::CompactRelabel(&t);
  const int kp = clustering::CompactRelabel(&p);
  const auto table = ContingencyTable(t, kt, p, kp);
  const double n = static_cast<double>(truth.size());
  std::vector<double> row(kt, 0), col(kp, 0);
  PartitionEntropies e;
  for (int a = 0; a < kt; ++a) {
    for (int b = 0; b < kp; ++b) {
      const double nij = table[a][b];
      row[a] += nij;
      col[b] += nij;
      if (nij > 0) e.h_joint -= nij / n * std::log(nij / n);
    }
  }
  for (double r : row) {
    if (r > 0) e.h_truth -= r / n * std::log(r / n);
  }
  for (double c : col) {
    if (c > 0) e.h_pred -= c / n * std::log(c / n);
  }
  return e;
}

}  // namespace

double Homogeneity(const std::vector<int>& truth,
                   const std::vector<int>& pred) {
  const PartitionEntropies e = ComputeEntropies(truth, pred);
  if (e.h_truth < 1e-12) return 1.0;  // single class: trivially homogeneous
  const double h_truth_given_pred = e.h_joint - e.h_pred;
  return 1.0 - h_truth_given_pred / e.h_truth;
}

double Completeness(const std::vector<int>& truth,
                    const std::vector<int>& pred) {
  const PartitionEntropies e = ComputeEntropies(truth, pred);
  if (e.h_pred < 1e-12) return 1.0;  // single cluster: trivially complete
  const double h_pred_given_truth = e.h_joint - e.h_truth;
  return 1.0 - h_pred_given_truth / e.h_pred;
}

double VMeasure(const std::vector<int>& truth, const std::vector<int>& pred) {
  const double h = Homogeneity(truth, pred);
  const double c = Completeness(truth, pred);
  if (h + c < 1e-12) return 0.0;
  return 2 * h * c / (h + c);
}

MetricBundle ComputeAll(const std::vector<int>& truth,
                        const std::vector<int>& pred) {
  MetricBundle m;
  m.accuracy = ClusteringAccuracy(truth, pred);
  m.purity = Purity(truth, pred);
  m.rand_index = RandIndex(truth, pred);
  m.fmi = FowlkesMallows(truth, pred);
  m.ari = AdjustedRandIndex(truth, pred);
  m.nmi = NormalizedMutualInformation(truth, pred);
  return m;
}

}  // namespace mcirbm::metrics
