// Hungarian (Kuhn–Munkres) assignment, O(n^3).
//
// Used for (a) the optimal one-to-one map between cluster ids and class
// labels inside the clustering-accuracy metric and (b) aligning partitions
// from different clusterers before unanimous voting.
#ifndef MCIRBM_METRICS_HUNGARIAN_H_
#define MCIRBM_METRICS_HUNGARIAN_H_

#include <vector>

namespace mcirbm::metrics {

/// Solves the max-weight perfect assignment on `weight` (rows x cols,
/// rectangular allowed; the smaller side is fully matched).
///
/// Returns `match` of length rows(): match[r] = assigned column or -1 when
/// rows > cols and row r is unmatched. Each column is used at most once.
std::vector<int> MaxWeightAssignment(
    const std::vector<std::vector<double>>& weight);

/// Convenience overload for integer weights (contingency tables).
std::vector<int> MaxWeightAssignment(
    const std::vector<std::vector<int>>& weight);

}  // namespace mcirbm::metrics

#endif  // MCIRBM_METRICS_HUNGARIAN_H_
