// Internal (label-free) clustering quality indices.
//
// The paper's claim is that sls training gives the hidden layer a "more
// reasonable distribution" — constricted within credible clusters,
// dispersed across them. These indices quantify exactly that geometry
// without ground truth, so the ablation benches can show the feature-space
// effect directly rather than only through downstream accuracy.
#ifndef MCIRBM_METRICS_INTERNAL_H_
#define MCIRBM_METRICS_INTERNAL_H_

#include <vector>

#include "linalg/matrix.h"

namespace mcirbm::metrics {

/// Mean silhouette coefficient over all assigned instances, in [-1, 1].
/// Instances with assignment -1 (no cluster) are ignored; instances in
/// singleton clusters contribute 0 (their silhouette is undefined).
/// Requires at least 2 distinct clusters among the assigned instances.
double SilhouetteScore(const linalg::Matrix& x,
                       const std::vector<int>& assignment);

/// Davies–Bouldin index: mean over clusters of the worst
/// (scatter_i + scatter_j) / centroid_distance_ij ratio. Lower is better;
/// 0 is ideal. Requires >= 2 non-empty clusters.
double DaviesBouldinIndex(const linalg::Matrix& x,
                          const std::vector<int>& assignment);

/// Calinski–Harabasz index: (between-SSE / (k-1)) / (within-SSE / (n-k)).
/// Higher is better. Requires n > k >= 2.
double CalinskiHarabaszIndex(const linalg::Matrix& x,
                             const std::vector<int>& assignment);

/// Total within-cluster sum of squared distances to centroids (the
/// k-means objective over the given assignment).
double WithinClusterSse(const linalg::Matrix& x,
                        const std::vector<int>& assignment);

/// Between-cluster SSE: Σ_k n_k · |c_k − c|², dispersion of centroids
/// around the global mean (of assigned instances).
double BetweenClusterSse(const linalg::Matrix& x,
                         const std::vector<int>& assignment);

/// One-line summary of the feature-space geometry.
struct InternalMetricBundle {
  double silhouette = 0;
  double davies_bouldin = 0;
  double calinski_harabasz = 0;
  double within_sse = 0;
  double between_sse = 0;
};

/// Computes the full internal bundle (guards degenerate inputs by
/// returning the individual functions' conventions).
InternalMetricBundle ComputeInternal(const linalg::Matrix& x,
                                     const std::vector<int>& assignment);

}  // namespace mcirbm::metrics

#endif  // MCIRBM_METRICS_INTERNAL_H_
