#include "metrics/internal.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/ops.h"
#include "util/check.h"

namespace mcirbm::metrics {
namespace {

// Per-cluster member lists over assigned (id >= 0) instances; compact ids
// are NOT required — ids index a sparse map collapsed to the used ones.
struct Clusters {
  std::vector<std::vector<std::size_t>> members;  // per used cluster
  std::vector<int> cluster_index_of;  // instance -> index in `members`, -1
};

Clusters GroupByCluster(const linalg::Matrix& x,
                        const std::vector<int>& assignment) {
  MCIRBM_CHECK_EQ(x.rows(), assignment.size());
  int max_id = -1;
  for (int id : assignment) max_id = std::max(max_id, id);
  std::vector<int> slot(static_cast<std::size_t>(max_id) + 1, -1);
  Clusters out;
  out.cluster_index_of.assign(assignment.size(), -1);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    const int id = assignment[i];
    if (id < 0) continue;
    if (slot[id] < 0) {
      slot[id] = static_cast<int>(out.members.size());
      out.members.emplace_back();
    }
    out.members[slot[id]].push_back(i);
    out.cluster_index_of[i] = slot[id];
  }
  return out;
}

// Centroid of the given rows.
std::vector<double> Centroid(const linalg::Matrix& x,
                             const std::vector<std::size_t>& rows) {
  std::vector<double> c(x.cols(), 0.0);
  for (std::size_t r : rows) {
    const auto row = x.Row(r);
    for (std::size_t j = 0; j < c.size(); ++j) c[j] += row[j];
  }
  for (double& v : c) v /= static_cast<double>(rows.size());
  return c;
}

double Distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(linalg::SquaredDistance(a, b));
}

}  // namespace

double SilhouetteScore(const linalg::Matrix& x,
                       const std::vector<int>& assignment) {
  const Clusters g = GroupByCluster(x, assignment);
  const std::size_t k = g.members.size();
  MCIRBM_CHECK_GE(k, 2u) << "silhouette needs >= 2 clusters";

  double total = 0;
  std::size_t counted = 0;
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t i : g.members[c]) {
      if (g.members[c].size() == 1) {
        ++counted;  // singleton: silhouette defined as 0
        continue;
      }
      // a(i): mean distance to own cluster (excluding self).
      double a = 0;
      for (std::size_t j : g.members[c]) {
        if (j != i) a += Distance(x.Row(i), x.Row(j));
      }
      a /= static_cast<double>(g.members[c].size() - 1);
      // b(i): smallest mean distance to another cluster.
      double b = std::numeric_limits<double>::infinity();
      for (std::size_t o = 0; o < k; ++o) {
        if (o == c) continue;
        double mean = 0;
        for (std::size_t j : g.members[o]) {
          mean += Distance(x.Row(i), x.Row(j));
        }
        mean /= static_cast<double>(g.members[o].size());
        b = std::min(b, mean);
      }
      const double denom = std::max(a, b);
      total += denom > 0 ? (b - a) / denom : 0.0;
      ++counted;
    }
  }
  MCIRBM_CHECK_GT(counted, 0u);
  return total / static_cast<double>(counted);
}

double DaviesBouldinIndex(const linalg::Matrix& x,
                          const std::vector<int>& assignment) {
  const Clusters g = GroupByCluster(x, assignment);
  const std::size_t k = g.members.size();
  MCIRBM_CHECK_GE(k, 2u) << "Davies-Bouldin needs >= 2 clusters";

  std::vector<std::vector<double>> centroids(k);
  std::vector<double> scatter(k, 0.0);  // mean distance to own centroid
  for (std::size_t c = 0; c < k; ++c) {
    centroids[c] = Centroid(x, g.members[c]);
    for (std::size_t i : g.members[c]) {
      scatter[c] += Distance(x.Row(i), centroids[c]);
    }
    scatter[c] /= static_cast<double>(g.members[c].size());
  }

  double sum = 0;
  for (std::size_t i = 0; i < k; ++i) {
    double worst = 0;
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      const double d = Distance(centroids[i], centroids[j]);
      // Coincident centroids with any scatter: ratio is unbounded; use a
      // large finite proxy so the index stays comparable.
      const double ratio = d > 0 ? (scatter[i] + scatter[j]) / d
                                 : std::numeric_limits<double>::max() / 4;
      worst = std::max(worst, ratio);
    }
    sum += worst;
  }
  return sum / static_cast<double>(k);
}

double WithinClusterSse(const linalg::Matrix& x,
                        const std::vector<int>& assignment) {
  const Clusters g = GroupByCluster(x, assignment);
  double sse = 0;
  for (const auto& members : g.members) {
    const std::vector<double> c = Centroid(x, members);
    for (std::size_t i : members) {
      sse += linalg::SquaredDistance(x.Row(i), c);
    }
  }
  return sse;
}

double BetweenClusterSse(const linalg::Matrix& x,
                         const std::vector<int>& assignment) {
  const Clusters g = GroupByCluster(x, assignment);
  std::vector<std::size_t> all;
  for (const auto& members : g.members) {
    all.insert(all.end(), members.begin(), members.end());
  }
  MCIRBM_CHECK(!all.empty());
  const std::vector<double> global = Centroid(x, all);
  double sse = 0;
  for (const auto& members : g.members) {
    const std::vector<double> c = Centroid(x, members);
    sse += static_cast<double>(members.size()) *
           linalg::SquaredDistance(c, global);
  }
  return sse;
}

double CalinskiHarabaszIndex(const linalg::Matrix& x,
                             const std::vector<int>& assignment) {
  const Clusters g = GroupByCluster(x, assignment);
  const std::size_t k = g.members.size();
  std::size_t n = 0;
  for (const auto& members : g.members) n += members.size();
  MCIRBM_CHECK_GE(k, 2u) << "Calinski-Harabasz needs >= 2 clusters";
  MCIRBM_CHECK_GT(n, k) << "Calinski-Harabasz needs n > k";
  const double within = WithinClusterSse(x, assignment);
  const double between = BetweenClusterSse(x, assignment);
  if (within <= 0) return std::numeric_limits<double>::max() / 4;
  return (between / static_cast<double>(k - 1)) /
         (within / static_cast<double>(n - k));
}

InternalMetricBundle ComputeInternal(const linalg::Matrix& x,
                                     const std::vector<int>& assignment) {
  InternalMetricBundle b;
  b.silhouette = SilhouetteScore(x, assignment);
  b.davies_bouldin = DaviesBouldinIndex(x, assignment);
  b.calinski_harabasz = CalinskiHarabaszIndex(x, assignment);
  b.within_sse = WithinClusterSse(x, assignment);
  b.between_sse = BetweenClusterSse(x, assignment);
  return b;
}

}  // namespace mcirbm::metrics
