#include "metrics/hungarian.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace mcirbm::metrics {
namespace {

// Classic O(n^3) Hungarian algorithm on a square *cost* matrix (minimize).
// Implementation follows the potentials + augmenting-path formulation.
std::vector<int> MinCostAssignmentSquare(
    const std::vector<std::vector<double>>& cost) {
  const int n = static_cast<int>(cost.size());
  // 1-based potentials; way[j] = previous column on the augmenting path.
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<int> p(n + 1, 0), way(n + 1, 0);
  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(n + 1, std::numeric_limits<double>::max());
    std::vector<char> used(n + 1, false);
    do {
      used[j0] = true;
      const int i0 = p[j0];
      double delta = std::numeric_limits<double>::max();
      int j1 = 0;
      for (int j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0);
  }
  std::vector<int> match(n, -1);
  for (int j = 1; j <= n; ++j) {
    if (p[j] > 0) match[p[j] - 1] = j - 1;
  }
  return match;
}

}  // namespace

std::vector<int> MaxWeightAssignment(
    const std::vector<std::vector<double>>& weight) {
  const int rows = static_cast<int>(weight.size());
  MCIRBM_CHECK_GT(rows, 0);
  const int cols = static_cast<int>(weight[0].size());
  for (const auto& row : weight) {
    MCIRBM_CHECK_EQ(static_cast<int>(row.size()), cols);
  }
  const int n = std::max(rows, cols);
  // Pad to square and negate (max-weight -> min-cost). Padding cells cost 0
  // which never beats a real max-weight cell after negation shift, but to
  // be safe use 0 cost for dummies and shift real cells by -w.
  std::vector<std::vector<double>> cost(n, std::vector<double>(n, 0.0));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) cost[r][c] = -weight[r][c];
  }
  std::vector<int> match = MinCostAssignmentSquare(cost);
  match.resize(rows);
  for (int r = 0; r < rows; ++r) {
    if (match[r] >= cols) match[r] = -1;  // matched to a dummy column
  }
  return match;
}

std::vector<int> MaxWeightAssignment(
    const std::vector<std::vector<int>>& weight) {
  std::vector<std::vector<double>> w(weight.size());
  for (std::size_t r = 0; r < weight.size(); ++r) {
    w[r].assign(weight[r].begin(), weight[r].end());
  }
  return MaxWeightAssignment(w);
}

}  // namespace mcirbm::metrics
