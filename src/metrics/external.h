// External clustering evaluation metrics used by the paper's evaluation:
// accuracy (Eq. 36), purity (Eq. 38), Rand index (Eq. 37), Fowlkes–Mallows
// index (Eq. 39); plus ARI and NMI as extended diagnostics.
//
// `truth` and `pred` are equal-length assignment vectors; `pred` ids need
// not align with class ids (accuracy computes the optimal 1-1 map).
#ifndef MCIRBM_METRICS_EXTERNAL_H_
#define MCIRBM_METRICS_EXTERNAL_H_

#include <vector>

namespace mcirbm::metrics {

/// Clustering accuracy: best one-to-one cluster->class map (Hungarian on
/// the contingency table), then fraction of correctly mapped instances.
double ClusteringAccuracy(const std::vector<int>& truth,
                          const std::vector<int>& pred);

/// Purity: sum over clusters of the majority-class count, divided by n.
double Purity(const std::vector<int>& truth, const std::vector<int>& pred);

/// Rand index: (Nss + Ndd) / C(n,2) over instance pairs.
double RandIndex(const std::vector<int>& truth, const std::vector<int>& pred);

/// Fowlkes–Mallows index: sqrt(TP/(TP+FP) * TP/(TP+FN)) over pairs.
double FowlkesMallows(const std::vector<int>& truth,
                      const std::vector<int>& pred);

/// Adjusted Rand index (Hubert & Arabie); chance-corrected, in [-1, 1].
double AdjustedRandIndex(const std::vector<int>& truth,
                         const std::vector<int>& pred);

/// Normalized mutual information (arithmetic-mean normalization), [0, 1].
double NormalizedMutualInformation(const std::vector<int>& truth,
                                   const std::vector<int>& pred);

/// Pair-level Jaccard index TP / (TP + FP + FN), in [0, 1].
double JaccardIndex(const std::vector<int>& truth,
                    const std::vector<int>& pred);

/// Homogeneity: 1 − H(class|cluster)/H(class); high when each cluster
/// holds a single class. In [0, 1]; 1 when every cluster is pure.
double Homogeneity(const std::vector<int>& truth,
                   const std::vector<int>& pred);

/// Completeness: 1 − H(cluster|class)/H(cluster); high when each class
/// lands in a single cluster. In [0, 1].
double Completeness(const std::vector<int>& truth,
                    const std::vector<int>& pred);

/// V-measure: harmonic mean of homogeneity and completeness (β = 1).
double VMeasure(const std::vector<int>& truth, const std::vector<int>& pred);

/// All of the above in one pass-friendly record.
struct MetricBundle {
  double accuracy = 0;
  double purity = 0;
  double rand_index = 0;
  double fmi = 0;
  double ari = 0;
  double nmi = 0;
};

/// Computes every metric in the bundle.
MetricBundle ComputeAll(const std::vector<int>& truth,
                        const std::vector<int>& pred);

}  // namespace mcirbm::metrics

#endif  // MCIRBM_METRICS_EXTERNAL_H_
