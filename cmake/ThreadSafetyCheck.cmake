# Configure-time proof that -Wthread-safety is live: a positive control
# (guarded access under MutexLock) must compile, and a negative probe
# (the same access without the lock) must NOT. Included only under
# MCIRBM_THREAD_SAFETY, which already requires clang.
#
# This is the compile-fail half of the wrapper test suite — the runtime
# half is tests/util/mutex_test.cc.

set(_ts_flags
    -Wthread-safety
    -Werror=thread-safety-analysis
    -Werror=thread-safety-attributes
    -Werror=thread-safety-precise)
string(REPLACE ";" " " _ts_flags_str "${_ts_flags}")

try_compile(MCIRBM_TS_POSITIVE_OK
            "${CMAKE_BINARY_DIR}/ts_probe_good"
            "${CMAKE_CURRENT_SOURCE_DIR}/cmake/thread_safety_probe_good.cc"
            COMPILE_DEFINITIONS "${_ts_flags_str}"
            CMAKE_FLAGS
              "-DINCLUDE_DIRECTORIES=${CMAKE_CURRENT_SOURCE_DIR}/src"
            CXX_STANDARD 20
            CXX_STANDARD_REQUIRED ON)
if(NOT MCIRBM_TS_POSITIVE_OK)
  message(FATAL_ERROR
          "thread-safety positive control failed to compile — the probe "
          "flags or include paths are broken, so the negative probe "
          "below would prove nothing")
endif()

try_compile(MCIRBM_TS_NEGATIVE_OK
            "${CMAKE_BINARY_DIR}/ts_probe_bad"
            "${CMAKE_CURRENT_SOURCE_DIR}/cmake/thread_safety_probe_bad.cc"
            COMPILE_DEFINITIONS "${_ts_flags_str}"
            CMAKE_FLAGS
              "-DINCLUDE_DIRECTORIES=${CMAKE_CURRENT_SOURCE_DIR}/src"
            CXX_STANDARD 20
            CXX_STANDARD_REQUIRED ON)
if(MCIRBM_TS_NEGATIVE_OK)
  message(FATAL_ERROR
          "thread-safety negative probe COMPILED: an unguarded write to a "
          "MCIRBM_GUARDED_BY member was accepted, so -Wthread-safety is "
          "not actually enforcing anything")
endif()

message(STATUS "clang thread-safety analysis verified "
               "(positive control compiles, unguarded access rejected)")
