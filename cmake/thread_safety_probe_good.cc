// Positive control for cmake/ThreadSafetyCheck.cmake: the same guarded
// access as thread_safety_probe_bad.cc but holding the lock. MUST
// compile — if it does not, the probe flags or include paths are broken
// and the negative result from the bad probe proves nothing.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Guarded {
 public:
  void Bump() {
    mcirbm::MutexLock lock(mu_);
    ++count_;
  }

 private:
  mcirbm::Mutex mu_;
  int count_ MCIRBM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Bump();
  return 0;
}
