// Negative probe for cmake/ThreadSafetyCheck.cmake: writes a GUARDED_BY
// member without holding its mutex. MUST fail to compile under
// -Wthread-safety -Werror=thread-safety-analysis — if it ever compiles,
// the analysis is not actually on and the thread-safety gate is
// worthless, so the configure step errors out.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Guarded {
 public:
  void Bump() { ++count_; }  // unguarded write: the analysis must reject

 private:
  mcirbm::Mutex mu_;
  int count_ MCIRBM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Bump();
  return 0;
}
