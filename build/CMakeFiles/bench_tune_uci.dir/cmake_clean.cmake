file(REMOVE_RECURSE
  "CMakeFiles/bench_tune_uci.dir/bench/tune_uci.cc.o"
  "CMakeFiles/bench_tune_uci.dir/bench/tune_uci.cc.o.d"
  "bench_tune_uci"
  "bench_tune_uci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tune_uci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
