# Empty dependencies file for bench_tune_uci.
# This may be replaced when dependencies are built.
