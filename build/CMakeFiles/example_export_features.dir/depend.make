# Empty dependencies file for example_export_features.
# This may be replaced when dependencies are built.
