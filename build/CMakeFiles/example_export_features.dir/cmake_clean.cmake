file(REMOVE_RECURSE
  "CMakeFiles/example_export_features.dir/examples/export_features.cpp.o"
  "CMakeFiles/example_export_features.dir/examples/export_features.cpp.o.d"
  "example_export_features"
  "example_export_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_export_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
