file(REMOVE_RECURSE
  "CMakeFiles/core_stack_serialize_test.dir/tests/core/stack_serialize_test.cc.o"
  "CMakeFiles/core_stack_serialize_test.dir/tests/core/stack_serialize_test.cc.o.d"
  "core_stack_serialize_test"
  "core_stack_serialize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_stack_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
