# Empty dependencies file for core_stack_serialize_test.
# This may be replaced when dependencies are built.
