# Empty dependencies file for bench_table7_accuracy_uci.
# This may be replaced when dependencies are built.
