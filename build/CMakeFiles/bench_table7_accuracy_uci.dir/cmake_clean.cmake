file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_accuracy_uci.dir/bench/table7_accuracy_uci.cc.o"
  "CMakeFiles/bench_table7_accuracy_uci.dir/bench/table7_accuracy_uci.cc.o.d"
  "bench_table7_accuracy_uci"
  "bench_table7_accuracy_uci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_accuracy_uci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
