file(REMOVE_RECURSE
  "CMakeFiles/mcirbm_bench_common.dir/bench/bench_common.cc.o"
  "CMakeFiles/mcirbm_bench_common.dir/bench/bench_common.cc.o.d"
  "libmcirbm_bench_common.a"
  "libmcirbm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcirbm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
