# Empty dependencies file for mcirbm_bench_common.
# This may be replaced when dependencies are built.
