file(REMOVE_RECURSE
  "libmcirbm_bench_common.a"
)
