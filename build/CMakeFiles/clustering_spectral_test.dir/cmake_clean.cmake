file(REMOVE_RECURSE
  "CMakeFiles/clustering_spectral_test.dir/tests/clustering/spectral_test.cc.o"
  "CMakeFiles/clustering_spectral_test.dir/tests/clustering/spectral_test.cc.o.d"
  "clustering_spectral_test"
  "clustering_spectral_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_spectral_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
