# Empty dependencies file for clustering_spectral_test.
# This may be replaced when dependencies are built.
