file(REMOVE_RECURSE
  "CMakeFiles/voting_alignment_test.dir/tests/voting/alignment_test.cc.o"
  "CMakeFiles/voting_alignment_test.dir/tests/voting/alignment_test.cc.o.d"
  "voting_alignment_test"
  "voting_alignment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voting_alignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
