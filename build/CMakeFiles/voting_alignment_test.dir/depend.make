# Empty dependencies file for voting_alignment_test.
# This may be replaced when dependencies are built.
