
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/voting/vote_test.cc" "CMakeFiles/voting_vote_test.dir/tests/voting/vote_test.cc.o" "gcc" "CMakeFiles/voting_vote_test.dir/tests/voting/vote_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/mcirbm_eval.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_core.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_rbm.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_voting.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_data.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_clustering.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_parallel.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_rng.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
