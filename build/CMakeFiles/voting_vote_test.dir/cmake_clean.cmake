file(REMOVE_RECURSE
  "CMakeFiles/voting_vote_test.dir/tests/voting/vote_test.cc.o"
  "CMakeFiles/voting_vote_test.dir/tests/voting/vote_test.cc.o.d"
  "voting_vote_test"
  "voting_vote_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voting_vote_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
