file(REMOVE_RECURSE
  "CMakeFiles/rbm_free_energy_test.dir/tests/rbm/free_energy_test.cc.o"
  "CMakeFiles/rbm_free_energy_test.dir/tests/rbm/free_energy_test.cc.o.d"
  "rbm_free_energy_test"
  "rbm_free_energy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbm_free_energy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
