# Empty dependencies file for rbm_free_energy_test.
# This may be replaced when dependencies are built.
