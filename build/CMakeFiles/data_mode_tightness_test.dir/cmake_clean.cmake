file(REMOVE_RECURSE
  "CMakeFiles/data_mode_tightness_test.dir/tests/data/mode_tightness_test.cc.o"
  "CMakeFiles/data_mode_tightness_test.dir/tests/data/mode_tightness_test.cc.o.d"
  "data_mode_tightness_test"
  "data_mode_tightness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_mode_tightness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
