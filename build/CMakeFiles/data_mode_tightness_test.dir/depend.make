# Empty dependencies file for data_mode_tightness_test.
# This may be replaced when dependencies are built.
