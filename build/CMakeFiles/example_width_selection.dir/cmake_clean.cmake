file(REMOVE_RECURSE
  "CMakeFiles/example_width_selection.dir/examples/width_selection.cpp.o"
  "CMakeFiles/example_width_selection.dir/examples/width_selection.cpp.o.d"
  "example_width_selection"
  "example_width_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_width_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
