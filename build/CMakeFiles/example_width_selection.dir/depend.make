# Empty dependencies file for example_width_selection.
# This may be replaced when dependencies are built.
