file(REMOVE_RECURSE
  "CMakeFiles/mcirbm_cli.dir/tools/mcirbm_cli.cc.o"
  "CMakeFiles/mcirbm_cli.dir/tools/mcirbm_cli.cc.o.d"
  "mcirbm_cli"
  "mcirbm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcirbm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
