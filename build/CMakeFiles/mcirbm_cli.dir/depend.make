# Empty dependencies file for mcirbm_cli.
# This may be replaced when dependencies are built.
