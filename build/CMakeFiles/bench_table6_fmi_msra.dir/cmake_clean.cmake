file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_fmi_msra.dir/bench/table6_fmi_msra.cc.o"
  "CMakeFiles/bench_table6_fmi_msra.dir/bench/table6_fmi_msra.cc.o.d"
  "bench_table6_fmi_msra"
  "bench_table6_fmi_msra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_fmi_msra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
