# Empty dependencies file for bench_table6_fmi_msra.
# This may be replaced when dependencies are built.
