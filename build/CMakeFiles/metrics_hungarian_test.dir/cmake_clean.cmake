file(REMOVE_RECURSE
  "CMakeFiles/metrics_hungarian_test.dir/tests/metrics/hungarian_test.cc.o"
  "CMakeFiles/metrics_hungarian_test.dir/tests/metrics/hungarian_test.cc.o.d"
  "metrics_hungarian_test"
  "metrics_hungarian_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_hungarian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
