# Empty dependencies file for metrics_hungarian_test.
# This may be replaced when dependencies are built.
