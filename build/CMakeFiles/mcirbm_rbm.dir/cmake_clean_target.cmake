file(REMOVE_RECURSE
  "libmcirbm_rbm.a"
)
