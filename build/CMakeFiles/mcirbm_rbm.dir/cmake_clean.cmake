file(REMOVE_RECURSE
  "CMakeFiles/mcirbm_rbm.dir/src/rbm/free_energy.cc.o"
  "CMakeFiles/mcirbm_rbm.dir/src/rbm/free_energy.cc.o.d"
  "CMakeFiles/mcirbm_rbm.dir/src/rbm/grbm.cc.o"
  "CMakeFiles/mcirbm_rbm.dir/src/rbm/grbm.cc.o.d"
  "CMakeFiles/mcirbm_rbm.dir/src/rbm/rbm.cc.o"
  "CMakeFiles/mcirbm_rbm.dir/src/rbm/rbm.cc.o.d"
  "CMakeFiles/mcirbm_rbm.dir/src/rbm/rbm_base.cc.o"
  "CMakeFiles/mcirbm_rbm.dir/src/rbm/rbm_base.cc.o.d"
  "CMakeFiles/mcirbm_rbm.dir/src/rbm/sampling.cc.o"
  "CMakeFiles/mcirbm_rbm.dir/src/rbm/sampling.cc.o.d"
  "CMakeFiles/mcirbm_rbm.dir/src/rbm/serialize.cc.o"
  "CMakeFiles/mcirbm_rbm.dir/src/rbm/serialize.cc.o.d"
  "libmcirbm_rbm.a"
  "libmcirbm_rbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcirbm_rbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
