
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rbm/free_energy.cc" "CMakeFiles/mcirbm_rbm.dir/src/rbm/free_energy.cc.o" "gcc" "CMakeFiles/mcirbm_rbm.dir/src/rbm/free_energy.cc.o.d"
  "/root/repo/src/rbm/grbm.cc" "CMakeFiles/mcirbm_rbm.dir/src/rbm/grbm.cc.o" "gcc" "CMakeFiles/mcirbm_rbm.dir/src/rbm/grbm.cc.o.d"
  "/root/repo/src/rbm/rbm.cc" "CMakeFiles/mcirbm_rbm.dir/src/rbm/rbm.cc.o" "gcc" "CMakeFiles/mcirbm_rbm.dir/src/rbm/rbm.cc.o.d"
  "/root/repo/src/rbm/rbm_base.cc" "CMakeFiles/mcirbm_rbm.dir/src/rbm/rbm_base.cc.o" "gcc" "CMakeFiles/mcirbm_rbm.dir/src/rbm/rbm_base.cc.o.d"
  "/root/repo/src/rbm/sampling.cc" "CMakeFiles/mcirbm_rbm.dir/src/rbm/sampling.cc.o" "gcc" "CMakeFiles/mcirbm_rbm.dir/src/rbm/sampling.cc.o.d"
  "/root/repo/src/rbm/serialize.cc" "CMakeFiles/mcirbm_rbm.dir/src/rbm/serialize.cc.o" "gcc" "CMakeFiles/mcirbm_rbm.dir/src/rbm/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/mcirbm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_parallel.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_rng.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
