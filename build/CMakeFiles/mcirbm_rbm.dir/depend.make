# Empty dependencies file for mcirbm_rbm.
# This may be replaced when dependencies are built.
