# Empty dependencies file for clustering_density_peaks_test.
# This may be replaced when dependencies are built.
