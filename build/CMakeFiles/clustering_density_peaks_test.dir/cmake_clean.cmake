file(REMOVE_RECURSE
  "CMakeFiles/clustering_density_peaks_test.dir/tests/clustering/density_peaks_test.cc.o"
  "CMakeFiles/clustering_density_peaks_test.dir/tests/clustering/density_peaks_test.cc.o.d"
  "clustering_density_peaks_test"
  "clustering_density_peaks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_density_peaks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
