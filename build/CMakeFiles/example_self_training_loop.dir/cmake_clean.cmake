file(REMOVE_RECURSE
  "CMakeFiles/example_self_training_loop.dir/examples/self_training_loop.cpp.o"
  "CMakeFiles/example_self_training_loop.dir/examples/self_training_loop.cpp.o.d"
  "example_self_training_loop"
  "example_self_training_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_self_training_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
