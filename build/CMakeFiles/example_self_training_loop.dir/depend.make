# Empty dependencies file for example_self_training_loop.
# This may be replaced when dependencies are built.
