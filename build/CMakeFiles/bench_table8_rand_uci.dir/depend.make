# Empty dependencies file for bench_table8_rand_uci.
# This may be replaced when dependencies are built.
