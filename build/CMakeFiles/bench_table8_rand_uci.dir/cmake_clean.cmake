file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_rand_uci.dir/bench/table8_rand_uci.cc.o"
  "CMakeFiles/bench_table8_rand_uci.dir/bench/table8_rand_uci.cc.o.d"
  "bench_table8_rand_uci"
  "bench_table8_rand_uci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_rand_uci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
