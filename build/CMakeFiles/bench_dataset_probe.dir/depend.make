# Empty dependencies file for bench_dataset_probe.
# This may be replaced when dependencies are built.
