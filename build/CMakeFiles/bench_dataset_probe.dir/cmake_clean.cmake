file(REMOVE_RECURSE
  "CMakeFiles/bench_dataset_probe.dir/bench/dataset_probe.cc.o"
  "CMakeFiles/bench_dataset_probe.dir/bench/dataset_probe.cc.o.d"
  "bench_dataset_probe"
  "bench_dataset_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dataset_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
