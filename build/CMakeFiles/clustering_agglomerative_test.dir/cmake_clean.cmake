file(REMOVE_RECURSE
  "CMakeFiles/clustering_agglomerative_test.dir/tests/clustering/agglomerative_test.cc.o"
  "CMakeFiles/clustering_agglomerative_test.dir/tests/clustering/agglomerative_test.cc.o.d"
  "clustering_agglomerative_test"
  "clustering_agglomerative_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_agglomerative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
