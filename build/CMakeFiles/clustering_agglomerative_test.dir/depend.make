# Empty dependencies file for clustering_agglomerative_test.
# This may be replaced when dependencies are built.
