file(REMOVE_RECURSE
  "libmcirbm_util.a"
)
