file(REMOVE_RECURSE
  "CMakeFiles/mcirbm_util.dir/src/util/csv.cc.o"
  "CMakeFiles/mcirbm_util.dir/src/util/csv.cc.o.d"
  "CMakeFiles/mcirbm_util.dir/src/util/logging.cc.o"
  "CMakeFiles/mcirbm_util.dir/src/util/logging.cc.o.d"
  "CMakeFiles/mcirbm_util.dir/src/util/status.cc.o"
  "CMakeFiles/mcirbm_util.dir/src/util/status.cc.o.d"
  "CMakeFiles/mcirbm_util.dir/src/util/string_util.cc.o"
  "CMakeFiles/mcirbm_util.dir/src/util/string_util.cc.o.d"
  "libmcirbm_util.a"
  "libmcirbm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcirbm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
