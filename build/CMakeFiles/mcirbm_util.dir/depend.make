# Empty dependencies file for mcirbm_util.
# This may be replaced when dependencies are built.
