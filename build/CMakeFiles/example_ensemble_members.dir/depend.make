# Empty dependencies file for example_ensemble_members.
# This may be replaced when dependencies are built.
