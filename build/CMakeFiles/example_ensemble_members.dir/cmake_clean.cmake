file(REMOVE_RECURSE
  "CMakeFiles/example_ensemble_members.dir/examples/ensemble_members.cpp.o"
  "CMakeFiles/example_ensemble_members.dir/examples/ensemble_members.cpp.o.d"
  "example_ensemble_members"
  "example_ensemble_members.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ensemble_members.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
