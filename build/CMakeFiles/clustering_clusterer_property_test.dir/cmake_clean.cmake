file(REMOVE_RECURSE
  "CMakeFiles/clustering_clusterer_property_test.dir/tests/clustering/clusterer_property_test.cc.o"
  "CMakeFiles/clustering_clusterer_property_test.dir/tests/clustering/clusterer_property_test.cc.o.d"
  "clustering_clusterer_property_test"
  "clustering_clusterer_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_clusterer_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
