file(REMOVE_RECURSE
  "CMakeFiles/mcirbm_linalg.dir/src/linalg/eigen.cc.o"
  "CMakeFiles/mcirbm_linalg.dir/src/linalg/eigen.cc.o.d"
  "CMakeFiles/mcirbm_linalg.dir/src/linalg/matrix.cc.o"
  "CMakeFiles/mcirbm_linalg.dir/src/linalg/matrix.cc.o.d"
  "CMakeFiles/mcirbm_linalg.dir/src/linalg/ops.cc.o"
  "CMakeFiles/mcirbm_linalg.dir/src/linalg/ops.cc.o.d"
  "CMakeFiles/mcirbm_linalg.dir/src/linalg/pca.cc.o"
  "CMakeFiles/mcirbm_linalg.dir/src/linalg/pca.cc.o.d"
  "CMakeFiles/mcirbm_linalg.dir/src/linalg/stats.cc.o"
  "CMakeFiles/mcirbm_linalg.dir/src/linalg/stats.cc.o.d"
  "libmcirbm_linalg.a"
  "libmcirbm_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcirbm_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
