# Empty dependencies file for mcirbm_linalg.
# This may be replaced when dependencies are built.
