
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/eigen.cc" "CMakeFiles/mcirbm_linalg.dir/src/linalg/eigen.cc.o" "gcc" "CMakeFiles/mcirbm_linalg.dir/src/linalg/eigen.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "CMakeFiles/mcirbm_linalg.dir/src/linalg/matrix.cc.o" "gcc" "CMakeFiles/mcirbm_linalg.dir/src/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/ops.cc" "CMakeFiles/mcirbm_linalg.dir/src/linalg/ops.cc.o" "gcc" "CMakeFiles/mcirbm_linalg.dir/src/linalg/ops.cc.o.d"
  "/root/repo/src/linalg/pca.cc" "CMakeFiles/mcirbm_linalg.dir/src/linalg/pca.cc.o" "gcc" "CMakeFiles/mcirbm_linalg.dir/src/linalg/pca.cc.o.d"
  "/root/repo/src/linalg/stats.cc" "CMakeFiles/mcirbm_linalg.dir/src/linalg/stats.cc.o" "gcc" "CMakeFiles/mcirbm_linalg.dir/src/linalg/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/mcirbm_parallel.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_rng.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
