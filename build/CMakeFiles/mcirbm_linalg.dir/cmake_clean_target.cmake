file(REMOVE_RECURSE
  "libmcirbm_linalg.a"
)
