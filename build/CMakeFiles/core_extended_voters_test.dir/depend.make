# Empty dependencies file for core_extended_voters_test.
# This may be replaced when dependencies are built.
