file(REMOVE_RECURSE
  "CMakeFiles/core_extended_voters_test.dir/tests/core/extended_voters_test.cc.o"
  "CMakeFiles/core_extended_voters_test.dir/tests/core/extended_voters_test.cc.o.d"
  "core_extended_voters_test"
  "core_extended_voters_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_extended_voters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
