# Empty dependencies file for mcirbm_parallel.
# This may be replaced when dependencies are built.
