file(REMOVE_RECURSE
  "libmcirbm_parallel.a"
)
