file(REMOVE_RECURSE
  "CMakeFiles/mcirbm_parallel.dir/src/parallel/thread_pool.cc.o"
  "CMakeFiles/mcirbm_parallel.dir/src/parallel/thread_pool.cc.o.d"
  "libmcirbm_parallel.a"
  "libmcirbm_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcirbm_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
