# Empty dependencies file for mcirbm_eval.
# This may be replaced when dependencies are built.
