file(REMOVE_RECURSE
  "libmcirbm_eval.a"
)
