file(REMOVE_RECURSE
  "CMakeFiles/mcirbm_eval.dir/src/eval/algorithms.cc.o"
  "CMakeFiles/mcirbm_eval.dir/src/eval/algorithms.cc.o.d"
  "CMakeFiles/mcirbm_eval.dir/src/eval/experiment.cc.o"
  "CMakeFiles/mcirbm_eval.dir/src/eval/experiment.cc.o.d"
  "CMakeFiles/mcirbm_eval.dir/src/eval/paper_reference.cc.o"
  "CMakeFiles/mcirbm_eval.dir/src/eval/paper_reference.cc.o.d"
  "CMakeFiles/mcirbm_eval.dir/src/eval/report.cc.o"
  "CMakeFiles/mcirbm_eval.dir/src/eval/report.cc.o.d"
  "libmcirbm_eval.a"
  "libmcirbm_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcirbm_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
