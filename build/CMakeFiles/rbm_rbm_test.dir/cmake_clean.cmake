file(REMOVE_RECURSE
  "CMakeFiles/rbm_rbm_test.dir/tests/rbm/rbm_test.cc.o"
  "CMakeFiles/rbm_rbm_test.dir/tests/rbm/rbm_test.cc.o.d"
  "rbm_rbm_test"
  "rbm_rbm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbm_rbm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
