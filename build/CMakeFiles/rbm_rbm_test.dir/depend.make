# Empty dependencies file for rbm_rbm_test.
# This may be replaced when dependencies are built.
