file(REMOVE_RECURSE
  "CMakeFiles/clustering_dbscan_test.dir/tests/clustering/dbscan_test.cc.o"
  "CMakeFiles/clustering_dbscan_test.dir/tests/clustering/dbscan_test.cc.o.d"
  "clustering_dbscan_test"
  "clustering_dbscan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_dbscan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
