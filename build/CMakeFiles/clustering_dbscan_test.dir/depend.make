# Empty dependencies file for clustering_dbscan_test.
# This may be replaced when dependencies are built.
