file(REMOVE_RECURSE
  "libmcirbm_clustering.a"
)
