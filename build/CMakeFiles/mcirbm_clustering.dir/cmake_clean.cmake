file(REMOVE_RECURSE
  "CMakeFiles/mcirbm_clustering.dir/src/clustering/affinity_propagation.cc.o"
  "CMakeFiles/mcirbm_clustering.dir/src/clustering/affinity_propagation.cc.o.d"
  "CMakeFiles/mcirbm_clustering.dir/src/clustering/agglomerative.cc.o"
  "CMakeFiles/mcirbm_clustering.dir/src/clustering/agglomerative.cc.o.d"
  "CMakeFiles/mcirbm_clustering.dir/src/clustering/dbscan.cc.o"
  "CMakeFiles/mcirbm_clustering.dir/src/clustering/dbscan.cc.o.d"
  "CMakeFiles/mcirbm_clustering.dir/src/clustering/density_peaks.cc.o"
  "CMakeFiles/mcirbm_clustering.dir/src/clustering/density_peaks.cc.o.d"
  "CMakeFiles/mcirbm_clustering.dir/src/clustering/gmm.cc.o"
  "CMakeFiles/mcirbm_clustering.dir/src/clustering/gmm.cc.o.d"
  "CMakeFiles/mcirbm_clustering.dir/src/clustering/kmeans.cc.o"
  "CMakeFiles/mcirbm_clustering.dir/src/clustering/kmeans.cc.o.d"
  "CMakeFiles/mcirbm_clustering.dir/src/clustering/partition.cc.o"
  "CMakeFiles/mcirbm_clustering.dir/src/clustering/partition.cc.o.d"
  "CMakeFiles/mcirbm_clustering.dir/src/clustering/spectral.cc.o"
  "CMakeFiles/mcirbm_clustering.dir/src/clustering/spectral.cc.o.d"
  "libmcirbm_clustering.a"
  "libmcirbm_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcirbm_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
