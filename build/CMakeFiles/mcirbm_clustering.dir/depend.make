# Empty dependencies file for mcirbm_clustering.
# This may be replaced when dependencies are built.
