
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clustering/affinity_propagation.cc" "CMakeFiles/mcirbm_clustering.dir/src/clustering/affinity_propagation.cc.o" "gcc" "CMakeFiles/mcirbm_clustering.dir/src/clustering/affinity_propagation.cc.o.d"
  "/root/repo/src/clustering/agglomerative.cc" "CMakeFiles/mcirbm_clustering.dir/src/clustering/agglomerative.cc.o" "gcc" "CMakeFiles/mcirbm_clustering.dir/src/clustering/agglomerative.cc.o.d"
  "/root/repo/src/clustering/dbscan.cc" "CMakeFiles/mcirbm_clustering.dir/src/clustering/dbscan.cc.o" "gcc" "CMakeFiles/mcirbm_clustering.dir/src/clustering/dbscan.cc.o.d"
  "/root/repo/src/clustering/density_peaks.cc" "CMakeFiles/mcirbm_clustering.dir/src/clustering/density_peaks.cc.o" "gcc" "CMakeFiles/mcirbm_clustering.dir/src/clustering/density_peaks.cc.o.d"
  "/root/repo/src/clustering/gmm.cc" "CMakeFiles/mcirbm_clustering.dir/src/clustering/gmm.cc.o" "gcc" "CMakeFiles/mcirbm_clustering.dir/src/clustering/gmm.cc.o.d"
  "/root/repo/src/clustering/kmeans.cc" "CMakeFiles/mcirbm_clustering.dir/src/clustering/kmeans.cc.o" "gcc" "CMakeFiles/mcirbm_clustering.dir/src/clustering/kmeans.cc.o.d"
  "/root/repo/src/clustering/partition.cc" "CMakeFiles/mcirbm_clustering.dir/src/clustering/partition.cc.o" "gcc" "CMakeFiles/mcirbm_clustering.dir/src/clustering/partition.cc.o.d"
  "/root/repo/src/clustering/spectral.cc" "CMakeFiles/mcirbm_clustering.dir/src/clustering/spectral.cc.o" "gcc" "CMakeFiles/mcirbm_clustering.dir/src/clustering/spectral.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/mcirbm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_parallel.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_rng.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
