# Empty dependencies file for data_transforms_test.
# This may be replaced when dependencies are built.
