file(REMOVE_RECURSE
  "CMakeFiles/data_transforms_test.dir/tests/data/transforms_test.cc.o"
  "CMakeFiles/data_transforms_test.dir/tests/data/transforms_test.cc.o.d"
  "data_transforms_test"
  "data_transforms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_transforms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
