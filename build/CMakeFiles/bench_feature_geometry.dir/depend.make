# Empty dependencies file for bench_feature_geometry.
# This may be replaced when dependencies are built.
