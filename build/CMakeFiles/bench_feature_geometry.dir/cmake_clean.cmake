file(REMOVE_RECURSE
  "CMakeFiles/bench_feature_geometry.dir/bench/feature_geometry.cc.o"
  "CMakeFiles/bench_feature_geometry.dir/bench/feature_geometry.cc.o.d"
  "bench_feature_geometry"
  "bench_feature_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feature_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
