# Empty dependencies file for bench_probe.
# This may be replaced when dependencies are built.
