file(REMOVE_RECURSE
  "CMakeFiles/bench_probe.dir/bench/probe.cc.o"
  "CMakeFiles/bench_probe.dir/bench/probe.cc.o.d"
  "bench_probe"
  "bench_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
