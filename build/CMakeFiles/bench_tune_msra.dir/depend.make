# Empty dependencies file for bench_tune_msra.
# This may be replaced when dependencies are built.
