file(REMOVE_RECURSE
  "CMakeFiles/bench_tune_msra.dir/bench/tune_msra.cc.o"
  "CMakeFiles/bench_tune_msra.dir/bench/tune_msra.cc.o.d"
  "bench_tune_msra"
  "bench_tune_msra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tune_msra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
