file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_members.dir/bench/ablation_members.cc.o"
  "CMakeFiles/bench_ablation_members.dir/bench/ablation_members.cc.o.d"
  "bench_ablation_members"
  "bench_ablation_members.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_members.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
