# Empty dependencies file for bench_ablation_members.
# This may be replaced when dependencies are built.
