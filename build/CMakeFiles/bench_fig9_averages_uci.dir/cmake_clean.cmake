file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_averages_uci.dir/bench/fig9_averages_uci.cc.o"
  "CMakeFiles/bench_fig9_averages_uci.dir/bench/fig9_averages_uci.cc.o.d"
  "bench_fig9_averages_uci"
  "bench_fig9_averages_uci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_averages_uci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
