# Empty dependencies file for bench_fig9_averages_uci.
# This may be replaced when dependencies are built.
