# Empty dependencies file for clustering_affinity_propagation_test.
# This may be replaced when dependencies are built.
