file(REMOVE_RECURSE
  "CMakeFiles/clustering_affinity_propagation_test.dir/tests/clustering/affinity_propagation_test.cc.o"
  "CMakeFiles/clustering_affinity_propagation_test.dir/tests/clustering/affinity_propagation_test.cc.o.d"
  "clustering_affinity_propagation_test"
  "clustering_affinity_propagation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_affinity_propagation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
