# Empty dependencies file for core_sls_cap_test.
# This may be replaced when dependencies are built.
