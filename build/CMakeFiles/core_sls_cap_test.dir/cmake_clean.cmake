file(REMOVE_RECURSE
  "CMakeFiles/core_sls_cap_test.dir/tests/core/sls_cap_test.cc.o"
  "CMakeFiles/core_sls_cap_test.dir/tests/core/sls_cap_test.cc.o.d"
  "core_sls_cap_test"
  "core_sls_cap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sls_cap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
