# Empty dependencies file for rbm_training_extensions_test.
# This may be replaced when dependencies are built.
