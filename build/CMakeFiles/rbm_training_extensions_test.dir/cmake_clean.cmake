file(REMOVE_RECURSE
  "CMakeFiles/rbm_training_extensions_test.dir/tests/rbm/training_extensions_test.cc.o"
  "CMakeFiles/rbm_training_extensions_test.dir/tests/rbm/training_extensions_test.cc.o.d"
  "rbm_training_extensions_test"
  "rbm_training_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbm_training_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
