# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rbm_training_extensions_test.
