file(REMOVE_RECURSE
  "libmcirbm_core.a"
)
