
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/model_selection.cc" "CMakeFiles/mcirbm_core.dir/src/core/model_selection.cc.o" "gcc" "CMakeFiles/mcirbm_core.dir/src/core/model_selection.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "CMakeFiles/mcirbm_core.dir/src/core/pipeline.cc.o" "gcc" "CMakeFiles/mcirbm_core.dir/src/core/pipeline.cc.o.d"
  "/root/repo/src/core/self_training.cc" "CMakeFiles/mcirbm_core.dir/src/core/self_training.cc.o" "gcc" "CMakeFiles/mcirbm_core.dir/src/core/self_training.cc.o.d"
  "/root/repo/src/core/sls_gradient.cc" "CMakeFiles/mcirbm_core.dir/src/core/sls_gradient.cc.o" "gcc" "CMakeFiles/mcirbm_core.dir/src/core/sls_gradient.cc.o.d"
  "/root/repo/src/core/sls_models.cc" "CMakeFiles/mcirbm_core.dir/src/core/sls_models.cc.o" "gcc" "CMakeFiles/mcirbm_core.dir/src/core/sls_models.cc.o.d"
  "/root/repo/src/core/stack_serialize.cc" "CMakeFiles/mcirbm_core.dir/src/core/stack_serialize.cc.o" "gcc" "CMakeFiles/mcirbm_core.dir/src/core/stack_serialize.cc.o.d"
  "/root/repo/src/core/stacked.cc" "CMakeFiles/mcirbm_core.dir/src/core/stacked.cc.o" "gcc" "CMakeFiles/mcirbm_core.dir/src/core/stacked.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/mcirbm_rbm.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_clustering.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_voting.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_parallel.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_rng.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
