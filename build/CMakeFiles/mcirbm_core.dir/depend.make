# Empty dependencies file for mcirbm_core.
# This may be replaced when dependencies are built.
