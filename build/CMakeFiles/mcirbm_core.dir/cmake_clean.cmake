file(REMOVE_RECURSE
  "CMakeFiles/mcirbm_core.dir/src/core/model_selection.cc.o"
  "CMakeFiles/mcirbm_core.dir/src/core/model_selection.cc.o.d"
  "CMakeFiles/mcirbm_core.dir/src/core/pipeline.cc.o"
  "CMakeFiles/mcirbm_core.dir/src/core/pipeline.cc.o.d"
  "CMakeFiles/mcirbm_core.dir/src/core/self_training.cc.o"
  "CMakeFiles/mcirbm_core.dir/src/core/self_training.cc.o.d"
  "CMakeFiles/mcirbm_core.dir/src/core/sls_gradient.cc.o"
  "CMakeFiles/mcirbm_core.dir/src/core/sls_gradient.cc.o.d"
  "CMakeFiles/mcirbm_core.dir/src/core/sls_models.cc.o"
  "CMakeFiles/mcirbm_core.dir/src/core/sls_models.cc.o.d"
  "CMakeFiles/mcirbm_core.dir/src/core/stack_serialize.cc.o"
  "CMakeFiles/mcirbm_core.dir/src/core/stack_serialize.cc.o.d"
  "CMakeFiles/mcirbm_core.dir/src/core/stacked.cc.o"
  "CMakeFiles/mcirbm_core.dir/src/core/stacked.cc.o.d"
  "libmcirbm_core.a"
  "libmcirbm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcirbm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
