file(REMOVE_RECURSE
  "CMakeFiles/linalg_ops_test.dir/tests/linalg/ops_test.cc.o"
  "CMakeFiles/linalg_ops_test.dir/tests/linalg/ops_test.cc.o.d"
  "linalg_ops_test"
  "linalg_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
