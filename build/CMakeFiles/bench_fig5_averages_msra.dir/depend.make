# Empty dependencies file for bench_fig5_averages_msra.
# This may be replaced when dependencies are built.
