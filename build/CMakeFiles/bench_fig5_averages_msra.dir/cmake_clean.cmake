file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_averages_msra.dir/bench/fig5_averages_msra.cc.o"
  "CMakeFiles/bench_fig5_averages_msra.dir/bench/fig5_averages_msra.cc.o.d"
  "bench_fig5_averages_msra"
  "bench_fig5_averages_msra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_averages_msra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
