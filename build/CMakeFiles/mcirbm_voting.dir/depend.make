# Empty dependencies file for mcirbm_voting.
# This may be replaced when dependencies are built.
