file(REMOVE_RECURSE
  "libmcirbm_voting.a"
)
