file(REMOVE_RECURSE
  "CMakeFiles/mcirbm_voting.dir/src/voting/alignment.cc.o"
  "CMakeFiles/mcirbm_voting.dir/src/voting/alignment.cc.o.d"
  "CMakeFiles/mcirbm_voting.dir/src/voting/local_supervision.cc.o"
  "CMakeFiles/mcirbm_voting.dir/src/voting/local_supervision.cc.o.d"
  "CMakeFiles/mcirbm_voting.dir/src/voting/vote.cc.o"
  "CMakeFiles/mcirbm_voting.dir/src/voting/vote.cc.o.d"
  "libmcirbm_voting.a"
  "libmcirbm_voting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcirbm_voting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
