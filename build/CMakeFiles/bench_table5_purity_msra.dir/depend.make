# Empty dependencies file for bench_table5_purity_msra.
# This may be replaced when dependencies are built.
