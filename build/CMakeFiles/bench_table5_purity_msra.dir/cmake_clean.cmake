file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_purity_msra.dir/bench/table5_purity_msra.cc.o"
  "CMakeFiles/bench_table5_purity_msra.dir/bench/table5_purity_msra.cc.o.d"
  "bench_table5_purity_msra"
  "bench_table5_purity_msra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_purity_msra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
