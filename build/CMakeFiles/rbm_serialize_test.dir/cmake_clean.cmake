file(REMOVE_RECURSE
  "CMakeFiles/rbm_serialize_test.dir/tests/rbm/serialize_test.cc.o"
  "CMakeFiles/rbm_serialize_test.dir/tests/rbm/serialize_test.cc.o.d"
  "rbm_serialize_test"
  "rbm_serialize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbm_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
