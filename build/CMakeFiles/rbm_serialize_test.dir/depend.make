# Empty dependencies file for rbm_serialize_test.
# This may be replaced when dependencies are built.
