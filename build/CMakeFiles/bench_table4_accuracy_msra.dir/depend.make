# Empty dependencies file for bench_table4_accuracy_msra.
# This may be replaced when dependencies are built.
