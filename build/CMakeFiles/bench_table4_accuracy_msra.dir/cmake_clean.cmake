file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_accuracy_msra.dir/bench/table4_accuracy_msra.cc.o"
  "CMakeFiles/bench_table4_accuracy_msra.dir/bench/table4_accuracy_msra.cc.o.d"
  "bench_table4_accuracy_msra"
  "bench_table4_accuracy_msra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_accuracy_msra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
