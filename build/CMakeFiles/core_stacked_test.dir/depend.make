# Empty dependencies file for core_stacked_test.
# This may be replaced when dependencies are built.
