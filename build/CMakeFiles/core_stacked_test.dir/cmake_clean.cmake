file(REMOVE_RECURSE
  "CMakeFiles/core_stacked_test.dir/tests/core/stacked_test.cc.o"
  "CMakeFiles/core_stacked_test.dir/tests/core/stacked_test.cc.o.d"
  "core_stacked_test"
  "core_stacked_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_stacked_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
