file(REMOVE_RECURSE
  "CMakeFiles/eval_paper_reference_test.dir/tests/eval/paper_reference_test.cc.o"
  "CMakeFiles/eval_paper_reference_test.dir/tests/eval/paper_reference_test.cc.o.d"
  "eval_paper_reference_test"
  "eval_paper_reference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_paper_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
