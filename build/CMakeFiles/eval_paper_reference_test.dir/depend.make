# Empty dependencies file for eval_paper_reference_test.
# This may be replaced when dependencies are built.
