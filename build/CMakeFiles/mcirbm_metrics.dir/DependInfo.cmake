
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/external.cc" "CMakeFiles/mcirbm_metrics.dir/src/metrics/external.cc.o" "gcc" "CMakeFiles/mcirbm_metrics.dir/src/metrics/external.cc.o.d"
  "/root/repo/src/metrics/hungarian.cc" "CMakeFiles/mcirbm_metrics.dir/src/metrics/hungarian.cc.o" "gcc" "CMakeFiles/mcirbm_metrics.dir/src/metrics/hungarian.cc.o.d"
  "/root/repo/src/metrics/internal.cc" "CMakeFiles/mcirbm_metrics.dir/src/metrics/internal.cc.o" "gcc" "CMakeFiles/mcirbm_metrics.dir/src/metrics/internal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/mcirbm_clustering.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_parallel.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_rng.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
