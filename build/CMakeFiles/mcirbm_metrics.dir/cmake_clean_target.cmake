file(REMOVE_RECURSE
  "libmcirbm_metrics.a"
)
