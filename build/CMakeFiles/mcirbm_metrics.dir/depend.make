# Empty dependencies file for mcirbm_metrics.
# This may be replaced when dependencies are built.
