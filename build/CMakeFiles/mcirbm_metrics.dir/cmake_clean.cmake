file(REMOVE_RECURSE
  "CMakeFiles/mcirbm_metrics.dir/src/metrics/external.cc.o"
  "CMakeFiles/mcirbm_metrics.dir/src/metrics/external.cc.o.d"
  "CMakeFiles/mcirbm_metrics.dir/src/metrics/hungarian.cc.o"
  "CMakeFiles/mcirbm_metrics.dir/src/metrics/hungarian.cc.o.d"
  "CMakeFiles/mcirbm_metrics.dir/src/metrics/internal.cc.o"
  "CMakeFiles/mcirbm_metrics.dir/src/metrics/internal.cc.o.d"
  "libmcirbm_metrics.a"
  "libmcirbm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcirbm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
