file(REMOVE_RECURSE
  "CMakeFiles/core_sls_models_test.dir/tests/core/sls_models_test.cc.o"
  "CMakeFiles/core_sls_models_test.dir/tests/core/sls_models_test.cc.o.d"
  "core_sls_models_test"
  "core_sls_models_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sls_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
