file(REMOVE_RECURSE
  "libmcirbm_rng.a"
)
