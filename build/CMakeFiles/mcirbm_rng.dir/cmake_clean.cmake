file(REMOVE_RECURSE
  "CMakeFiles/mcirbm_rng.dir/src/rng/rng.cc.o"
  "CMakeFiles/mcirbm_rng.dir/src/rng/rng.cc.o.d"
  "libmcirbm_rng.a"
  "libmcirbm_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcirbm_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
