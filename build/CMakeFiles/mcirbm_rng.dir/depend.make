# Empty dependencies file for mcirbm_rng.
# This may be replaced when dependencies are built.
