# Empty dependencies file for core_sls_gradient_test.
# This may be replaced when dependencies are built.
