# Empty dependencies file for core_self_training_test.
# This may be replaced when dependencies are built.
