file(REMOVE_RECURSE
  "CMakeFiles/core_self_training_test.dir/tests/core/self_training_test.cc.o"
  "CMakeFiles/core_self_training_test.dir/tests/core/self_training_test.cc.o.d"
  "core_self_training_test"
  "core_self_training_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_self_training_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
