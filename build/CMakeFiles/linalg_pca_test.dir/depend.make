# Empty dependencies file for linalg_pca_test.
# This may be replaced when dependencies are built.
