file(REMOVE_RECURSE
  "CMakeFiles/linalg_pca_test.dir/tests/linalg/pca_test.cc.o"
  "CMakeFiles/linalg_pca_test.dir/tests/linalg/pca_test.cc.o.d"
  "linalg_pca_test"
  "linalg_pca_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_pca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
