file(REMOVE_RECURSE
  "CMakeFiles/parallel_thread_pool_test.dir/tests/parallel/thread_pool_test.cc.o"
  "CMakeFiles/parallel_thread_pool_test.dir/tests/parallel/thread_pool_test.cc.o.d"
  "parallel_thread_pool_test"
  "parallel_thread_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_thread_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
