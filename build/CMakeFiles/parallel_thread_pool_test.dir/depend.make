# Empty dependencies file for parallel_thread_pool_test.
# This may be replaced when dependencies are built.
