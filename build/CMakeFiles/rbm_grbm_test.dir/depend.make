# Empty dependencies file for rbm_grbm_test.
# This may be replaced when dependencies are built.
