file(REMOVE_RECURSE
  "CMakeFiles/rbm_grbm_test.dir/tests/rbm/grbm_test.cc.o"
  "CMakeFiles/rbm_grbm_test.dir/tests/rbm/grbm_test.cc.o.d"
  "rbm_grbm_test"
  "rbm_grbm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbm_grbm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
