file(REMOVE_RECURSE
  "CMakeFiles/metrics_external_test.dir/tests/metrics/external_test.cc.o"
  "CMakeFiles/metrics_external_test.dir/tests/metrics/external_test.cc.o.d"
  "metrics_external_test"
  "metrics_external_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_external_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
