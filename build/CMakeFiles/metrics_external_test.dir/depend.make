# Empty dependencies file for metrics_external_test.
# This may be replaced when dependencies are built.
