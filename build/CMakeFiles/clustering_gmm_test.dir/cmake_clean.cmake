file(REMOVE_RECURSE
  "CMakeFiles/clustering_gmm_test.dir/tests/clustering/gmm_test.cc.o"
  "CMakeFiles/clustering_gmm_test.dir/tests/clustering/gmm_test.cc.o.d"
  "clustering_gmm_test"
  "clustering_gmm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_gmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
