# Empty dependencies file for clustering_gmm_test.
# This may be replaced when dependencies are built.
