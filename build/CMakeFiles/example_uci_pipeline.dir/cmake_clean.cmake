file(REMOVE_RECURSE
  "CMakeFiles/example_uci_pipeline.dir/examples/uci_pipeline.cpp.o"
  "CMakeFiles/example_uci_pipeline.dir/examples/uci_pipeline.cpp.o.d"
  "example_uci_pipeline"
  "example_uci_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_uci_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
