# Empty dependencies file for example_uci_pipeline.
# This may be replaced when dependencies are built.
