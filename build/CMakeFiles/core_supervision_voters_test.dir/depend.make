# Empty dependencies file for core_supervision_voters_test.
# This may be replaced when dependencies are built.
