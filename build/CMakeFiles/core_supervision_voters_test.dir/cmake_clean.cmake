file(REMOVE_RECURSE
  "CMakeFiles/core_supervision_voters_test.dir/tests/core/supervision_voters_test.cc.o"
  "CMakeFiles/core_supervision_voters_test.dir/tests/core/supervision_voters_test.cc.o.d"
  "core_supervision_voters_test"
  "core_supervision_voters_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_supervision_voters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
