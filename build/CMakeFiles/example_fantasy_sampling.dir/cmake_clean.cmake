file(REMOVE_RECURSE
  "CMakeFiles/example_fantasy_sampling.dir/examples/fantasy_sampling.cpp.o"
  "CMakeFiles/example_fantasy_sampling.dir/examples/fantasy_sampling.cpp.o.d"
  "example_fantasy_sampling"
  "example_fantasy_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fantasy_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
