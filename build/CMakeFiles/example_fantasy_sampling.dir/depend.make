# Empty dependencies file for example_fantasy_sampling.
# This may be replaced when dependencies are built.
