file(REMOVE_RECURSE
  "CMakeFiles/parallel_parity_test.dir/tests/parallel/parity_test.cc.o"
  "CMakeFiles/parallel_parity_test.dir/tests/parallel/parity_test.cc.o.d"
  "parallel_parity_test"
  "parallel_parity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_parity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
