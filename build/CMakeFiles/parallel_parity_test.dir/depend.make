# Empty dependencies file for parallel_parity_test.
# This may be replaced when dependencies are built.
