file(REMOVE_RECURSE
  "CMakeFiles/data_paper_datasets_test.dir/tests/data/paper_datasets_test.cc.o"
  "CMakeFiles/data_paper_datasets_test.dir/tests/data/paper_datasets_test.cc.o.d"
  "data_paper_datasets_test"
  "data_paper_datasets_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_paper_datasets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
