# Empty dependencies file for data_paper_datasets_test.
# This may be replaced when dependencies are built.
