file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_fmi_uci.dir/bench/table9_fmi_uci.cc.o"
  "CMakeFiles/bench_table9_fmi_uci.dir/bench/table9_fmi_uci.cc.o.d"
  "bench_table9_fmi_uci"
  "bench_table9_fmi_uci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_fmi_uci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
