# Empty dependencies file for bench_table9_fmi_uci.
# This may be replaced when dependencies are built.
