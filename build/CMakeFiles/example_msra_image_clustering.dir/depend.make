# Empty dependencies file for example_msra_image_clustering.
# This may be replaced when dependencies are built.
