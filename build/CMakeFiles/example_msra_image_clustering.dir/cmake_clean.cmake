file(REMOVE_RECURSE
  "CMakeFiles/example_msra_image_clustering.dir/examples/msra_image_clustering.cpp.o"
  "CMakeFiles/example_msra_image_clustering.dir/examples/msra_image_clustering.cpp.o.d"
  "example_msra_image_clustering"
  "example_msra_image_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_msra_image_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
