file(REMOVE_RECURSE
  "CMakeFiles/metrics_internal_test.dir/tests/metrics/internal_test.cc.o"
  "CMakeFiles/metrics_internal_test.dir/tests/metrics/internal_test.cc.o.d"
  "metrics_internal_test"
  "metrics_internal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_internal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
