# Empty dependencies file for metrics_internal_test.
# This may be replaced when dependencies are built.
