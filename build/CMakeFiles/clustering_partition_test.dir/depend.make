# Empty dependencies file for clustering_partition_test.
# This may be replaced when dependencies are built.
