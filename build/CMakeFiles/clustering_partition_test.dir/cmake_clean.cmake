file(REMOVE_RECURSE
  "CMakeFiles/clustering_partition_test.dir/tests/clustering/partition_test.cc.o"
  "CMakeFiles/clustering_partition_test.dir/tests/clustering/partition_test.cc.o.d"
  "clustering_partition_test"
  "clustering_partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
