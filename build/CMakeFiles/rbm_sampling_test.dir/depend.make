# Empty dependencies file for rbm_sampling_test.
# This may be replaced when dependencies are built.
