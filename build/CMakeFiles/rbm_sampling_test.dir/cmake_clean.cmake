file(REMOVE_RECURSE
  "CMakeFiles/rbm_sampling_test.dir/tests/rbm/sampling_test.cc.o"
  "CMakeFiles/rbm_sampling_test.dir/tests/rbm/sampling_test.cc.o.d"
  "rbm_sampling_test"
  "rbm_sampling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbm_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
