file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_self_training.dir/bench/ablation_self_training.cc.o"
  "CMakeFiles/bench_ablation_self_training.dir/bench/ablation_self_training.cc.o.d"
  "bench_ablation_self_training"
  "bench_ablation_self_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_self_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
