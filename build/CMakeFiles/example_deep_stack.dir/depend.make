# Empty dependencies file for example_deep_stack.
# This may be replaced when dependencies are built.
