file(REMOVE_RECURSE
  "CMakeFiles/example_deep_stack.dir/examples/deep_stack.cpp.o"
  "CMakeFiles/example_deep_stack.dir/examples/deep_stack.cpp.o.d"
  "example_deep_stack"
  "example_deep_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_deep_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
