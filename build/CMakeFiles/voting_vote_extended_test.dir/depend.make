# Empty dependencies file for voting_vote_extended_test.
# This may be replaced when dependencies are built.
