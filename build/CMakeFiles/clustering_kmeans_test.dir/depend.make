# Empty dependencies file for clustering_kmeans_test.
# This may be replaced when dependencies are built.
