file(REMOVE_RECURSE
  "CMakeFiles/clustering_kmeans_test.dir/tests/clustering/kmeans_test.cc.o"
  "CMakeFiles/clustering_kmeans_test.dir/tests/clustering/kmeans_test.cc.o.d"
  "clustering_kmeans_test"
  "clustering_kmeans_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_kmeans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
