file(REMOVE_RECURSE
  "CMakeFiles/mcirbm_data.dir/src/data/dataset.cc.o"
  "CMakeFiles/mcirbm_data.dir/src/data/dataset.cc.o.d"
  "CMakeFiles/mcirbm_data.dir/src/data/io.cc.o"
  "CMakeFiles/mcirbm_data.dir/src/data/io.cc.o.d"
  "CMakeFiles/mcirbm_data.dir/src/data/paper_datasets.cc.o"
  "CMakeFiles/mcirbm_data.dir/src/data/paper_datasets.cc.o.d"
  "CMakeFiles/mcirbm_data.dir/src/data/synthetic.cc.o"
  "CMakeFiles/mcirbm_data.dir/src/data/synthetic.cc.o.d"
  "CMakeFiles/mcirbm_data.dir/src/data/transforms.cc.o"
  "CMakeFiles/mcirbm_data.dir/src/data/transforms.cc.o.d"
  "libmcirbm_data.a"
  "libmcirbm_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcirbm_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
