# Empty dependencies file for mcirbm_data.
# This may be replaced when dependencies are built.
