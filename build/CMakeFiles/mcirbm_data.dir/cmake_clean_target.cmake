file(REMOVE_RECURSE
  "libmcirbm_data.a"
)
