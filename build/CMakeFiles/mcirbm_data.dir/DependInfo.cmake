
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "CMakeFiles/mcirbm_data.dir/src/data/dataset.cc.o" "gcc" "CMakeFiles/mcirbm_data.dir/src/data/dataset.cc.o.d"
  "/root/repo/src/data/io.cc" "CMakeFiles/mcirbm_data.dir/src/data/io.cc.o" "gcc" "CMakeFiles/mcirbm_data.dir/src/data/io.cc.o.d"
  "/root/repo/src/data/paper_datasets.cc" "CMakeFiles/mcirbm_data.dir/src/data/paper_datasets.cc.o" "gcc" "CMakeFiles/mcirbm_data.dir/src/data/paper_datasets.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "CMakeFiles/mcirbm_data.dir/src/data/synthetic.cc.o" "gcc" "CMakeFiles/mcirbm_data.dir/src/data/synthetic.cc.o.d"
  "/root/repo/src/data/transforms.cc" "CMakeFiles/mcirbm_data.dir/src/data/transforms.cc.o" "gcc" "CMakeFiles/mcirbm_data.dir/src/data/transforms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/mcirbm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_parallel.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_rng.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/mcirbm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
