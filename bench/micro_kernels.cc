// google-benchmark microbenchmarks for the numeric kernels:
// GEMM variants, CD-1 epoch, sls gradient naive vs fast (the ablation of
// the algebraic reduction), and the three clusterers.
#include <benchmark/benchmark.h>

#include "clustering/affinity_propagation.h"
#include "clustering/density_peaks.h"
#include "clustering/kmeans.h"
#include "core/sls_gradient.h"
#include "data/synthetic.h"
#include "linalg/ops.h"
#include "rbm/grbm.h"
#include "rbm/rbm.h"
#include "rng/rng.h"

namespace {

using namespace mcirbm;  // NOLINT: bench driver

linalg::Matrix RandomMatrix(std::size_t r, std::size_t c,
                            std::uint64_t seed) {
  rng::Rng rng(seed);
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Gaussian();
  return m;
}

void BM_Gemm(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const linalg::Matrix a = RandomMatrix(n, n, 1);
  const linalg::Matrix b = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::Gemm(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTransA(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const linalg::Matrix a = RandomMatrix(n, n, 3);
  const linalg::Matrix b = RandomMatrix(n, n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::GemmTransA(a, b));
  }
}
BENCHMARK(BM_GemmTransA)->Arg(128)->Arg(256);

void BM_PairwiseDistances(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const linalg::Matrix m = RandomMatrix(n, 64, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::PairwiseSquaredDistances(m));
  }
}
BENCHMARK(BM_PairwiseDistances)->Arg(128)->Arg(512);

void BM_RbmCdEpoch(benchmark::State& state) {
  const int nv = static_cast<int>(state.range(0));
  rbm::RbmConfig cfg;
  cfg.num_visible = nv;
  cfg.num_hidden = 64;
  cfg.epochs = 1;
  cfg.learning_rate = 1e-4;
  const linalg::Matrix x = RandomMatrix(256, nv, 6);
  for (auto _ : state) {
    rbm::Grbm model(cfg);
    benchmark::DoNotOptimize(model.Train(x));
  }
}
BENCHMARK(BM_RbmCdEpoch)->Arg(128)->Arg(512)->Arg(899);

// The headline kernel ablation: literal pairwise Eq. 27 vs the GEMM
// reduction, at growing cluster sizes. The naive form is O(N^2 d), the
// fast form O(N d); the gap is the reason the reduction exists.
void SlsGradientBench(benchmark::State& state, bool fast) {
  const std::size_t m = state.range(0);
  const std::size_t nv = 64, nh = 32;
  const linalg::Matrix v = RandomMatrix(m, nv, 7);
  const linalg::Matrix w = RandomMatrix(nv, nh, 8);
  std::vector<double> b(nh, 0.1);
  linalg::Matrix h = linalg::Gemm(v, w);
  linalg::AddRowVector(&h, b);
  linalg::SigmoidInPlace(&h);
  voting::LocalSupervision sup;
  sup.num_clusters = 3;
  sup.cluster_of.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    sup.cluster_of[i] = static_cast<int>(i % 3);
  }
  std::vector<std::size_t> idx(m);
  for (std::size_t i = 0; i < m; ++i) idx[i] = i;
  const core::SupervisionBatch batch =
      core::BuildSupervisionBatch(sup, idx);
  linalg::Matrix dw(nv, nh);
  std::vector<double> db(nh, 0.0);
  for (auto _ : state) {
    dw.Fill(0.0);
    std::fill(db.begin(), db.end(), 0.0);
    if (fast) {
      core::AccumulateSlsGradientFast(v, h, batch, w, b, {}, {&dw, &db});
    } else {
      core::AccumulateSlsGradientNaive(v, h, batch, w, b, {}, {&dw, &db});
    }
    benchmark::DoNotOptimize(dw.data());
  }
}
void BM_SlsGradientNaive(benchmark::State& state) {
  SlsGradientBench(state, false);
}
void BM_SlsGradientFast(benchmark::State& state) {
  SlsGradientBench(state, true);
}
BENCHMARK(BM_SlsGradientNaive)->Arg(32)->Arg(128)->Arg(256);
BENCHMARK(BM_SlsGradientFast)->Arg(32)->Arg(128)->Arg(256)->Arg(1024);

data::Dataset BenchBlobs(int n) {
  data::GaussianMixtureSpec spec;
  spec.name = "bench";
  spec.num_classes = 3;
  spec.num_instances = n;
  spec.num_features = 32;
  spec.separation = 4.0;
  return data::GenerateGaussianMixture(spec, 9);
}

void BM_KMeans(benchmark::State& state) {
  const data::Dataset ds = BenchBlobs(static_cast<int>(state.range(0)));
  clustering::KMeansConfig cfg;
  cfg.k = 3;
  const clustering::KMeans km(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(km.Cluster(ds.x, 1));
  }
}
BENCHMARK(BM_KMeans)->Arg(256)->Arg(1024);

void BM_DensityPeaks(benchmark::State& state) {
  const data::Dataset ds = BenchBlobs(static_cast<int>(state.range(0)));
  clustering::DensityPeaksConfig cfg;
  cfg.k = 3;
  const clustering::DensityPeaks dp(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp.Cluster(ds.x, 1));
  }
}
BENCHMARK(BM_DensityPeaks)->Arg(256)->Arg(512);

void BM_AffinityPropagation(benchmark::State& state) {
  const data::Dataset ds = BenchBlobs(static_cast<int>(state.range(0)));
  clustering::AffinityPropagationConfig cfg;  // median preference
  const clustering::AffinityPropagation ap(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ap.Cluster(ds.x, 1));
  }
}
BENCHMARK(BM_AffinityPropagation)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
