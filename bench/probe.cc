// Diagnostic probe for the sls mechanism:
//  (a) quality of the self-learning supervision (coverage + precision),
//  (b) k-means accuracy on sls features when the supervision is the
//      ground truth (mechanism upper bound),
//  (c) scale sweep with real supervision.
#include <cstdlib>
#include <iostream>

#include "clustering/kmeans.h"
#include "core/pipeline.h"
#include "core/sls_models.h"
#include "data/synthetic.h"
#include "data/transforms.h"
#include "metrics/external.h"
#include "util/string_util.h"

using namespace mcirbm;  // NOLINT: internal tool

int main(int argc, char** argv) {
  const double separation = argc > 1 ? std::atof(argv[1]) : 2.2;
  data::GaussianMixtureSpec spec;
  spec.name = "probe";
  spec.num_classes = 3;
  spec.num_instances = 300;
  spec.num_features = 30;
  spec.separation = separation;
  spec.informative_fraction = 0.4;
  spec.confusion_fraction = 0.15;
  data::Dataset ds = data::GenerateGaussianMixture(spec, 7);
  linalg::Matrix x = ds.x;
  data::StandardizeInPlace(&x);

  auto kmeans_acc = [&](const linalg::Matrix& feats) {
    clustering::KMeansConfig km;
    km.k = ds.num_classes;
    const auto r = clustering::KMeans(km).Cluster(feats, 1);
    return metrics::ClusteringAccuracy(ds.labels, r.assignment);
  };
  std::cout << "raw acc=" << FormatDouble(kmeans_acc(x), 4) << "\n";

  // (a) supervision quality, unanimous vs majority.
  for (auto strategy : {voting::VoteStrategy::kUnanimous,
                        voting::VoteStrategy::kMajority}) {
    core::SupervisionConfig scfg;
    scfg.num_clusters = ds.num_classes;
    scfg.strategy = strategy;
    const auto sup = core::ComputeSelfLearningSupervision(x, scfg, 3);
    std::vector<int> truth, pred;
    for (std::size_t i = 0; i < sup.cluster_of.size(); ++i) {
      if (sup.cluster_of[i] >= 0) {
        truth.push_back(ds.labels[i]);
        pred.push_back(sup.cluster_of[i]);
      }
    }
    std::cout << (strategy == voting::VoteStrategy::kUnanimous
                      ? "unanimous"
                      : "majority ")
              << " coverage=" << FormatDouble(sup.Coverage(), 3)
              << " clusters=" << sup.num_clusters << " precision="
              << (truth.empty()
                      ? 0.0
                      : metrics::ClusteringAccuracy(truth, pred))
              << "\n";
  }

  // (b)+(c): oracle vs real supervision across scales.
  voting::LocalSupervision oracle;
  oracle.num_clusters = ds.num_classes;
  oracle.cluster_of = ds.labels;

  core::SupervisionConfig scfg;
  scfg.num_clusters = ds.num_classes;
  const auto real_sup = core::ComputeSelfLearningSupervision(x, scfg, 3);

  std::cout << "scale    epochs  dw      oracle  real\n";
  for (int epochs : {40, 120}) {
    for (double scale : {1000.0, 10000.0, 50000.0}) {
      for (double dw : {1.0, 5.0, 20.0}) {
        rbm::RbmConfig rc;
        rc.num_visible = static_cast<int>(x.cols());
        rc.num_hidden = 64;
        rc.epochs = epochs;
        rc.learning_rate = 1e-4;
        rc.seed = 5;
        core::SlsConfig sls;
        sls.eta = 0.4;
        sls.supervision_scale = scale;
        sls.disperse_weight = dw;

        core::SlsGrbm with_oracle(rc, sls, oracle);
        with_oracle.Train(x);
        core::SlsGrbm with_real(rc, sls, real_sup);
        with_real.Train(x);
        std::cout << PadLeft(FormatDouble(scale, 0), 8) << " "
                  << PadLeft(std::to_string(epochs), 6) << " "
                  << PadLeft(FormatDouble(dw, 1), 6) << " "
                  << PadLeft(FormatDouble(
                                 kmeans_acc(with_oracle.HiddenFeatures(x)),
                                 4),
                             7)
                  << " "
                  << PadLeft(FormatDouble(
                                 kmeans_acc(with_real.HiddenFeatures(x)),
                                 4),
                             7)
                  << "\n";
      }
    }
  }
  return 0;
}
