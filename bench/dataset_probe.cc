// Per-dataset diagnostic: raw clustering accuracy of each base clusterer,
// unanimous-vote coverage and precision, on the actual paper-dataset
// generators. Drives calibration of the GaussianMixtureSpec knobs.
#include <iostream>

#include "core/pipeline.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "eval/algorithms.h"
#include "metrics/external.h"
#include "util/string_util.h"

using namespace mcirbm;  // NOLINT: internal tool

namespace {

void Diagnose(const data::Dataset& ds, bool grbm, std::size_t cap) {
  data::Dataset working = data::StratifiedSubsample(ds, cap, 1);
  const linalg::Matrix& x_raw = working.x;  // raw baselines cluster this
  linalg::Matrix x = working.x;             // encoders + supervision see this
  if (grbm) {
    data::StandardizeInPlace(&x);
  } else {
    data::MinMaxScaleInPlace(&x);
  }
  std::cout << PadRight(working.name, 28) << " n=" << working.num_instances()
            << " d=" << working.num_features();
  for (int c = 0; c < eval::kNumClusterers; ++c) {
    const auto r = eval::RunClusterer(static_cast<eval::ClustererKind>(c),
                                      x_raw, working.num_classes, 1);
    std::cout << "  "
              << eval::ClustererKindName(
                     static_cast<eval::ClustererKind>(c))
              << "="
              << FormatDouble(
                     metrics::ClusteringAccuracy(working.labels,
                                                 r.assignment),
                     3);
  }
  core::SupervisionConfig scfg;
  scfg.num_clusters = working.num_classes;
  const auto sup = core::ComputeSelfLearningSupervision(x, scfg, 1);
  std::vector<int> truth, pred;
  for (std::size_t i = 0; i < sup.cluster_of.size(); ++i) {
    if (sup.cluster_of[i] >= 0) {
      truth.push_back(working.labels[i]);
      pred.push_back(sup.cluster_of[i]);
    }
  }
  std::cout << "  cov=" << FormatDouble(sup.Coverage(), 3) << " prec="
            << FormatDouble(truth.empty() ? 0.0
                                          : metrics::ClusteringAccuracy(
                                                truth, pred),
                            3)
            << " pur="
            << FormatDouble(
                   truth.empty() ? 0.0 : metrics::Purity(truth, pred), 3)
            << "\n";
}

}  // namespace

int main() {
  std::cout << "--- MSRA-like (GRBM family) ---\n";
  for (int i = 0; i < data::NumMsraDatasets(); ++i) {
    Diagnose(data::GenerateMsraLike(i, 3), /*grbm=*/true, /*cap=*/300);
  }
  std::cout << "--- UCI-like (RBM family) ---\n";
  for (int i = 0; i < data::NumUciDatasets(); ++i) {
    Diagnose(data::GenerateUciLike(i, 3), /*grbm=*/false, /*cap=*/300);
  }
  return 0;
}
