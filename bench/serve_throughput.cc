// Serving throughput/latency benchmark for the src/serve micro-batcher
// and the replica-sharded serve::Router.
//
// A tiny GRBM encoder is trained once, saved, and served from the model
// store; client threads then hammer the Server with single-row Transform
// requests. The sweep crosses batch size (max_batch_rows 1 = no
// coalescing, i.e. one-row-at-a-time passes, vs 8/32/128) with pool
// width 1/2/4/8 and reports requests/sec plus p50/p95/p99 queue latency
// derived from the serving layer's own obs histograms (the same
// serve_queue_wait_micros series op=stats exposes), merged across model
// keys — so the bench exercises the production metrics path instead of a
// bench-only latency vector.
// A second sweep (serve_replicas1/2/4) fixes the batch size at 32 and
// scales the Router's replica count instead, spreading requests over 16
// model keys so the key-hash actually shards — the number to watch on a
// multi-socket box is rps vs replicas at a fixed pool width.
//
// Output is the same JSON shape as bench/parallel_scaling.cc — a
// top-level {"hardware_threads", "kernels": [{"name", "n", "results":
// [{"threads", "seconds", "speedup", ...}]}]} document — with serving
// extras (rps, p50/p95/p99 queue micros, mean batch rows, and mean
// queue/exec span micros from 1-in-16 sampled traces) on each result, so
// CI uploads it alongside the scaling artifact and trajectory tooling
// can parse both with one reader. The serving win to look for: at
// MCIRBM_THREADS >= 2, the serve_batch8/32/128 kernels should beat
// serve_batch1 (unbatched) on rps.
//
// Environment knobs:
//   MCIRBM_BENCH_SERVE_REQUESTS=<int>  requests per measurement (1000)
//   MCIRBM_BENCH_SERVE_CLIENTS=<int>   client threads (2)
//   MCIRBM_BENCH_SERVE_REPS=<int>      repetitions, best-of (2)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/api.h"
#include "data/synthetic.h"
#include "obs/registry.h"
#include "parallel/thread_pool.h"
#include "serve/serve.h"
#include "util/timer.h"

namespace {

using namespace mcirbm;  // NOLINT: bench driver

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

struct Result {
  int threads = 0;
  double seconds = 0;
  double rps = 0;
  double p50_micros = 0;
  double p95_micros = 0;
  double p99_micros = 0;
  double mean_batch_rows = 0;
  // Mean per-span breakdown from sampled traces (obs/trace.h). At the
  // Server/Router layer only queue and exec spans exist — format is the
  // executor's span and stays 0 here (net_throughput reports it).
  double span_queue_micros = 0;
  double span_exec_micros = 0;
  double span_format_micros = 0;
};

// Every 16th request carries a trace — enough samples for stable span
// means, cheap enough (one atomic + two short mutexed appends per
// sampled request) not to perturb the measurement.
obs::TraceConfig BenchTraceConfig() {
  obs::TraceConfig config;
  config.sample_every_n = 16;
  config.capacity = 4096;
  return config;
}

void FillSpanMeans(const obs::TraceStore& store, Result* result) {
  double sums[3] = {0, 0, 0};
  std::uint64_t counts[3] = {0, 0, 0};
  for (const obs::Trace& trace : store.snapshot().traces) {
    for (const obs::TraceSpan& span : trace.spans) {
      const int slot = span.name == "queue"    ? 0
                       : span.name == "exec"   ? 1
                       : span.name == "format" ? 2
                                               : -1;
      if (slot < 0) continue;
      sums[slot] += static_cast<double>(span.duration_micros);
      ++counts[slot];
    }
  }
  result->span_queue_micros = counts[0] ? sums[0] / counts[0] : 0;
  result->span_exec_micros = counts[1] ? sums[1] / counts[1] : 0;
  result->span_format_micros = counts[2] ? sums[2] / counts[2] : 0;
}

// Folds every serve_queue_wait_micros series (one per model key) into a
// single histogram snapshot — quantiles of the merge are quantiles of
// the whole request stream.
obs::Histogram::Snapshot MergedQueueWait(const obs::MetricsSnapshot& snap) {
  obs::Histogram::Snapshot merged;
  for (const auto& [key, histogram] : snap.histograms) {
    if (key.first == "serve_queue_wait_micros") merged.Merge(histogram);
  }
  return merged;
}

linalg::Matrix RowOf(const linalg::Matrix& x, std::size_t r) {
  linalg::Matrix row(1, x.cols());
  std::memcpy(row.data(), x.data() + r * x.cols(),
              x.cols() * sizeof(double));
  return row;
}

// One measurement: `clients` threads submit `requests` single-row
// transforms against a fresh Server serving `model_path`; best-of-`reps`
// wall time, latency percentiles from the batcher's queue-wait records.
Result Measure(const std::string& model_path, const linalg::Matrix& x,
               int threads, std::size_t max_batch_rows,
               std::size_t requests, int clients, int reps) {
  Result result;
  result.threads = threads;
  parallel::SetNumThreads(threads);
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    serve::ServerConfig config;
    config.batcher.max_batch_rows = max_batch_rows;
    config.batcher.max_queue_micros = 200;
    serve::Server server(config);
    if (!server.store().Get(model_path).ok()) std::abort();  // pre-warm
    obs::TraceStore trace_store(BenchTraceConfig());

    WallTimer timer;
    std::vector<std::thread> workers;
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        std::vector<std::future<StatusOr<linalg::Matrix>>> futures;
        std::vector<std::shared_ptr<obs::TraceContext>> traces;
        futures.reserve(requests / clients + 1);
        traces.reserve(requests / clients + 1);
        for (std::size_t r = c; r < requests;
             r += static_cast<std::size_t>(clients)) {
          auto trace =
              trace_store.MaybeStartTrace("transform", "", MonotonicMicros());
          futures.push_back(
              server.Submit(model_path, RowOf(x, r % x.rows()), trace));
          traces.push_back(std::move(trace));
        }
        for (std::size_t i = 0; i < futures.size(); ++i) {
          if (!futures[i].get().ok()) std::abort();
          trace_store.Finish(traces[i], MonotonicMicros());
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    const double seconds = timer.Seconds();
    if (seconds < best) {
      best = seconds;
      result.seconds = seconds;
      result.rps = static_cast<double>(requests) / seconds;
      const obs::Histogram::Snapshot waits =
          MergedQueueWait(server.metrics_snapshot());
      result.p50_micros = waits.Quantile(0.50);
      result.p95_micros = waits.Quantile(0.95);
      result.p99_micros = waits.Quantile(0.99);
      result.mean_batch_rows = server.stats().batcher.MeanBatchRows();
      FillSpanMeans(trace_store, &result);
    }
    server.Shutdown();
  }
  return result;
}

// One Router measurement: requests spread round-robin over `kRouterKeys`
// in-memory model keys (the same artifact Put under each name), so a
// replica count > 1 genuinely shards the stream across batchers.
constexpr int kRouterKeys = 16;

Result MeasureRouter(const std::string& model_path, const linalg::Matrix& x,
                     int threads, std::size_t replicas,
                     std::size_t requests, int clients, int reps) {
  Result result;
  result.threads = threads;
  parallel::SetNumThreads(threads);
  double best = 1e300;
  std::vector<std::string> keys;
  for (int k = 0; k < kRouterKeys; ++k) {
    keys.push_back("replica_key_" + std::to_string(k));
  }
  for (int rep = 0; rep < reps; ++rep) {
    serve::RouterConfig config;
    config.replicas = replicas;
    config.batcher.max_batch_rows = 32;
    config.batcher.max_queue_micros = 200;
    // The shared store must hold every pre-warmed key, or the LRU would
    // evict the early ones and the submit path would miss to disk.
    config.store_capacity = kRouterKeys;
    serve::Router router(config);
    for (const std::string& key : keys) {  // pre-warm the shared store
      auto model = api::Model::Load(model_path);
      if (!model.ok()) std::abort();
      router.store().Put(key, std::move(model).value());
    }

    obs::TraceStore trace_store(BenchTraceConfig());
    WallTimer timer;
    std::vector<std::thread> workers;
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        std::vector<std::future<StatusOr<linalg::Matrix>>> futures;
        std::vector<std::shared_ptr<obs::TraceContext>> traces;
        futures.reserve(requests / clients + 1);
        traces.reserve(requests / clients + 1);
        for (std::size_t r = c; r < requests;
             r += static_cast<std::size_t>(clients)) {
          auto trace =
              trace_store.MaybeStartTrace("transform", "", MonotonicMicros());
          futures.push_back(router.Submit(keys[r % keys.size()],
                                          RowOf(x, r % x.rows()), trace));
          traces.push_back(std::move(trace));
        }
        for (std::size_t i = 0; i < futures.size(); ++i) {
          if (!futures[i].get().ok()) std::abort();
          trace_store.Finish(traces[i], MonotonicMicros());
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    const double seconds = timer.Seconds();
    if (seconds < best) {
      best = seconds;
      result.seconds = seconds;
      result.rps = static_cast<double>(requests) / seconds;
      const obs::Histogram::Snapshot waits =
          MergedQueueWait(router.metrics_snapshot());
      result.p50_micros = waits.Quantile(0.50);
      result.p95_micros = waits.Quantile(0.95);
      result.p99_micros = waits.Quantile(0.99);
      result.mean_batch_rows = router.stats().batcher.MeanBatchRows();
      FillSpanMeans(trace_store, &result);
    }
    router.Shutdown();
  }
  return result;
}

void EmitKernel(const std::string& name, std::size_t n,
                const std::vector<Result>& results, bool last) {
  std::cout << "    {\"name\": \"" << name << "\", \"n\": " << n
            << ", \"results\": [";
  const double serial = results.front().seconds;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::cout << (i ? ", " : "") << "{\"threads\": " << r.threads
              << ", \"seconds\": " << r.seconds
              << ", \"speedup\": " << serial / r.seconds
              << ", \"rps\": " << r.rps
              << ", \"p50_micros\": " << r.p50_micros
              << ", \"p95_micros\": " << r.p95_micros
              << ", \"p99_micros\": " << r.p99_micros
              << ", \"mean_batch_rows\": " << r.mean_batch_rows
              << ", \"span_queue_micros\": " << r.span_queue_micros
              << ", \"span_exec_micros\": " << r.span_exec_micros
              << ", \"span_format_micros\": " << r.span_format_micros << "}";
  }
  std::cout << "]}" << (last ? "" : ",") << "\n";
}

}  // namespace

int main() {
  parallel::SetDeterministic(true);
  const std::size_t requests = EnvInt("MCIRBM_BENCH_SERVE_REQUESTS", 1000);
  const int clients = std::max(1, EnvInt("MCIRBM_BENCH_SERVE_CLIENTS", 2));
  const int reps = std::max(1, EnvInt("MCIRBM_BENCH_SERVE_REPS", 2));
  const std::vector<int> widths = {1, 2, 4, 8};
  const std::vector<std::size_t> batch_sizes = {1, 8, 32, 128};

  // Encoder sized so one batched pass carries real GEMM work (a 1-row
  // pass is ~12k multiply-adds — pure overhead; a 32-row batch is ~400k,
  // enough for the pool to bite at >= 2 threads).
  data::GaussianMixtureSpec spec;
  spec.name = "serve";
  spec.num_classes = 4;
  spec.num_instances = 256;
  spec.num_features = 64;
  const data::Dataset ds = data::GenerateGaussianMixture(spec, 7);

  core::PipelineConfig config;
  config.model = core::ModelKind::kGrbm;
  config.rbm.num_hidden = 192;
  config.rbm.epochs = 2;
  config.rbm.batch_size = 64;
  auto trained = api::Model::Train(ds.x, config, 7);
  if (!trained.ok()) {
    std::cerr << "training failed: " << trained.status().ToString() << "\n";
    return 1;
  }
  // Persist once; every Server rep loads it through its own ModelStore
  // (the disk hit is one miss per rep, outside the contested path).
  const std::string model_path = "mcirbm_serve_bench_model.txt";
  if (!trained.value().Save(model_path).ok()) {
    std::cerr << "cannot write " << model_path << "\n";
    return 1;
  }

  std::cout << "{\n  \"hardware_threads\": "
            << std::thread::hardware_concurrency() << ",\n  \"kernels\": [\n";
  for (std::size_t b = 0; b < batch_sizes.size(); ++b) {
    std::vector<Result> results;
    for (int threads : widths) {
      results.push_back(Measure(model_path, ds.x, threads, batch_sizes[b],
                                requests, clients, reps));
    }
    EmitKernel("serve_batch" + std::to_string(batch_sizes[b]), requests,
               results, /*last=*/false);
  }
  const std::vector<std::size_t> replica_counts = {1, 2, 4};
  for (std::size_t r = 0; r < replica_counts.size(); ++r) {
    std::vector<Result> results;
    for (int threads : widths) {
      results.push_back(MeasureRouter(model_path, ds.x, threads,
                                      replica_counts[r], requests, clients,
                                      reps));
    }
    EmitKernel("serve_replicas" + std::to_string(replica_counts[r]),
               requests, results, r + 1 == replica_counts.size());
  }
  std::cout << "  ]\n}\n";
  parallel::SetNumThreads(0);
  std::remove(model_path.c_str());
  return 0;
}
