// Regenerates Figure 9: average accuracy / Rand / FMI over datasets II.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  if (!mcirbm::bench::ParseBenchArgs(argc, argv)) return 2;
  const int failures = mcirbm::bench::RunAveragesBench(/*grbm_family=*/false);
  std::cout << "\nfig9_averages_uci: " << failures
            << " shape-check failure(s)\n";
  return 0;
}
