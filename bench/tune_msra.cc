// Calibration sweep for the datasets-I (GRBM family) experiment defaults.
//
// For each MSRA-like dataset (capped like the fast bench) this prints the
// raw K-means baseline and, for a grid of sls knobs, K-means accuracy and
// purity on slsGRBM hidden features. Used to choose supervision_scale,
// disperse_weight, epochs and sampling mode with evidence; see DESIGN.md.
//
// Usage: tune_msra [cap]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "clustering/kmeans.h"
#include "core/pipeline.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "metrics/external.h"
#include "util/string_util.h"

using namespace mcirbm;  // NOLINT: internal tool

namespace {

struct Knobs {
  double scale;
  double disperse_weight;
  int epochs;
  bool sample_hidden;
  double factor;  // supervision clusters = round(k * factor)
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t cap = argc > 1 ? std::atoi(argv[1]) : 250;

  const std::vector<Knobs> grid = {
      {0, 5, 60, true, 1.0},  // plain GRBM control
      {5000, 5, 60, true, 1.0},
      {8000, 8, 60, true, 1.0},
      {5000, 5, 100, true, 1.0},
  };

  std::cout << "cap=" << cap << "\n";
  std::cout << PadRight("dataset", 6) << PadLeft("rawKM", 7);
  for (const auto& g : grid) {
    std::cout << PadLeft(FormatDouble(g.scale, 0) + "/" +
                             FormatDouble(g.disperse_weight, 0) + "/" +
                             std::to_string(g.epochs) + "/" +
                             (g.sample_hidden ? "s" : "m"),
                         13);
  }
  std::cout << "\n";

  std::vector<double> raw_sum(1, 0.0), acc_sum(grid.size(), 0.0),
      pur_sum(grid.size(), 0.0);
  for (int i = 0; i < data::NumMsraDatasets(); ++i) {
    data::Dataset ds = data::GenerateMsraLike(i, 7);
    ds = data::StratifiedSubsample(ds, cap, 7 ^ 0x73756273ULL);
    const linalg::Matrix& x_raw = ds.x;
    linalg::Matrix x = ds.x;
    data::StandardizeInPlace(&x);

    auto kmeans_of = [&](const linalg::Matrix& feats) {
      clustering::KMeansConfig km;
      km.k = ds.num_classes;
      km.restarts = 3;
      return clustering::KMeans(km).Cluster(feats, 7000010ULL);
    };
    const auto raw = kmeans_of(x_raw);
    const double raw_acc =
        metrics::ClusteringAccuracy(ds.labels, raw.assignment);
    raw_sum[0] += raw_acc;
    std::cout << PadRight(data::MsraDatasetInfo(i).short_name, 6)
              << PadLeft(FormatDouble(raw_acc, 3), 7);

    for (std::size_t gi = 0; gi < grid.size(); ++gi) {
      const auto& g = grid[gi];
      core::PipelineConfig cfg;
      cfg.model = core::ModelKind::kSlsGrbm;
      cfg.rbm.num_hidden = 64;
      cfg.rbm.epochs = g.epochs;
      cfg.rbm.learning_rate = 1e-4;
      cfg.rbm.sample_hidden_states = g.sample_hidden;
      cfg.sls.eta = 0.4;
      cfg.sls.supervision_scale = g.scale;
      cfg.sls.disperse_weight = g.disperse_weight;
      cfg.supervision.num_clusters = std::max(
          2, static_cast<int>(std::lround(ds.num_classes * g.factor)));
      const auto out = core::RunEncoderPipeline(x, cfg, 7000010ULL);
      const auto r = kmeans_of(out.hidden_features);
      const double acc =
          metrics::ClusteringAccuracy(ds.labels, r.assignment);
      const double pur = metrics::Purity(ds.labels, r.assignment);
      acc_sum[gi] += acc;
      pur_sum[gi] += pur;
      std::cout << PadLeft(FormatDouble(acc, 3) + "|" + FormatDouble(pur, 2),
                           13);
    }
    std::cout << "\n" << std::flush;
  }
  const double n = data::NumMsraDatasets();
  std::cout << PadRight("AVG", 6) << PadLeft(FormatDouble(raw_sum[0] / n, 3), 7);
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    std::cout << PadLeft(FormatDouble(acc_sum[gi] / n, 3) + "|" +
                             FormatDouble(pur_sum[gi] / n, 2),
                         13);
  }
  std::cout << "\n";
  return 0;
}
