// Calibration sweep for the datasets-II (RBM family) experiment defaults.
//
// For each UCI-like dataset (capped like the fast bench) this prints the
// raw DP / K-means baselines and, for a grid of sls knobs, DP and K-means
// accuracy on slsRBM hidden features. scale 0 doubles as the plain-RBM
// control. See DESIGN.md for how these sweeps set the defaults.
//
// Usage: tune_uci [cap]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "clustering/density_peaks.h"
#include "clustering/kmeans.h"
#include "core/pipeline.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "metrics/external.h"
#include "util/string_util.h"

using namespace mcirbm;  // NOLINT: internal tool

namespace {

struct Knobs {
  double scale;
  double disperse_weight;
  int epochs;
  int hidden;
  int voters;
  double cap;  // SlsConfig::max_grad_norm
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t cap = argc > 1 ? std::atoi(argv[1]) : 250;

  const std::vector<Knobs> grid = {
      {150000, 2, 60, 32, 3, 5000},
      {300000, 2, 60, 32, 3, 5000},
      {500000, 2, 60, 32, 3, 5000},
      {500000, 2, 60, 32, 3, 10000},
  };

  std::cout << "cap=" << cap << "  (cells are DPacc|KMacc)\n";
  std::cout << PadRight("dataset", 6) << PadLeft("rawDP", 7)
            << PadLeft("rawKM", 7);
  for (const auto& g : grid) {
    std::cout << PadLeft(FormatDouble(g.scale / 1000, 0) + "k/" +
                             FormatDouble(g.disperse_weight, 0) + "/" +
                             std::to_string(g.hidden) + "/" +
                             std::to_string(g.voters),
                         14);
  }
  std::cout << "\n";

  std::vector<double> raw_dp_sum(1, 0.0), raw_km_sum(1, 0.0),
      dp_sum(grid.size(), 0.0), km_sum(grid.size(), 0.0);
  for (int i = 0; i < data::NumUciDatasets(); ++i) {
    data::Dataset ds = data::GenerateUciLike(i, 7);
    ds = data::StratifiedSubsample(ds, cap, 7 ^ 0x73756273ULL);
    const linalg::Matrix& x_raw = ds.x;
    linalg::Matrix x = ds.x;
    data::MinMaxScaleInPlace(&x);

    auto dp_of = [&](const linalg::Matrix& feats) {
      clustering::DensityPeaksConfig dp;
      dp.k = ds.num_classes;
      const auto r = clustering::DensityPeaks(dp).Cluster(feats, 7000010ULL);
      return metrics::ClusteringAccuracy(ds.labels, r.assignment);
    };
    auto km_of = [&](const linalg::Matrix& feats) {
      clustering::KMeansConfig km;
      km.k = ds.num_classes;
      km.restarts = 3;
      const auto r = clustering::KMeans(km).Cluster(feats, 7000010ULL);
      return metrics::ClusteringAccuracy(ds.labels, r.assignment);
    };
    const double raw_dp = dp_of(x_raw);
    const double raw_km = km_of(x_raw);
    raw_dp_sum[0] += raw_dp;
    raw_km_sum[0] += raw_km;
    std::cout << PadRight(data::UciDatasetInfo(i).short_name, 6)
              << PadLeft(FormatDouble(raw_dp, 3), 7)
              << PadLeft(FormatDouble(raw_km, 3), 7);

    for (std::size_t gi = 0; gi < grid.size(); ++gi) {
      const auto& g = grid[gi];
      core::PipelineConfig cfg;
      cfg.model = g.scale == 0 ? core::ModelKind::kRbm
                               : core::ModelKind::kSlsRbm;
      cfg.rbm.num_hidden = g.hidden;
      cfg.rbm.epochs = g.epochs;
      cfg.rbm.learning_rate = 1e-5;
      cfg.sls.eta = 0.5;
      cfg.sls.supervision_scale = g.scale;
      cfg.sls.disperse_weight = g.disperse_weight;
      cfg.sls.max_grad_norm = g.cap;
      cfg.supervision.num_clusters = ds.num_classes;
      cfg.supervision.kmeans_voters = g.voters;
      const auto out = core::RunEncoderPipeline(x, cfg, 7000010ULL);
      const double dp_acc = dp_of(out.hidden_features);
      const double km_acc = km_of(out.hidden_features);
      dp_sum[gi] += dp_acc;
      km_sum[gi] += km_acc;
      std::cout << PadLeft(
          FormatDouble(dp_acc, 3) + "|" + FormatDouble(km_acc, 3), 14);
    }
    std::cout << "\n" << std::flush;
  }
  const double n = data::NumUciDatasets();
  std::cout << PadRight("AVG", 6) << PadLeft(FormatDouble(raw_dp_sum[0] / n, 3), 7)
            << PadLeft(FormatDouble(raw_km_sum[0] / n, 3), 7);
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    std::cout << PadLeft(FormatDouble(dp_sum[gi] / n, 3) + "|" +
                             FormatDouble(km_sum[gi] / n, 3),
                         14);
  }
  std::cout << "\n";
  return 0;
}
