// Ablation: the scale coefficient η (Eq. 16) balancing CD likelihood
// against the constrict/disperse supervision. The paper fixes η=0.4
// (slsGRBM) / η=0.5 (slsRBM) without a sweep; this bench provides one.
//
// Sweeps η on one MSRA-like and one UCI-like dataset and reports k-means
// accuracy on the resulting hidden features.
#include "bench_common.h"
#include <iostream>

#include "clustering/kmeans.h"
#include "core/pipeline.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "metrics/external.h"
#include "util/string_util.h"

using namespace mcirbm;  // NOLINT: bench driver

namespace {

double KmeansAccuracy(const linalg::Matrix& feats,
                      const std::vector<int>& labels, int k) {
  clustering::KMeansConfig km;
  km.k = k;
  const auto r = clustering::KMeans(km).Cluster(feats, 1);
  return metrics::ClusteringAccuracy(labels, r.assignment);
}

void SweepEta(bool grbm, const data::Dataset& full) {
  const data::Dataset ds = data::StratifiedSubsample(full, 250, 1);
  linalg::Matrix x = ds.x;
  if (grbm) {
    data::StandardizeInPlace(&x);
  } else {
    data::MinMaxScaleInPlace(&x);
  }
  std::cout << "\ndataset " << ds.name << " ("
            << (grbm ? "slsGRBM" : "slsRBM") << ", paper eta = "
            << (grbm ? "0.4" : "0.5") << ")\n";
  std::cout << "  eta    acc(k-means on hidden)  coverage\n";
  for (double eta : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    core::PipelineConfig cfg;
    cfg.model = grbm ? core::ModelKind::kSlsGrbm : core::ModelKind::kSlsRbm;
    cfg.rbm.num_hidden = 64;
    cfg.rbm.epochs = 30;
    cfg.rbm.learning_rate = grbm ? 1e-4 : 1e-5;
    cfg.sls.eta = eta;
    cfg.sls.supervision_scale = 1000.0;
    cfg.supervision.num_clusters = ds.num_classes * 3;
    const auto result = core::RunEncoderPipeline(x, cfg, 11);
    std::cout << "  " << FormatDouble(eta, 2) << "   "
              << PadLeft(FormatDouble(
                             KmeansAccuracy(result.hidden_features,
                                            ds.labels, ds.num_classes),
                             4),
                         8)
              << PadLeft(FormatDouble(result.supervision.Coverage(), 3), 18)
              << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (!bench::ParseBenchArgs(argc, argv)) return 2;
  std::cout << "=== ablation: eta (CD weight vs supervision weight) ===\n";
  const auto datasets = bench::LoadBenchDatasets(7);
  if (!datasets.empty()) {
    // Real datasets sweep under the GRBM-family (standardized) settings.
    for (const auto& ds : datasets) SweepEta(/*grbm=*/true, ds);
    return 0;
  }
  SweepEta(/*grbm=*/true, data::GenerateMsraLike(1, 7));
  SweepEta(/*grbm=*/false, data::GenerateUciLike(1, 7));
  return 0;
}
