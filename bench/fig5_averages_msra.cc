// Regenerates Figure 5: average accuracy / purity / FMI over datasets I.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  if (!mcirbm::bench::ParseBenchArgs(argc, argv)) return 2;
  const int failures = mcirbm::bench::RunAveragesBench(/*grbm_family=*/true);
  std::cout << "\nfig5_averages_msra: " << failures
            << " shape-check failure(s)\n";
  return 0;
}
