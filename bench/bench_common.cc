#include "bench_common.h"

#include <cstdlib>
#include <iostream>
#include <map>
#include <utility>

#include "data/loaders.h"
#include "eval/report.h"
#include "util/timer.h"

namespace mcirbm::bench {
namespace {

long EnvLong(const char* name, long fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atol(value) : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

std::vector<std::string>& MutableDataSpecs() {
  static std::vector<std::string> specs;
  return specs;
}

}  // namespace

bool ParseBenchArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--data") {
      if (i + 1 >= argc) {
        std::cerr << "error: --data needs a loader spec\n";
        return false;
      }
      MutableDataSpecs().push_back(argv[++i]);
    } else if (arg.rfind("--data=", 0) == 0) {
      MutableDataSpecs().push_back(arg.substr(7));
    } else {
      std::cerr << "error: unknown bench flag '" << arg
                << "' (only --data <spec> is accepted)\n";
      return false;
    }
  }
  return true;
}

const std::vector<std::string>& BenchDataSpecs() {
  return MutableDataSpecs();
}

std::vector<data::Dataset> LoadBenchDatasets(std::uint64_t seed) {
  std::vector<data::Dataset> datasets;
  datasets.reserve(BenchDataSpecs().size());
  for (const std::string& spec : BenchDataSpecs()) {
    data::DataSourceConfig config;
    config.synth_seed = seed;
    auto loaded = data::LoadDataset(spec, config);
    if (!loaded.ok()) {
      std::cerr << "error: --data " << spec << ": "
                << loaded.status().ToString() << "\n";
      std::exit(2);
    }
    datasets.push_back(std::move(loaded).value());
  }
  return datasets;
}

eval::ExperimentConfig MakeBenchConfig(bool grbm_family) {
  eval::ExperimentConfig config = eval::MakePaperConfig(grbm_family);
  config.repeats = static_cast<int>(EnvLong("MCIRBM_BENCH_REPEATS", 3));
  config.seed = static_cast<std::uint64_t>(EnvLong("MCIRBM_BENCH_SEED", 7));
  if (EnvLong("MCIRBM_BENCH_FULL", 0) == 0) {
    config.max_instances =
        static_cast<std::size_t>(EnvLong("MCIRBM_BENCH_MAX_N", 250));
  }
  config.sls.supervision_scale =
      EnvDouble("MCIRBM_SLS_SCALE", config.sls.supervision_scale);
  config.sls.disperse_weight =
      EnvDouble("MCIRBM_SLS_DW", config.sls.disperse_weight);
  config.supervision.kmeans_voters = static_cast<int>(
      EnvLong("MCIRBM_SUP_KM_VOTERS", config.supervision.kmeans_voters));
  config.sls.max_grad_norm =
      EnvDouble("MCIRBM_SLS_CAP", config.sls.max_grad_norm);
  config.rbm.epochs =
      static_cast<int>(EnvLong("MCIRBM_BENCH_EPOCHS", config.rbm.epochs));
  config.supervision_cluster_factor = EnvDouble(
      "MCIRBM_SUP_FACTOR", config.supervision_cluster_factor);
  config.rbm.num_hidden = static_cast<int>(
      EnvLong("MCIRBM_BENCH_HIDDEN", config.rbm.num_hidden));
  config.rbm.sample_hidden_states =
      EnvLong("MCIRBM_BENCH_SAMPLE_H", config.rbm.sample_hidden_states ? 1
                                                                       : 0)
      != 0;
  config.data_specs = BenchDataSpecs();
  return config;
}

const std::vector<eval::DatasetExperimentResult>& FamilyResults(
    bool grbm_family) {
  static std::map<bool, std::vector<eval::DatasetExperimentResult>> cache;
  auto it = cache.find(grbm_family);
  if (it == cache.end()) {
    WallTimer timer;
    std::cout << "running " << (grbm_family ? "datasets I (MSRA-MM-like)"
                                            : "datasets II (UCI-like)")
              << " experiments"
              << (std::getenv("MCIRBM_BENCH_FULL") ? " [full size]"
                                                   : " [fast mode]")
              << "...\n"
              << std::flush;
    it = cache.emplace(grbm_family,
                       RunFamilyExperiments(MakeBenchConfig(grbm_family)))
             .first;
    std::cout << "experiments done in " << timer.Seconds() << "s\n";
  }
  return it->second;
}

int RunTableBench(eval::PaperTable table) {
  const bool grbm = eval::PaperTableIsGrbmFamily(table);
  const auto& results = FamilyResults(grbm);
  if (BenchDataSpecs().empty()) {
    eval::PrintTableComparison(std::cout, table, results);
  } else {
    // User-supplied --data sources: the paper's fixed 9-dataset
    // comparison doesn't apply, so render the measured grid alone.
    eval::PrintMeasuredTable(std::cout, eval::PaperTableMetric(table),
                             grbm, results);
  }
  eval::PrintFigureSeries(std::cout, table, results);
  const auto checks = eval::EvaluateShapeChecks(
      results, eval::PaperTableMetric(table), grbm);
  return eval::PrintShapeChecks(std::cout, checks);
}

int RunAveragesBench(bool grbm_family) {
  const auto& results = FamilyResults(grbm_family);
  eval::PrintAveragesFigure(std::cout, grbm_family, results);
  int failures = 0;
  const std::vector<std::string> metrics =
      grbm_family ? std::vector<std::string>{"accuracy", "purity", "fmi"}
                  : std::vector<std::string>{"accuracy", "rand", "fmi"};
  for (const auto& metric : metrics) {
    const auto checks =
        eval::EvaluateShapeChecks(results, metric, grbm_family);
    failures += eval::PrintShapeChecks(std::cout, checks);
  }
  return failures;
}

}  // namespace mcirbm::bench
