// Ablation: voting strategy for the multi-clustering integration.
//
// The paper chooses *unanimous* voting to make local clusters credible.
// This bench compares supervision quality (coverage, purity) and the
// downstream k-means accuracy for: unanimous, majority, and each single
// clusterer used alone (no voting).
#include "bench_common.h"
#include <iostream>

#include "clustering/kmeans.h"
#include "core/pipeline.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "metrics/external.h"
#include "util/string_util.h"

using namespace mcirbm;  // NOLINT: bench driver

namespace {

struct Row {
  std::string name;
  core::SupervisionConfig config;
};

void RunDataset(bool grbm, const data::Dataset& full) {
  const data::Dataset ds = data::StratifiedSubsample(full, 250, 1);
  linalg::Matrix x = ds.x;
  if (grbm) {
    data::StandardizeInPlace(&x);
  } else {
    data::MinMaxScaleInPlace(&x);
  }
  const int k_sup = ds.num_classes * 3;

  std::vector<Row> rows;
  {
    core::SupervisionConfig base;
    base.num_clusters = k_sup;
    Row unanimous{"unanimous(DP,KM,AP)", base};
    rows.push_back(unanimous);
    Row majority{"majority (DP,KM,AP)", base};
    majority.config.strategy = voting::VoteStrategy::kMajority;
    rows.push_back(majority);
    Row dp_only{"DP alone          ", base};
    dp_only.config.use_kmeans = false;
    dp_only.config.use_affinity_propagation = false;
    rows.push_back(dp_only);
    Row km_only{"K-means alone     ", base};
    km_only.config.use_density_peaks = false;
    km_only.config.use_affinity_propagation = false;
    rows.push_back(km_only);
    Row ap_only{"AP alone          ", base};
    ap_only.config.use_density_peaks = false;
    ap_only.config.use_kmeans = false;
    rows.push_back(ap_only);
  }

  std::cout << "\ndataset " << ds.name << "\n";
  std::cout << "  strategy              coverage  purity   acc(hidden)\n";
  for (const auto& row : rows) {
    const auto sup = core::ComputeSelfLearningSupervision(x, row.config, 5);
    std::vector<int> truth, pred;
    for (std::size_t i = 0; i < sup.cluster_of.size(); ++i) {
      if (sup.cluster_of[i] >= 0) {
        truth.push_back(ds.labels[i]);
        pred.push_back(sup.cluster_of[i]);
      }
    }
    const double purity =
        truth.empty() ? 0.0 : metrics::Purity(truth, pred);

    // Train the sls model with this supervision and cluster the features.
    rbm::RbmConfig rc;
    rc.num_visible = static_cast<int>(x.cols());
    rc.num_hidden = 64;
    rc.epochs = 30;
    rc.learning_rate = grbm ? 1e-4 : 1e-5;
    rc.seed = 5;
    core::SlsConfig sls;
    sls.eta = grbm ? 0.4 : 0.5;
    sls.supervision_scale = 1000.0;
    double acc = 0;
    if (grbm) {
      core::SlsGrbm model(rc, sls, sup);
      model.Train(x);
      clustering::KMeansConfig km;
      km.k = ds.num_classes;
      acc = metrics::ClusteringAccuracy(
          ds.labels,
          clustering::KMeans(km).Cluster(model.HiddenFeatures(x), 1)
              .assignment);
    } else {
      core::SlsRbm model(rc, sls, sup);
      model.Train(x);
      clustering::KMeansConfig km;
      km.k = ds.num_classes;
      acc = metrics::ClusteringAccuracy(
          ds.labels,
          clustering::KMeans(km).Cluster(model.HiddenFeatures(x), 1)
              .assignment);
    }
    std::cout << "  " << PadRight(row.name, 22)
              << PadLeft(FormatDouble(sup.Coverage(), 3), 8)
              << PadLeft(FormatDouble(purity, 3), 9)
              << PadLeft(FormatDouble(acc, 4), 12) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (!bench::ParseBenchArgs(argc, argv)) return 2;
  std::cout << "=== ablation: voting strategy for local supervision ===\n";
  const auto datasets = bench::LoadBenchDatasets(7);
  if (!datasets.empty()) {
    // Real datasets run under the GRBM-family (standardized) settings.
    for (const auto& ds : datasets) RunDataset(/*grbm=*/true, ds);
    return 0;
  }
  RunDataset(/*grbm=*/true, data::GenerateMsraLike(4, 7));
  RunDataset(/*grbm=*/false, data::GenerateUciLike(4, 7));
  return 0;
}
