// Ablation: CD variants and regularizers for the plain-RBM substrate.
//
// Orthogonal to the sls objective: how do CD-k depth, persistent CD,
// the sparsity penalty and PCA weight initialization change the plain
// encoder? Reported per variant: final reconstruction error, mean hidden
// activation, pseudo-log-likelihood (binary family), and downstream
// k-means accuracy on the hidden features.
#include "bench_common.h"
#include <iostream>
#include <string>
#include <vector>

#include "clustering/kmeans.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "metrics/external.h"
#include "rbm/free_energy.h"
#include "rbm/rbm.h"
#include "util/string_util.h"

using namespace mcirbm;  // NOLINT: bench driver

namespace {

struct Variant {
  std::string name;
  rbm::RbmConfig config;
};

void RunDataset(const data::Dataset& full) {
  const data::Dataset ds = data::StratifiedSubsample(full, 250, 1);
  linalg::Matrix x = ds.x;
  data::MinMaxScaleInPlace(&x);
  data::BinarizeAtColumnMeanInPlace(&x);

  rbm::RbmConfig base;
  base.num_visible = static_cast<int>(x.cols());
  base.num_hidden = 32;
  base.epochs = 60;
  base.learning_rate = 0.05;
  base.batch_size = 25;
  base.seed = 11;

  std::vector<Variant> variants;
  variants.push_back({"CD-1 (paper)", base});
  {
    rbm::RbmConfig c = base;
    c.cd_k = 3;
    variants.push_back({"CD-3", c});
  }
  {
    rbm::RbmConfig c = base;
    c.use_persistent_cd = true;
    variants.push_back({"PCD-1", c});
  }
  {
    rbm::RbmConfig c = base;
    c.sparsity_target = 0.1;
    c.sparsity_cost = 1.0;
    variants.push_back({"CD-1 + sparsity(0.1)", c});
  }
  {
    rbm::RbmConfig c = base;
    c.weight_init = rbm::RbmConfig::WeightInit::kPca;
    variants.push_back({"CD-1 + PCA init", c});
  }

  std::cout << "\ndataset " << ds.name << "\n";
  std::cout << "  variant                 recon    mean(h)  PLL       "
               "acc(hidden)\n";
  for (const auto& variant : variants) {
    rbm::Rbm model(variant.config);
    const auto history = model.Train(x);
    const double pll = rbm::PseudoLogLikelihood(model, x, 3);
    clustering::KMeansConfig km;
    km.k = ds.num_classes;
    const double acc = metrics::ClusteringAccuracy(
        ds.labels,
        clustering::KMeans(km).Cluster(model.HiddenFeatures(x), 1)
            .assignment);
    std::cout << "  " << PadRight(variant.name, 24)
              << PadLeft(FormatDouble(history.back().reconstruction_error, 3),
                         7)
              << PadLeft(FormatDouble(history.back().mean_hidden_activation,
                                      3),
                         9)
              << PadLeft(FormatDouble(pll, 1), 10)
              << PadLeft(FormatDouble(acc, 4), 12) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (!bench::ParseBenchArgs(argc, argv)) return 2;
  std::cout << "=== ablation: CD variants / regularizers (binary RBM) ===\n";
  const auto datasets = bench::LoadBenchDatasets(7);
  if (!datasets.empty()) {
    for (const auto& ds : datasets) RunDataset(ds);
  } else {
    for (const int index : {1, 5}) {
      RunDataset(data::GenerateUciLike(index, 7));
    }
  }
  std::cout << "\nreading: the variants end close in likelihood on these "
               "small sets (PCD slightly ahead of CD-1); the sparsity "
               "penalty reliably drives mean activation toward its target "
               "and can sharpen downstream clusters; PCA init changes "
               "where training starts, not where it ends.\n";
  return 0;
}
