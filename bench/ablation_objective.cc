// Ablation: the pieces of the sls objective.
//
//  * recon term on/off      — Eq. 15's reconstructed-view contribution
//  * disperse term on/off   — the center-dispersion half of Eq. 14/15
//  * pair vs Nh norm        — the constrict normalization (see DESIGN.md:
//                             the literal Eq. 13 form collapses the code)
#include "bench_common.h"
#include <iostream>

#include "clustering/kmeans.h"
#include "core/pipeline.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "metrics/external.h"
#include "util/string_util.h"

using namespace mcirbm;  // NOLINT: bench driver

namespace {

double RunVariant(const linalg::Matrix& x, const std::vector<int>& labels,
                  int num_classes, const core::SlsConfig& sls) {
  core::PipelineConfig cfg;
  cfg.model = core::ModelKind::kSlsGrbm;
  cfg.rbm.num_hidden = 64;
  cfg.rbm.epochs = 30;
  cfg.rbm.learning_rate = 1e-4;
  cfg.sls = sls;
  cfg.supervision.num_clusters = num_classes * 3;
  const auto result = core::RunEncoderPipeline(x, cfg, 13);
  clustering::KMeansConfig km;
  km.k = num_classes;
  return metrics::ClusteringAccuracy(
      labels,
      clustering::KMeans(km).Cluster(result.hidden_features, 1).assignment);
}

}  // namespace

int main(int argc, char** argv) {
  if (!bench::ParseBenchArgs(argc, argv)) return 2;
  std::cout << "=== ablation: sls objective components (slsGRBM) ===\n";
  const auto datasets = bench::LoadBenchDatasets(7);
  const data::Dataset full =
      datasets.empty() ? data::GenerateMsraLike(6, 7) : datasets.front();
  const data::Dataset ds = data::StratifiedSubsample(full, 250, 1);
  linalg::Matrix x = ds.x;
  data::StandardizeInPlace(&x);

  struct Variant {
    const char* name;
    core::SlsConfig sls;
  };
  core::SlsConfig base;
  base.eta = 0.4;
  base.supervision_scale = 1000.0;

  std::vector<Variant> variants;
  variants.push_back({"full objective (default)     ", base});
  {
    core::SlsConfig v = base;
    v.include_recon_term = false;
    variants.push_back({"without Lrecon (Eq. 15)      ", v});
  }
  {
    core::SlsConfig v = base;
    v.include_disperse_term = false;
    variants.push_back({"without center dispersion    ", v});
  }
  {
    core::SlsConfig v = base;
    v.disperse_weight = 10.0;
    variants.push_back({"disperse weight x10          ", v});
  }
  {
    core::SlsConfig v = base;
    v.normalize_by_pairs = false;
    // The literal 1/Nh form makes the constrict term ~Nh times larger;
    // rescale so the comparison isolates the *shape* difference.
    v.supervision_scale = base.supervision_scale / 150.0;
    variants.push_back({"literal Eq.13 1/Nh norm      ", v});
  }
  {
    core::SlsConfig v = base;
    v.supervision_scale = 0.0;
    variants.push_back({"supervision off (eta-CD only)", v});
  }

  std::cout << "dataset " << ds.name << "\n";
  std::cout << "  variant                          acc(k-means on hidden)\n";
  for (const auto& variant : variants) {
    std::cout << "  " << variant.name << "  "
              << FormatDouble(
                     RunVariant(x, ds.labels, ds.num_classes, variant.sls),
                     4)
              << "\n";
  }
  return 0;
}
