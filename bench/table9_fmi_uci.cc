// Regenerates the paper's Table 9 (and its companion figure series).
// See bench_common.h for the environment knobs controlling scale/repeats.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  if (!mcirbm::bench::ParseBenchArgs(argc, argv)) return 2;
  const int failures =
      mcirbm::bench::RunTableBench(mcirbm::eval::PaperTable::kTable9FmiUci);
  std::cout << "\ntable9_fmi_uci: " << failures << " shape-check failure(s)\n";
  return 0;
}
