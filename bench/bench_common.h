// Shared driver for the table/figure bench binaries.
//
// Environment knobs (all optional):
//   MCIRBM_BENCH_FULL=1        run at full dataset size (default: capped)
//   MCIRBM_BENCH_MAX_N=<int>   instance cap in fast mode (default 250)
//   MCIRBM_BENCH_REPEATS=<int> repeats per dataset (default 3)
//   MCIRBM_BENCH_SEED=<int>    experiment seed (default 7)
//   MCIRBM_SLS_SCALE=<float>   override SlsConfig::supervision_scale
//
// Every bench also accepts repeatable `--data <spec>` flags (loader specs
// from data/loaders.h — paths or csv:|bin:|libsvm:|synth: forms). When
// given, the named datasets replace the generated family sweep, so the
// tables/figures/ablations run against real ingested data (e.g. a
// converted mcirbm-data binary).
#ifndef MCIRBM_BENCH_BENCH_COMMON_H_
#define MCIRBM_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/experiment.h"
#include "eval/paper_reference.h"

namespace mcirbm::bench {

/// Parses the shared bench argv (`--data <spec>`, repeatable; `--data=x`
/// also accepted). Prints an error and returns false on unknown flags or
/// a missing value. Call once at the top of main.
bool ParseBenchArgs(int argc, char** argv);

/// The --data specs collected by ParseBenchArgs, in argv order.
const std::vector<std::string>& BenchDataSpecs();

/// Loads every --data spec, exiting(2) with the loader's message on
/// failure. Empty when no --data flags were given — callers fall back to
/// their generated datasets.
std::vector<data::Dataset> LoadBenchDatasets(std::uint64_t seed);

/// Experiment configuration honoring the environment knobs above (and the
/// parsed --data specs, which replace the generated family sweep).
eval::ExperimentConfig MakeBenchConfig(bool grbm_family);

/// Runs (or reuses a per-process cache of) the family experiments for the
/// given config. The cache lets one binary print several tables/figures
/// without re-running the 9/6-dataset sweep.
const std::vector<eval::DatasetExperimentResult>& FamilyResults(
    bool grbm_family);

/// Full output for one paper table: comparison table, figure series, the
/// averages block, and shape checks. Returns the number of failed checks.
int RunTableBench(eval::PaperTable table);

/// Output for the averages figures (Fig. 5 / Fig. 9). Returns the number
/// of failed shape checks across the family's metrics.
int RunAveragesBench(bool grbm_family);

}  // namespace mcirbm::bench

#endif  // MCIRBM_BENCH_BENCH_COMMON_H_
