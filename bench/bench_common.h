// Shared driver for the table/figure bench binaries.
//
// Environment knobs (all optional):
//   MCIRBM_BENCH_FULL=1        run at full dataset size (default: capped)
//   MCIRBM_BENCH_MAX_N=<int>   instance cap in fast mode (default 250)
//   MCIRBM_BENCH_REPEATS=<int> repeats per dataset (default 3)
//   MCIRBM_BENCH_SEED=<int>    experiment seed (default 7)
//   MCIRBM_SLS_SCALE=<float>   override SlsConfig::supervision_scale
#ifndef MCIRBM_BENCH_BENCH_COMMON_H_
#define MCIRBM_BENCH_BENCH_COMMON_H_

#include <vector>

#include "eval/experiment.h"
#include "eval/paper_reference.h"

namespace mcirbm::bench {

/// Experiment configuration honoring the environment knobs above.
eval::ExperimentConfig MakeBenchConfig(bool grbm_family);

/// Runs (or reuses a per-process cache of) the family experiments for the
/// given config. The cache lets one binary print several tables/figures
/// without re-running the 9/6-dataset sweep.
const std::vector<eval::DatasetExperimentResult>& FamilyResults(
    bool grbm_family);

/// Full output for one paper table: comparison table, figure series, the
/// averages block, and shape checks. Returns the number of failed checks.
int RunTableBench(eval::PaperTable table);

/// Output for the averages figures (Fig. 5 / Fig. 9). Returns the number
/// of failed shape checks across the family's metrics.
int RunAveragesBench(bool grbm_family);

}  // namespace mcirbm::bench

#endif  // MCIRBM_BENCH_BENCH_COMMON_H_
