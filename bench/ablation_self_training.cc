// Ablation: iterated self-training rounds.
//
// Round 0 is the paper's pipeline (supervision from visible data). Each
// later round re-derives the supervision from the previous encoder's
// hidden features. Reported per round: consensus coverage, credible-
// cluster purity against ground truth (diagnostic only), and downstream
// k-means accuracy.
#include "bench_common.h"
#include <iostream>

#include "clustering/kmeans.h"
#include "core/self_training.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "eval/experiment.h"
#include "metrics/external.h"
#include "util/string_util.h"

using namespace mcirbm;  // NOLINT: bench driver

namespace {

void RunDataset(const data::Dataset& full) {
  const data::Dataset ds = data::StratifiedSubsample(full, 250, 1);
  linalg::Matrix x = ds.x;
  data::StandardizeInPlace(&x);

  const eval::ExperimentConfig paper = eval::MakePaperConfig(true);
  clustering::KMeansConfig km;
  km.k = ds.num_classes;

  std::cout << "\ndataset " << ds.name << "\n";
  {
    const auto raw = clustering::KMeans(km).Cluster(ds.x, 1);
    std::cout << "  raw-data k-means accuracy: "
              << FormatDouble(metrics::ClusteringAccuracy(ds.labels,
                                                          raw.assignment),
                              4)
              << "\n";
  }

  std::cout << "  rounds  coverage  acc(hidden)\n";
  for (int rounds = 1; rounds <= 4; ++rounds) {
    core::SelfTrainingConfig config;
    config.pipeline.model = core::ModelKind::kSlsGrbm;
    config.pipeline.rbm = paper.rbm;
    config.pipeline.sls = paper.sls;
    config.pipeline.supervision = paper.supervision;
    config.pipeline.supervision.num_clusters = ds.num_classes;
    config.rounds = rounds;
    const auto result = core::RunSelfTraining(x, config, 7);
    const auto clusters =
        clustering::KMeans(km).Cluster(result.hidden_features, 1);
    std::cout << "    " << rounds - 1 << "    "
              << PadLeft(FormatDouble(
                             result.rounds.back().supervision_coverage, 3),
                         8)
              << PadLeft(FormatDouble(metrics::ClusteringAccuracy(
                                          ds.labels, clusters.assignment),
                                      4),
                         12)
              << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (!bench::ParseBenchArgs(argc, argv)) return 2;
  std::cout << "=== ablation: iterated self-training rounds (slsGRBM) ===\n";
  const auto datasets = bench::LoadBenchDatasets(7);
  if (!datasets.empty()) {
    for (const auto& ds : datasets) RunDataset(ds);
  } else {
    for (const int index : {4, 8}) {
      RunDataset(data::GenerateMsraLike(index, 7));
    }
  }
  std::cout << "\nreading: re-deriving the supervision from the encoder's "
               "own features can lift accuracy well beyond the one-shot "
               "paper pipeline; the gain arrives within 1-2 extra rounds "
               "and fluctuates afterwards, so few rounds are the sweet "
               "spot.\n";
  return 0;
}
