// Calibration tool: sweeps sls hyper-parameters on one synthetic dataset
// and prints raw/plain/sls clustering accuracy so the experiment defaults
// (supervision_scale, epochs, hidden width) can be chosen with evidence.
//
// Usage: calibrate [grbm|rbm] [dataset-separation] [n] [d]
#include <cstdlib>
#include <iostream>

#include "clustering/kmeans.h"
#include "core/pipeline.h"
#include "data/synthetic.h"
#include "data/transforms.h"
#include "eval/algorithms.h"
#include "metrics/external.h"
#include "util/string_util.h"

namespace {

using namespace mcirbm;  // NOLINT: internal tool

struct Row {
  double scale, raw, plain, sls, coverage;
  int epochs, hidden;
};

}  // namespace

int main(int argc, char** argv) {
  const bool grbm = argc < 2 || std::string(argv[1]) != "rbm";
  const double separation = argc > 2 ? std::atof(argv[2]) : 2.2;
  const int n = argc > 3 ? std::atoi(argv[3]) : 300;
  const int d = argc > 4 ? std::atoi(argv[4]) : 30;

  data::GaussianMixtureSpec spec;
  spec.name = "cal";
  spec.num_classes = 3;
  spec.num_instances = n;
  spec.num_features = d;
  spec.separation = separation;
  spec.informative_fraction = 0.4;
  spec.confusion_fraction = 0.15;
  data::Dataset ds = data::GenerateGaussianMixture(spec, 7);
  linalg::Matrix x = ds.x;
  if (grbm) {
    data::StandardizeInPlace(&x);
  } else {
    data::MinMaxScaleInPlace(&x);
  }

  auto kmeans_acc = [&](const linalg::Matrix& feats) {
    clustering::KMeansConfig km;
    km.k = ds.num_classes;
    const auto r = clustering::KMeans(km).Cluster(feats, 1);
    return metrics::ClusteringAccuracy(ds.labels, r.assignment);
  };
  const double raw_acc = kmeans_acc(x);

  std::cout << "family=" << (grbm ? "GRBM" : "RBM")
            << " sep=" << separation << " n=" << n << " d=" << d
            << " raw k-means acc=" << FormatDouble(raw_acc, 4) << "\n";
  std::cout << "scale      epochs hidden  plain   sls     coverage\n";

  for (int hidden : {16, 32, 64}) {
    for (int epochs : {20, 40, 80}) {
      for (double scale : {0.0, 10.0, 100.0, 1000.0, 5000.0}) {
        core::PipelineConfig plain_cfg;
        plain_cfg.model =
            grbm ? core::ModelKind::kGrbm : core::ModelKind::kRbm;
        plain_cfg.rbm.num_hidden = hidden;
        plain_cfg.rbm.epochs = epochs;
        plain_cfg.rbm.learning_rate = grbm ? 1e-4 : 1e-5;
        const auto plain = core::RunEncoderPipeline(x, plain_cfg, 3);

        core::PipelineConfig sls_cfg = plain_cfg;
        sls_cfg.model =
            grbm ? core::ModelKind::kSlsGrbm : core::ModelKind::kSlsRbm;
        sls_cfg.sls.eta = grbm ? 0.4 : 0.5;
        sls_cfg.sls.supervision_scale = scale;
        sls_cfg.supervision.num_clusters = ds.num_classes;
        const auto sls = core::RunEncoderPipeline(x, sls_cfg, 3);

        std::cout << PadLeft(FormatDouble(scale, 1), 9) << " "
                  << PadLeft(std::to_string(epochs), 6) << " "
                  << PadLeft(std::to_string(hidden), 6) << " "
                  << PadLeft(FormatDouble(kmeans_acc(plain.hidden_features),
                                          4),
                             7)
                  << " "
                  << PadLeft(
                         FormatDouble(kmeans_acc(sls.hidden_features), 4),
                         7)
                  << " "
                  << PadLeft(
                         FormatDouble(sls.supervision.Coverage(), 3), 8)
                  << "\n";
      }
    }
  }
  return 0;
}
