// TCP transport throughput/latency benchmark — the load generator for
// net::LineServer.
//
// Each measurement opens N connections and drives M pipelined id-tagged
// requests through every one with a fixed in-flight window (the
// pipeline depth), reading responses as they complete. The sweep
// crosses pipeline depth 1/8/32 (depth 1 = strict request/response
// ping-pong, the no-pipelining baseline) with connection count 1/2/4/8
// and reports requests/sec plus p50/p95/p99 request latency taken from
// the server's own net_request_micros histogram — parsed out of an
// op=stats response over the wire, so the bench measures the production
// metrics path, not a bench-only latency vector. Mean queue/exec/format
// span micros ride along the same way, parsed from an op=trace probe
// against the in-process server's 1-in-16 sampled traces. A fourth kernel
// (net_transform8) sends real chunked transform requests against a
// trained encoder instead of stats probes, putting actual inference
// behind every response.
//
// Two modes:
//   - default: an in-process LineServer over a serve::Router on an
//     ephemeral loopback port, fresh per repetition (clean histograms);
//   - MCIRBM_BENCH_NET_CONNECT=host:port — hammer an external server
//     (e.g. `mcirbm_cli serve --listen`) instead. The transform kernel
//     is skipped unless MCIRBM_BENCH_NET_REQUEST supplies a request
//     line whose model/data paths exist server-side, and quantiles are
//     cumulative over the server's lifetime.
//
// Output is the same JSON shape as bench/parallel_scaling.cc, with the
// connection count in the "threads" slot of each result.
//
// Environment knobs:
//   MCIRBM_BENCH_NET_REQUESTS=<int>   requests per measurement (1000)
//   MCIRBM_BENCH_NET_REPS=<int>       repetitions, best-of (2)
//   MCIRBM_BENCH_NET_CONNECT=<h:p>    external server, skip in-process
//   MCIRBM_BENCH_NET_REQUEST=<line>   custom request line (external)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/api.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "net/net.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "serve/serve.h"
#include "util/timer.h"

namespace {

using namespace mcirbm;  // NOLINT: bench driver

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

struct Result {
  int connections = 0;
  double seconds = 0;
  double rps = 0;
  double p50_micros = 0;
  double p95_micros = 0;
  double p99_micros = 0;
  // Mean per-span breakdown parsed from an op=trace probe after the
  // timed pass — where a request's wall time actually went. Zero when
  // the target server has tracing off (external mode without
  // --trace-sample).
  double span_queue_micros = 0;
  double span_exec_micros = 0;
  double span_format_micros = 0;
};

// Reads one full response: the ok/error line plus the payload lines a
// multi-line ok response announces (op=stats metrics=N, op=trace
// lines=N). Aborts on transport failure — a bench with a dead server
// has nothing to report.
std::string ReadResponse(net::Client* client, std::string* body = nullptr) {
  std::string first;
  if (!client->ReadLine(&first).ok()) std::abort();
  if (body != nullptr) body->clear();
  std::size_t pos = first.find(" metrics=");
  int count = 0;
  if (pos != std::string::npos) {
    count = std::atoi(first.c_str() + pos + 9);
  } else if ((pos = first.find(" lines=")) != std::string::npos) {
    count = std::atoi(first.c_str() + pos + 7);
  } else {
    return first;
  }
  std::string line;
  for (int i = 0; i < count; ++i) {
    if (!client->ReadLine(&line).ok()) std::abort();
    if (body != nullptr) (*body) += line + "\n";
  }
  return first;
}

double ParseQuantile(const std::string& body, const std::string& quantile) {
  const std::string needle =
      "net_request_micros{quantile=\"" + quantile + "\"} ";
  const std::size_t pos = body.find(needle);
  if (pos == std::string::npos) return 0;
  return std::atof(body.c_str() + pos + needle.size());
}

// One timed pass: `connections` client threads, each pipelining its
// share of `requests` with at most `depth` in flight, over a server at
// host:port. Returns wall seconds.
double DrivePass(const std::string& host, int port,
                 const std::string& request_line, std::size_t requests,
                 int connections, int depth) {
  WallTimer timer;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(connections));
  for (int c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      auto connected = net::Client::Connect(host, port);
      if (!connected.ok()) std::abort();
      net::Client client = std::move(connected).value();
      const std::size_t share =
          requests / static_cast<std::size_t>(connections) +
          (static_cast<std::size_t>(c) <
                   requests % static_cast<std::size_t>(connections)
               ? 1
               : 0);
      std::size_t inflight = 0;
      for (std::size_t i = 0; i < share; ++i) {
        const std::string id =
            " id=c" + std::to_string(c) + "-" + std::to_string(i);
        if (!client.SendLine(request_line + id).ok()) std::abort();
        if (++inflight >= static_cast<std::size_t>(depth)) {
          ReadResponse(&client);
          --inflight;
        }
      }
      while (inflight-- > 0) ReadResponse(&client);
    });
  }
  for (std::thread& client : clients) client.join();
  return timer.Seconds();
}

// The production latency surface: one op=stats round trip, quantiles
// parsed from the net_request_micros lines.
void FillQuantiles(const std::string& host, int port, Result* result) {
  auto connected = net::Client::Connect(host, port);
  if (!connected.ok()) std::abort();
  net::Client client = std::move(connected).value();
  if (!client.SendLine("op=stats").ok()) std::abort();
  std::string body;
  ReadResponse(&client, &body);
  result->p50_micros = ParseQuantile(body, "0.5");
  result->p95_micros = ParseQuantile(body, "0.95");
  result->p99_micros = ParseQuantile(body, "0.99");
}

// Where the wall time went: one op=trace round trip, mean span
// durations by name parsed from the trace payload. An error response
// (external server with tracing off) leaves the means at zero.
void FillSpanMeans(const std::string& host, int port, Result* result) {
  auto connected = net::Client::Connect(host, port);
  if (!connected.ok()) std::abort();
  net::Client client = std::move(connected).value();
  if (!client.SendLine("op=trace last=256").ok()) std::abort();
  std::string body;
  const std::string first = ReadResponse(&client, &body);
  if (first.rfind("ok ", 0) != 0) return;
  const char* const names[3] = {"queue", "exec", "format"};
  double sums[3] = {0, 0, 0};
  std::size_t counts[3] = {0, 0, 0};
  std::size_t line_start = 0;
  while (line_start < body.size()) {
    std::size_t line_end = body.find('\n', line_start);
    if (line_end == std::string::npos) line_end = body.size();
    const std::string line = body.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    const std::size_t span_pos = line.find(" span=");
    if (span_pos == std::string::npos) continue;
    const std::size_t duration_pos = line.find(" duration_micros=");
    if (duration_pos == std::string::npos) continue;
    const double duration = std::atof(line.c_str() + duration_pos + 17);
    for (int s = 0; s < 3; ++s) {
      if (line.compare(span_pos + 6, std::string(names[s]).size() + 1,
                       std::string(names[s]) + " ") == 0) {
        sums[s] += duration;
        ++counts[s];
      }
    }
  }
  if (counts[0] > 0) result->span_queue_micros = sums[0] / counts[0];
  if (counts[1] > 0) result->span_exec_micros = sums[1] / counts[1];
  if (counts[2] > 0) result->span_format_micros = sums[2] / counts[2];
}

// In-process server bundle, fresh per repetition so every measurement
// starts with clean histograms.
struct LocalServer {
  std::unique_ptr<serve::Router> router;
  std::unique_ptr<serve::RequestExecutor> executor;
  std::unique_ptr<net::LineServer> server;

  static LocalServer Start() {
    LocalServer local;
    serve::RouterConfig config;
    config.replicas = 2;
    local.router = std::make_unique<serve::Router>(config);
    serve::ExecutorConfig executor_config;
    obs::TraceConfig trace_config;
    trace_config.sample_every_n = 16;
    trace_config.capacity = 1024;
    executor_config.trace_store =
        std::make_shared<obs::TraceStore>(trace_config);
    local.executor = std::make_unique<serve::RequestExecutor>(
        local.router.get(), executor_config);
    net::LineServerConfig net_config;
    local.server = std::make_unique<net::LineServer>(net_config,
                                                     local.executor.get());
    local.executor->AddStatsRegistry(&local.server->registry());
    if (!local.server->Start().ok()) std::abort();
    return local;
  }

  void Stop() {
    server->Drain();
    router->Shutdown();
  }
};

Result Measure(const std::string& connect_host, int connect_port,
               const std::string& request_line, std::size_t requests,
               int connections, int depth, int reps) {
  Result result;
  result.connections = connections;
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    LocalServer local;
    std::string host = connect_host;
    int port = connect_port;
    if (port == 0) {  // in-process mode
      local = LocalServer::Start();
      host = "127.0.0.1";
      port = local.server->port();
    }
    const double seconds =
        DrivePass(host, port, request_line, requests, connections, depth);
    if (seconds < best) {
      best = seconds;
      result.seconds = seconds;
      result.rps = static_cast<double>(requests) / seconds;
      FillQuantiles(host, port, &result);
      FillSpanMeans(host, port, &result);
    }
    if (connect_port == 0) local.Stop();
  }
  return result;
}

void EmitKernel(const std::string& name, std::size_t n,
                const std::vector<Result>& results, bool last) {
  std::cout << "    {\"name\": \"" << name << "\", \"n\": " << n
            << ", \"results\": [";
  const double serial = results.front().seconds;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::cout << (i ? ", " : "") << "{\"threads\": " << r.connections
              << ", \"seconds\": " << r.seconds
              << ", \"speedup\": " << serial / r.seconds
              << ", \"rps\": " << r.rps
              << ", \"p50_micros\": " << r.p50_micros
              << ", \"p95_micros\": " << r.p95_micros
              << ", \"p99_micros\": " << r.p99_micros
              << ", \"span_queue_micros\": " << r.span_queue_micros
              << ", \"span_exec_micros\": " << r.span_exec_micros
              << ", \"span_format_micros\": " << r.span_format_micros << "}";
  }
  std::cout << "]}" << (last ? "" : ",") << "\n";
}

}  // namespace

int main() {
  parallel::SetDeterministic(true);
  const std::size_t requests =
      static_cast<std::size_t>(EnvInt("MCIRBM_BENCH_NET_REQUESTS", 1000));
  const int reps = std::max(1, EnvInt("MCIRBM_BENCH_NET_REPS", 2));
  const std::vector<int> connection_counts = {1, 2, 4, 8};
  const std::vector<int> depths = {1, 8, 32};

  std::string connect_host;
  int connect_port = 0;
  if (const char* connect = std::getenv("MCIRBM_BENCH_NET_CONNECT")) {
    const std::string spec = connect;
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "MCIRBM_BENCH_NET_CONNECT must be host:port\n";
      return 1;
    }
    connect_host = spec.substr(0, colon);
    connect_port = std::atoi(spec.c_str() + colon + 1);
    if (connect_port <= 0) {
      std::cerr << "bad port in MCIRBM_BENCH_NET_CONNECT\n";
      return 1;
    }
  }

  // The transform kernel's artifacts (in-process mode only): a small
  // encoder and its dataset on disk, exactly what the serve protocol
  // references by path.
  std::string data_path, model_path, transform_request;
  if (connect_port == 0) {
    data::GaussianMixtureSpec spec;
    spec.name = "net";
    spec.num_classes = 2;
    spec.num_instances = 64;
    spec.num_features = 16;
    const data::Dataset ds = data::GenerateGaussianMixture(spec, 7);
    core::PipelineConfig config;
    config.model = core::ModelKind::kGrbm;
    config.rbm.num_hidden = 32;
    config.rbm.epochs = 1;
    config.rbm.batch_size = 32;
    auto trained = api::Model::Train(ds.x, config, 7);
    if (!trained.ok()) {
      std::cerr << "training failed: " << trained.status().ToString()
                << "\n";
      return 1;
    }
    data_path = "mcirbm_net_bench_data.csv";
    model_path = "mcirbm_net_bench_model.txt";
    if (!data::SaveDatasetCsv(ds, data_path).ok() ||
        !trained.value().Save(model_path).ok()) {
      std::cerr << "cannot write bench artifacts\n";
      return 1;
    }
    transform_request = "op=transform model=" + model_path +
                        " data=" + data_path + " chunk=64";
  } else if (const char* line = std::getenv("MCIRBM_BENCH_NET_REQUEST")) {
    transform_request = line;
  }

  std::cout << "{\n  \"hardware_threads\": "
            << std::thread::hardware_concurrency()
            << ",\n  \"kernels\": [\n";
  const bool with_transform = !transform_request.empty();
  for (std::size_t d = 0; d < depths.size(); ++d) {
    std::vector<Result> results;
    for (int connections : connection_counts) {
      results.push_back(Measure(connect_host, connect_port, "op=stats",
                                requests, connections, depths[d], reps));
    }
    EmitKernel("net_pipeline" + std::to_string(depths[d]), requests,
               results, /*last=*/!with_transform && d + 1 == depths.size());
  }
  if (with_transform) {
    // Real inference behind every response: fewer requests, same sweep.
    const std::size_t transform_requests = std::max<std::size_t>(
        8, requests / 10);
    std::vector<Result> results;
    for (int connections : connection_counts) {
      results.push_back(Measure(connect_host, connect_port,
                                transform_request, transform_requests,
                                connections, 8, reps));
    }
    EmitKernel("net_transform8", transform_requests, results,
               /*last=*/true);
  }
  std::cout << "  ]\n}\n";
  if (!data_path.empty()) {
    std::remove(data_path.c_str());
    std::remove(model_path.c_str());
  }
  return 0;
}
