// Ablation: stack depth for the greedy layer-wise sls encoder.
//
// The paper's model is one layer. This bench trains stacks of depth 1-3
// (slsGRBM bottom, slsRBM above, per-layer re-supervision) and reports
// downstream k-means accuracy at each depth, against the raw-data
// baseline. Expected shape: depth 1 captures most of the gain, a second
// layer can add a little, and deeper greedy layers without global
// fine-tuning drift back down (standard DBN behaviour on small data).
#include "bench_common.h"
#include <iostream>

#include "clustering/kmeans.h"
#include "core/stacked.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "eval/experiment.h"
#include "metrics/external.h"
#include "util/string_util.h"

using namespace mcirbm;  // NOLINT: bench driver

namespace {

void RunDataset(const data::Dataset& full) {
  const data::Dataset ds = data::StratifiedSubsample(full, 250, 1);
  linalg::Matrix x = ds.x;
  data::StandardizeInPlace(&x);

  const eval::ExperimentConfig paper = eval::MakePaperConfig(true);

  core::StackedLayerConfig bottom;
  bottom.model = core::ModelKind::kSlsGrbm;
  bottom.rbm = paper.rbm;
  bottom.sls = paper.sls;
  bottom.supervision = paper.supervision;
  bottom.supervision.num_clusters = ds.num_classes;

  core::StackedLayerConfig middle = bottom;
  middle.model = core::ModelKind::kSlsRbm;
  middle.rbm.num_hidden = paper.rbm.num_hidden / 2;
  middle.rbm.learning_rate = 0.01;

  core::StackedLayerConfig top = middle;
  top.rbm.num_hidden = paper.rbm.num_hidden / 4;

  core::StackedEncoder stack({bottom, middle, top});
  stack.Train(x, 7);

  clustering::KMeansConfig km;
  km.k = ds.num_classes;
  std::cout << "\ndataset " << ds.name << "\n";
  std::cout << "  depth  width  acc(k-means)\n";
  {
    const auto raw = clustering::KMeans(km).Cluster(ds.x, 1);
    std::cout << "  raw    " << PadLeft(std::to_string(ds.num_features()), 5)
              << PadLeft(FormatDouble(metrics::ClusteringAccuracy(
                                          ds.labels, raw.assignment),
                                      4),
                         12)
              << "\n";
  }
  for (std::size_t depth = 1; depth <= stack.num_layers(); ++depth) {
    const linalg::Matrix features = stack.Transform(x, depth);
    const auto result = clustering::KMeans(km).Cluster(features, 1);
    std::cout << "    " << depth << "    "
              << PadLeft(std::to_string(features.cols()), 5)
              << PadLeft(FormatDouble(metrics::ClusteringAccuracy(
                                          ds.labels, result.assignment),
                                      4),
                         12)
              << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (!bench::ParseBenchArgs(argc, argv)) return 2;
  std::cout << "=== ablation: greedy stack depth (sls encoders) ===\n";
  const auto datasets = bench::LoadBenchDatasets(7);
  if (!datasets.empty()) {
    for (const auto& ds : datasets) RunDataset(ds);
    return 0;
  }
  for (const int index : {4, 8}) {
    RunDataset(data::GenerateMsraLike(index, 7));
  }
  return 0;
}
