// Ablation: integration member sets for the multi-clustering voting.
//
// Beyond the paper's DP/K-means/AP trio, the library ships four more
// voters (Ward agglomerative, DBSCAN, GMM, spectral). This bench measures
// how the member set changes consensus coverage/purity and the downstream
// k-means accuracy of the trained slsGRBM — including the key scaling
// fact: unanimity collapses as members are added, majority voting keeps
// large ensembles usable.
#include "bench_common.h"
#include <iostream>
#include <string>
#include <vector>

#include "clustering/kmeans.h"
#include "core/pipeline.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "eval/experiment.h"
#include "metrics/external.h"
#include "util/string_util.h"

using namespace mcirbm;  // NOLINT: bench driver

namespace {

struct Row {
  std::string name;
  core::SupervisionConfig config;
};

void RunDataset(const data::Dataset& full) {
  const data::Dataset ds = data::StratifiedSubsample(full, 250, 1);
  linalg::Matrix x = ds.x;
  data::StandardizeInPlace(&x);

  std::vector<Row> rows;
  {
    core::SupervisionConfig base;
    base.num_clusters = ds.num_classes;
    rows.push_back({"paper trio (unanimous)", base});

    core::SupervisionConfig ward = base;
    ward.use_agglomerative = true;
    rows.push_back({"+ agglomerative(Ward)", ward});

    core::SupervisionConfig gmm = ward;
    gmm.use_gmm = true;
    rows.push_back({"+ GMM", gmm});

    core::SupervisionConfig all = gmm;
    all.use_dbscan = true;
    all.use_spectral = true;
    rows.push_back({"all 7 (unanimous)", all});

    core::SupervisionConfig all_majority = all;
    all_majority.strategy = voting::VoteStrategy::kMajority;
    rows.push_back({"all 7 (majority)", all_majority});
  }

  const eval::ExperimentConfig paper = eval::MakePaperConfig(true);

  std::cout << "\ndataset " << ds.name << "\n";
  std::cout << "  member set               coverage  purity   acc(hidden)\n";
  for (const auto& row : rows) {
    const auto sup = core::ComputeSelfLearningSupervision(x, row.config, 5);
    std::vector<int> truth, pred;
    for (std::size_t i = 0; i < sup.cluster_of.size(); ++i) {
      if (sup.cluster_of[i] >= 0) {
        truth.push_back(ds.labels[i]);
        pred.push_back(sup.cluster_of[i]);
      }
    }
    const double purity = truth.empty() ? 0.0 : metrics::Purity(truth, pred);

    rbm::RbmConfig rc = paper.rbm;
    rc.num_visible = static_cast<int>(x.cols());
    rc.seed = 5;
    core::SlsGrbm model(rc, paper.sls, sup);
    model.Train(x);
    clustering::KMeansConfig km;
    km.k = ds.num_classes;
    const double acc = metrics::ClusteringAccuracy(
        ds.labels,
        clustering::KMeans(km).Cluster(model.HiddenFeatures(x), 1)
            .assignment);

    std::cout << "  " << PadRight(row.name, 25)
              << PadLeft(FormatDouble(sup.Coverage(), 3), 8)
              << PadLeft(FormatDouble(purity, 3), 9)
              << PadLeft(FormatDouble(acc, 4), 12) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (!bench::ParseBenchArgs(argc, argv)) return 2;
  std::cout << "=== ablation: integration member sets (slsGRBM) ===\n";
  const auto datasets = bench::LoadBenchDatasets(7);
  if (!datasets.empty()) {
    for (const auto& ds : datasets) RunDataset(ds);
  } else {
    for (const int index : {4, 8}) {
      RunDataset(data::GenerateMsraLike(index, 7));
    }
  }
  std::cout << "\nreading: unanimity over many diverse voters collapses "
               "coverage; majority voting restores it while keeping the "
               "consensus purer than any single voter.\n";
  return 0;
}
