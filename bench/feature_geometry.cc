// Feature-space geometry: direct measurement of constrict & disperse.
//
// The paper argues its hidden features cluster better because same-
// cluster features constrict and different-cluster centers disperse
// (Eq. 13). The accuracy tables test that only indirectly; this bench
// measures Eq. 13's own two quantities in each feature space:
//
//   constrict = mean within-credible-cluster pairwise distance²
//   disperse  = mean pairwise distance² between credible-cluster centers
//
// both normalized by the mean overall pairwise distance² of that feature
// space, so the ratios are dimensionless and comparable across the
// 899-dim original space and the hidden spaces. If the mechanism works,
// sls training drives constrict down and disperse up relative to both
// the original data and the plain encoder.
#include <iostream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "eval/experiment.h"
#include "linalg/ops.h"
#include "util/string_util.h"

using namespace mcirbm;  // NOLINT: bench driver

namespace {

struct Geometry {
  double constrict = 0;  ///< within-cluster mean pairwise d² / overall
  double disperse = 0;   ///< between-center mean d² / overall
};

Geometry MeasureGeometry(const linalg::Matrix& features,
                         const voting::LocalSupervision& sup) {
  const linalg::Matrix d2 = linalg::PairwiseSquaredDistances(features);
  const std::size_t n = features.rows();

  // Overall scale: mean pairwise squared distance (off-diagonal).
  double overall = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) overall += d2(i, j);
  }
  overall /= static_cast<double>(n * (n - 1) / 2);
  if (overall <= 0) return {};

  const auto members = sup.Members();

  // Constriction: mean pairwise d² within each credible cluster.
  double within = 0;
  std::size_t within_pairs = 0;
  for (const auto& cluster : members) {
    for (std::size_t a = 0; a < cluster.size(); ++a) {
      for (std::size_t b = a + 1; b < cluster.size(); ++b) {
        within += d2(cluster[a], cluster[b]);
        ++within_pairs;
      }
    }
  }
  if (within_pairs > 0) within /= static_cast<double>(within_pairs);

  // Dispersion: mean pairwise d² between credible-cluster centers.
  std::vector<std::vector<double>> centers;
  for (const auto& cluster : members) {
    if (cluster.empty()) continue;
    std::vector<double> c(features.cols(), 0.0);
    for (std::size_t idx : cluster) {
      const auto row = features.Row(idx);
      for (std::size_t j = 0; j < c.size(); ++j) c[j] += row[j];
    }
    for (double& v : c) v /= static_cast<double>(cluster.size());
    centers.push_back(std::move(c));
  }
  double between = 0;
  std::size_t center_pairs = 0;
  for (std::size_t p = 0; p < centers.size(); ++p) {
    for (std::size_t q = p + 1; q < centers.size(); ++q) {
      between += linalg::SquaredDistance(centers[p], centers[q]);
      ++center_pairs;
    }
  }
  if (center_pairs > 0) between /= static_cast<double>(center_pairs);

  return {within / overall, between / overall};
}

void RunDataset(const data::Dataset& full, bool grbm) {
  const data::Dataset ds = data::StratifiedSubsample(full, 250, 1);
  linalg::Matrix x = ds.x;
  if (grbm) {
    data::StandardizeInPlace(&x);
  } else {
    data::MinMaxScaleInPlace(&x);
    data::BinarizeAtColumnMeanInPlace(&x);
  }

  const eval::ExperimentConfig paper = eval::MakePaperConfig(grbm);

  core::PipelineConfig plain_cfg;
  plain_cfg.model = grbm ? core::ModelKind::kGrbm : core::ModelKind::kRbm;
  plain_cfg.rbm = paper.rbm;
  const auto plain = core::RunEncoderPipeline(x, plain_cfg, 7);

  core::PipelineConfig sls_cfg = plain_cfg;
  sls_cfg.model = grbm ? core::ModelKind::kSlsGrbm : core::ModelKind::kSlsRbm;
  sls_cfg.sls = paper.sls;
  sls_cfg.supervision = paper.supervision;
  sls_cfg.supervision.num_clusters = ds.num_classes;
  const auto sls = core::RunEncoderPipeline(x, sls_cfg, 7);
  const voting::LocalSupervision& sup = sls.supervision;

  std::cout << "\ndataset " << ds.name << " ("
            << (grbm ? "slsGRBM" : "slsRBM")
            << " family; consensus coverage "
            << FormatDouble(sup.Coverage(), 3) << ", "
            << sup.num_clusters << " credible clusters)\n";
  std::cout << "  features          constrict(lower=better)  "
               "disperse(higher=better)\n";
  struct Row {
    const char* name;
    const linalg::Matrix* features;
  };
  const Row rows[] = {
      {"original data", &x},
      {grbm ? "GRBM hidden" : "RBM hidden", &plain.hidden_features},
      {grbm ? "slsGRBM hidden" : "slsRBM hidden", &sls.hidden_features},
  };
  for (const Row& row : rows) {
    const Geometry g = MeasureGeometry(*row.features, sup);
    // A single credible cluster has no center pairs: dispersion undefined.
    const std::string disperse = sup.num_clusters >= 2
                                     ? FormatDouble(g.disperse, 3)
                                     : std::string("n/a");
    std::cout << "  " << PadRight(row.name, 18)
              << PadLeft(FormatDouble(g.constrict, 3), 16)
              << PadLeft(disperse, 24) << "\n";
  }
}

}  // namespace

int main() {
  std::cout << "=== feature-space geometry: Eq. 13's constrict & disperse "
               "terms, measured per feature space ===\n";
  for (const int index : {4, 8}) {
    RunDataset(data::GenerateMsraLike(index, 7), /*grbm=*/true);
  }
  for (const int index : {1, 5}) {
    RunDataset(data::GenerateUciLike(index, 7), /*grbm=*/false);
  }
  std::cout << "\nreading: relative to each space's own distance scale, "
               "sls training shrinks within-credible-cluster distances "
               "(constrict) and pushes credible-cluster centers apart "
               "(disperse) versus both the original data and the plain "
               "encoder — Eq. 13 doing exactly what it claims.\n";
  return 0;
}
