// Speedup-vs-threads microbench for the parallel execution engine.
//
// Measures every kernel family the engine covers — the GEMM /
// pairwise-distance hot paths, one CD-1 training epoch, GMM EM, the
// spectral embedding (affinity + Jacobi eigensolve), agglomerative
// linkage, PCA fit, the sls supervision gradient, dataset synthesis, and
// the opt-in sharded Gibbs sampler — at 1/2/4/8 threads, and emits a
// JSON document:
//
//   {"hardware_threads": ..., "kernels": [
//     {"name": "pairwise_sqdist", "n": ..., "results":
//       [{"threads": 1, "seconds": ..., "speedup": 1.0}, ...]}, ...]}
//
// Environment knobs:
//   MCIRBM_BENCH_SCALE_N=<int>   instance count (default 1200)
//   MCIRBM_BENCH_SCALE_REPS=<int> timing repetitions, best-of (default 3)
//
// Note: speedups are only meaningful on a machine with that many physical
// cores; the JSON records hardware_threads so trajectory tooling can
// discount oversubscribed points.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "clustering/agglomerative.h"
#include "clustering/gmm.h"
#include "clustering/spectral.h"
#include "core/sls_gradient.h"
#include "data/synthetic.h"
#include "linalg/ops.h"
#include "linalg/pca.h"
#include "parallel/thread_pool.h"
#include "rbm/grbm.h"
#include "rbm/sampling.h"
#include "rng/rng.h"
#include "util/timer.h"

namespace {

using namespace mcirbm;  // NOLINT: bench driver

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

linalg::Matrix RandomMatrix(std::size_t r, std::size_t c,
                            std::uint64_t seed) {
  // Per-shard substreams keep generation itself parallel-friendly and
  // reproducible.
  linalg::Matrix m(r, c);
  constexpr std::size_t kGrain = 4096;
  parallel::ParallelFor(
      m.size(), kGrain, [&](std::size_t begin, std::size_t end) {
        rng::Rng rng = parallel::ShardRng(seed, begin / kGrain);
        for (std::size_t i = begin; i < end; ++i) {
          m.data()[i] = rng.Gaussian();
        }
      });
  return m;
}

struct Timing {
  int threads = 0;
  double seconds = 0;
};

// Best-of-`reps` wall time of fn() at the given pool width.
template <typename Fn>
double TimeAt(int threads, int reps, const Fn& fn) {
  parallel::SetNumThreads(threads);
  fn();  // warm-up (pool spin-up, page faults)
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.Seconds());
  }
  return best;
}

void EmitKernel(const std::string& name, std::size_t n,
                const std::vector<Timing>& timings, bool last) {
  std::cout << "    {\"name\": \"" << name << "\", \"n\": " << n
            << ", \"results\": [";
  const double serial = timings.front().seconds;
  for (std::size_t i = 0; i < timings.size(); ++i) {
    std::cout << (i ? ", " : "") << "{\"threads\": " << timings[i].threads
              << ", \"seconds\": " << timings[i].seconds
              << ", \"speedup\": " << serial / timings[i].seconds << "}";
  }
  std::cout << "]}" << (last ? "" : ",") << "\n";
}

}  // namespace

int main() {
  // Pin the serial-reference schedules regardless of an inherited
  // MCIRBM_DETERMINISTIC: every kernel below measures the deterministic
  // path except gibbs_sharded, which toggles the fast mode itself.
  parallel::SetDeterministic(true);
  const std::size_t n = EnvInt("MCIRBM_BENCH_SCALE_N", 1200);
  const int reps = EnvInt("MCIRBM_BENCH_SCALE_REPS", 3);
  const std::vector<int> widths = {1, 2, 4, 8};

  const linalg::Matrix x = RandomMatrix(n, 64, 1);
  const linalg::Matrix a = RandomMatrix(n, 256, 2);
  const linalg::Matrix b = RandomMatrix(256, 256, 3);

  rbm::RbmConfig cd1;
  cd1.num_visible = 64;
  cd1.num_hidden = 128;
  cd1.epochs = 1;
  cd1.batch_size = 0;  // full batch, the paper's small-dataset setting
  cd1.seed = 7;

  // Smaller substrates for the super-linear kernels (Jacobi is O(n³) per
  // sweep, agglomerative O(n³) total).
  const std::size_t n_spec = std::min<std::size_t>(n, 320);
  const std::size_t n_agg = std::min<std::size_t>(n, 480);
  data::GaussianMixtureSpec synth_spec;
  synth_spec.name = "scaling";
  synth_spec.num_classes = 5;
  synth_spec.num_instances = static_cast<int>(n) * 4;
  synth_spec.num_features = 64;
  const data::Dataset gmm_data = data::GenerateGaussianMixture(
      {.name = "gmm", .num_classes = 6,
       .num_instances = static_cast<int>(n), .num_features = 32}, 5);

  // sls-gradient substrate: sigmoid hidden features plus a handful of
  // credible clusters over the first rows.
  linalg::Matrix h_feat = RandomMatrix(n, 128, 4);
  linalg::SigmoidInPlace(&h_feat);
  core::SupervisionBatch batch;
  for (std::size_t c = 0; c < 6; ++c) {
    std::vector<std::size_t> rows;
    for (std::size_t r = c * 40; r < (c + 1) * 40 && r < n; ++r) {
      rows.push_back(r);
    }
    if (rows.size() < 2) continue;
    batch.num_credible += rows.size();
    batch.num_ordered_pairs += rows.size() * (rows.size() - 1);
    batch.members.push_back(std::move(rows));
  }
  const linalg::Matrix w_sls = RandomMatrix(a.cols(), 128, 5);
  const std::vector<double> b_sls(128, 0.0);

  std::vector<Timing> pairwise, gemm, cd1_epoch, gmm_em, spectral_embed,
      agglomerative, pca_fit, sls_gradient, synthesis, gibbs_fast;
  for (int threads : widths) {
    pairwise.push_back(
        {threads, TimeAt(threads, reps, [&] {
           volatile double sink = linalg::PairwiseSquaredDistances(x)(0, 1);
           (void)sink;
         })});
    gemm.push_back({threads, TimeAt(threads, reps, [&] {
                      volatile double sink = linalg::Gemm(a, b)(0, 0);
                      (void)sink;
                    })});
    cd1_epoch.push_back({threads, TimeAt(threads, reps, [&] {
                           rbm::Grbm model(cd1);
                           model.Train(x);
                         })});
    gmm_em.push_back({threads, TimeAt(threads, reps, [&] {
                        const clustering::GaussianMixture gmm(
                            {.num_components = 6, .max_iterations = 8});
                        volatile int sink =
                            gmm.Cluster(gmm_data.x, 3).num_clusters;
                        (void)sink;
                      })});
    spectral_embed.push_back(
        {threads, TimeAt(threads, reps, [&] {
           clustering::Spectral::Options options;
           options.num_clusters = 6;
           const clustering::Spectral spectral(options);
           linalg::Matrix sub(n_spec, gmm_data.x.cols());
           std::copy_n(gmm_data.x.data(), sub.size(), sub.data());
           volatile double sink = spectral.Embed(sub)(0, 0);
           (void)sink;
         })});
    agglomerative.push_back(
        {threads, TimeAt(threads, reps, [&] {
           const clustering::Agglomerative agg(6,
                                               clustering::Linkage::kWard);
           linalg::Matrix sub(n_agg, gmm_data.x.cols());
           std::copy_n(gmm_data.x.data(), sub.size(), sub.data());
           volatile int sink = agg.Cluster(sub, 0).num_clusters;
           (void)sink;
         })});
    pca_fit.push_back({threads, TimeAt(threads, reps, [&] {
                         linalg::Pca::Options options;
                         options.num_components = 32;
                         volatile double sink =
                             linalg::Pca::Fit(a, options).Transform(a)(0, 0);
                         (void)sink;
                       })});
    sls_gradient.push_back(
        {threads, TimeAt(threads, reps, [&] {
           linalg::Matrix dw(a.cols(), 128);
           std::vector<double> db(128, 0.0);
           core::AccumulateSlsGradientFast(a, h_feat, batch, w_sls, b_sls,
                                           {}, {&dw, &db});
           volatile double sink = dw(0, 0);
           (void)sink;
         })});
    synthesis.push_back(
        {threads, TimeAt(threads, reps, [&] {
           volatile double sink =
               data::GenerateGaussianMixture(synth_spec, 9).x(0, 0);
           (void)sink;
         })});
    gibbs_fast.push_back(
        {threads, TimeAt(threads, reps, [&] {
           // Opt-in sharded sampler: rows fan out onto ShardRng
           // substreams (deterministic mode pins the serial chain).
           parallel::SetDeterministic(false);
           rbm::Grbm model(cd1);
           rbm::GibbsOptions gibbs;
           gibbs.burn_in = 20;
           gibbs.seed = 11;
           volatile double sink =
               rbm::SampleFantasies(model, x, gibbs)(0, 0);
           (void)sink;
           parallel::SetDeterministic(true);
         })});
  }
  parallel::SetNumThreads(0);

  std::cout << "{\n  \"hardware_threads\": "
            << std::thread::hardware_concurrency() << ",\n  \"kernels\": [\n";
  EmitKernel("pairwise_sqdist", n, pairwise, false);
  EmitKernel("gemm", n, gemm, false);
  EmitKernel("cd1_epoch", n, cd1_epoch, false);
  EmitKernel("gmm_em", n, gmm_em, false);
  EmitKernel("spectral_embed", n_spec, spectral_embed, false);
  EmitKernel("agglomerative", n_agg, agglomerative, false);
  EmitKernel("pca_fit", n, pca_fit, false);
  EmitKernel("sls_gradient", n, sls_gradient, false);
  EmitKernel("synthesis", synth_spec.num_instances, synthesis, false);
  EmitKernel("gibbs_sharded", n, gibbs_fast, true);
  std::cout << "  ]\n}\n";
  return 0;
}
