// Speedup-vs-threads microbench for the parallel execution engine.
//
// Measures the two paths named in the acceptance criteria — the
// PairwiseSquaredDistances kernel and one CD-1 training epoch — plus the
// GEMM underneath both, at 1/2/4/8 threads, and emits a JSON document:
//
//   {"hardware_threads": ..., "kernels": [
//     {"name": "pairwise_sqdist", "n": ..., "results":
//       [{"threads": 1, "seconds": ..., "speedup": 1.0}, ...]}, ...]}
//
// Environment knobs:
//   MCIRBM_BENCH_SCALE_N=<int>   instance count (default 1200)
//   MCIRBM_BENCH_SCALE_REPS=<int> timing repetitions, best-of (default 3)
//
// Note: speedups are only meaningful on a machine with that many physical
// cores; the JSON records hardware_threads so trajectory tooling can
// discount oversubscribed points.
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "linalg/ops.h"
#include "parallel/thread_pool.h"
#include "rbm/grbm.h"
#include "rng/rng.h"
#include "util/timer.h"

namespace {

using namespace mcirbm;  // NOLINT: bench driver

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

linalg::Matrix RandomMatrix(std::size_t r, std::size_t c,
                            std::uint64_t seed) {
  // Per-shard substreams keep generation itself parallel-friendly and
  // reproducible.
  linalg::Matrix m(r, c);
  constexpr std::size_t kGrain = 4096;
  parallel::ParallelFor(
      m.size(), kGrain, [&](std::size_t begin, std::size_t end) {
        rng::Rng rng = parallel::ShardRng(seed, begin / kGrain);
        for (std::size_t i = begin; i < end; ++i) {
          m.data()[i] = rng.Gaussian();
        }
      });
  return m;
}

struct Timing {
  int threads = 0;
  double seconds = 0;
};

// Best-of-`reps` wall time of fn() at the given pool width.
template <typename Fn>
double TimeAt(int threads, int reps, const Fn& fn) {
  parallel::SetNumThreads(threads);
  fn();  // warm-up (pool spin-up, page faults)
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.Seconds());
  }
  return best;
}

void EmitKernel(const std::string& name, std::size_t n,
                const std::vector<Timing>& timings, bool last) {
  std::cout << "    {\"name\": \"" << name << "\", \"n\": " << n
            << ", \"results\": [";
  const double serial = timings.front().seconds;
  for (std::size_t i = 0; i < timings.size(); ++i) {
    std::cout << (i ? ", " : "") << "{\"threads\": " << timings[i].threads
              << ", \"seconds\": " << timings[i].seconds
              << ", \"speedup\": " << serial / timings[i].seconds << "}";
  }
  std::cout << "]}" << (last ? "" : ",") << "\n";
}

}  // namespace

int main() {
  const std::size_t n = EnvInt("MCIRBM_BENCH_SCALE_N", 1200);
  const int reps = EnvInt("MCIRBM_BENCH_SCALE_REPS", 3);
  const std::vector<int> widths = {1, 2, 4, 8};

  const linalg::Matrix x = RandomMatrix(n, 64, 1);
  const linalg::Matrix a = RandomMatrix(n, 256, 2);
  const linalg::Matrix b = RandomMatrix(256, 256, 3);

  rbm::RbmConfig cd1;
  cd1.num_visible = 64;
  cd1.num_hidden = 128;
  cd1.epochs = 1;
  cd1.batch_size = 0;  // full batch, the paper's small-dataset setting
  cd1.seed = 7;

  std::vector<Timing> pairwise, gemm, cd1_epoch;
  for (int threads : widths) {
    pairwise.push_back(
        {threads, TimeAt(threads, reps, [&] {
           volatile double sink = linalg::PairwiseSquaredDistances(x)(0, 1);
           (void)sink;
         })});
    gemm.push_back({threads, TimeAt(threads, reps, [&] {
                      volatile double sink = linalg::Gemm(a, b)(0, 0);
                      (void)sink;
                    })});
    cd1_epoch.push_back({threads, TimeAt(threads, reps, [&] {
                           rbm::Grbm model(cd1);
                           model.Train(x);
                         })});
  }
  parallel::SetNumThreads(0);

  std::cout << "{\n  \"hardware_threads\": "
            << std::thread::hardware_concurrency() << ",\n  \"kernels\": [\n";
  EmitKernel("pairwise_sqdist", n, pairwise, false);
  EmitKernel("gemm", n, gemm, false);
  EmitKernel("cd1_epoch", n, cd1_epoch, true);
  std::cout << "  ]\n}\n";
  return 0;
}
