// mcirbm_soak — mixed-traffic soak driver for the serve stack.
//
// Runs a configurable blend of op=transform / op=evaluate / op=stats /
// op=trace / op=reload traffic against either an in-process
// Router+RequestExecutor (default; the TSan-friendly mode) or a live
// `mcirbm_cli serve --listen` endpoint over TCP (--connect host:port),
// for --duration-seconds, and checks serving invariants the unit tests
// cannot: they only hold across sustained, interleaved load.
//
// The run alternates traffic phases with quiescent checkpoints (all
// worker round trips completed), where it asserts:
//
//   - every *_total counter and histogram _count in op=stats is
//     monotone non-decreasing across polls;
//   - the serve_pending_rows / serve_queue_depth gauges are zero at
//     every quiescent point (no request leaked into a batch that never
//     flushed);
//   - every request issued got exactly one response (a round trip that
//     never returns, returns twice, or dies mid-read is a violation —
//     over TCP this is the futures-resolved-exactly-once check from the
//     client's side of the wire);
//   - byte parity: a served transform's sum= field matches a direct
//     api::Model::Transform of the same CSV round trip, and its out=
//     file is byte-identical across checkpoints (batched execution is
//     bit-stable under load);
//   - span accounting (when the target has tracing on): for every trace
//     in op=trace, spans are ordered by start time and their durations
//     sum to at most the end-to-end duration; op=transform traces cover
//     parse -> queue -> exec -> format;
//   - with --expect-rejections (default on in-process when
//     --max-pending bounds the queue), the burst phases must trip
//     admission control at least once over the run (serve_rejected_total
//     ends up > 0) — proving the backpressure path actually exercised.
//
// Violations are collected, printed at exit, and fail the process with
// status 1 — the CI soak-smoke contract.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/api.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "net/client.h"
#include "serve/serve.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace mcirbm {
namespace {

struct SoakOptions {
  int duration_seconds = 10;
  int threads = 4;
  int seed = 42;
  // In-process service shape (ignored with --connect).
  int replicas = 2;
  std::string routing = "least_loaded";
  int max_pending = 4;
  int max_inflight = 0;
  int trace_sample = 4;
  std::string trace_jsonl;
  // TCP mode: drive a live `serve --listen` endpoint instead.
  std::string connect_host;
  int connect_port = 0;
  // -1 = auto: on in-process when max_pending bounds the queue, off
  // over TCP (the server's bounds are not ours to know).
  int expect_rejections = -1;
};

int Usage() {
  std::cerr
      << "usage: mcirbm_soak [--duration-seconds N] [--threads N]\n"
         "                   [--replicas N] [--routing key_hash|least_loaded]\n"
         "                   [--max-pending ROWS] [--max-inflight N]\n"
         "                   [--trace-sample N] [--trace-jsonl <path>]\n"
         "                   [--connect HOST:PORT] [--expect-rejections 0|1]\n"
         "                   [--seed N]\n";
  return 2;
}

bool ParseFlags(int argc, char** argv, SoakOptions* options) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) return false;
    arg.erase(0, 2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      if (i + 1 >= argc) return false;
      flags[arg] = argv[++i];
    }
  }
  auto take_int = [&flags](const std::string& name, int* out) {
    auto it = flags.find(name);
    if (it == flags.end()) return true;
    char* end = nullptr;
    const long value = std::strtol(it->second.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return false;
    *out = static_cast<int>(value);
    flags.erase(it);
    return true;
  };
  auto take_string = [&flags](const std::string& name, std::string* out) {
    auto it = flags.find(name);
    if (it == flags.end()) return;
    *out = it->second;
    flags.erase(it);
  };
  std::string connect;
  if (!take_int("duration-seconds", &options->duration_seconds) ||
      !take_int("threads", &options->threads) ||
      !take_int("seed", &options->seed) ||
      !take_int("replicas", &options->replicas) ||
      !take_int("max-pending", &options->max_pending) ||
      !take_int("max-inflight", &options->max_inflight) ||
      !take_int("trace-sample", &options->trace_sample) ||
      !take_int("expect-rejections", &options->expect_rejections)) {
    return false;
  }
  take_string("routing", &options->routing);
  take_string("trace-jsonl", &options->trace_jsonl);
  take_string("connect", &connect);
  if (!connect.empty()) {
    const std::size_t colon = connect.rfind(':');
    if (colon == std::string::npos) return false;
    options->connect_host = connect.substr(0, colon);
    char* end = nullptr;
    options->connect_port =
        static_cast<int>(std::strtol(connect.c_str() + colon + 1, &end, 10));
    if (end == nullptr || *end != '\0' || options->connect_port <= 0) {
      return false;
    }
  }
  if (!flags.empty()) {
    std::cerr << "unknown flag --" << flags.begin()->first << "\n";
    return false;
  }
  return options->duration_seconds >= 1 && options->threads >= 1 &&
         options->replicas >= 1 && options->max_pending >= 0 &&
         options->max_inflight >= 0 && options->trace_sample >= 0 &&
         (options->routing == "key_hash" ||
          options->routing == "least_loaded");
}

// Pulls `key=value`'s value out of a response line ("" when absent).
std::string Token(const std::string& line, const std::string& key) {
  const std::string needle = key + "=";
  std::size_t pos = line.find(" " + needle);
  if (pos == std::string::npos) {
    if (line.rfind(needle, 0) != 0) return "";
    pos = 0;
  } else {
    pos += 1;
  }
  const std::size_t begin = pos + needle.size();
  const std::size_t end = line.find_first_of(" \n", begin);
  return line.substr(begin, end == std::string::npos ? end : end - begin);
}

long long TokenInt(const std::string& line, const std::string& key) {
  const std::string value = Token(line, key);
  if (value.empty()) return 0;
  return std::strtoll(value.c_str(), nullptr, 10);
}

struct Response {
  bool ok = false;
  std::string payload;  // full text: first line + any announced body
};

// One serve session: strictly serialized request -> full response round
// trips. Each worker thread owns its own transport instance.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual StatusOr<Response> RoundTrip(const std::string& line) = 0;
};

// Drives a RequestExecutor directly — the CI TSan leg, where the whole
// serve stack (batcher flushers, store, executor, soak workers) runs in
// one instrumented process.
class InProcessTransport : public Transport {
 public:
  explicit InProcessTransport(serve::RequestExecutor* executor)
      : executor_(executor) {}

  StatusOr<Response> RoundTrip(const std::string& line) override {
    auto parsed = serve::ParseRequestLine(line);
    if (!parsed.ok()) return parsed.status();
    Response response;
    // Mirror the CLI file loop: sample, execute, finish after delivery.
    auto trace = executor_->StartTrace(parsed.value(), MonotonicMicros());
    response.payload =
        executor_->Execute(parsed.value(), "", &response.ok, trace);
    executor_->FinishTrace(trace);
    return response;
  }

 private:
  serve::RequestExecutor* const executor_;
};

// Drives a live --listen endpoint over one TCP connection.
class TcpTransport : public Transport {
 public:
  static StatusOr<std::unique_ptr<Transport>> Connect(
      const std::string& host, int port) {
    auto client = net::Client::Connect(host, port);
    if (!client.ok()) return client.status();
    return std::unique_ptr<Transport>(
        new TcpTransport(std::move(client).value()));
  }

  StatusOr<Response> RoundTrip(const std::string& line) override {
    const Status sent = client_.SendLine(line);
    if (!sent.ok()) return sent;
    std::string first;
    const Status read = client_.ReadLine(&first);
    if (!read.ok()) return read;
    Response response;
    response.ok = first.rfind("ok", 0) == 0;
    response.payload = first + "\n";
    // Multi-line responses announce their body size on the first line
    // (op=stats metrics=N, op=trace lines=N).
    long long body = TokenInt(first, "metrics");
    if (body == 0) body = TokenInt(first, "lines");
    std::string extra;
    for (long long i = 0; i < body; ++i) {
      const Status more = client_.ReadLine(&extra);
      if (!more.ok()) return more;
      response.payload += extra + "\n";
    }
    return response;
  }

 private:
  explicit TcpTransport(net::Client client) : client_(std::move(client)) {}
  net::Client client_;
};

// Collects invariant violations from every thread; the process verdict.
class InvariantChecker {
 public:
  void Fail(const std::string& what) {
    std::lock_guard<std::mutex> lock(mu_);
    violations_.push_back(what);
  }

  int Report() {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& violation : violations_) {
      std::cerr << "VIOLATION: " << violation << "\n";
    }
    return violations_.empty() ? 0 : 1;
  }

 private:
  std::mutex mu_;
  std::vector<std::string> violations_;
};

// "name{model=\"k\"} value" / "name value" metric lines -> series map.
std::map<std::string, double> ParseStatsPayload(const std::string& payload) {
  std::map<std::string, double> series;
  std::istringstream lines(payload);
  std::string line;
  std::getline(lines, line);  // the "ok ... op=stats metrics=N" header
  while (std::getline(lines, line)) {
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) continue;
    series[line.substr(0, space)] =
        std::strtod(line.c_str() + space + 1, nullptr);
  }
  return series;
}

// The metric-name portion of a series key (labels stripped).
std::string SeriesName(const std::string& series) {
  const std::size_t brace = series.find('{');
  return brace == std::string::npos ? series : series.substr(0, brace);
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// One parsed op=trace trace: end-to-end duration + its spans.
struct ParsedTrace {
  std::string op;
  long long duration_micros = -1;
  std::vector<std::pair<long long, long long>> spans;  // (start, duration)
  std::vector<std::string> span_names;
};

std::map<std::string, ParsedTrace> ParseTracePayload(
    const std::string& payload) {
  std::map<std::string, ParsedTrace> traces;
  std::istringstream lines(payload);
  std::string line;
  std::getline(lines, line);  // the "ok ... traces=T lines=N" header
  while (std::getline(lines, line)) {
    const std::string id = Token(line, "trace");
    if (id.empty()) continue;
    ParsedTrace& trace = traces[id];
    const std::string span = Token(line, "span");
    if (span.empty()) {
      trace.op = Token(line, "op");
      trace.duration_micros = TokenInt(line, "duration_micros");
    } else {
      trace.spans.emplace_back(TokenInt(line, "start_micros"),
                               TokenInt(line, "duration_micros"));
      trace.span_names.push_back(span);
    }
  }
  return traces;
}

bool Contains(const std::vector<std::string>& names,
              const std::string& name) {
  for (const std::string& candidate : names) {
    if (candidate == name) return true;
  }
  return false;
}

// The whole run: artifacts, transports, phases, checkpoints.
class Soak {
 public:
  Soak(const SoakOptions& options, InvariantChecker* check)
      : options_(options), check_(check) {}

  ~Soak() {
    if (router_ != nullptr) router_->Shutdown();
    std::remove(data_path_.c_str());
    std::remove(model_path_.c_str());
    std::remove(out_path_.c_str());
  }

  Status Setup() {
    const std::string prefix =
        "/tmp/mcirbm_soak_" + std::to_string(::getpid());
    data_path_ = prefix + "_data.csv";
    model_path_ = prefix + "_model.mcirbm";
    out_path_ = prefix + "_features.csv";

    data::GaussianMixtureSpec spec;
    spec.name = "soak";
    spec.num_classes = 2;
    spec.num_instances = 48;
    spec.num_features = 6;
    spec.separation = 6.0;
    const data::Dataset ds = data::GenerateGaussianMixture(
        spec, static_cast<unsigned>(options_.seed));
    Status saved = data::SaveDatasetCsv(ds, data_path_);
    if (!saved.ok()) return saved;

    core::PipelineConfig config;
    config.model = core::ModelKind::kGrbm;
    config.rbm.num_hidden = 5;
    config.rbm.epochs = 2;
    config.rbm.batch_size = 12;
    auto model = api::Model::Train(ds.x, config, 33);
    if (!model.ok()) return model.status();
    saved = model.value().Save(model_path_);
    if (!saved.ok()) return saved;

    // Byte-parity reference: a direct one-shot transform of the same
    // CSV round trip the served requests read.
    auto loaded = data::LoadDatasetCsv(data_path_, data_path_);
    if (!loaded.ok()) return loaded.status();
    auto features = model.value().Transform(loaded.value().x);
    if (!features.ok()) return features.status();
    reference_sum_ = FormatDouble(features.value().Sum(), 6);

    if (options_.connect_host.empty()) {
      serve::RouterConfig router_config;
      router_config.replicas =
          static_cast<std::size_t>(options_.replicas);
      router_config.routing = options_.routing == "least_loaded"
                                  ? serve::RoutingMode::kLeastLoaded
                                  : serve::RoutingMode::kKeyHash;
      router_config.batcher.max_pending_rows =
          static_cast<std::size_t>(options_.max_pending);
      router_config.max_inflight_requests =
          static_cast<std::uint64_t>(options_.max_inflight);
      router_ = std::make_unique<serve::Router>(router_config);
      serve::ExecutorConfig executor_config;
      if (options_.trace_sample > 0) {
        obs::TraceConfig trace_config;
        trace_config.sample_every_n =
            static_cast<std::uint64_t>(options_.trace_sample);
        executor_config.trace_store =
            std::make_shared<obs::TraceStore>(trace_config);
        if (!options_.trace_jsonl.empty()) {
          auto out = std::make_shared<std::ofstream>(options_.trace_jsonl,
                                                     std::ios::trunc);
          if (!*out) {
            return Status::InvalidArgument("cannot open trace file " +
                                           options_.trace_jsonl);
          }
          executor_config.trace_store->SetJsonlSink(
              [out](const std::string& json_line) {
                *out << json_line << '\n';
                out->flush();
              });
        }
      }
      executor_ = std::make_unique<serve::RequestExecutor>(
          router_.get(), executor_config);
    }

    probe_ = NewTransport();
    if (probe_ == nullptr) {
      return Status::Unavailable("cannot reach the target service");
    }
    // One probe decides whether span checks apply: a target without
    // tracing answers op=trace with an error, which is fine — the soak
    // then skips trace assertions instead of failing them.
    auto traced = probe_->RoundTrip("op=trace last=1");
    if (!traced.ok()) return traced.status();
    tracing_on_ = traced.value().ok;
    return Status::Ok();
  }

  // Runs the phase schedule until the deadline, then the final checks.
  void Run() {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(options_.duration_seconds);
    int round = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      // Every third round is an admission-tripping burst: every worker
      // hammers single-row chunks, overrunning a bounded queue.
      const bool burst = round % 3 == 2;
      TrafficPhase(/*millis=*/800, burst);
      Checkpoint(round);
      ++round;
    }
    std::cout << "# soak rounds=" << round << " issued=" << issued_.load()
              << " answered=" << answered_.load()
              << " ok=" << ok_responses_.load()
              << " rejections_seen=" << (last_rejected_ > 0 ? "yes" : "no")
              << std::endl;
    if (issued_.load() != answered_.load()) {
      check_->Fail("requests issued (" + std::to_string(issued_.load()) +
                   ") != responses received (" +
                   std::to_string(answered_.load()) +
                   "): some round trip never completed");
    }
    const bool expect_rejections =
        options_.expect_rejections == 1 ||
        (options_.expect_rejections == -1 &&
         options_.connect_host.empty() && options_.max_pending > 0);
    if (expect_rejections && last_rejected_ == 0) {
      check_->Fail(
          "burst phases never tripped admission control "
          "(serve_rejected_total stayed 0)");
    }
  }

 private:
  std::unique_ptr<Transport> NewTransport() {
    if (options_.connect_host.empty()) {
      return std::make_unique<InProcessTransport>(executor_.get());
    }
    auto connected =
        TcpTransport::Connect(options_.connect_host, options_.connect_port);
    if (!connected.ok()) {
      check_->Fail("connect failed: " + connected.status().ToString());
      return nullptr;
    }
    return std::move(connected).value();
  }

  std::string TransformLine(const std::string& extra) const {
    return "op=transform model=" + model_path_ + " data=" + data_path_ +
           extra;
  }

  // One worker's request mix for a non-burst phase.
  std::string MixedLine(std::mt19937* rng, int worker, int step) const {
    const int roll = static_cast<int>((*rng)() % 100);
    const std::string tag =
        roll % 2 == 0 ? " id=w" + std::to_string(worker) + "-" +
                            std::to_string(step)
                      : "";
    if (roll < 55) {
      const int chunk = 4 << static_cast<int>((*rng)() % 3);
      return TransformLine(" chunk=" + std::to_string(chunk) + tag);
    }
    if (roll < 70) {
      return "op=evaluate model=" + model_path_ + " data=" + data_path_ +
             " k=2 seed=7" + tag;
    }
    if (roll < 82) return "op=stats" + tag;
    if (roll < 92) return "op=trace last=8" + tag;
    return "op=reload model=" + model_path_ + tag;
  }

  void TrafficPhase(int millis, bool burst) {
    const auto phase_deadline = std::chrono::steady_clock::now() +
                                std::chrono::milliseconds(millis);
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(options_.threads));
    for (int w = 0; w < options_.threads; ++w) {
      workers.emplace_back([this, w, burst, phase_deadline] {
        std::mt19937 rng(
            static_cast<unsigned>(options_.seed + 7919 * (w + 1)));
        auto transport = NewTransport();
        if (transport == nullptr) return;
        int step = 0;
        while (std::chrono::steady_clock::now() < phase_deadline) {
          const std::string line =
              burst ? TransformLine(" chunk=1") : MixedLine(&rng, w, step);
          ++step;
          issued_.fetch_add(1);
          auto response = transport->RoundTrip(line);
          if (!response.ok()) {
            check_->Fail("round trip died on '" + line +
                         "': " + response.status().ToString());
            return;  // this connection/session is unusable now
          }
          answered_.fetch_add(1);
          if (response.value().ok) {
            ok_responses_.fetch_add(1);
          } else if (!(line.rfind("op=trace", 0) == 0 && !tracing_on_)) {
            // The only tolerated error is a trace probe against a
            // target that has tracing off.
            check_->Fail("unexpected error response to '" + line +
                         "': " + response.value().payload);
          }
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }

  // All workers joined: the service is quiescent — every submitted
  // future resolved, every batch flushed. Assert it looks that way.
  void Checkpoint(int round) {
    auto stats = probe_->RoundTrip("op=stats");
    if (!stats.ok() || !stats.value().ok) {
      check_->Fail("op=stats probe failed at round " +
                   std::to_string(round));
      return;
    }
    const std::map<std::string, double> series =
        ParseStatsPayload(stats.value().payload);
    double rejected = 0;
    for (const auto& [key, value] : series) {
      const std::string name = SeriesName(key);
      if ((EndsWith(name, "_total") || EndsWith(name, "_count")) &&
          !prev_series_.empty()) {
        const auto prev = prev_series_.find(key);
        if (prev != prev_series_.end() && value < prev->second) {
          check_->Fail("counter " + key + " went backwards: " +
                       std::to_string(prev->second) + " -> " +
                       std::to_string(value));
        }
      }
      if (name == "serve_pending_rows" || name == "serve_queue_depth") {
        if (value != 0) {
          check_->Fail("gauge " + key + " = " + std::to_string(value) +
                       " at quiescent checkpoint (round " +
                       std::to_string(round) + ")");
        }
      }
      if (name == "serve_rejected_total") rejected += value;
    }
    prev_series_ = series;
    last_rejected_ = rejected;
    ParityCheck(round);
    if (tracing_on_) TraceCheck(round);
  }

  void ParityCheck(int round) {
    auto served = probe_->RoundTrip(TransformLine(" out=" + out_path_));
    if (!served.ok() || !served.value().ok) {
      check_->Fail("parity transform failed at round " +
                   std::to_string(round));
      return;
    }
    const std::string sum = Token(served.value().payload, "sum");
    if (sum != reference_sum_) {
      check_->Fail("served transform sum=" + sum +
                   " != direct transform sum=" + reference_sum_);
    }
    std::ifstream out(out_path_, std::ios::binary);
    std::ostringstream bytes;
    bytes << out.rdbuf();
    if (reference_out_.empty()) {
      reference_out_ = bytes.str();
      if (reference_out_.empty()) {
        check_->Fail("parity out= file came back empty");
      }
    } else if (bytes.str() != reference_out_) {
      check_->Fail("served out= file bytes changed between checkpoints "
                   "(round " +
                   std::to_string(round) + ")");
    }
  }

  void TraceCheck(int round) {
    auto traced = probe_->RoundTrip("op=trace last=64");
    if (!traced.ok() || !traced.value().ok) {
      check_->Fail("op=trace probe failed at round " +
                   std::to_string(round));
      return;
    }
    const std::map<std::string, ParsedTrace> traces =
        ParseTracePayload(traced.value().payload);
    if (round > 0 && traces.empty()) {
      check_->Fail("tracing is on but no traces accumulated by round " +
                   std::to_string(round));
      return;
    }
    for (const auto& [id, trace] : traces) {
      long long span_sum = 0;
      long long prev_start = -1;
      for (std::size_t i = 0; i < trace.spans.size(); ++i) {
        span_sum += trace.spans[i].second;
        if (trace.spans[i].first < prev_start) {
          check_->Fail("trace " + id + " spans out of start order");
          break;
        }
        prev_start = trace.spans[i].first;
      }
      if (span_sum > trace.duration_micros) {
        check_->Fail("trace " + id + " span durations sum to " +
                     std::to_string(span_sum) + "us > end-to-end " +
                     std::to_string(trace.duration_micros) + "us");
      }
      if (trace.op == "transform") {
        for (const char* required : {"parse", "queue", "exec", "format"}) {
          if (!Contains(trace.span_names, required)) {
            check_->Fail("transform trace " + id + " is missing a '" +
                         std::string(required) + "' span");
          }
        }
      }
    }
  }

  const SoakOptions options_;
  InvariantChecker* const check_;

  std::string data_path_, model_path_, out_path_;
  std::string reference_sum_;
  std::string reference_out_;

  std::unique_ptr<serve::Router> router_;          // in-process mode
  std::unique_ptr<serve::RequestExecutor> executor_;
  std::unique_ptr<Transport> probe_;  // the checkpoint thread's session
  bool tracing_on_ = false;

  std::atomic<std::uint64_t> issued_{0};
  std::atomic<std::uint64_t> answered_{0};
  std::atomic<std::uint64_t> ok_responses_{0};
  std::map<std::string, double> prev_series_;
  double last_rejected_ = 0;
};

}  // namespace
}  // namespace mcirbm

int main(int argc, char** argv) {
  mcirbm::SoakOptions options;
  if (!mcirbm::ParseFlags(argc, argv, &options)) return mcirbm::Usage();
  mcirbm::InvariantChecker check;
  {
    mcirbm::Soak soak(options, &check);
    const mcirbm::Status ready = soak.Setup();
    if (!ready.ok()) {
      std::cerr << "soak setup failed: " << ready.ToString() << "\n";
      return 2;
    }
    soak.Run();
  }
  const int verdict = check.Report();
  std::cout << (verdict == 0 ? "# soak PASS" : "# soak FAIL") << std::endl;
  return verdict;
}
