#!/usr/bin/env python3
"""Repo-specific lint for mcirbm's src/ tree.

Three checks, all fatal:

1. Module layering. Dependencies between src/ modules must follow the
   DAG declared in CMakeLists.txt (util -> obs/rng -> parallel -> linalg
   -> {data, clustering} -> metrics -> voting -> rbm -> core -> eval ->
   api -> serve -> net). An #include that points at a module outside the
   including module's transitive dependency set is a back-edge and fails
   the build before the linker ever gets to diagnose the cycle.

2. Raw lock primitives. std::mutex / std::lock_guard / std::unique_lock
   / std::scoped_lock / std::condition_variable (and the <mutex> /
   <condition_variable> headers) are banned everywhere in src/ except
   src/util/mutex.h, because the raw primitives are invisible to the
   clang thread-safety analysis. Use mcirbm::Mutex / MutexLock / CondVar.

3. Nondeterminism primitives. rand() / srand() / time(nullptr) /
   time(NULL) / std::random_device are banned in src/: every kernel is
   bit-reproducible from an explicit seed (rng::Rng), and wall-clock
   reads go through util::MonotonicMicros.

Comments and string literals are stripped before matching, so prose
mentioning std::mutex (e.g. the rationale in util/thread_annotations.h)
does not trip the checks.

Usage:
    tools/lint/check_source.py [--root REPO_ROOT]
    tools/lint/check_source.py --self-test

--self-test feeds seeded violations (one per check, plus a clean file)
through the same check functions and fails loudly if any seeded
violation goes undetected — proof the lint actually bites. It runs as
the ctest entry `lint.self_test`; CI also runs the real pass.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# --------------------------------------------------------------------------
# Layering DAG: module -> direct dependencies, mirroring the
# mcirbm_module() calls in CMakeLists.txt. Keep the two in sync — the
# self-test cross-checks this table against CMakeLists.txt when run from
# a repo checkout.
# --------------------------------------------------------------------------
DIRECT_DEPS = {
    "util": [],
    "obs": ["util"],
    "rng": ["util"],
    "parallel": ["rng"],
    "linalg": ["parallel"],
    "data": ["linalg"],
    "clustering": ["linalg"],
    "metrics": ["clustering"],
    "voting": ["clustering", "metrics"],
    "rbm": ["linalg"],
    "core": ["rbm", "clustering", "voting"],
    "eval": ["core", "data", "metrics"],
    "api": ["eval"],
    "serve": ["api", "obs"],
    "net": ["serve"],
}


def transitive_deps(module: str) -> set[str]:
    """Every module `module` may include (itself included)."""
    seen: set[str] = set()
    stack = [module]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(DIRECT_DEPS.get(current, []))
    return seen


# The wrapper header that is allowed to touch the raw primitives.
MUTEX_WRAPPER = "src/util/mutex.h"

RAW_LOCK_PATTERNS = [
    (re.compile(r"#\s*include\s*<mutex>"), "#include <mutex>"),
    (re.compile(r"#\s*include\s*<condition_variable>"),
     "#include <condition_variable>"),
    (re.compile(r"\bstd::mutex\b"), "std::mutex"),
    (re.compile(r"\bstd::recursive_mutex\b"), "std::recursive_mutex"),
    (re.compile(r"\bstd::shared_mutex\b"), "std::shared_mutex"),
    (re.compile(r"\bstd::timed_mutex\b"), "std::timed_mutex"),
    (re.compile(r"\bstd::lock_guard\b"), "std::lock_guard"),
    (re.compile(r"\bstd::unique_lock\b"), "std::unique_lock"),
    (re.compile(r"\bstd::scoped_lock\b"), "std::scoped_lock"),
    (re.compile(r"\bstd::shared_lock\b"), "std::shared_lock"),
    (re.compile(r"\bstd::condition_variable\b"), "std::condition_variable"),
]

NONDETERMINISM_PATTERNS = [
    # word-boundary + lookbehind so util::rand-free identifiers like
    # `strand(` or member calls like `rng.rand()` do not false-positive.
    (re.compile(r"(?<![\w:.>])rand\s*\("), "rand()"),
    (re.compile(r"(?<![\w:.>])srand\s*\("), "srand()"),
    (re.compile(r"(?<![\w:.>])time\s*\(\s*(nullptr|NULL|0)\s*\)"),
     "time(nullptr)"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
]

PROJECT_INCLUDE = re.compile(r'#\s*include\s*"([^"]+)"')


def strip_comments_and_strings(text: str) -> str:
    """Removes //, /* */ comments and ".."/'..' literals, keeping
    newlines so reported line numbers stay correct."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*"
                                 and i + 1 < n and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif ch == '"' or ch == "'":
            quote = ch
            # Keep include paths: re-emit the quoted text for "..." that
            # directly follows #include on the same line.
            line_start = text.rfind("\n", 0, i) + 1
            is_include = bool(
                re.match(r"\s*#\s*include\s*$", text[line_start:i]))
            literal = [quote]
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    literal.append(text[i:i + 2])
                    i += 2
                    continue
                if text[i] == "\n":
                    break  # unterminated; tolerate
                literal.append(text[i])
                i += 1
            literal.append(quote)
            i += 1
            out.append("".join(literal) if is_include else quote + quote)
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def check_file(rel_path: str, text: str) -> list[str]:
    """Returns violation strings ('path:line: message') for one file.

    `rel_path` is repo-relative with forward slashes (e.g.
    'src/serve/router.cc').
    """
    violations: list[str] = []
    parts = pathlib.PurePosixPath(rel_path).parts
    if len(parts) < 3 or parts[0] != "src":
        return violations
    module = parts[1]
    stripped = strip_comments_and_strings(text)
    lines = stripped.split("\n")

    allowed = transitive_deps(module) if module in DIRECT_DEPS else None
    is_wrapper = rel_path == MUTEX_WRAPPER

    for lineno, line in enumerate(lines, start=1):
        include = PROJECT_INCLUDE.search(line)
        if include and allowed is not None:
            target = include.group(1).split("/")[0]
            if target in DIRECT_DEPS and target not in allowed:
                violations.append(
                    f"{rel_path}:{lineno}: layering violation: module "
                    f"'{module}' must not include '{include.group(1)}' "
                    f"(allowed: {', '.join(sorted(allowed))})")
        if not is_wrapper:
            for pattern, name in RAW_LOCK_PATTERNS:
                if pattern.search(line):
                    violations.append(
                        f"{rel_path}:{lineno}: raw lock primitive {name} "
                        f"(use mcirbm::Mutex/MutexLock/CondVar from "
                        f"util/mutex.h — raw std primitives are invisible "
                        f"to the thread-safety analysis)")
        for pattern, name in NONDETERMINISM_PATTERNS:
            if pattern.search(line):
                violations.append(
                    f"{rel_path}:{lineno}: nondeterminism primitive {name} "
                    f"(seed an rng::Rng explicitly; wall-clock reads go "
                    f"through util::MonotonicMicros)")
    return violations


def lint_tree(root: pathlib.Path) -> list[str]:
    violations: list[str] = []
    src = root / "src"
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(root).as_posix()
        violations.extend(
            check_file(rel, path.read_text(encoding="utf-8")))
    return violations


# --------------------------------------------------------------------------
# Self-test: seeded violations through the same code path.
# --------------------------------------------------------------------------
def self_test(root: pathlib.Path) -> int:
    failures: list[str] = []

    def expect(name: str, rel: str, text: str, needle: str | None) -> None:
        got = check_file(rel, text)
        if needle is None:
            if got:
                failures.append(f"{name}: expected clean, got {got}")
        elif not any(needle in v for v in got):
            failures.append(
                f"{name}: expected a violation containing {needle!r}, "
                f"got {got}")

    # Layering back-edge: util reaching up into serve.
    expect("layering-back-edge", "src/util/bad.h",
           '#include "serve/server.h"\n', "layering violation")
    # Layering skip-edge: linalg reaching sideways into data.
    expect("layering-side-edge", "src/linalg/bad.cc",
           '#include "data/source.h"\n', "layering violation")
    # Legal include: serve -> api is in the DAG.
    expect("layering-legal", "src/serve/ok.cc",
           '#include "api/model.h"\n#include "serve/router.h"\n', None)
    # Raw mutex outside the wrapper.
    expect("raw-mutex", "src/serve/bad.cc",
           "#include <mutex>\nstd::mutex mu;\n", "raw lock primitive")
    expect("raw-lock-guard", "src/core/bad.cc",
           "std::lock_guard<std::mutex> l(mu);\n", "raw lock primitive")
    # The wrapper header itself is exempt.
    expect("wrapper-exempt", "src/util/mutex.h",
           "#include <mutex>\nstd::mutex mu_;\n", None)
    # Nondeterminism.
    expect("rand", "src/clustering/bad.cc",
           "int x = rand();\n", "nondeterminism")
    expect("time-null", "src/rbm/bad.cc",
           "auto t = time(nullptr);\n", "nondeterminism")
    expect("random-device", "src/rng/bad.cc",
           "std::random_device rd;\n", "nondeterminism")
    # Comments and strings must not trip anything.
    expect("comment-immune", "src/serve/ok2.cc",
           "// std::mutex is banned; rand() too\n"
           '/* std::lock_guard */ const char* s = "std::mutex rand()";\n',
           None)
    # Qualified calls like rng.rand() are not the C rand().
    expect("member-rand-ok", "src/rbm/ok.cc",
           "double d = rng.rand();\nauto r = my_rand(3);\n", None)

    # Cross-check DIRECT_DEPS against CMakeLists.txt when available.
    cml = root / "CMakeLists.txt"
    if cml.exists():
        declared = dict(
            (m.group(1), [d[len("mcirbm_"):]
                          for d in m.group(2).split()
                          if d.startswith("mcirbm_")])
            for m in re.finditer(r"mcirbm_module\((\w+)([^)]*)\)",
                                 cml.read_text(encoding="utf-8")))
        if declared and declared != DIRECT_DEPS:
            only_lint = {k: v for k, v in DIRECT_DEPS.items()
                         if declared.get(k) != v}
            only_decl = {k: declared.get(k) for k in only_lint}
            failures.append(
                "DIRECT_DEPS out of sync with CMakeLists.txt "
                f"mcirbm_module() calls: lint has {only_lint}, "
                f"CMakeLists.txt declares {only_decl}")

    if failures:
        for failure in failures:
            print(f"SELF-TEST FAIL: {failure}", file=sys.stderr)
        return 1
    print("check_source.py self-test: all seeded violations detected")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parents[2],
                        help="repo root (default: two levels up)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the checks fire on seeded violations")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.root)

    violations = lint_tree(args.root)
    if violations:
        for violation in violations:
            print(violation, file=sys.stderr)
        print(f"\ncheck_source.py: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print("check_source.py: src/ clean "
          "(layering, lock primitives, determinism)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
