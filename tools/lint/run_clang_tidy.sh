#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy — bugprone-*, concurrency-*,
# performance-*) over every src/ translation unit using the
# compile_commands.json that CMake exports unconditionally.
#
# Usage:
#   tools/lint/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# Examples:
#   tools/lint/run_clang_tidy.sh                 # uses ./build
#   tools/lint/run_clang_tidy.sh out -- -fix     # apply suggested fixes
#
# Exit status: non-zero if clang-tidy reports any warning (CI treats the
# profile as a gate; local runs can eyeball the output).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift || true
if [[ "${1:-}" == "--" ]]; then shift; fi

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${tidy_bin}" >/dev/null 2>&1; then
  echo "error: ${tidy_bin} not found on PATH (set CLANG_TIDY to override)" >&2
  exit 2
fi

compdb="${build_dir}/compile_commands.json"
if [[ ! -f "${compdb}" ]]; then
  echo "error: ${compdb} missing — configure first:" >&2
  echo "  cmake -B ${build_dir} -S ${repo_root}" >&2
  exit 2
fi

mapfile -t sources < <(cd "${repo_root}" && ls src/*/*.cc | sort)
echo "clang-tidy over ${#sources[@]} src/ files (config: .clang-tidy)"

status=0
for src in "${sources[@]}"; do
  if ! "${tidy_bin}" -p "${build_dir}" --quiet "$@" \
       "${repo_root}/${src}"; then
    status=1
  fi
done

if [[ ${status} -ne 0 ]]; then
  echo "clang-tidy: findings above must be fixed (or excluded with a" >&2
  echo "documented rationale in .clang-tidy)" >&2
fi
exit ${status}
