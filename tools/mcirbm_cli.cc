// mcirbm_cli — command-line front end for the library, built on the
// src/api facade (registries, api::Model, api::ParseConfig).
//
// Subcommands:
//   synth      generate one of the paper-equivalent synthetic datasets
//   dataset    convert between dataset formats (csv/libsvm/synth -> the
//              mmap-able mcirbm-data v1 binary, or back to csv) and
//              inspect a source's shape without loading it
//   select-k   label-free choice of the cluster count (silhouette sweep)
//   supervise  report the multi-clustering consensus for a dataset
//   train      train an encoder (rbm|grbm|sls-rbm|sls-grbm) on a dataset
//   transform  map a dataset through a saved encoder, write feature CSV
//   eval       cluster a dataset (optionally through a saved encoder) and
//              print the paper's external metrics against the labels
//   pipeline   one-shot load -> supervise -> train -> eval from a
//              key=value config file
//   serve      long-lived micro-batching inference service: stream
//              newline-delimited key=value requests (see serve/request.h)
//              from a file or stdin and print one response line each
//
// Every --data flag takes a loader spec (data/loaders.h): a path whose
// format is inferred (.csv, .libsvm/.svm, .bin/.mcd, else magic-sniffed)
// or an explicit "csv:", "bin:", "libsvm:", "synth:<family>:<index>"
// form. CSV means numeric feature columns with a trailing integer label
// column (header row required), as written by `synth` / data/io.h.
//
// Examples:
//   mcirbm_cli synth --family msra --index 8 --out vt.csv
//   mcirbm_cli dataset convert --in vt.csv --out vt.bin
//   mcirbm_cli train --data vt.bin --model sls-grbm --standardize \
//       --out vt_model.txt
//   mcirbm_cli eval --data vt.bin --model-file vt_model.txt \
//       --standardize --clusterer kmeans
//   mcirbm_cli pipeline --config run.cfg
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/api.h"
#include "net/net.h"
#include "serve/serve.h"
#include "core/model_selection.h"
#include "eval/experiment.h"
#include "data/binary_io.h"
#include "data/io.h"
#include "data/loaders.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "metrics/external.h"
#include "parallel/thread_pool.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace mcirbm;  // NOLINT: CLI driver

// --flag parser: accepts `--key value` and `--key=value`; flags without
// '--' are positional (rejected). Unknown flags are rejected per
// subcommand via Validate. Storage and typed access delegate to ParamMap
// so flag values share the registry factories' parsing rules.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        status_ = Status::InvalidArgument("unexpected positional argument '" +
                                          arg + "'");
        return;
      }
      std::string key = arg.substr(2);
      const std::size_t eq = key.find('=');
      if (eq != std::string::npos) {
        values_.Set(key.substr(0, eq), key.substr(eq + 1));
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_.Set(key, argv[++i]);
      } else {
        // Valueless flag. The empty sentinel keeps Has() working for
        // boolean flags while making GetInt/GetDouble reject a numeric
        // flag whose value was forgotten (e.g. `--threads --seed 7`).
        values_.Set(key, "");
      }
    }
  }

  const Status& status() const { return status_; }

  /// Non-OK when any parsed flag is outside `allowed` — every subcommand
  /// declares its vocabulary, so a typo fails loudly instead of being
  /// silently ignored.
  Status Validate(std::initializer_list<const char*> allowed) const {
    if (!status_.ok()) return status_;
    return values_.ExpectOnly(allowed);
  }

  bool Has(const std::string& key) const { return values_.Has(key); }
  std::string Get(const std::string& key, const std::string& fallback = "")
      const {
    return values_.GetString(key, fallback).value();
  }
  int GetInt(const std::string& key, int fallback) const {
    auto v = values_.GetInt(key, fallback);
    if (!v.ok()) {
      std::cerr << "error: flag --" << key << " expects an integer, got '"
                << Get(key) << "'\n";
      std::exit(2);
    }
    return v.value();
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto v = values_.GetDouble(key, fallback);
    if (!v.ok()) {
      std::cerr << "error: flag --" << key << " expects a number, got '"
                << Get(key) << "'\n";
      std::exit(2);
    }
    return v.value();
  }

 private:
  ParamMap values_;
  Status status_;
};

int Fail(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  return 1;
}

int Fail(const Status& status) { return Fail(status.ToString()); }

// Loads --data through the loader registry: any path (csv, mcirbm-data
// binary, libsvm — inferred by extension/magic) or an explicit
// "scheme:rest" spec, including "synth:<family>:<index>[:<seed>]".
StatusOr<data::Dataset> LoadCliDataset(const Args& args,
                                       const std::string& spec) {
  data::DataSourceConfig config;
  config.synth_seed = static_cast<std::uint64_t>(args.GetInt("seed", 7));
  return data::LoadDataset(spec, config);
}

// Applies the representation flags to `x` in the documented order.
void ApplyTransforms(const Args& args, linalg::Matrix* x) {
  if (args.Has("standardize")) data::StandardizeInPlace(x);
  if (args.Has("minmax")) data::MinMaxScaleInPlace(x);
  if (args.Has("binarize")) {
    data::MinMaxScaleInPlace(x);
    data::BinarizeAtColumnMeanInPlace(x);
  }
}

void PrintMetrics(const metrics::MetricBundle& m) {
  std::cout << "accuracy " << FormatDouble(m.accuracy, 4) << "  purity "
            << FormatDouble(m.purity, 4) << "  rand "
            << FormatDouble(m.rand_index, 4) << "  FMI "
            << FormatDouble(m.fmi, 4) << "  ARI "
            << FormatDouble(m.ari, 4) << "  NMI "
            << FormatDouble(m.nmi, 4) << "\n";
}

int RunSynth(const Args& args) {
  const Status valid = args.Validate(
      {"family", "index", "out", "seed", "threads"});
  if (!valid.ok()) return Fail(valid);
  const std::string family = args.Get("family", "msra");
  const int index = args.GetInt("index", 0);
  const std::string out = args.Get("out");
  if (out.empty()) return Fail("synth needs --out <csv>");
  const std::uint64_t seed = args.GetInt("seed", 7);

  data::Dataset ds;
  if (family == "msra") {
    if (index < 0 || index >= data::NumMsraDatasets()) {
      return Fail("msra index out of range");
    }
    ds = data::GenerateMsraLike(index, seed);
  } else if (family == "uci") {
    if (index < 0 || index >= data::NumUciDatasets()) {
      return Fail("uci index out of range");
    }
    ds = data::GenerateUciLike(index, seed);
  } else {
    return Fail("unknown family '" + family + "' (msra|uci)");
  }
  const Status status = data::SaveDatasetCsv(ds, out);
  if (!status.ok()) return Fail(status);
  std::cout << "wrote " << ds.name << ": " << ds.num_instances() << " x "
            << ds.num_features() << " (+label) to " << out << "\n";
  return 0;
}

int RunSelectK(const Args& args) {
  const Status valid = args.Validate({"data", "kmin", "kmax", "seed",
                                      "standardize", "minmax", "binarize",
                                      "threads"});
  if (!valid.ok()) return Fail(valid);
  const std::string path = args.Get("data");
  if (path.empty()) return Fail("select-k needs --data <csv>");
  auto loaded = LoadCliDataset(args, path);
  if (!loaded.ok()) return Fail(loaded.status());
  data::Dataset ds = std::move(loaded).value();
  ApplyTransforms(args, &ds.x);
  const int k_min = args.GetInt("kmin", 2);
  const int k_max = args.GetInt("kmax", 8);
  const auto selection = core::SelectNumClusters(
      ds.x, k_min, k_max, args.GetInt("seed", 7));
  std::cout << "k   silhouette\n";
  for (const auto& candidate : selection.candidates) {
    std::cout << candidate.k << "   "
              << FormatDouble(candidate.silhouette, 4)
              << (candidate.k == selection.best_k ? "   <- selected" : "")
              << "\n";
  }
  return 0;
}

int RunSupervise(const Args& args) {
  const Status valid = args.Validate(
      {"data", "clusters", "strategy", "voters", "kmeans-voters",
       "with-agglomerative", "with-dbscan", "with-gmm", "with-spectral",
       "seed", "standardize", "minmax", "binarize", "threads"});
  if (!valid.ok()) return Fail(valid);
  const std::string path = args.Get("data");
  if (path.empty()) return Fail("supervise needs --data <csv>");
  auto loaded = LoadCliDataset(args, path);
  if (!loaded.ok()) return Fail(loaded.status());
  data::Dataset ds = std::move(loaded).value();
  ApplyTransforms(args, &ds.x);

  core::SupervisionConfig config;
  config.num_clusters = args.GetInt("clusters", ds.num_classes);
  if (args.Has("voters")) {
    // Registry form: an ordered "name" / "name*count" list. The deprecated
    // toggle flags would be silently ignored alongside it, so combining
    // the two forms is an error.
    for (const char* flag : {"kmeans-voters", "with-agglomerative",
                             "with-dbscan", "with-gmm", "with-spectral"}) {
      if (args.Has(flag)) {
        return Fail("--" + std::string(flag) +
                    " cannot be combined with --voters; fold it into the "
                    "voter list (e.g. --voters dp,kmeans*3,gmm)");
      }
    }
    auto voters = core::ParseVoterList(args.Get("voters"));
    if (!voters.ok()) return Fail(voters.status());
    config.voters = std::move(voters).value();
  } else {
    config.kmeans_voters = args.GetInt("kmeans-voters", 1);
    config.use_agglomerative = args.Has("with-agglomerative");
    config.use_dbscan = args.Has("with-dbscan");
    config.use_gmm = args.Has("with-gmm");
    config.use_spectral = args.Has("with-spectral");
  }
  if (args.Get("strategy", "unanimous") == "majority") {
    config.strategy = voting::VoteStrategy::kMajority;
  }
  auto sup = core::TryComputeSelfLearningSupervision(
      ds.x, config, args.GetInt("seed", 7));
  if (!sup.ok()) return Fail(sup.status());
  std::cout << "consensus: " << sup.value().num_clusters
            << " credible clusters, " << sup.value().NumCredible() << "/"
            << ds.num_instances() << " instances (coverage "
            << FormatDouble(sup.value().Coverage(), 3) << ")\n";
  return 0;
}

int RunTrain(const Args& args) {
  const Status valid = args.Validate(
      {"data", "out", "model", "config", "hidden", "epochs", "lr", "eta",
       "scale", "clusters", "seed", "standardize", "minmax", "binarize",
       "threads"});
  if (!valid.ok()) return Fail(valid);
  const std::string path = args.Get("data");
  const std::string out = args.Get("out");
  if (path.empty() || out.empty()) {
    return Fail("train needs --data <csv> and --out <path>");
  }
  auto kind = api::ModelKindFromName(args.Get("model", "sls-grbm"));
  if (!kind.ok()) return Fail(kind.status());
  core::ModelKind model_kind = kind.value();

  std::string config_text;
  if (args.Has("config")) {
    auto text = ReadFileToString(args.Get("config"));
    if (!text.ok()) return Fail(text.status());
    config_text = std::move(text).value();
    // A `model` key in the file overrides --model, and — matching
    // ParsePipelineSpec — it must be resolved *before* the paper-family
    // base hyper-parameters are chosen, or an sls-rbm configured via the
    // file would silently train with GRBM-family defaults.
    core::PipelineConfig probe;
    probe.model = model_kind;
    auto probed = api::ParseConfig(config_text, probe);
    if (!probed.ok()) return Fail(probed.status());
    model_kind = probed.value().model;
  }

  auto loaded = LoadCliDataset(args, path);
  if (!loaded.ok()) return Fail(loaded.status());
  data::Dataset ds = std::move(loaded).value();
  ApplyTransforms(args, &ds.x);

  const bool grbm_family = model_kind == core::ModelKind::kGrbm ||
                           model_kind == core::ModelKind::kSlsGrbm;
  const eval::ExperimentConfig paper = eval::MakePaperConfig(grbm_family);
  core::PipelineConfig config;
  config.model = model_kind;
  config.rbm = paper.rbm;
  config.sls = paper.sls;
  config.supervision = paper.supervision;
  config.rbm.num_hidden = args.GetInt("hidden", paper.rbm.num_hidden);
  config.rbm.epochs = args.GetInt("epochs", paper.rbm.epochs);
  config.rbm.learning_rate = args.GetDouble("lr", paper.rbm.learning_rate);
  config.sls.eta = args.GetDouble("eta", paper.sls.eta);
  config.sls.supervision_scale =
      args.GetDouble("scale", paper.sls.supervision_scale);
  config.supervision.num_clusters =
      args.GetInt("clusters", ds.num_classes);
  if (args.Has("config")) {
    // Key=value file over the flag-derived base; file keys win.
    auto parsed = api::ParseConfig(config_text, config);
    if (!parsed.ok()) return Fail(parsed.status());
    config = std::move(parsed).value();
  }

  auto model = api::Model::Train(ds.x, config, args.GetInt("seed", 7));
  if (!model.ok()) return Fail(model.status());
  std::cout << "trained " << model.value().kind()
            << "; final reconstruction error "
            << FormatDouble(model.value().final_reconstruction_error(), 4)
            << "\n";
  if (config.model == core::ModelKind::kSlsRbm ||
      config.model == core::ModelKind::kSlsGrbm) {
    const auto& sup = model.value().supervision();
    std::cout << "supervision coverage "
              << FormatDouble(sup.Coverage(), 3) << " (" << sup.num_clusters
              << " credible clusters)\n";
  }
  const Status status = model.value().Save(out);
  if (!status.ok()) return Fail(status);
  std::cout << "saved model to " << out << "\n";
  return 0;
}

int RunTransform(const Args& args) {
  const Status valid = args.Validate(
      {"data", "model-file", "out", "standardize", "minmax", "binarize",
       "threads"});
  if (!valid.ok()) return Fail(valid);
  const std::string path = args.Get("data");
  const std::string model_path = args.Get("model-file");
  const std::string out = args.Get("out");
  if (path.empty() || model_path.empty() || out.empty()) {
    return Fail("transform needs --data, --model-file and --out");
  }
  auto loaded = LoadCliDataset(args, path);
  if (!loaded.ok()) return Fail(loaded.status());
  data::Dataset ds = std::move(loaded).value();
  ApplyTransforms(args, &ds.x);

  auto model = api::Model::Load(model_path);
  if (!model.ok()) return Fail(model.status());
  auto hidden = model.value().Transform(ds.x);
  if (!hidden.ok()) return Fail(hidden.status());

  data::Dataset features = ds;
  features.x = std::move(hidden).value();
  features.name = ds.name + ":hidden";
  const Status status = data::SaveDatasetCsv(features, out);
  if (!status.ok()) return Fail(status);
  std::cout << "wrote " << features.x.rows() << " x " << features.x.cols()
            << " hidden features (+label) to " << out << "\n";
  return 0;
}

int RunEval(const Args& args) {
  const Status valid = args.Validate(
      {"data", "model-file", "clusterer", "k", "seed", "standardize",
       "minmax", "binarize", "threads"});
  if (!valid.ok()) return Fail(valid);
  const std::string path = args.Get("data");
  if (path.empty()) return Fail("eval needs --data <csv>");
  auto loaded = LoadCliDataset(args, path);
  if (!loaded.ok()) return Fail(loaded.status());
  data::Dataset ds = std::move(loaded).value();
  linalg::Matrix x = ds.x;
  ApplyTransforms(args, &x);

  if (args.Has("model-file")) {
    auto model = api::Model::Load(args.Get("model-file"));
    if (!model.ok()) return Fail(model.status());
    auto hidden = model.value().Transform(x);
    if (!hidden.ok()) return Fail(hidden.status());
    x = std::move(hidden).value();
  }

  // Any registered clusterer works here, not just the paper's three.
  const std::string clusterer_name = args.Get("clusterer", "kmeans");
  const int k = args.GetInt("k", ds.num_classes);
  ParamMap params;
  params.Set("k", std::to_string(k));
  if (clusterer_name == "kmeans") {
    eval::ApplyKMeansRestartOverride(&params);
  }
  auto clusterer = clustering::ClustererRegistry::Global().Create(
      clusterer_name, params);
  if (!clusterer.ok()) return Fail(clusterer.status());
  const auto result = clusterer.value()->Cluster(x, args.GetInt("seed", 7));
  const auto m = metrics::ComputeAll(ds.labels, result.assignment);
  std::cout << "clusterer " << clusterer_name << ", k=" << k << ", "
            << result.num_clusters << " clusters found\n";
  PrintMetrics(m);
  return 0;
}

int RunPipeline(const Args& args) {
  const Status valid = args.Validate(
      {"config", "data", "model-out", "features-out", "seed", "threads"});
  if (!valid.ok()) return Fail(valid);
  const std::string config_path = args.Get("config");
  if (config_path.empty()) return Fail("pipeline needs --config <file>");
  auto spec_or = api::ParsePipelineSpecFile(config_path);
  if (!spec_or.ok()) return Fail(spec_or.status());
  api::PipelineSpec spec = std::move(spec_or).value();
  // Flag overrides for the run-specific bits of the spec.
  if (args.Has("data")) {
    spec.data_spec = args.Get("data");
    spec.data_path.clear();
    spec.data_family.clear();
  }
  if (args.Has("model-out")) spec.model_out = args.Get("model-out");
  if (args.Has("features-out")) spec.features_out = args.Get("features-out");
  if (args.Has("seed")) spec.seed = args.GetInt("seed", 7);

  auto summary_or = api::RunPipeline(spec);
  if (!summary_or.ok()) return Fail(summary_or.status());
  const api::PipelineRunSummary& summary = summary_or.value();
  std::cout << "dataset " << summary.dataset_name << ": "
            << summary.instances << " x " << summary.features << "\n";
  std::cout << "model " << summary.model.kind()
            << "; final reconstruction error "
            << FormatDouble(summary.reconstruction_error, 4) << "\n";
  if (summary.supervision_clusters > 0) {
    std::cout << "supervision coverage "
              << FormatDouble(summary.supervision_coverage, 3) << " ("
              << summary.supervision_clusters << " credible clusters)\n";
  }
  if (!spec.model_out.empty()) {
    std::cout << "saved model to " << spec.model_out << "\n";
  }
  if (!spec.features_out.empty()) {
    std::cout << "saved hidden features to " << spec.features_out << "\n";
  }
  if (spec.eval_clusterer != "none") {
    std::cout << "eval (" << spec.eval_clusterer << ", k=" << summary.eval_k
              << ")\n";
    std::cout << "  raw:     ";
    PrintMetrics(summary.raw_metrics);
    std::cout << "  hidden:  ";
    PrintMetrics(summary.hidden_metrics);
  }
  return 0;
}

// dataset convert: stream any loader spec into the mcirbm-data v1 binary
// artifact (or, with a .csv output, back to CSV) without materializing
// the source. dataset info: print the source's shape without loading it.
int RunDatasetCommand(int argc, char** argv) {
  if (argc < 3) {
    return Fail("dataset needs an action: convert|info");
  }
  const std::string action = argv[2];
  // Shift argv so Args' "flags start at index 2" convention sees the
  // flags after the action word.
  const Args args(argc - 1, argv + 1);
  if (!args.status().ok()) return Fail(args.status());

  if (action == "info") {
    const Status valid = args.Validate({"in", "seed"});
    if (!valid.ok()) return Fail(valid);
    const std::string in = args.Get("in");
    if (in.empty()) return Fail("dataset info needs --in <spec>");
    data::DataSourceConfig config;
    config.synth_seed = static_cast<std::uint64_t>(args.GetInt("seed", 7));
    auto source = data::OpenDataSource(in, config);
    if (!source.ok()) return Fail(source.status());
    std::cout << "name " << source.value()->name() << "\n"
              << "rows " << source.value()->rows() << "\n"
              << "cols " << source.value()->cols() << "\n"
              << "classes " << source.value()->num_classes() << "\n"
              << "random_access "
              << (source.value()->SupportsRandomAccess() ? "yes" : "no")
              << "\n";
    return 0;
  }
  if (action != "convert") {
    return Fail("unknown dataset action '" + action +
                "' (expected convert|info)");
  }

  const Status valid = args.Validate({"in", "out", "chunk-rows", "seed"});
  if (!valid.ok()) return Fail(valid);
  const std::string in = args.Get("in");
  const std::string out = args.Get("out");
  if (in.empty() || out.empty()) {
    return Fail("dataset convert needs --in <spec> and --out <path>");
  }
  const int chunk_rows = args.GetInt("chunk-rows", 4096);
  if (chunk_rows < 1) return Fail("--chunk-rows must be >= 1");

  data::DataSourceConfig config;
  config.max_resident_rows = static_cast<std::size_t>(chunk_rows);
  config.synth_seed = static_cast<std::uint64_t>(args.GetInt("seed", 7));
  auto source = data::OpenDataSource(in, config);
  if (!source.ok()) return Fail(source.status());

  const bool to_csv =
      out.size() >= 4 && out.compare(out.size() - 4, 4, ".csv") == 0;
  if (to_csv) {
    // CSV output materializes (the label column interleaves with rows,
    // and SaveDatasetCsv already streams the write side).
    auto dataset = source.value()->Materialize();
    if (!dataset.ok()) return Fail(dataset.status());
    const Status saved = data::SaveDatasetCsv(dataset.value(), out);
    if (!saved.ok()) return Fail(saved);
  } else {
    const Status saved = data::ConvertSourceToBinary(*source.value(), out);
    if (!saved.ok()) return Fail(saved);
  }
  std::cout << "converted " << source.value()->name() << " ("
            << source.value()->rows() << " x " << source.value()->cols()
            << ", " << source.value()->num_classes() << " classes) to "
            << (to_csv ? "csv " : "mcirbm-data v1 ") << out << "\n";
  return 0;
}

// SIGINT/SIGTERM request a graceful drain of the serve subcommand: stop
// taking new requests, finish and flush everything in flight, print the
// final stats, exit 0. Installed WITHOUT SA_RESTART so a getline blocked
// on stdin returns with EINTR and the file-mode loop notices the flag.
volatile std::sig_atomic_t g_serve_shutdown = 0;

extern "C" void HandleServeSignal(int) { g_serve_shutdown = 1; }

void InstallServeSignalHandlers() {
  struct sigaction action {};
  action.sa_handler = HandleServeSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: unblock reads on signal
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

// Raw-fd line reader for the serve request stream. istream::getline is
// unusable here: libstdc++ retries ::read on EINTR internally, so a
// loop blocked on stdin would never observe a drain signal. A direct
// ::read returns EINTR (the handlers install without SA_RESTART), and
// Next() turns that into a clean end-of-stream when the flag is up.
class ServeLineReader {
 public:
  explicit ServeLineReader(int fd) : fd_(fd) {}

  /// False on EOF, read error, or drain signal; a final unterminated
  /// line still comes through before EOF reports.
  bool Next(std::string* line) {
    for (;;) {
      const std::size_t pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        line->assign(buffer_, 0, pos);
        buffer_.erase(0, pos + 1);
        return true;
      }
      if (eof_) {
        if (buffer_.empty()) return false;
        line->assign(buffer_);
        buffer_.clear();
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n > 0) {
        buffer_.append(chunk, static_cast<std::size_t>(n));
      } else if (n == 0) {
        eof_ = true;
      } else if (errno != EINTR || g_serve_shutdown != 0) {
        return false;
      }
    }
  }

 private:
  const int fd_;
  std::string buffer_;
  bool eof_ = false;
};

// The '# ' comment-channel stats snapshot (periodic --stats-every
// emissions and the final drain report), serialized so concurrent
// network handlers cannot interleave lines.
void PrintCommentedStats(const serve::RequestExecutor& executor,
                         std::mutex* stdout_mu) {
  std::istringstream rendered(executor.RenderStatsText());
  std::string metric_line;
  std::lock_guard<std::mutex> lock(*stdout_mu);
  while (std::getline(rendered, metric_line)) {
    std::cout << "# " << metric_line << "\n";
  }
  std::cout << std::flush;
}

// The complete end-of-serve counter line, agreeing field-for-field with
// the op=stats registry surface (requests/rejected/batches plus every
// flush-trigger and store counter — nothing summarized away).
void PrintServeSummary(const serve::Router& server, std::uint64_t served,
                       std::uint64_t failures) {
  const serve::Router::Stats stats = server.stats();
  std::cout << "# served=" << served << " failed=" << failures
            << " replicas=" << server.replicas()
            << " requests=" << stats.batcher.requests
            << " rejected=" << stats.batcher.rejected_requests
            << " batches=" << stats.batcher.batches
            << " full_flushes=" << stats.batcher.full_flushes
            << " deadline_flushes=" << stats.batcher.deadline_flushes
            << " swap_flushes=" << stats.batcher.swap_flushes
            << " mean_batch_rows="
            << FormatDouble(stats.batcher.MeanBatchRows(), 2)
            << " mean_queue_micros="
            << FormatDouble(stats.batcher.MeanQueueMicros(), 1)
            << " store_hits=" << stats.store.hits
            << " store_misses=" << stats.store.misses
            << " store_reloads=" << stats.store.reloads
            << " store_evictions=" << stats.store.evictions << std::endl;
}

// serve --listen: hand the request stream to the TCP transport and park
// until a shutdown signal, then drain in order (transport first, so
// every in-flight request resolves through the router before it stops).
int RunServeListen(serve::Router* server, serve::RequestExecutor* executor,
                   net::TextEndpoint* stats_endpoint, int listen_port,
                   int handler_threads, int stats_every,
                   std::mutex* stdout_mu) {
  net::LineServerConfig net_config;
  net_config.port = listen_port;
  net_config.handler_threads = handler_threads;
  net::LineServer transport(net_config, executor);
  executor->AddStatsRegistry(&transport.registry());
  if (stats_every > 0) {
    transport.set_response_hook(
        [executor, stats_every, stdout_mu](std::uint64_t responses) {
          if (responses % static_cast<std::uint64_t>(stats_every) == 0) {
            PrintCommentedStats(*executor, stdout_mu);
          }
        });
  }
  const Status started = transport.Start();
  if (!started.ok()) return Fail(started);
  {
    std::lock_guard<std::mutex> lock(*stdout_mu);
    std::cout << "# listening port=" << transport.port()
              << " replicas=" << server->replicas() << std::endl;
  }
  while (g_serve_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  transport.Drain();
  if (stats_endpoint != nullptr) stats_endpoint->Stop();
  // Everything is flushed; the final snapshot (pending gauges now zero)
  // and summary go out before the router stops.
  PrintCommentedStats(*executor, stdout_mu);
  PrintServeSummary(*server, transport.ok_responses(),
                    transport.error_responses());
  server->Shutdown();
  return 0;
}

int RunServe(const Args& args) {
  const Status valid = args.Validate({"requests", "max-batch-rows",
                                      "max-queue-micros", "store-capacity",
                                      "replicas", "max-pending",
                                      "max-inflight", "routing",
                                      "stats-every", "listen",
                                      "handler-threads", "stats-port",
                                      "trace-sample", "trace-jsonl",
                                      "threads"});
  if (!valid.ok()) return Fail(valid);
  serve::RouterConfig config;
  const int max_batch_rows = args.GetInt("max-batch-rows", 64);
  const int max_queue_micros = args.GetInt("max-queue-micros", 200);
  const int store_capacity = args.GetInt("store-capacity", 8);
  const int replicas = args.GetInt("replicas", 1);
  const int max_pending = args.GetInt("max-pending", 0);
  const int max_inflight = args.GetInt("max-inflight", 0);
  const int stats_every = args.GetInt("stats-every", 0);
  const std::string routing = args.Get("routing", "key_hash");
  if (max_batch_rows < 1) return Fail("--max-batch-rows must be >= 1");
  if (max_queue_micros < 0) return Fail("--max-queue-micros must be >= 0");
  if (store_capacity < 1) return Fail("--store-capacity must be >= 1");
  if (replicas < 1) return Fail("--replicas must be >= 1");
  if (max_pending < 0) return Fail("--max-pending must be >= 0");
  if (max_inflight < 0) return Fail("--max-inflight must be >= 0");
  if (stats_every < 0) return Fail("--stats-every must be >= 0");
  if (routing != "key_hash" && routing != "least_loaded") {
    return Fail("--routing must be key_hash|least_loaded, got '" +
                routing + "'");
  }
  config.batcher.max_batch_rows =
      static_cast<std::size_t>(max_batch_rows);
  config.batcher.max_queue_micros = max_queue_micros;
  config.batcher.max_pending_rows = static_cast<std::size_t>(max_pending);
  config.store_capacity = static_cast<std::size_t>(store_capacity);
  config.replicas = static_cast<std::size_t>(replicas);
  config.max_inflight_requests =
      static_cast<std::uint64_t>(max_inflight);
  config.routing = routing == "least_loaded"
                       ? serve::RoutingMode::kLeastLoaded
                       : serve::RoutingMode::kKeyHash;

  const int listen_port = args.GetInt("listen", -1);
  const int handler_threads = args.GetInt("handler-threads", 4);
  const int stats_port = args.GetInt("stats-port", -1);
  const int trace_sample = args.GetInt("trace-sample", 0);
  const std::string trace_jsonl = args.Get("trace-jsonl", "");
  if (trace_sample < 0) return Fail("--trace-sample must be >= 0");
  if (!trace_jsonl.empty() && trace_sample == 0) {
    return Fail("--trace-jsonl needs --trace-sample N >= 1");
  }
  if (args.Has("listen") && (listen_port < 0 || listen_port > 65535)) {
    return Fail("--listen must be a port in [0, 65535] (0 = ephemeral)");
  }
  if (args.Has("stats-port") && (stats_port < 0 || stats_port > 65535)) {
    return Fail("--stats-port must be a port in [0, 65535] (0 = ephemeral)");
  }
  if (handler_threads < 1) return Fail("--handler-threads must be >= 1");
  if (args.Has("listen") && args.Has("requests")) {
    return Fail("--listen replaces the request stream; drop --requests");
  }

  int request_fd = 0;  // stdin
  const std::string requests_path = args.Get("requests", "-");
  if (!args.Has("listen") && requests_path != "-") {
    request_fd = ::open(requests_path.c_str(), O_RDONLY);
    if (request_fd < 0) {
      return Fail("cannot open request file " + requests_path);
    }
  }

  InstallServeSignalHandlers();
  serve::Router server(config);
  // --trace-sample N: every Nth request carries a span timeline
  // (obs/trace.h), queryable via op=trace and the --stats-port body;
  // --trace-jsonl additionally streams each completed trace as one JSON
  // line. The sink runs under the store's commit lock, so the plain
  // ofstream needs no extra synchronization.
  serve::ExecutorConfig executor_config;
  std::shared_ptr<std::ofstream> trace_jsonl_out;
  if (trace_sample > 0) {
    obs::TraceConfig trace_config;
    trace_config.sample_every_n = static_cast<std::uint64_t>(trace_sample);
    executor_config.trace_store =
        std::make_shared<obs::TraceStore>(trace_config);
    if (!trace_jsonl.empty()) {
      trace_jsonl_out =
          std::make_shared<std::ofstream>(trace_jsonl, std::ios::trunc);
      if (!*trace_jsonl_out) {
        return Fail("cannot open trace file " + trace_jsonl);
      }
      executor_config.trace_store->SetJsonlSink(
          [trace_jsonl_out](const std::string& json_line) {
            *trace_jsonl_out << json_line << '\n';
            trace_jsonl_out->flush();  // tail-able; complete on SIGTERM
          });
    }
  }
  serve::RequestExecutor executor(&server, executor_config);
  std::mutex stdout_mu;

  // --stats-port: a standalone read-only observability endpoint — every
  // connection receives the current metrics snapshot as text, then is
  // closed. Available in both listen and file/stdin modes.
  std::unique_ptr<net::TextEndpoint> stats_endpoint;
  if (args.Has("stats-port")) {
    stats_endpoint = std::make_unique<net::TextEndpoint>(
        "127.0.0.1", stats_port,
        [&executor] { return executor.RenderStatsAndTracesText(); });
    const Status started = stats_endpoint->Start();
    if (!started.ok()) return Fail(started);
    std::cout << "# stats port=" << stats_endpoint->port() << std::endl;
  }

  if (args.Has("listen")) {
    return RunServeListen(&server, &executor, stats_endpoint.get(),
                          listen_port, handler_threads, stats_every,
                          &stdout_mu);
  }

  ServeLineReader reader(request_fd);
  std::string line;
  int line_no = 0;
  std::uint64_t served = 0;
  std::uint64_t failures = 0;
  // A shutdown signal breaks the loop (the reader surfaces EINTR);
  // every request already answered stays answered, and the final stats
  // still print — the same drain contract as --listen.
  while (g_serve_shutdown == 0 && reader.Next(&line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const std::string context = "line=" + std::to_string(line_no);
    bool ok = false;
    std::string payload;
    std::shared_ptr<obs::TraceContext> trace;
    auto request = serve::ParseRequestLine(trimmed);
    if (!request.ok()) {
      payload = serve::RequestExecutor::FormatError(request.status(), "",
                                                    context);
    } else {
      trace = executor.StartTrace(request.value(), MonotonicMicros());
      payload = executor.Execute(request.value(), context, &ok, trace);
    }
    {
      std::lock_guard<std::mutex> lock(stdout_mu);
      std::cout << payload << std::flush;
    }
    executor.FinishTrace(trace);
    if (ok) {
      ++served;
    } else {
      ++failures;
    }
    if (stats_every > 0 &&
        (served + failures) % static_cast<std::uint64_t>(stats_every) == 0) {
      // Periodic emission rides the comment channel ('# ' prefix), so
      // response consumers that count ok/error lines are unaffected.
      PrintCommentedStats(executor, &stdout_mu);
    }
  }
  if (request_fd != 0) ::close(request_fd);
  if (stats_endpoint != nullptr) stats_endpoint->Stop();
  if (g_serve_shutdown != 0) PrintCommentedStats(executor, &stdout_mu);
  PrintServeSummary(server, served, failures);
  server.Shutdown();
  return failures == 0 ? 0 : 1;
}

void PrintUsage() {
  std::string clusterers, models;
  for (const auto& name :
       clustering::ClustererRegistry::Global().ListRegistered()) {
    if (!clusterers.empty()) clusterers += "|";
    clusterers += name;
  }
  for (const auto& name : api::ModelRegistry::Global().ListRegistered()) {
    if (!models.empty()) models += "|";
    models += name;
  }
  std::cout <<
      "usage: mcirbm_cli <command> [--flag value | --flag=value ...]\n"
      "\n"
      "global flags:\n"
      "  --threads N   worker threads for the parallel runtime (default:\n"
      "                MCIRBM_THREADS env var, else hardware concurrency;\n"
      "                results are identical at any thread count)\n"
      "\n"
      "commands:\n"
      "  synth      --family msra|uci --index N --out <csv> [--seed N]\n"
      "  dataset    convert --in <spec> --out <path> [--chunk-rows N]\n"
      "             (a .csv output writes CSV, anything else the mmap-able\n"
      "             mcirbm-data v1 binary; conversion streams in bounded\n"
      "             memory) | info --in <spec>\n"
      "             <spec>: a path (.csv/.libsvm/.bin, else magic-sniffed)\n"
      "             or csv:|bin:|libsvm:|synth:<family>:<index>[:<seed>]\n"
      "  select-k   --data <csv> [--kmin 2] [--kmax 8] [--standardize|"
      "--binarize]\n"
      "  supervise  --data <csv> [--clusters K] [--strategy "
      "unanimous|majority]\n"
      "             [--voters dp,kmeans*3,ap] [--kmeans-voters N]\n"
      "             [--with-agglomerative] [--with-dbscan] [--with-gmm]\n"
      "             [--with-spectral] [--standardize|--binarize]\n"
      "  train      --data <csv> --model " + models + "\n"
      "             --out <path> [--config <file>] [--hidden N] "
      "[--epochs N]\n"
      "             [--lr F] [--eta F] [--scale F] [--clusters K]\n"
      "             [--standardize|--binarize] [--seed N]\n"
      "  transform  --data <csv> --model-file <path> --out <csv>\n"
      "             [--standardize|--binarize]\n"
      "  eval       --data <csv> [--model-file <path>]\n"
      "             [--clusterer " + clusterers + "]\n"
      "             [--k K] [--standardize|--binarize] [--seed N]\n"
      "  pipeline   --config <file> [--data <csv>] [--model-out <path>]\n"
      "             [--features-out <csv>] [--seed N]\n"
      "  serve      [--requests <file>|- | --listen PORT] [--stats-port P]\n"
      "             [--max-batch-rows N] [--max-queue-micros N]\n"
      "             [--store-capacity N] [--replicas N]\n"
      "             [--max-pending ROWS] [--max-inflight N]\n"
      "             [--routing key_hash|least_loaded] [--stats-every N]\n"
      "             [--handler-threads N] [--trace-sample N]\n"
      "             [--trace-jsonl <path>]\n"
      "             one key=value request per line (op=transform|evaluate\n"
      "             model=<artifact> data=<csv> [transform=...] [chunk=N]\n"
      "             [clusterer=...] [k=K] [seed=N] [out=<csv>] [id=TAG];\n"
      "             quote values with spaces: data=\"my file.csv\");\n"
      "             responses stream to stdout, '# ...' stats line at EOF;\n"
      "             op=stats returns live latency histograms + gauges as\n"
      "             name{model=\"k\"} value lines; --stats-every N emits\n"
      "             that snapshot as '# ' comments every N requests;\n"
      "             --trace-sample N records a span timeline\n"
      "             (parse/load/queue/exec/format/flush) for every Nth\n"
      "             request — query with 'op=trace last=K', read the\n"
      "             recent-trace section of --stats-port, or stream each\n"
      "             completed trace as JSON with --trace-jsonl <path>;\n"
      "             op=reload model=<artifact> hot-swaps one artifact;\n"
      "             --routing least_loaded sends idle keys to the\n"
      "             emptiest replica (results identical to key_hash);\n"
      "             overflow beyond --max-pending/--max-inflight rejects\n"
      "             fast with kUnavailable (reported as rejected=);\n"
      "             --listen PORT serves the same protocol over TCP\n"
      "             (multi-client, pipelined via id= tags, 0 = ephemeral\n"
      "             port printed as '# listening port=N'); --stats-port P\n"
      "             opens a read-only endpoint that returns the metrics\n"
      "             snapshot to every connection; SIGINT/SIGTERM drain\n"
      "             gracefully in both modes (finish in-flight requests,\n"
      "             flush, print final stats, exit 0)\n"
      "\n"
      "pipeline config keys: see src/api/config.h (key = value lines;\n"
      "model, rbm.*, sls.*, supervision.*, parallel.*, data.*, eval.*,\n"
      "out.*, seed)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  const std::string command = argv[1];
  if (command == "help" || command == "--help") {
    PrintUsage();
    return 0;
  }
  // `dataset` takes an action word before its flags, so it parses its own
  // argv (the shared Args ctor rejects positionals).
  if (command == "dataset") return RunDatasetCommand(argc, argv);
  const Args args(argc, argv);
  if (!args.status().ok()) return Fail(args.status());
  // Pool width: --threads beats the MCIRBM_THREADS env var beats hardware
  // concurrency. Applies to every subcommand.
  if (args.Has("threads")) {
    const int threads = args.GetInt("threads", 0);
    if (threads <= 0) return Fail("--threads must be a positive integer");
    parallel::SetNumThreads(threads);
  }
  if (command == "synth") return RunSynth(args);
  if (command == "select-k") return RunSelectK(args);
  if (command == "supervise") return RunSupervise(args);
  if (command == "train") return RunTrain(args);
  if (command == "transform") return RunTransform(args);
  if (command == "eval") return RunEval(args);
  if (command == "pipeline") return RunPipeline(args);
  if (command == "serve") return RunServe(args);
  // Same loud rejection style as unknown flags: name the input, list the
  // vocabulary, exit non-OK (no usage dump to scroll past).
  return Fail(Status::InvalidArgument(
      "unknown command '" + command +
      "' (expected one of synth|dataset|select-k|supervise|train|transform|"
      "eval|pipeline|serve|help)"));
}
